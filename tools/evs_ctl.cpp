// evs_ctl: drive a fleet's admin control plane from the command line.
//
// The write-side counterpart of evs_top: where evs_top scrapes the GET
// endpoints, evs_ctl issues the POST commands that map to the paper's
// application-control calls — the operator deciding when partitioned
// sv-sets are merged back (SV-SetMerge is application policy, not
// protocol behaviour).
//
//   ./evs_ctl --config node0.conf --site 1 join       # nudge a round
//   ./evs_ctl --config node0.conf --site 2 leave      # graceful departure
//   ./evs_ctl --config node0.conf --all merge-all     # heal every node
//   ./evs_ctl --config node0.conf --site 0 merge 'ss(p0.1,4),ss(p1.1,2)'
//
// The shared-secret token comes from the config's `admin_token` line (or
// --token to override). --all posts the command to every admin endpoint
// concurrently; merge commands are typically only honoured by the current
// view primary (others forward application merge requests there), so
// fleet-wide merge-all is the robust way to heal a partition without
// knowing who the primary is. A node that is blocked mid-view-change
// drops merge requests by design — scripts should retry until the merged
// view installs (see tests/net_loopback_test.cpp).
//
// Exit status: 0 if every targeted node answered 2xx, 1 if any refused
// or was unreachable, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "http_client.hpp"
#include "net/config.hpp"

using namespace evs;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --config FILE (--site N | --all) [--token SECRET]\n"
      "          [--timeout-ms N] <command>\n"
      "commands:\n"
      "  join                    nudge an immediate reconfiguration round\n"
      "  leave                   announce departure and halt the node\n"
      "  merge-all               merge the node's whole e-view structure\n"
      "  merge <id>[,<id>...]    SV-SetMerge of the listed sv-set ids,\n"
      "                          e.g. merge 'ss(p0.1,4),ss(p1.1,2)'\n",
      argv0);
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string token;
  std::uint64_t site = 0;
  bool have_site = false;
  bool all = false;
  std::uint64_t timeout_ms = 2000;
  std::vector<std::string> command;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--config") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) config_path = v;
    } else if (arg == "--site") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, site) && site <= UINT32_MAX;
      have_site = ok;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--token") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) token = v;
    } else if (arg == "--timeout-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, timeout_ms);
    } else if (!arg.empty() && arg[0] == '-') {
      ok = false;
    } else {
      command.push_back(arg);
    }
    if (!ok) return usage(argv[0]);
  }
  if (config_path.empty() || command.empty() || (have_site == all))
    return usage(argv[0]);

  std::string path;
  if (command[0] == "join" || command[0] == "leave" ||
      command[0] == "merge-all") {
    if (command.size() != 1) return usage(argv[0]);
    path = "/" + command[0];
  } else if (command[0] == "merge") {
    if (command.size() != 2 || command[1].empty()) return usage(argv[0]);
    path = "/merge?svset=" + command[1];
  } else {
    return usage(argv[0]);
  }

  net::NodeConfig config;
  std::string error;
  if (!net::load_node_config(config_path, config, error)) {
    std::fprintf(stderr, "%s: %s\n", config_path.c_str(), error.c_str());
    return 2;
  }
  if (token.empty()) token = config.admin_token;
  if (token.empty()) {
    std::fprintf(stderr,
                 "%s: no admin_token in config and no --token given — the "
                 "write side is disabled\n",
                 config_path.c_str());
    return 2;
  }

  std::vector<SiteId> targets;
  if (all) {
    for (const auto& [s, addr] : config.admin) targets.push_back(s);
  } else {
    if (!config.admin.contains(SiteId{static_cast<std::uint32_t>(site)})) {
      std::fprintf(stderr, "%s: no admin line for site %llu\n",
                   config_path.c_str(),
                   static_cast<unsigned long long>(site));
      return 2;
    }
    targets.push_back(SiteId{static_cast<std::uint32_t>(site)});
  }
  if (targets.empty()) {
    std::fprintf(stderr, "%s: no admin lines — nothing to drive\n",
                 config_path.c_str());
    return 2;
  }

  std::vector<tools::HttpRequest> requests;
  requests.reserve(targets.size());
  for (const SiteId s : targets) {
    tools::HttpRequest request;
    request.addr = config.admin.at(s);
    request.method = "POST";
    request.path = path;
    request.headers = "X-Admin-Token: " + token + "\r\n";
    requests.push_back(std::move(request));
  }
  const auto responses = tools::http_fetch_all(requests, timeout_ms);

  bool all_ok = true;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const tools::HttpResponse& r = responses[i];
    std::string detail = r.body;
    while (!detail.empty() &&
           (detail.back() == '\n' || detail.back() == '\r'))
      detail.pop_back();
    if (!r.ok) {
      std::printf("site %u: unreachable\n", targets[i].value);
      all_ok = false;
    } else {
      std::printf("site %u: %d %s\n", targets[i].value, r.status,
                  detail.c_str());
      if (!r.success()) all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
