#include "svc_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "svc/protocol.hpp"

namespace evs::tools {

using runtime::SvcRequest;
using runtime::SvcResponse;
using runtime::SvcStatus;

namespace {

std::uint64_t now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000;
}

/// Polls `fd` for `events` with a deadline; false on timeout/error.
bool wait_fd(int fd, short events, std::uint64_t timeout_ms) {
  pollfd pfd{fd, events, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  return rc > 0 && (pfd.revents & (events | POLLERR | POLLHUP)) == events;
}

}  // namespace

SvcClient::SvcClient(SvcAddr initial, SvcClientConfig config)
    : addr_(std::move(initial)), config_(std::move(config)) {
  rng_ = config_.seed != 0 ? config_.seed : (now_ms() * 2654435761ULL) | 1;
}

SvcClient::~SvcClient() { disconnect(); }

std::uint64_t SvcClient::next_jitter(std::uint64_t bound_ms) {
  // xorshift64*: cheap, seedable, good enough to decorrelate clients.
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  const std::uint64_t r = rng_ * 2685821657736338717ULL;
  return bound_ms == 0 ? 0 : r % bound_ms;
}

void SvcClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool SvcClient::ensure_connected() {
  if (fd_ >= 0) return true;
  ++stats_.reconnects;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr_.port);
  if (::inet_pton(AF_INET, addr_.host.c_str(), &sa.sin_addr) != 1) {
    disconnect();
    return false;
  }
  const int rc =
      ::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc < 0 && errno != EINPROGRESS) {
    disconnect();
    return false;
  }
  if (rc < 0) {
    if (!wait_fd(fd_, POLLOUT, config_.io_timeout_ms)) {
      disconnect();
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      disconnect();
      return false;
    }
  }
  return true;
}

std::optional<SvcResponse> SvcClient::exchange(const SvcRequest& req) {
  const std::uint64_t request_id = next_request_id_++;
  std::string out;
  svc::append_frame(out, svc::encode_request(request_id, req));
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_fd(fd_, POLLOUT, config_.io_timeout_ms)) continue;
    }
    return std::nullopt;
  }
  std::string in;
  std::size_t off = 0;
  char buf[16 * 1024];
  for (;;) {
    Bytes body;
    const svc::FrameStatus st = svc::next_frame(in, off, body);
    if (st == svc::FrameStatus::Malformed) return std::nullopt;
    if (st == svc::FrameStatus::Frame) {
      try {
        svc::WireResponse wire = svc::decode_response(body);
        // One request in flight, but a previous call may have abandoned
        // a response on this connection; skip ids that are not ours.
        if (wire.request_id == request_id) return wire.resp;
        continue;
      } catch (const DecodeError&) {
        return std::nullopt;
      }
    }
    if (!wait_fd(fd_, POLLIN, config_.io_timeout_ms)) return std::nullopt;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    in.append(buf, static_cast<std::size_t>(n));
  }
}

void SvcClient::sleep_backoff(std::uint64_t hint_ms, std::uint32_t streak) {
  ++stats_.backoffs;
  std::uint64_t base = hint_ms;
  if (base == 0) {
    base = config_.base_backoff_ms;
    for (std::uint32_t i = 0; i < streak && base < config_.max_backoff_ms;
         ++i)
      base *= 2;
  }
  base = std::min(base, config_.max_backoff_ms);
  // Full jitter: sleep U(1, base) — decorrelates retrying clients while
  // keeping the server's retry_after_ms hint an upper bound.
  const std::uint64_t sleep_ms = 1 + next_jitter(base);
  timespec ts{static_cast<time_t>(sleep_ms / 1'000),
              static_cast<long>((sleep_ms % 1'000) * 1'000'000)};
  ::nanosleep(&ts, nullptr);
}

std::uint64_t SvcClient::next_trace_id() {
  rng_ ^= rng_ >> 12;
  rng_ ^= rng_ << 25;
  rng_ ^= rng_ >> 27;
  const std::uint64_t id = rng_ * 2685821657736338717ULL;
  return id != 0 ? id : 1;  // 0 means "unsampled" on the wire
}

SvcResponse SvcClient::call(SvcRequest req, bool fence) {
  ++stats_.calls;
  if (config_.sample) {
    if (req.trace_id == 0) req.trace_id = next_trace_id();
    req.sampled = true;
    last_trace_id_ = req.trace_id;
  } else if (req.trace_id != 0 && req.sampled) {
    last_trace_id_ = req.trace_id;  // caller-managed sampling
  }
  const std::uint64_t deadline =
      config_.call_timeout_ms > 0 ? now_ms() + config_.call_timeout_ms : 0;
  std::uint32_t fail_streak = 0;
  SvcResponse last = SvcResponse::unavailable(config_.base_backoff_ms);
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (deadline != 0 && now_ms() >= deadline) break;
    ++stats_.attempts;
    req.view_epoch = fence ? epoch_ : 0;
    if (!ensure_connected()) {
      ++stats_.io_errors;
      ++fail_streak;
      // A dead initial target: rotate through the site book so one down
      // node doesn't strand the client.
      if (!config_.sites.empty()) {
        auto it = config_.sites.begin();
        std::advance(it, rr_++ % config_.sites.size());
        addr_ = it->second;
      }
      sleep_backoff(0, fail_streak);
      continue;
    }
    const std::optional<SvcResponse> resp = exchange(req);
    if (!resp) {
      ++stats_.io_errors;
      ++fail_streak;
      disconnect();
      sleep_backoff(0, fail_streak);
      continue;
    }
    last = *resp;
    switch (resp->status) {
      case SvcStatus::Ok:
        if (fence) epoch_ = resp->view_epoch;
        return last;
      case SvcStatus::Unsupported:
        return last;  // retrying cannot help
      case SvcStatus::InvalidEpoch:
        // Re-fence and go again immediately: the server told us the
        // epoch it will accept. (A sealed log shard repeats this answer
        // until a view change; the attempt budget bounds that loop.)
        ++stats_.refences;
        epoch_ = resp->view_epoch;
        fail_streak = 0;
        sleep_backoff(config_.base_backoff_ms, 0);
        continue;
      case SvcStatus::NotLeader: {
        ++stats_.redirects;
        fail_streak = 0;
        const auto it = config_.sites.find(resp->coordinator_site);
        if (it != config_.sites.end()) {
          if (it->second.host != addr_.host ||
              it->second.port != addr_.port) {
            addr_ = it->second;
            disconnect();
          }
        } else if (!config_.sites.empty()) {
          auto any = config_.sites.begin();
          std::advance(any, rr_++ % config_.sites.size());
          addr_ = any->second;
          disconnect();
        }
        continue;
      }
      case SvcStatus::Unavailable:
      case SvcStatus::Conflict:
        ++fail_streak;
        sleep_backoff(resp->retry_after_ms, fail_streak);
        continue;
    }
  }
  ++stats_.exhausted;
  return last;
}

}  // namespace evs::tools
