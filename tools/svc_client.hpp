// Client SDK for the svc front door: one connection, typed retries.
//
// The raw protocol (src/svc/protocol.hpp) answers every request with one
// typed outcome; turning those outcomes into a reliable client call is
// the same loop in every tool, so it lives here once:
//
//   * InvalidEpoch{current}  -> re-fence (adopt the epoch) and retry —
//                               the epoch-fencing rule from the client's
//                               side; a sealed log shard answers the same
//                               way, so seals are ridden out too.
//   * Unavailable / Conflict -> honour retry_after_ms (plus full jitter,
//                               so a thousand shed clients don't return
//                               in one thundering herd), then retry.
//   * NotLeader{site}        -> reconnect to that site's svc address
//                               (from the site book) and retry there.
//   * connection failure     -> reconnect with jittered exponential
//                               backoff and retry. NOTE: a write whose
//                               connection died mid-call may or may not
//                               have been applied — retrying gives
//                               at-least-once semantics, same as every
//                               reconnecting client of an ordered log.
//
// call() blocks until it has a definitive answer (Ok / Unsupported), the
// attempt budget runs out (the last non-definitive answer is returned),
// or the deadline passes (synthetic Unavailable). One request at a time —
// benches that want pipelining keep their own open-loop engines; this SDK
// is for correctness-first callers (log bench verification, tests,
// control tools).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "runtime/svc.hpp"

namespace evs::tools {

struct SvcAddr {
  std::string host;
  std::uint16_t port = 0;
};

struct SvcClientConfig {
  /// site -> svc address, for NotLeader redirects. A redirect to a site
  /// missing from the book fails over to round-robin across the book
  /// (or stays put when the book is empty).
  std::map<std::uint32_t, SvcAddr> sites;
  std::size_t max_attempts = 32;
  /// First reconnect/retry backoff; doubles per consecutive failure up
  /// to max_backoff_ms. retry_after_ms hints from the server override
  /// the base (still jittered).
  std::uint64_t base_backoff_ms = 10;
  std::uint64_t max_backoff_ms = 640;
  /// Whole-call deadline; 0 = attempts-only budget.
  std::uint64_t call_timeout_ms = 15'000;
  /// Per-socket-operation timeout (connect / send / recv).
  std::uint64_t io_timeout_ms = 2'000;
  /// Jitter seed; 0 seeds from the monotonic clock.
  std::uint64_t seed = 0;
  /// Stamp every call with the sampled flag and (when the caller left
  /// req.trace_id zero) a fresh random 64-bit trace id, so the request's
  /// whole lifecycle is recorded server-side and `trace_check --request`
  /// can assemble its span tree. Off by default: an unsampled request
  /// propagates trace id 0 and the servers skip all tracing work.
  bool sample = false;
};

struct SvcClientStats {
  std::uint64_t calls = 0;
  std::uint64_t attempts = 0;
  std::uint64_t refences = 0;    // InvalidEpoch absorbed
  std::uint64_t redirects = 0;   // NotLeader followed
  std::uint64_t backoffs = 0;    // slept on Unavailable/Conflict/io error
  std::uint64_t reconnects = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t exhausted = 0;   // calls that ran out of budget
};

class SvcClient {
 public:
  /// `initial` is the first node to talk to; redirects may move the
  /// connection elsewhere. Connects lazily on the first call.
  SvcClient(SvcAddr initial, SvcClientConfig config = {});
  ~SvcClient();
  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  /// Runs one request through the retry loop. The request's view_epoch
  /// is overwritten with the client's fenced epoch (0 until the first
  /// Ok); pass `fence = false` to send epoch 0 always (whole-log ops —
  /// LogTail / LogSeal — span groups with independent epochs).
  runtime::SvcResponse call(runtime::SvcRequest req, bool fence = true);

  /// Epoch adopted from the last Ok / InvalidEpoch answer.
  std::uint64_t fenced_epoch() const { return epoch_; }
  /// Trace id stamped on the most recent sampled call (caller-supplied or
  /// generated); 0 before the first one.
  std::uint64_t last_trace_id() const { return last_trace_id_; }
  /// Address of the node the client currently talks to.
  const SvcAddr& current_addr() const { return addr_; }
  const SvcClientStats& stats() const { return stats_; }

 private:
  bool ensure_connected();
  void disconnect();
  /// One request/response exchange on the live connection; nullopt on
  /// any I/O failure (connection is dropped).
  std::optional<runtime::SvcResponse> exchange(
      const runtime::SvcRequest& req);
  void sleep_backoff(std::uint64_t hint_ms, std::uint32_t streak);
  std::uint64_t next_jitter(std::uint64_t bound_ms);
  std::uint64_t next_trace_id();

  SvcAddr addr_;
  SvcClientConfig config_;
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t epoch_ = 0;
  std::uint64_t last_trace_id_ = 0;
  std::uint64_t rng_;
  std::size_t rr_ = 0;  // round-robin cursor into the site book
  SvcClientStats stats_;
};

}  // namespace evs::tools
