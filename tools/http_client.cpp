#include "http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <random>

namespace evs::tools {

namespace {

std::uint64_t wall_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000;
}

/// Per-request exchange state, advanced by the shared poll loop.
struct Exchange {
  enum class State { Pending, Connecting, Sending, Receiving, Done, Failed };

  int fd = -1;
  State state = State::Pending;  // waiting for an in-flight slot (or backoff)
  std::string out;       // full request text
  std::size_t sent = 0;
  std::string in;        // raw response (headers + body)
  int attempts = 0;
  std::uint64_t not_before = 0;  // earliest wall_ms to (re)start connecting

  bool active() const {
    return state == State::Connecting || state == State::Sending ||
           state == State::Receiving;
  }
};

/// Deterministic-free jitter for retry backoff: uniform in
/// [base/2, 3*base/2). Seeded once per process from the monotonic clock —
/// spreading retries out is the goal, not reproducibility.
std::uint64_t jittered(std::uint64_t base_ms) {
  static std::mt19937_64 rng(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  if (base_ms == 0) return 0;
  return base_ms / 2 + rng() % std::max<std::uint64_t>(base_ms, 1);
}

void fail_exchange(Exchange& ex) {
  if (ex.fd >= 0) ::close(ex.fd);
  ex.fd = -1;
  ex.state = Exchange::State::Failed;
}

void finish_exchange(Exchange& ex) {
  if (ex.fd >= 0) ::close(ex.fd);
  ex.fd = -1;
  ex.state = Exchange::State::Done;
}

void start_exchange(const HttpRequest& request, Exchange& ex) {
  // A retry restarts the exchange from scratch.
  ex.sent = 0;
  ex.in.clear();
  ex.out = request.method + " " + request.path + " HTTP/1.0\r\n" +
           request.headers;
  if (request.method != "GET")
    ex.out += "Content-Length: " + std::to_string(request.body.size()) +
              "\r\n";
  ex.out += "\r\n" + request.body;

  ex.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (ex.fd < 0) {
    ex.state = Exchange::State::Failed;
    return;
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(request.addr.ip);
  sa.sin_port = htons(request.addr.port);
  if (::connect(ex.fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
    ex.state = Exchange::State::Sending;
  } else if (errno == EINPROGRESS) {
    ex.state = Exchange::State::Connecting;
  } else {
    fail_exchange(ex);
  }
}

/// One readiness notification for `ex`; advances as far as it can without
/// blocking.
void advance_exchange(Exchange& ex) {
  if (ex.state == Exchange::State::Connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(ex.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      fail_exchange(ex);
      return;
    }
    ex.state = Exchange::State::Sending;
  }
  if (ex.state == Exchange::State::Sending) {
    while (ex.sent < ex.out.size()) {
      const ssize_t n = ::send(ex.fd, ex.out.data() + ex.sent,
                               ex.out.size() - ex.sent, MSG_NOSIGNAL);
      if (n > 0) {
        ex.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      fail_exchange(ex);
      return;
    }
    ex.state = Exchange::State::Receiving;
  }
  if (ex.state == Exchange::State::Receiving) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(ex.fd, buf, sizeof(buf));
      if (n > 0) {
        ex.in.append(buf, static_cast<std::size_t>(n));
        if (ex.in.size() > (1u << 22)) {  // runaway response
          fail_exchange(ex);
          return;
        }
        continue;
      }
      if (n == 0) {  // EOF: HTTP/1.0 close delimits the body
        finish_exchange(ex);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      fail_exchange(ex);
      return;
    }
  }
}

HttpResponse parse_response(const Exchange& ex) {
  HttpResponse response;
  if (ex.state != Exchange::State::Done) return response;
  const std::string& raw = ex.in;
  if (raw.compare(0, 9, "HTTP/1.0 ") != 0 &&
      raw.compare(0, 9, "HTTP/1.1 ") != 0)
    return response;
  int status = 0;
  std::size_t i = 9;
  while (i < raw.size() && raw[i] >= '0' && raw[i] <= '9')
    status = status * 10 + (raw[i++] - '0');
  if (status < 100 || status > 599) return response;
  std::size_t body = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body == std::string::npos) {
    body = raw.find("\n\n");
    skip = 2;
  }
  if (body == std::string::npos) return response;
  response.ok = true;
  response.status = status;
  response.body = raw.substr(body + skip);
  return response;
}

}  // namespace

std::vector<HttpResponse> http_fetch_all(
    const std::vector<HttpRequest>& requests, std::uint64_t timeout_ms,
    const HttpOptions& options) {
  const std::size_t cap = std::max<std::size_t>(options.max_in_flight, 1);
  std::vector<Exchange> exchanges(requests.size());  // all start Pending

  // A connect that dies before the connection is up goes back to Pending
  // with a jittered backoff while it has attempts left; anything else is
  // final. Returns true when the exchange was requeued.
  const auto maybe_retry = [&](Exchange& ex) {
    if (ex.attempts > options.connect_retries) return false;
    ex.state = Exchange::State::Pending;
    ex.not_before = wall_ms() + jittered(options.retry_backoff_ms);
    return true;
  };

  const std::uint64_t deadline = wall_ms() + timeout_ms;
  std::vector<pollfd> pfds;
  std::vector<std::size_t> owners;  // pfds[k] belongs to exchanges[owners[k]]
  for (;;) {
    // Admission: fill free in-flight slots with Pending exchanges (FIFO
    // by index) whose backoff, if any, has elapsed.
    std::size_t active = 0;
    for (const Exchange& ex : exchanges)
      if (ex.active()) ++active;
    const std::uint64_t now = wall_ms();
    std::uint64_t next_start = deadline;  // earliest pending wake-up
    for (std::size_t i = 0; i < exchanges.size(); ++i) {
      Exchange& ex = exchanges[i];
      if (ex.state != Exchange::State::Pending) continue;
      if (ex.not_before > now) {
        next_start = std::min(next_start, ex.not_before);
        continue;
      }
      if (active >= cap) break;  // later indices wait for a slot
      ++ex.attempts;
      start_exchange(requests[i], ex);
      if (ex.active()) {
        ++active;
      } else if (!maybe_retry(ex)) {
        // exhausted: stays Failed
      } else if (ex.not_before > now) {
        next_start = std::min(next_start, ex.not_before);
      }
    }

    pfds.clear();
    owners.clear();
    bool any_pending = false;
    for (std::size_t i = 0; i < exchanges.size(); ++i) {
      Exchange& ex = exchanges[i];
      if (ex.state == Exchange::State::Pending) any_pending = true;
      if (!ex.active()) continue;
      const short events =
          ex.state == Exchange::State::Receiving ? POLLIN : POLLOUT;
      pfds.push_back(pollfd{ex.fd, events, 0});
      owners.push_back(i);
    }
    if (pfds.empty() && !any_pending) break;  // everything settled

    const std::uint64_t t = wall_ms();
    if (t >= deadline) break;
    // Wake for readiness, the deadline, or the next backoff expiry —
    // whichever comes first (a pending retry must not sleep to deadline;
    // next_start is already clamped to it). With no fds this is a plain
    // sleep until the backoff expires.
    const int n = ::poll(pfds.data(), pfds.size(),
                         static_cast<int>(std::max<std::uint64_t>(
                             next_start > t ? next_start - t : 1, 1)));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) break;  // poll failure: abandon the stragglers
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      Exchange& ex = exchanges[owners[k]];
      const bool was_connecting = ex.state == Exchange::State::Connecting;
      advance_exchange(ex);
      if (ex.state == Exchange::State::Failed && was_connecting)
        maybe_retry(ex);
    }
  }

  std::vector<HttpResponse> responses(requests.size());
  for (std::size_t i = 0; i < exchanges.size(); ++i) {
    responses[i] = parse_response(exchanges[i]);
    responses[i].attempts = exchanges[i].attempts;
    if (exchanges[i].active()) fail_exchange(exchanges[i]);  // deadline hit
  }
  return responses;
}

std::optional<std::string> http_get(const net::PeerAddr& addr,
                                    const std::string& path,
                                    std::uint64_t timeout_ms) {
  HttpRequest request;
  request.addr = addr;
  request.path = path;
  const auto responses = http_fetch_all({request}, timeout_ms);
  if (!responses[0].ok || responses[0].status != 200) return std::nullopt;
  return responses[0].body;
}

HttpResponse http_post(const net::PeerAddr& addr, const std::string& path,
                       const std::string& token, std::uint64_t timeout_ms) {
  HttpRequest request;
  request.addr = addr;
  request.method = "POST";
  request.path = path;
  if (!token.empty()) request.headers = "X-Admin-Token: " + token + "\r\n";
  return http_fetch_all({request}, timeout_ms)[0];
}

}  // namespace evs::tools
