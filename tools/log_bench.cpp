// log_bench: append throughput + correctness probe for the sharded log.
//
// Phase 1 (load): an open-loop engine (same discipline as svc_bench —
// requests are due on a fixed schedule regardless of progress, so
// queueing shows up as latency, not as silently reduced load) sends
// LogAppend requests over N pipelined connections to one node's front
// door. Keys round-robin over --key-space, so the router spreads the
// appends across all G shards; every Ok response carries the assigned
// *global* position, which the bench records. Point --addr at the
// coordinator site: appends are accepted only there (elsewhere they come
// back NotLeader, which the bench counts but does not chase — redirect
// chasing is the SDK's job, measured separately).
//
// Phase 2 (verify, via the tools/svc_client.hpp SDK — retries, re-fence
// and redirects included): asks LogTail, then reads every global
// position below the tail (capped at --verify-limit) expecting data or
// junk fill — i.e. the position space the shards claim to have assigned
// is dense. Locally, acked positions must be unique (single-copy
// ordering: the same position acked twice is a forked log).
//
// One JSON object on stdout:
//   {"shards":4,"conns":8,"attempted":20000,"completed":20000,
//    "ok":19990,"not_leader":0,"rejected":10,"lost":0,
//    "duration_ms":5004,"appends_per_sec":3994.8,
//    "p50_us":510,"p95_us":1620,"p99_us":2950,
//    "tail":19990,"verified":19990,"holes":0,"dup_positions":0,
//    "dense":true}
//
//   ./log_bench --addr 127.0.0.1:9200 --shards 4 --rate 4000 \
//               --duration-ms 5000
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/protocol.hpp"
#include "svc_client.hpp"

using namespace evs;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::uint64_t shards = 1;          // G, for the summary only
  std::size_t conns = 8;
  std::uint64_t rate = 2000;         // appends/second
  std::uint64_t duration_ms = 5000;
  std::uint64_t drain_ms = 2000;
  std::uint64_t key_space = 256;     // routing keys (spread across shards)
  std::uint64_t value_bytes = 64;
  std::uint64_t verify_limit = 100'000;  // max positions to read back
  bool verify = true;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --addr IP:PORT [--shards G] [--conns N]\n"
               "          [--rate APPENDS_PER_SEC] [--duration-ms N]\n"
               "          [--drain-ms N] [--key-space N] [--value-bytes N]\n"
               "          [--verify-limit N] [--no-verify]\n",
               argv0);
  return 2;
}

std::uint64_t now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

struct Conn {
  int fd = -1;
  bool connecting = false;
  std::string in;
  std::size_t in_off = 0;
  std::string out;
  std::size_t sent = 0;
};

int open_conn(const Options& options, Conn& conn) {
  conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (conn.fd < 0) return -1;
  int one = 1;
  ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  ::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr);
  const int rc =
      ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  conn.connecting = rc < 0 && errno == EINPROGRESS;
  if (rc < 0 && !conn.connecting) {
    ::close(conn.fd);
    conn.fd = -1;
    return -1;
  }
  return 0;
}

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

bool parse_pos(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  auto parse_u64 = [](const char* text, std::uint64_t& out) {
    char* end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-verify") {
      options.verify = false;
      continue;
    }
    const char* v = (i + 1 < argc) ? argv[i + 1] : nullptr;
    ++i;
    std::uint64_t n = 0;
    if (v == nullptr) return usage(argv[0]);
    if (arg == "--addr") {
      const std::string addr = v;
      const auto colon = addr.rfind(':');
      if (colon == std::string::npos ||
          !parse_u64(addr.c_str() + colon + 1, n))
        return usage(argv[0]);
      options.host = addr.substr(0, colon);
      options.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--shards" && parse_u64(v, n)) {
      options.shards = std::max<std::uint64_t>(1, n);
    } else if (arg == "--conns" && parse_u64(v, n)) {
      options.conns = n;
    } else if (arg == "--rate" && parse_u64(v, n)) {
      options.rate = n;
    } else if (arg == "--duration-ms" && parse_u64(v, n)) {
      options.duration_ms = n;
    } else if (arg == "--drain-ms" && parse_u64(v, n)) {
      options.drain_ms = n;
    } else if (arg == "--key-space" && parse_u64(v, n)) {
      options.key_space = std::max<std::uint64_t>(1, n);
    } else if (arg == "--value-bytes" && parse_u64(v, n)) {
      options.value_bytes = n;
    } else if (arg == "--verify-limit" && parse_u64(v, n)) {
      options.verify_limit = n;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.port == 0 || options.conns == 0 || options.rate == 0)
    return usage(argv[0]);

  std::vector<Conn> conns(options.conns);
  std::uint64_t conns_refused = 0;
  for (Conn& conn : conns) {
    if (open_conn(options, conn) < 0) ++conns_refused;
  }

  std::unordered_map<std::uint64_t, std::uint64_t> inflight;  // id -> t_send
  std::uint64_t next_id = 1;
  std::uint64_t attempted = 0, completed = 0, ok = 0, not_leader = 0,
                rejected = 0;
  std::vector<std::uint64_t> latencies_us;
  std::vector<std::uint64_t> positions;  // acked global positions
  const std::string value(options.value_bytes, 'v');

  const std::uint64_t start = now_us();
  const std::uint64_t send_deadline = start + options.duration_ms * 1'000;
  const std::uint64_t drain_deadline =
      send_deadline + options.drain_ms * 1'000;
  const double interval_us = 1e6 / static_cast<double>(options.rate);
  std::size_t rr = 0;

  std::vector<pollfd> pfds;
  while (true) {
    const std::uint64_t now = now_us();
    if (now >= drain_deadline) break;
    if (inflight.empty() && now >= send_deadline) break;

    if (now < send_deadline) {
      const std::uint64_t due = static_cast<std::uint64_t>(
          static_cast<double>(now - start) / interval_us);
      while (attempted < due) {
        std::size_t tries = 0;
        while (tries < conns.size() && conns[rr].fd < 0) {
          rr = (rr + 1) % conns.size();
          ++tries;
        }
        if (tries == conns.size()) break;
        Conn& conn = conns[rr];
        rr = (rr + 1) % conns.size();

        runtime::SvcRequest req;
        req.op = runtime::SvcOp::LogAppend;
        req.view_epoch = 0;  // wildcard; the SDK path measures fencing
        req.key = std::to_string(next_id % options.key_space);
        req.value = value;
        svc::append_frame(conn.out, svc::encode_request(next_id, req));
        inflight.emplace(next_id, now);
        ++next_id;
        ++attempted;
      }
    }

    pfds.clear();
    for (const Conn& conn : conns) {
      if (conn.fd < 0) continue;
      short events = POLLIN;
      if (conn.connecting || conn.sent < conn.out.size()) events |= POLLOUT;
      pfds.push_back(pollfd{conn.fd, events, 0});
    }
    if (pfds.empty()) break;

    const std::uint64_t wake =
        std::min(now + 20'000, drain_deadline);
    ::poll(pfds.data(), pfds.size(),
           static_cast<int>((wake - now) / 1'000) + 1);

    std::size_t pi = 0;
    for (Conn& conn : conns) {
      if (conn.fd < 0) continue;
      const pollfd& pfd = pfds[pi++];
      bool dead = (pfd.revents & (POLLERR | POLLHUP)) != 0;
      if (!dead && (pfd.revents & POLLOUT) != 0) {
        if (conn.connecting) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) dead = true;
          conn.connecting = false;
        }
        while (!dead && conn.sent < conn.out.size()) {
          const ssize_t n = ::send(conn.fd, conn.out.data() + conn.sent,
                                   conn.out.size() - conn.sent, MSG_NOSIGNAL);
          if (n > 0) {
            conn.sent += static_cast<std::size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            dead = true;
          }
        }
        if (conn.sent == conn.out.size()) {
          conn.out.clear();
          conn.sent = 0;
        }
      }
      if (!dead && (pfd.revents & POLLIN) != 0) {
        char buf[16 * 1024];
        while (true) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            dead = true;
            break;
          }
        }
        Bytes body;
        while (true) {
          const svc::FrameStatus st =
              svc::next_frame(conn.in, conn.in_off, body);
          if (st == svc::FrameStatus::NeedMore) break;
          if (st == svc::FrameStatus::Malformed) {
            dead = true;
            break;
          }
          try {
            const svc::WireResponse wire = svc::decode_response(body);
            const auto it = inflight.find(wire.request_id);
            if (it != inflight.end()) {
              latencies_us.push_back(now_us() - it->second);
              inflight.erase(it);
              ++completed;
              if (wire.resp.status == runtime::SvcStatus::Ok) {
                ++ok;
                std::uint64_t pos = 0;
                if (parse_pos(wire.resp.value, pos)) positions.push_back(pos);
              } else if (wire.resp.status == runtime::SvcStatus::NotLeader) {
                ++not_leader;
              } else {
                ++rejected;
              }
            }
          } catch (const DecodeError&) {
            dead = true;
            break;
          }
        }
        if (conn.in_off > 0) {
          conn.in.erase(0, conn.in_off);
          conn.in_off = 0;
        }
      }
      if (dead) {
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
  }
  for (Conn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  const std::uint64_t wall_us = std::max<std::uint64_t>(1, now_us() - start);

  // Local single-copy check: no global position acked twice.
  std::sort(positions.begin(), positions.end());
  std::uint64_t dup_positions = 0;
  for (std::size_t i = 1; i < positions.size(); ++i)
    if (positions[i] == positions[i - 1]) ++dup_positions;

  // Verification pass through the retrying SDK.
  std::uint64_t tail = 0, verified = 0, holes = 0;
  bool dense = true;
  if (options.verify) {
    tools::SvcClient client(tools::SvcAddr{options.host, options.port});
    runtime::SvcRequest treq;
    treq.op = runtime::SvcOp::LogTail;
    const runtime::SvcResponse tresp =
        client.call(treq, /*fence=*/false);  // shards fence independently
    if (tresp.status == runtime::SvcStatus::Ok) parse_pos(tresp.value, tail);
    const std::uint64_t upto = std::min(tail, options.verify_limit);
    for (std::uint64_t pos = 0; pos < upto; ++pos) {
      runtime::SvcRequest rreq;
      rreq.op = runtime::SvcOp::LogRead;
      rreq.key = std::to_string(pos);
      const runtime::SvcResponse rresp = client.call(rreq, /*fence=*/false);
      // Positions of a lagging shard's residue class sit above that
      // shard's own tail (Conflict after retries) — those are the holes
      // fill() exists for; anything else non-Ok is a verification hole.
      if (rresp.status == runtime::SvcStatus::Ok &&
          (rresp.value.starts_with("D") || rresp.value.starts_with("F") ||
           rresp.value.starts_with("T"))) {
        ++verified;
      } else {
        ++holes;
        dense = false;
      }
    }
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  const double per_sec =
      static_cast<double>(ok) * 1e6 / static_cast<double>(wall_us);
  std::printf(
      "{\"shards\":%llu,\"conns\":%zu,\"attempted\":%llu,"
      "\"completed\":%llu,\"ok\":%llu,\"not_leader\":%llu,"
      "\"rejected\":%llu,\"lost\":%zu,\"conns_refused\":%llu,"
      "\"duration_ms\":%llu,\"appends_per_sec\":%.1f,"
      "\"p50_us\":%llu,\"p95_us\":%llu,\"p99_us\":%llu,"
      "\"tail\":%llu,\"verified\":%llu,\"holes\":%llu,"
      "\"dup_positions\":%llu,\"dense\":%s}\n",
      static_cast<unsigned long long>(options.shards), options.conns,
      static_cast<unsigned long long>(attempted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(not_leader),
      static_cast<unsigned long long>(rejected), inflight.size(),
      static_cast<unsigned long long>(conns_refused),
      static_cast<unsigned long long>(wall_us / 1'000), per_sec,
      static_cast<unsigned long long>(percentile(latencies_us, 0.50)),
      static_cast<unsigned long long>(percentile(latencies_us, 0.95)),
      static_cast<unsigned long long>(percentile(latencies_us, 0.99)),
      static_cast<unsigned long long>(tail),
      static_cast<unsigned long long>(verified),
      static_cast<unsigned long long>(holes),
      static_cast<unsigned long long>(dup_positions),
      dense && dup_positions == 0 ? "true" : "false");
  return (dup_positions == 0 && inflight.empty()) ? 0 : 1;
}
