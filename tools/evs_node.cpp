// evs_node: one enriched-view-synchrony group member on real UDP sockets.
//
// The same core::EvsEndpoint the simulator spawns, hosted by the
// net::NetRuntime (epoll loop + UDP messenger) instead of sim::World.
// Start one process per site of a static peer config and they converge to
// a common view, totally order their multicasts, ride out kills and
// SIGSTOP partitions, and re-merge — the quickstart workload, outside the
// simulator.
//
//   ./evs_node --config node0.conf --multicast 100 --merge-all
//   ./evs_node --config node0.conf --object kv      # serve external clients
//
// `--object kv|lock|file` hosts a group object (MergeableKv, LockManager,
// ReplicatedFile) instead of a bare endpoint; combined with a `svc <self>
// <ip:port>` config line the node serves the external-client front door
// there (svc::SvcServer routing into the object's view-fenced
// svc_request). Plain mode with a svc line also serves the port, but
// every request is answered Unsupported — the bare endpoint hosts no
// object.
//
// A config with `group <id> <object>` lines hosts one group instance per
// line over the same socket/loop/timer wheel (NetRuntime::host_group) —
// the multi-group runtime. Log-object groups form the shards of the
// sharded shared log (src/log/): shard index = rank of the group id among
// the log groups, G = their count. The front door then routes through a
// log::ShardRouter: per-group for ordinary ops, key%G / position%G for
// log ops, fan-out for tail/seal. Multi-group mode is incompatible with
// --object and --multicast; view lines gain a group label:
//   view group=<g> epoch=<e> coordinator=<site> size=<n> members=...
//
// Config file format: see src/net/config.hpp. Every status line on stdout
// is machine-parseable (the loopback ctests grep them):
//   up site=<n> port=<p> universe=<k> incarnation=<i>
//   admin site=<n> port=<p>          (iff the config has `admin <self> ...`)
//   svc site=<n> port=<p>            (iff the config has `svc <self> ...`)
//   view epoch=<e> coordinator=<site> size=<n> members=<s0,s1,...>
//   deliver n=<total> from=<site>
//   sent n=<total>
//   summary sent=<n> delivered=<n> views=<n> epoch=<e> size=<n>
//
// EVS_TRACE_OUT=<dir> dumps the same three run artifacts a sim run dumps;
// replay the .trace.jsonl through ./tools/trace_check.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/group_object.hpp"
#include "evs/endpoint.hpp"
#include "log/log_shard.hpp"
#include "log/shard_router.hpp"
#include "net/config.hpp"
#include "net/runtime.hpp"
#include "objects/lock_manager.hpp"
#include "objects/mergeable_kv.hpp"
#include "objects/replicated_file.hpp"
#include "svc/server.hpp"

using namespace evs;

namespace {

net::EventLoop* g_loop = nullptr;

void on_signal(int) {
  if (g_loop != nullptr) g_loop->request_stop();
}

struct Options {
  std::string config_path;
  std::string trace_name;
  std::uint64_t duration_ms = 0;   // 0 = run until a signal arrives
  std::uint64_t multicast = 0;     // messages to send once the view is full
  std::uint64_t payload_bytes = 32;
  std::uint64_t send_interval_ms = 20;
  /// >0: rewrite the trace artifacts every N ms, so a SIGKILLed node still
  /// leaves a (slightly stale) trace behind for post-mortem checking.
  std::uint64_t trace_flush_ms = 0;
  bool merge_all = false;
  /// Hosted group object: "" / "none" (bare endpoint), "kv", "lock",
  /// "file".
  std::string object_kind;
  // Front-door cap overrides (0 = SvcServerConfig default); tests force
  // tiny caps to exercise shed-with-retry-after.
  std::uint64_t svc_max_conns = 0;
  std::uint64_t svc_inflight = 0;
  std::uint64_t svc_queue = 0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE [--duration-ms N] [--multicast N]\n"
               "          [--payload-bytes N] [--send-interval-ms N]\n"
               "          [--merge-all] [--trace-name NAME]\n"
               "          [--object none|kv|lock|file]\n"
               "          [--svc-max-conns N] [--svc-inflight N]\n"
               "          [--svc-queue N]\n",
               argv0);
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

std::string members_csv(const std::vector<ProcessId>& members) {
  std::string out;
  for (const ProcessId& m : members) {
    if (!out.empty()) out += ",";
    out += std::to_string(m.site.value);
  }
  return out;
}

/// Prints status lines and drives the multicast workload.
class NodeDriver : public core::EvsDelegate {
 public:
  NodeDriver(net::NetRuntime& rt, core::EvsEndpoint& ep, Options options)
      : rt_(rt), ep_(ep), options_(std::move(options)) {
    ep.set_evs_delegate(this);
  }

  void on_eview(const core::EView& eview) override {
    if (eview.ev_seq != 0) return;  // view changes only, not sv-set merges
    ++views_installed_;
    std::printf("view epoch=%llu coordinator=%u size=%zu members=%s\n",
                static_cast<unsigned long long>(eview.view.id.epoch),
                eview.view.id.coordinator.site.value, eview.view.size(),
                members_csv(eview.view.members).c_str());
    if (eview.view.size() == rt_.transport().config().peers.size())
      on_full_view();
  }

  void on_app_deliver(ProcessId sender, const Bytes&) override {
    ++delivered_;
    std::printf("deliver n=%llu from=%u\n",
                static_cast<unsigned long long>(delivered_),
                sender.site.value);
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t views_installed() const { return views_installed_; }

 private:
  void on_full_view() {
    if (options_.merge_all && !merge_requested_) {
      merge_requested_ = true;
      ep_.request_merge_all();
    }
    if (options_.multicast > 0 && !sending_) {
      sending_ = true;
      schedule_send();
    }
  }

  void schedule_send() {
    if (sent_ >= options_.multicast) return;
    rt_.loop().set_timer(options_.send_interval_ms * kMillisecond, [this]() {
      Bytes payload = to_bytes("m" + std::to_string(ep_.id().site.value) +
                               "-" + std::to_string(sent_));
      payload.resize(options_.payload_bytes, 0);
      ep_.app_multicast(std::move(payload));
      ++sent_;
      std::printf("sent n=%llu\n", static_cast<unsigned long long>(sent_));
      schedule_send();
    });
  }

  net::NetRuntime& rt_;
  core::EvsEndpoint& ep_;
  Options options_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t views_installed_ = 0;
  bool sending_ = false;
  bool merge_requested_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--config") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) options.config_path = v;
    } else if (arg == "--trace-name") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) options.trace_name = v;
    } else if (arg == "--duration-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.duration_ms);
    } else if (arg == "--multicast") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.multicast);
    } else if (arg == "--payload-bytes") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.payload_bytes);
    } else if (arg == "--send-interval-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.send_interval_ms);
    } else if (arg == "--trace-flush-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.trace_flush_ms);
    } else if (arg == "--object") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) options.object_kind = v;
    } else if (arg == "--svc-max-conns") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.svc_max_conns);
    } else if (arg == "--svc-inflight") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.svc_inflight);
    } else if (arg == "--svc-queue") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.svc_queue);
    } else if (arg == "--merge-all") {
      options.merge_all = true;
    } else {
      ok = false;
    }
    if (!ok) return usage(argv[0]);
  }
  if (options.config_path.empty()) return usage(argv[0]);

  net::NodeConfig config;
  std::string error;
  if (!net::load_node_config(options.config_path, config, error)) {
    std::fprintf(stderr, "%s: %s\n", options.config_path.c_str(),
                 error.c_str());
    return 2;
  }

  // Status lines must reach a parent's pipe promptly.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  net::NetRuntime rt(config);

  // Hosted node: a bare EvsEndpoint (driven by NodeDriver) or a group
  // object serving external clients. A group object *is* an EvsEndpoint,
  // but it owns the EvsDelegate slot itself, so view lines come from its
  // view-observer hook instead of a NodeDriver. With config `group`
  // lines, one instance per line is hosted instead (multi-group mode),
  // `endpoint` pointing at the lowest group's instance for the summary.
  std::unique_ptr<core::EvsEndpoint> plain;
  std::unique_ptr<app::GroupObjectBase> object;
  std::unique_ptr<NodeDriver> driver;
  core::EvsEndpoint* endpoint = nullptr;
  std::uint64_t object_views = 0;

  std::vector<std::unique_ptr<app::GroupObjectBase>> group_objects;
  log::ShardRouter router;
  const bool multi_group = !config.groups.empty();

  if (multi_group) {
    if (!options.object_kind.empty() || options.multicast > 0) {
      std::fprintf(stderr, "config `group` lines are incompatible with "
                           "--object and --multicast\n");
      return 2;
    }
    const std::vector<net::GroupSpec> shard_specs = config.log_shards();
    for (const net::GroupSpec& g : config.groups) {
      app::GroupObjectConfig oc;
      oc.endpoint = rt.endpoint_config();
      // Behind a durable store, objects survive their process: persist
      // state and rejoin via bounded-delta transfer after a restart.
      oc.persist_state = !config.store_dir.empty();
      oc.delta_transfer = oc.persist_state;
      std::unique_ptr<app::GroupObjectBase> obj;
      if (g.object == "kv") {
        obj = std::make_unique<objects::MergeableKv>(oc);
      } else if (g.object == "lock") {
        obj = std::make_unique<objects::LockManager>(oc);
      } else if (g.object == "file") {
        obj = std::make_unique<objects::ReplicatedFile>(
            objects::ReplicatedFileConfig{oc, {}, 0});
      } else if (g.object == "log") {
        std::uint32_t index = 0;
        for (std::size_t s = 0; s < shard_specs.size(); ++s)
          if (shard_specs[s].id == g.id)
            index = static_cast<std::uint32_t>(s);
        obj = std::make_unique<log::LogShard>(log::LogShardConfig{
            oc, index, static_cast<std::uint32_t>(shard_specs.size())});
        router.add_shard(index, *obj);
      } else {  // "none": groups exist to serve; a bare member adds none
        std::fprintf(stderr, "group %u: object 'none' is not hostable in "
                             "multi-group mode\n", g.id);
        return 2;
      }
      router.add_group(g.id, *obj);
      const GroupId gid = g.id;
      obj->set_view_observer([gid, &object_views](const core::EView& ev) {
        if (ev.ev_seq != 0) return;
        ++object_views;
        std::printf("view group=%u epoch=%llu coordinator=%u size=%zu "
                    "members=%s\n",
                    gid, static_cast<unsigned long long>(ev.view.id.epoch),
                    ev.view.id.coordinator.site.value, ev.view.size(),
                    members_csv(ev.view.members).c_str());
      });
      group_objects.push_back(std::move(obj));
      rt.host_group(g.id, *group_objects.back());
      if (endpoint == nullptr) endpoint = group_objects.front().get();
    }
    std::printf("groups n=%zu shards=%zu\n", group_objects.size(),
                router.shard_count());
  } else if (options.object_kind.empty() || options.object_kind == "none") {
    plain = std::make_unique<core::EvsEndpoint>(rt.endpoint_config());
    driver = std::make_unique<NodeDriver>(rt, *plain, options);
    endpoint = plain.get();
  } else {
    if (options.multicast > 0) {
      std::fprintf(stderr, "--multicast drives a bare endpoint; it cannot "
                           "be combined with --object\n");
      return 2;
    }
    app::GroupObjectConfig oc;
    oc.endpoint = rt.endpoint_config();
    oc.persist_state = !config.store_dir.empty();
    oc.delta_transfer = oc.persist_state;
    if (options.object_kind == "kv") {
      object = std::make_unique<objects::MergeableKv>(oc);
    } else if (options.object_kind == "lock") {
      object = std::make_unique<objects::LockManager>(oc);
    } else if (options.object_kind == "file") {
      object = std::make_unique<objects::ReplicatedFile>(
          objects::ReplicatedFileConfig{oc, {}, 0});
    } else {
      return usage(argv[0]);
    }
    endpoint = object.get();
    object->set_view_observer([&object_views](const core::EView& eview) {
      if (eview.ev_seq != 0) return;
      ++object_views;
      std::printf("view epoch=%llu coordinator=%u size=%zu members=%s\n",
                  static_cast<unsigned long long>(eview.view.id.epoch),
                  eview.view.id.coordinator.site.value, eview.view.size(),
                  members_csv(eview.view.members).c_str());
    });
  }
  if (!multi_group) rt.host(*endpoint);

  // The external-client front door, iff the config names a svc endpoint
  // for self. Owned here (not by NetRuntime) — the svc layer sits above
  // net, and routing needs the hosted node, which the tool owns too.
  std::unique_ptr<svc::SvcServer> svc_server;
  if (const auto svc_addr = config.self_svc_addr()) {
    svc::SvcServerConfig sc;
    if (options.svc_max_conns > 0) sc.max_connections = options.svc_max_conns;
    if (options.svc_inflight > 0)
      sc.max_inflight_per_conn = options.svc_inflight;
    if (options.svc_queue > 0) sc.max_pending = options.svc_queue;
    svc_server = std::make_unique<svc::SvcServer>(rt.loop(), svc_addr->ip,
                                                  svc_addr->port, sc);
    // Request lifecycle events (Admitted/Replied) land in the runtime's
    // shared ring under the hosted node's identity — the svc server has no
    // protocol identity of its own.
    svc_server->set_trace(&rt.trace_bus(), rt.self());
    if (multi_group) {
      svc_server->set_handler(
          [&router](runtime::SvcRequest req, runtime::SvcRespondFn respond) {
            router.route(std::move(req), std::move(respond));
          });
    } else {
      runtime::Node* node = endpoint;
      svc_server->set_handler(
          [node](runtime::SvcRequest req, runtime::SvcRespondFn respond) {
            node->svc_request(std::move(req), std::move(respond));
          });
    }
  }

  rt.set_metrics_exporter([&endpoint, &object, &svc_server, &config,
                           &group_objects](obs::MetricsRegistry& registry) {
    if (!group_objects.empty()) {
      // Aggregate view under "node" (the primary group) plus one labelled
      // slice per hosted group, mirroring the transport's per-group wire
      // counters.
      endpoint->export_metrics(registry, "node");
      for (std::size_t i = 0; i < group_objects.size(); ++i)
        group_objects[i]->export_metrics(
            registry, "node.g" + std::to_string(config.groups[i].id));
    } else if (object != nullptr) {
      object->export_metrics(registry, "node");
    } else {
      endpoint->export_metrics(registry, "node");
    }
    if (svc_server != nullptr) svc_server->export_metrics(registry, "svc");
    // Store counters come from NetRuntime::refresh_metrics (WAL or
    // MemoryStore variants) before this exporter runs.
  });

  g_loop = &rt.loop();
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("up site=%u port=%u universe=%zu incarnation=%u\n",
              config.self.value, rt.transport().bound_port(),
              config.peers.size(), rt.incarnation());
  if (rt.admin() != nullptr)
    std::printf("admin site=%u port=%u\n", config.self.value,
                rt.admin()->bound_port());
  if (svc_server != nullptr)
    std::printf("svc site=%u port=%u\n", config.self.value,
                svc_server->bound_port());

  const std::string trace_name =
      options.trace_name.empty()
          ? "evs_node-site" + std::to_string(config.self.value)
          : options.trace_name;
  // Self-rearming flush timer; the function object lives in this frame
  // (a shared_ptr capturing itself would be a reference cycle).
  std::function<void()> trace_flush;
  if (options.trace_flush_ms > 0) {
    const SimDuration interval = options.trace_flush_ms * kMillisecond;
    trace_flush = [&rt, &trace_name, &trace_flush, interval]() {
      rt.dump_trace(trace_name);
      rt.loop().set_timer(interval, trace_flush);
    };
    rt.loop().set_timer(interval, trace_flush);
  }

  if (options.duration_ms > 0) {
    rt.loop().set_timer(options.duration_ms * kMillisecond,
                        [&rt]() { rt.loop().stop(); });
  }
  rt.run();

  rt.dump_trace(trace_name);  // refreshes every metrics exporter first

  const gms::View& view = endpoint->view();
  const std::uint64_t views =
      driver != nullptr ? driver->views_installed() : object_views;
  std::printf("summary sent=%llu delivered=%llu views=%llu epoch=%llu "
              "size=%zu\n",
              static_cast<unsigned long long>(driver ? driver->sent() : 0),
              static_cast<unsigned long long>(driver ? driver->delivered() : 0),
              static_cast<unsigned long long>(views),
              static_cast<unsigned long long>(view.id.epoch), view.size());
  return 0;
}
