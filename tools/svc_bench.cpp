// svc_bench: open-loop load generator for the client front door.
//
// Opens N persistent TCP connections to one node's svc endpoint and sends
// requests at a fixed aggregate rate, round-robin across connections,
// without waiting for responses (open loop — queueing delay shows up as
// latency instead of silently throttling the offered load). Every response
// is matched by request_id and bucketed by status; the summary is one JSON
// object on stdout:
//
//   {"conns":1100,"attempted":50000,"completed":49900,"ok":48000,
//    "conflict":0,"stale_epoch":0,"unavailable":1900,"unsupported":0,
//    "conns_refused":76,"conns_closed":0,"lost":100,
//    "duration_ms":5012,"ops_per_sec":9958.1,
//    "p50_us":412,"p95_us":1871,"p99_us":3544}
//
// "unavailable" counts shed responses (the server's admission control
// answering Unavailable{retry_after_ms}); "conns_refused" counts connects
// the listener shed at its connection cap; "lost" counts requests that
// never got any response before the drain deadline (should be 0 — the
// server promises exactly one typed response per request).
//
//   ./svc_bench --addr 127.0.0.1:9200 --conns 64 --rate 5000 \
//               --duration-ms 5000 --op mix
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/protocol.hpp"
#include "svc_client.hpp"

using namespace evs;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t conns = 16;
  std::uint64_t rate = 1000;         // aggregate requests/second
  std::uint64_t duration_ms = 5000;  // send window
  std::uint64_t drain_ms = 2000;     // post-window wait for stragglers
  std::string op = "mix";            // get | put | mix
  std::uint64_t view_epoch = 0;      // 0 = wildcard (never fenced)
  std::uint64_t key_space = 64;
  std::uint64_t value_bytes = 64;
  /// Learn the installed epoch through the retrying SDK (one fenced Get,
  /// riding out InvalidEpoch) and stamp it into every open-loop request —
  /// the bench then measures the fenced path instead of the wildcard.
  bool fence = false;
  /// Stamp every Nth request with the sampled trace flag (trace id = the
  /// request id), so the servers record its whole lifecycle and
  /// `trace_check --request <id>` can assemble the span tree afterwards.
  /// 0 = never sample (the default: zero tracing work server-side).
  std::uint64_t sample_every = 0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --addr IP:PORT [--conns N] [--rate OPS_PER_SEC]\n"
               "          [--duration-ms N] [--drain-ms N] [--op get|put|mix]\n"
               "          [--view-epoch N] [--key-space N] [--value-bytes N]\n"
               "          [--fence] [--sample-every N]\n",
               argv0);
  return 2;
}

std::uint64_t now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000;
}

struct Conn {
  int fd = -1;
  bool connecting = false;
  std::string in;           // unparsed response bytes
  std::size_t in_off = 0;   // parse offset into `in`
  std::string out;          // request bytes awaiting the socket
  std::size_t sent = 0;     // prefix of `out` already written
};

struct Stats {
  std::uint64_t attempted = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t conflict = 0;
  std::uint64_t stale_epoch = 0;
  std::uint64_t unavailable = 0;
  std::uint64_t unsupported = 0;
  std::uint64_t not_leader = 0;
  std::uint64_t conns_refused = 0;  // connect failed / closed before use
  std::uint64_t conns_closed = 0;   // closed mid-run with traffic in flight
  std::uint64_t sampled = 0;        // requests stamped with a trace id
  std::uint64_t last_trace_id = 0;  // the final sampled request's trace id
  std::vector<std::uint64_t> latencies_us;
};

std::uint64_t percentile(std::vector<std::uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

int open_conn(const Options& options, Conn& conn) {
  conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (conn.fd < 0) return -1;
  int one = 1;
  ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  ::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr);
  const int rc = ::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  conn.connecting = rc < 0 && errno == EINPROGRESS;
  if (rc < 0 && !conn.connecting) {
    ::close(conn.fd);
    conn.fd = -1;
    return -1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  auto parse_u64 = [](const char* text, std::uint64_t& out) {
    char* end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end != text && *end == '\0';
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fence") {
      options.fence = true;
      continue;
    }
    const char* v = (i + 1 < argc) ? argv[i + 1] : nullptr;
    ++i;
    std::uint64_t n = 0;
    if (v == nullptr) return usage(argv[0]);
    if (arg == "--addr") {
      const std::string addr = v;
      const auto colon = addr.rfind(':');
      if (colon == std::string::npos || !parse_u64(addr.c_str() + colon + 1, n))
        return usage(argv[0]);
      options.host = addr.substr(0, colon);
      options.port = static_cast<std::uint16_t>(n);
    } else if (arg == "--conns" && parse_u64(v, n)) {
      options.conns = n;
    } else if (arg == "--rate" && parse_u64(v, n)) {
      options.rate = n;
    } else if (arg == "--duration-ms" && parse_u64(v, n)) {
      options.duration_ms = n;
    } else if (arg == "--drain-ms" && parse_u64(v, n)) {
      options.drain_ms = n;
    } else if (arg == "--op") {
      options.op = v;
    } else if (arg == "--view-epoch" && parse_u64(v, n)) {
      options.view_epoch = n;
    } else if (arg == "--key-space" && parse_u64(v, n)) {
      options.key_space = std::max<std::uint64_t>(1, n);
    } else if (arg == "--value-bytes" && parse_u64(v, n)) {
      options.value_bytes = n;
    } else if (arg == "--sample-every" && parse_u64(v, n)) {
      options.sample_every = n;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.port == 0 || options.conns == 0 || options.rate == 0)
    return usage(argv[0]);
  if (options.op != "get" && options.op != "put" && options.op != "mix")
    return usage(argv[0]);

  if (options.fence) {
    tools::SvcClient client(tools::SvcAddr{options.host, options.port});
    runtime::SvcRequest probe;
    probe.op = runtime::SvcOp::Get;
    probe.key = "bench-fence";
    if (client.call(probe).status != runtime::SvcStatus::Ok) {
      std::fprintf(stderr, "--fence: could not learn the view epoch\n");
      return 1;
    }
    options.view_epoch = client.fenced_epoch();
  }

  Stats stats;
  std::vector<Conn> conns(options.conns);
  for (Conn& conn : conns) {
    if (open_conn(options, conn) < 0) ++stats.conns_refused;
  }

  // request_id -> send time; ids are globally unique so responses can be
  // matched regardless of which connection carried them.
  std::unordered_map<std::uint64_t, std::uint64_t> inflight;
  std::uint64_t next_id = 1;
  const std::string value(options.value_bytes, 'v');

  const std::uint64_t start = now_us();
  const std::uint64_t send_deadline = start + options.duration_ms * 1'000;
  const std::uint64_t drain_deadline =
      send_deadline + options.drain_ms * 1'000;
  // Open loop: request k is due at start + k/rate, regardless of progress.
  const double interval_us = 1e6 / static_cast<double>(options.rate);
  std::uint64_t due = 0;  // requests that should have been sent by `now`
  std::size_t rr = 0;     // round-robin cursor

  std::vector<pollfd> pfds;
  while (true) {
    const std::uint64_t now = now_us();
    if (now >= drain_deadline) break;
    if (inflight.empty() && now >= send_deadline) break;

    // Enqueue every request that is due by now.
    if (now < send_deadline) {
      due = static_cast<std::uint64_t>(
          static_cast<double>(now - start) / interval_us);
      while (stats.attempted < due) {
        // Find a live connection, starting at the cursor.
        std::size_t tries = 0;
        while (tries < conns.size() && conns[rr].fd < 0) {
          rr = (rr + 1) % conns.size();
          ++tries;
        }
        if (tries == conns.size()) break;  // every connection is gone
        Conn& conn = conns[rr];
        rr = (rr + 1) % conns.size();

        runtime::SvcRequest req;
        const bool do_put =
            options.op == "put" || (options.op == "mix" && next_id % 2 == 0);
        req.op = do_put ? runtime::SvcOp::Put : runtime::SvcOp::Get;
        req.view_epoch = options.view_epoch;
        req.key = "bench-k" + std::to_string(next_id % options.key_space);
        if (do_put) req.value = value;
        if (options.sample_every != 0 &&
            next_id % options.sample_every == 0) {
          req.trace_id = next_id;  // request ids start at 1: never zero
          req.sampled = true;
          ++stats.sampled;
          stats.last_trace_id = next_id;
        }
        svc::append_frame(conn.out, svc::encode_request(next_id, req));
        inflight.emplace(next_id, now);
        ++next_id;
        ++stats.attempted;
      }
    }

    pfds.clear();
    for (const Conn& conn : conns) {
      if (conn.fd < 0) continue;
      short events = POLLIN;
      if (conn.connecting || conn.sent < conn.out.size()) events |= POLLOUT;
      pfds.push_back(pollfd{conn.fd, events, 0});
    }
    if (pfds.empty()) break;

    // Sleep until the next request is due (or a cap, to notice deadlines).
    std::uint64_t wake = now < send_deadline
                             ? start + static_cast<std::uint64_t>(
                                           static_cast<double>(due + 1) *
                                           interval_us)
                             : now + 50'000;
    wake = std::min(wake, drain_deadline);
    const int timeout_ms =
        wake > now ? static_cast<int>((wake - now) / 1'000) : 0;
    ::poll(pfds.data(), pfds.size(), std::max(timeout_ms, 0));

    std::size_t pi = 0;
    for (Conn& conn : conns) {
      if (conn.fd < 0) continue;
      const pollfd& pfd = pfds[pi++];
      bool dead = (pfd.revents & (POLLERR | POLLHUP)) != 0;
      if (!dead && (pfd.revents & POLLOUT) != 0) {
        if (conn.connecting) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            dead = true;
          } else {
            conn.connecting = false;
          }
        }
        while (!dead && conn.sent < conn.out.size()) {
          const ssize_t n = ::send(conn.fd, conn.out.data() + conn.sent,
                                   conn.out.size() - conn.sent, MSG_NOSIGNAL);
          if (n > 0) {
            conn.sent += static_cast<std::size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            dead = true;
          }
        }
        if (conn.sent == conn.out.size()) {
          conn.out.clear();
          conn.sent = 0;
        }
      }
      if (!dead && (pfd.revents & POLLIN) != 0) {
        char buf[16 * 1024];
        while (true) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            dead = true;  // orderly close or error
            break;
          }
        }
        Bytes body;
        while (true) {
          const svc::FrameStatus st =
              svc::next_frame(conn.in, conn.in_off, body);
          if (st == svc::FrameStatus::NeedMore) break;
          if (st == svc::FrameStatus::Malformed) {
            dead = true;
            break;
          }
          try {
            const svc::WireResponse wire = svc::decode_response(body);
            const auto it = inflight.find(wire.request_id);
            if (it != inflight.end()) {
              stats.latencies_us.push_back(now_us() - it->second);
              inflight.erase(it);
              ++stats.completed;
              switch (wire.resp.status) {
                case runtime::SvcStatus::Ok: ++stats.ok; break;
                case runtime::SvcStatus::Conflict: ++stats.conflict; break;
                case runtime::SvcStatus::InvalidEpoch:
                  ++stats.stale_epoch;
                  break;
                case runtime::SvcStatus::Unavailable:
                  ++stats.unavailable;
                  break;
                case runtime::SvcStatus::Unsupported:
                  ++stats.unsupported;
                  break;
                case runtime::SvcStatus::NotLeader:
                  ++stats.not_leader;
                  break;
              }
            }
          } catch (const DecodeError&) {
            dead = true;
            break;
          }
        }
        if (conn.in_off > 0) {
          conn.in.erase(0, conn.in_off);
          conn.in_off = 0;
        }
      }
      if (dead) {
        ::close(conn.fd);
        conn.fd = -1;
        if (conn.connecting) {
          ++stats.conns_refused;  // never got to send anything
        } else {
          ++stats.conns_closed;
        }
      }
    }
  }

  for (Conn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }

  const std::uint64_t wall_us = std::max<std::uint64_t>(1, now_us() - start);
  std::sort(stats.latencies_us.begin(), stats.latencies_us.end());
  const double ops_per_sec = static_cast<double>(stats.completed) * 1e6 /
                             static_cast<double>(wall_us);
  std::printf(
      "{\"conns\":%zu,\"attempted\":%llu,\"completed\":%llu,"
      "\"ok\":%llu,\"conflict\":%llu,\"stale_epoch\":%llu,"
      "\"unavailable\":%llu,\"unsupported\":%llu,\"not_leader\":%llu,"
      "\"conns_refused\":%llu,\"conns_closed\":%llu,\"lost\":%zu,"
      "\"sampled\":%llu,\"last_trace_id\":%llu,"
      "\"duration_ms\":%llu,\"ops_per_sec\":%.1f,"
      "\"p50_us\":%llu,\"p95_us\":%llu,\"p99_us\":%llu}\n",
      options.conns, static_cast<unsigned long long>(stats.attempted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.ok),
      static_cast<unsigned long long>(stats.conflict),
      static_cast<unsigned long long>(stats.stale_epoch),
      static_cast<unsigned long long>(stats.unavailable),
      static_cast<unsigned long long>(stats.unsupported),
      static_cast<unsigned long long>(stats.not_leader),
      static_cast<unsigned long long>(stats.conns_refused),
      static_cast<unsigned long long>(stats.conns_closed), inflight.size(),
      static_cast<unsigned long long>(stats.sampled),
      static_cast<unsigned long long>(stats.last_trace_id),
      static_cast<unsigned long long>(wall_us / 1'000), ops_per_sec,
      static_cast<unsigned long long>(percentile(stats.latencies_us, 0.50)),
      static_cast<unsigned long long>(percentile(stats.latencies_us, 0.95)),
      static_cast<unsigned long long>(percentile(stats.latencies_us, 0.99)));
  // Nonzero exit when the server broke its exactly-one-response promise.
  return inflight.empty() ? 0 : 1;
}
