// trace_check: replay recorded traces through the RunChecker.
//
// Usage: trace_check [--merge] [--group N] [--spans-json FILE]
//                    [--spans-chrome FILE] [--request ID [--request-json FILE]]
//                    <run.trace.jsonl>...
//
// Reads each JSONL trace produced by obs::TraceBus::write_jsonl (e.g. via
// EVS_TRACE_OUT), validates it against the view-synchrony properties
// (P2.1-P2.3), the enriched-view structure invariant and the Figure-1 mode
// machine, and prints every violation. Exit status: 0 when every file is
// clean, 1 on any violation or unreadable file. CI runs the quickstart
// example under EVS_TRACE_OUT and pipes the result through this tool.
//
// --merge treats all files as one run and checks their union. A sim run
// records every process in one World bus, so one file is the whole run;
// a real-socket run (tools/evs_node) dumps one trace per process, and the
// cross-process properties — P2.1 agreement, P2.3 integrity — only hold
// on the union of the group's traces.
//
// Multi-group traces (events carrying a "g" label — one process hosting
// several group instances) are split by group and each group's slice is
// checked on its own: the view-synchrony properties hold per group
// instance, and a union across groups would see interleaved unrelated
// views as violations. --group N restricts checking to one group.
//
// --spans-json / --spans-chrome run the cross-process span correlation
// (obs/spans.hpp) over the union of all input files: clock-offset
// estimation, per-channel latency histograms and view-change phase
// breakdowns as JSON, or Chrome-trace flow events for Perfetto. Either
// flag also prints the per-round phase summary to stdout.
//
// --request ID assembles the causal span tree of one traced client
// request (the 64-bit trace id the svc client propagated) from the union
// of all input files: every Request* lifecycle hop, ordered on the
// corrected clock, validated for per-node phase monotonicity on raw
// clocks. Prints the tree to stdout; --request-json FILE also writes it
// as one JSON object. Exits 1 when the id is absent or the phase order is
// violated.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/check.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"

namespace {

bool check_one(const std::string& label,
               const std::vector<evs::obs::TraceEvent>& events,
               std::size_t skipped) {
  const std::vector<evs::obs::Violation> violations =
      evs::obs::RunChecker::check(events);
  std::printf("%s: %zu events (%zu unparseable lines skipped), %zu violations\n",
              label.c_str(), events.size(), skipped, violations.size());
  for (const evs::obs::Violation& v : violations)
    std::printf("  %s\n", v.str().c_str());
  return violations.empty();
}

/// Splits by group label and checks each group's slice independently; a
/// trace with one group (the common case) keeps its unsuffixed label.
bool check_and_report(const char* label,
                      const std::vector<evs::obs::TraceEvent>& events,
                      std::size_t skipped) {
  std::vector<evs::GroupId> groups;
  for (const evs::obs::TraceEvent& e : events)
    if (std::find(groups.begin(), groups.end(), e.group) == groups.end())
      groups.push_back(e.group);
  std::sort(groups.begin(), groups.end());
  if (groups.size() <= 1) return check_one(label, events, skipped);

  bool ok = true;
  for (const evs::GroupId g : groups) {
    std::vector<evs::obs::TraceEvent> slice;
    for (const evs::obs::TraceEvent& e : events)
      if (e.group == g) slice.push_back(e);
    // Per-file parse skips are reported once, against the first slice.
    const std::string sub = std::string(label) + "[g=" + std::to_string(g) + "]";
    if (!check_one(sub, slice, g == groups.front() ? skipped : 0)) ok = false;
  }
  return ok;
}

bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& writer) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "%s: cannot write\n", path.c_str());
    return false;
  }
  writer(os);
  return os.good();
}

}  // namespace

int main(int argc, char** argv) {
  bool merge = false;
  std::optional<evs::GroupId> only_group;
  std::string spans_json_path;
  std::string spans_chrome_path;
  std::optional<std::uint64_t> request_id;
  std::string request_json_path;
  std::vector<const char*> files;
  const auto usage = [argv]() {
    std::fprintf(stderr,
                 "usage: %s [--merge] [--group N] [--spans-json FILE] "
                 "[--spans-chrome FILE] [--request ID [--request-json FILE]] "
                 "<run.trace.jsonl>...\n",
                 argv[0]);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--merge") {
      merge = true;
    } else if (arg == "--group" && i + 1 < argc) {
      only_group = static_cast<evs::GroupId>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--spans-json" && i + 1 < argc) {
      spans_json_path = argv[++i];
    } else if (arg == "--spans-chrome" && i + 1 < argc) {
      spans_chrome_path = argv[++i];
    } else if (arg == "--request" && i + 1 < argc) {
      request_id = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--request-json" && i + 1 < argc) {
      request_json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) return usage();
  if (request_id && *request_id == 0) {
    std::fprintf(stderr, "--request: trace id must be nonzero\n");
    return 2;
  }
  if (!request_json_path.empty() && !request_id) {
    std::fprintf(stderr, "--request-json requires --request\n");
    return 2;
  }
  const bool want_spans = !spans_json_path.empty() ||
                          !spans_chrome_path.empty() || request_id.has_value();

  bool ok = true;
  std::vector<evs::obs::TraceEvent> merged;
  std::size_t merged_skipped = 0;
  for (const char* path : files) {
    std::ifstream is(path);
    if (!is) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      ok = false;
      continue;
    }
    std::size_t skipped = 0;
    std::vector<evs::obs::TraceEvent> events =
        evs::obs::read_jsonl(is, &skipped);
    if (only_group) {
      std::erase_if(events, [&](const evs::obs::TraceEvent& e) {
        return e.group != *only_group;
      });
    }
    if (merge || want_spans) {
      merged.insert(merged.end(), events.begin(), events.end());
      merged_skipped += skipped;
    }
    if (!merge && !check_and_report(path, events, skipped)) ok = false;
  }
  if (merge && !check_and_report("<merged>", merged, merged_skipped)) ok = false;

  if (want_spans) {
    const evs::obs::SpanAnalysis analysis = evs::obs::correlate_spans(merged);
    std::printf(
        "spans: %zu sends, %llu matched deliveries, %llu unmatched sends, "
        "%llu orphan deliveries, %zu channels, %zu view changes\n",
        analysis.spans.size(),
        static_cast<unsigned long long>(analysis.matched_deliveries),
        static_cast<unsigned long long>(analysis.unmatched_sends),
        static_cast<unsigned long long>(analysis.unmatched_deliveries),
        analysis.channels.size(), analysis.view_changes.size());
    for (const evs::obs::PhaseBreakdown& round : analysis.view_changes)
      std::printf("  %s\n", round.str().c_str());
    if (!spans_json_path.empty() &&
        !write_file(spans_json_path, [&](std::ostream& os) {
          evs::obs::write_spans_json(os, analysis);
        }))
      ok = false;
    if (!spans_chrome_path.empty() &&
        !write_file(spans_chrome_path, [&](std::ostream& os) {
          evs::obs::write_chrome_flows(os, analysis);
        }))
      ok = false;

    if (request_id) {
      const evs::obs::RequestTree tree =
          evs::obs::assemble_request_tree(merged, *request_id, analysis.clocks);
      std::printf("request %llu: %zu hops across %zu processes%s\n",
                  static_cast<unsigned long long>(tree.trace_id),
                  tree.hops.size(), tree.processes.size(),
                  !tree.found      ? " (NOT FOUND)"
                  : !tree.monotonic ? " (PHASE ORDER VIOLATED)"
                                    : "");
      for (const evs::obs::RequestHop& hop : tree.hops)
        std::printf("  %12.1fus  %s g=%u %s value=%llu aux=%llu\n",
                    hop.time_corrected,
                    (std::to_string(hop.proc.site.value) + ":" +
                     std::to_string(hop.proc.incarnation))
                        .c_str(),
                    hop.group, evs::obs::to_string(hop.kind),
                    static_cast<unsigned long long>(hop.value),
                    static_cast<unsigned long long>(hop.aux));
      for (const std::string& err : tree.errors)
        std::printf("  ERROR: %s\n", err.c_str());
      if (!request_json_path.empty() &&
          !write_file(request_json_path, [&](std::ostream& os) {
            evs::obs::write_request_tree_json(os, tree);
          }))
        ok = false;
      if (!tree.found || !tree.monotonic) ok = false;
    }
  }
  return ok ? 0 : 1;
}
