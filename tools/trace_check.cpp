// trace_check: replay recorded traces through the RunChecker.
//
// Usage: trace_check [--merge] <run.trace.jsonl>...
//
// Reads each JSONL trace produced by obs::TraceBus::write_jsonl (e.g. via
// EVS_TRACE_OUT), validates it against the view-synchrony properties
// (P2.1-P2.3), the enriched-view structure invariant and the Figure-1 mode
// machine, and prints every violation. Exit status: 0 when every file is
// clean, 1 on any violation or unreadable file. CI runs the quickstart
// example under EVS_TRACE_OUT and pipes the result through this tool.
//
// --merge treats all files as one run and checks their union. A sim run
// records every process in one World bus, so one file is the whole run;
// a real-socket run (tools/evs_node) dumps one trace per process, and the
// cross-process properties — P2.1 agreement, P2.3 integrity — only hold
// on the union of the group's traces.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "obs/check.hpp"
#include "obs/trace.hpp"

namespace {

bool check_and_report(const char* label,
                      const std::vector<evs::obs::TraceEvent>& events,
                      std::size_t skipped) {
  const std::vector<evs::obs::Violation> violations =
      evs::obs::RunChecker::check(events);
  std::printf("%s: %zu events (%zu unparseable lines skipped), %zu violations\n",
              label, events.size(), skipped, violations.size());
  for (const evs::obs::Violation& v : violations)
    std::printf("  %s\n", v.str().c_str());
  return violations.empty();
}

}  // namespace

int main(int argc, char** argv) {
  bool merge = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--merge") == 0) {
    merge = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: %s [--merge] <run.trace.jsonl>...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  std::vector<evs::obs::TraceEvent> merged;
  std::size_t merged_skipped = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream is(argv[i]);
    if (!is) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ok = false;
      continue;
    }
    std::size_t skipped = 0;
    std::vector<evs::obs::TraceEvent> events =
        evs::obs::read_jsonl(is, &skipped);
    if (merge) {
      merged.insert(merged.end(), events.begin(), events.end());
      merged_skipped += skipped;
    } else if (!check_and_report(argv[i], events, skipped)) {
      ok = false;
    }
  }
  if (merge && !check_and_report("<merged>", merged, merged_skipped)) ok = false;
  return ok ? 0 : 1;
}
