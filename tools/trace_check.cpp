// trace_check: replay recorded traces through the RunChecker.
//
// Usage: trace_check <run.trace.jsonl>...
//
// Reads each JSONL trace produced by obs::TraceBus::write_jsonl (e.g. via
// EVS_TRACE_OUT), validates it against the view-synchrony properties
// (P2.1-P2.3), the enriched-view structure invariant and the Figure-1 mode
// machine, and prints every violation. Exit status: 0 when every file is
// clean, 1 on any violation or unreadable file. CI runs the quickstart
// example under EVS_TRACE_OUT and pipes the result through this tool.
#include <cstdio>
#include <fstream>
#include <vector>

#include "obs/check.hpp"
#include "obs/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <run.trace.jsonl>...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream is(argv[i]);
    if (!is) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ok = false;
      continue;
    }
    std::size_t skipped = 0;
    const std::vector<evs::obs::TraceEvent> events =
        evs::obs::read_jsonl(is, &skipped);
    const std::vector<evs::obs::Violation> violations =
        evs::obs::RunChecker::check(events);
    std::printf("%s: %zu events (%zu unparseable lines skipped), %zu violations\n",
                argv[i], events.size(), skipped, violations.size());
    for (const evs::obs::Violation& v : violations)
      std::printf("  %s\n", v.str().c_str());
    if (!violations.empty()) ok = false;
  }
  return ok ? 0 : 1;
}
