// Shared HTTP/1.0 client for the fleet tools (evs_top, evs_ctl).
//
// Talks to the per-node admin plane (net/admin.hpp): short-lived
// connection-per-request exchanges where the server closes the socket to
// delimit the body. The one interesting feature is batching:
// http_fetch_all() drives every request concurrently — one non-blocking
// socket each, a single poll() loop, one shared wall-clock deadline — so
// scraping an N-node fleet costs one slowest-node round trip instead of
// the sum of N of them, and one stopped node (SIGSTOP'd in the partition
// tests) cannot stretch a scrape beyond the deadline.
//
// Two knobs keep that batching fleet-scale (HttpOptions): a bound on
// simultaneously open connections (so scraping hundreds of nodes does not
// exhaust fds or SYN the whole fleet at once — further requests start as
// slots free up, all still under the one deadline) and a connect-failure
// retry with jittered backoff (one refused/unreachable connect — a node
// mid-restart — gets a second chance instead of a hole in the scrape;
// jitter keeps N retries from re-converging on the same instant).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/config.hpp"

namespace evs::tools {

struct HttpRequest {
  net::PeerAddr addr;
  std::string method = "GET";
  std::string path = "/";
  /// Extra raw header lines, each terminated "\r\n" (e.g. the admin
  /// plane's "X-Admin-Token: <secret>\r\n").
  std::string headers;
  /// Request body; a Content-Length header is added whenever the method
  /// is not GET.
  std::string body;
};

struct HttpResponse {
  /// True when the exchange completed and the status line parsed; false
  /// on connect failure, timeout, or garbage (status/body are then 0/"").
  bool ok = false;
  int status = 0;
  std::string body;
  /// Connect attempts made (1 normally; 2 after one connect retry; 0 only
  /// when the deadline expired before the request could start).
  int attempts = 0;

  bool success() const { return ok && status >= 200 && status < 300; }
};

struct HttpOptions {
  /// Most connections open at once; requests beyond the cap wait for a
  /// slot (FIFO by index) under the same shared deadline.
  std::size_t max_in_flight = 64;
  /// Extra connect attempts after a refused/unreachable connect. Failures
  /// after the connection is up (reset mid-exchange, garbage) and
  /// deadline expiry are not retried.
  int connect_retries = 1;
  /// Base backoff before a connect retry; the actual wait is jittered
  /// uniformly in [base/2, 3*base/2) so a fleet of retries spreads out.
  std::uint64_t retry_backoff_ms = 20;
};

/// Runs all requests concurrently under one shared deadline; the result
/// vector is index-aligned with `requests`.
std::vector<HttpResponse> http_fetch_all(
    const std::vector<HttpRequest>& requests, std::uint64_t timeout_ms,
    const HttpOptions& options = {});

/// One GET; returns the body on a 200, nullopt on any failure.
std::optional<std::string> http_get(const net::PeerAddr& addr,
                                    const std::string& path,
                                    std::uint64_t timeout_ms);

/// One POST carrying the admin token; returns the full response (check
/// success()/status/body).
HttpResponse http_post(const net::PeerAddr& addr, const std::string& path,
                       const std::string& token, std::uint64_t timeout_ms);

}  // namespace evs::tools
