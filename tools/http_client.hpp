// Shared HTTP/1.0 client for the fleet tools (evs_top, evs_ctl).
//
// Talks to the per-node admin plane (net/admin.hpp): short-lived
// connection-per-request exchanges where the server closes the socket to
// delimit the body. The one interesting feature is batching:
// http_fetch_all() drives every request concurrently — one non-blocking
// socket each, a single poll() loop, one shared wall-clock deadline — so
// scraping an N-node fleet costs one slowest-node round trip instead of
// the sum of N of them, and one stopped node (SIGSTOP'd in the partition
// tests) cannot stretch a scrape beyond the deadline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/config.hpp"

namespace evs::tools {

struct HttpRequest {
  net::PeerAddr addr;
  std::string method = "GET";
  std::string path = "/";
  /// Extra raw header lines, each terminated "\r\n" (e.g. the admin
  /// plane's "X-Admin-Token: <secret>\r\n").
  std::string headers;
  /// Request body; a Content-Length header is added whenever the method
  /// is not GET.
  std::string body;
};

struct HttpResponse {
  /// True when the exchange completed and the status line parsed; false
  /// on connect failure, timeout, or garbage (status/body are then 0/"").
  bool ok = false;
  int status = 0;
  std::string body;

  bool success() const { return ok && status >= 200 && status < 300; }
};

/// Runs all requests concurrently under one shared deadline; the result
/// vector is index-aligned with `requests`.
std::vector<HttpResponse> http_fetch_all(
    const std::vector<HttpRequest>& requests, std::uint64_t timeout_ms);

/// One GET; returns the body on a 200, nullopt on any failure.
std::optional<std::string> http_get(const net::PeerAddr& addr,
                                    const std::string& path,
                                    std::uint64_t timeout_ms);

/// One POST carrying the admin token; returns the full response (check
/// success()/status/body).
HttpResponse http_post(const net::PeerAddr& addr, const std::string& path,
                       const std::string& token, std::uint64_t timeout_ms);

}  // namespace evs::tools
