// evs_top: fleet-wide live status, one row per hosted group instance.
//
// Polls the admin endpoint (net/admin.hpp) of every `admin` line in a
// node config — any node's config names the whole fleet — and renders a
// refreshing table:
//
//   site  addr             grp view     mode   ev  mbrs sv/set blk   deliv  msg/s    rx  drops lag hlth
//   0     127.0.0.1:9100   -   2@p0.1   normal 1   3    1/1    -     120    50.0   840      0   0 ok
//
// Columns: the node's installed view id, its enriched-view mode (normal =
// degenerate structure, split = subview structure present), e-view seq,
// member count, subview/sv-set counts, blocked flag, app messages
// delivered, delivery rate since the previous poll, wire frames received
// (per group on multi-group hosts), the sum of transport drop counters
// (from /metrics), peer lag (max fleet view epoch minus this node's
// epoch), and the node's live-oracle health (/status "health": ok until
// the online checker observes a safety violation). Unreachable nodes stay
// in the table as "down".
//
// A process hosting several group instances (config `group` lines)
// expands to one row per group — a 4-shard log host renders 4 rows, each
// with its own view/mode/delivery columns (from the per-group "groups"
// array of /status) and its own wire-frame slice (from the transport's
// transport.group<id>.* counters).
//
// Every poll round issues all per-node GETs as one concurrent batch under
// a single deadline (tools/http_client.hpp), so --timeout-ms bounds the
// whole scrape, not each node in turn.
//
//   ./evs_top --config node0.conf                 # refresh every second
//   ./evs_top --config node0.conf --once          # one table, no refresh
//   ./evs_top --config node0.conf --once --expect-converged
//
// --expect-converged (for scripts and CI) exits nonzero unless every
// configured admin endpoint responded and all nodes report the identical
// view id and mode — the one-shot "is the fleet healthy" probe.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "http_client.hpp"
#include "net/config.hpp"

using namespace evs;

namespace {

struct Options {
  std::string config_path;
  std::uint64_t interval_ms = 1000;
  std::uint64_t timeout_ms = 500;
  std::uint64_t count = 0;  // 0 = forever (or 1 with --once)
  bool once = false;
  bool expect_converged = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE [--interval-ms N] [--timeout-ms N]\n"
               "          [--count N] [--once] [--expect-converged]\n",
               argv0);
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

std::uint64_t wall_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000;
}

// ----- flat JSON field extraction ------------------------------------
// The admin plane's JSON is machine-generated with known key names; a
// full parser would be dead weight. These helpers find `"key":` and read
// the scalar after it.

std::optional<std::uint64_t> json_u64(const std::string& body,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= body.size() || body[i] < '0' || body[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (i < body.size() && body[i] >= '0' && body[i] <= '9')
    value = value * 10 + static_cast<std::uint64_t>(body[i++] - '0');
  return value;
}

std::optional<std::string> json_str(const std::string& body,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return body.substr(start, end - start);
}

std::optional<bool> json_bool(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return body.compare(at + needle.size(), 4, "true") == 0;
}

/// Counts `{"id":` occurrences in body[from, to) — the number of subview
/// or sv-set objects in that array section.
std::size_t count_objects(const std::string& body, std::size_t from,
                          std::size_t to) {
  std::size_t n = 0;
  std::size_t at = from;
  while ((at = body.find("{\"id\":", at)) != std::string::npos && at < to) {
    ++n;
    at += 6;
  }
  return n;
}

/// The per-node-object columns, parsed from one admin_status_json() blob
/// (either the top-level "node" or one entry of the "groups" array).
struct NodeRow {
  std::string view;
  std::uint64_t epoch = 0;
  std::string mode;
  std::uint64_t ev_seq = 0;
  std::size_t members = 0;
  std::size_t subviews = 0;
  std::size_t svsets = 0;
  bool blocked = false;
  std::uint64_t app_delivered = 0;
  std::uint64_t data_delivered = 0;
};

/// One hosted group instance of a multi-group process.
struct GroupSample {
  std::uint32_t id = 0;
  bool alive = false;
  NodeRow row;
  std::uint64_t frames_rx = 0;  // transport.group<id>.frames_received
};

struct NodeSample {
  bool up = false;
  int health = -1;  // /status "health": 1 true, 0 false, -1 absent
  NodeRow row;      // the primary node object
  std::uint64_t frames_rx = 0;  // transport.frames_received
  std::uint64_t drops = 0;
  std::vector<GroupSample> groups;  // empty for single-group hosts
};

/// Sums every `transport.dropped_*` counter in a /metrics JSON body.
std::uint64_t sum_drop_counters(const std::string& metrics) {
  std::uint64_t total = 0;
  std::size_t at = 0;
  while ((at = metrics.find("\"transport.dropped_", at)) != std::string::npos) {
    const std::size_t colon = metrics.find(':', at);
    if (colon == std::string::npos) break;
    std::size_t i = colon + 1;
    std::uint64_t value = 0;
    while (i < metrics.size() && metrics[i] >= '0' && metrics[i] <= '9')
      value = value * 10 + static_cast<std::uint64_t>(metrics[i++] - '0');
    total += value;
    at = colon;
  }
  return total;
}

NodeRow parse_node_row(const std::string& body) {
  NodeRow r;
  r.view = json_str(body, "view").value_or("?");
  r.epoch = json_u64(body, "view_epoch").value_or(0);
  r.mode = json_str(body, "mode").value_or("?");
  r.ev_seq = json_u64(body, "ev_seq").value_or(0);
  r.blocked = json_bool(body, "blocked").value_or(false);
  r.app_delivered = json_u64(body, "app_delivered").value_or(0);
  r.data_delivered = json_u64(body, "data_delivered").value_or(0);
  // Member count: entries of the "members" array.
  if (const std::size_t at = body.find("\"members\":[");
      at != std::string::npos) {
    const std::size_t end = body.find(']', at);
    if (end != std::string::npos && end > at + 11)
      r.members = 1 + static_cast<std::size_t>(
                          std::count(body.begin() + at, body.begin() + end,
                                     ','));
  }
  const std::size_t sv_at = body.find("\"subviews\":[");
  const std::size_t set_at = body.find("\"svsets\":[");
  if (sv_at != std::string::npos && set_at != std::string::npos) {
    r.subviews = count_objects(body, sv_at, set_at);
    r.svsets = count_objects(body, set_at, body.size());
  }
  return r;
}

/// Splits the /status "groups" array into one substring per group object
/// by brace matching (the generated JSON never puts braces in strings).
std::vector<std::string> split_group_objects(const std::string& body) {
  std::vector<std::string> out;
  const std::size_t at = body.find("\"groups\":[");
  if (at == std::string::npos) return out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = at + 10; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) out.push_back(body.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

NodeSample parse_sample(const tools::HttpResponse& status_response,
                        const tools::HttpResponse& metrics_response) {
  NodeSample s;
  if (!status_response.ok || status_response.status != 200) return s;
  const std::string& status = status_response.body;
  s.up = true;
  if (const auto health = json_bool(status, "health"))
    s.health = *health ? 1 : 0;
  // The primary node's fields come first in the body, so row parsing over
  // the whole blob finds them before any "groups" entry.
  s.row = parse_node_row(status);
  const std::string* metrics = nullptr;
  if (metrics_response.ok && metrics_response.status == 200) {
    metrics = &metrics_response.body;
    s.drops = sum_drop_counters(*metrics);
    s.frames_rx = json_u64(*metrics, "transport.frames_received").value_or(0);
  }
  for (const std::string& object : split_group_objects(status)) {
    GroupSample g;
    g.id = static_cast<std::uint32_t>(json_u64(object, "id").value_or(0));
    g.alive = json_bool(object, "alive").value_or(false);
    g.row = parse_node_row(object);
    if (metrics != nullptr)
      g.frames_rx =
          json_u64(*metrics, "transport.group" + std::to_string(g.id) +
                                 ".frames_received")
              .value_or(0);
    s.groups.push_back(std::move(g));
  }
  return s;
}

/// Scrapes the whole fleet in one concurrent batch — every node's /status
/// and /metrics under a single shared deadline, so a poll round costs one
/// slowest-node round trip and a stopped node cannot serialise the scan.
std::map<SiteId, NodeSample> poll_fleet(const net::NodeConfig& config,
                                        std::uint64_t timeout_ms) {
  std::vector<SiteId> sites;
  std::vector<tools::HttpRequest> requests;
  for (const auto& [site, addr] : config.admin) {
    sites.push_back(site);
    tools::HttpRequest status_request;
    status_request.addr = addr;
    status_request.path = "/status";
    requests.push_back(std::move(status_request));
    tools::HttpRequest metrics_request;
    metrics_request.addr = addr;
    metrics_request.path = "/metrics";
    requests.push_back(std::move(metrics_request));
  }
  const auto responses = tools::http_fetch_all(requests, timeout_ms);
  std::map<SiteId, NodeSample> samples;
  for (std::size_t i = 0; i < sites.size(); ++i)
    samples.emplace(sites[i],
                    parse_sample(responses[2 * i], responses[2 * i + 1]));
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--config") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) options.config_path = v;
    } else if (arg == "--interval-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.interval_ms);
    } else if (arg == "--timeout-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.timeout_ms);
    } else if (arg == "--count") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.count);
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--expect-converged") {
      options.expect_converged = true;
    } else {
      ok = false;
    }
    if (!ok) return usage(argv[0]);
  }
  if (options.config_path.empty()) return usage(argv[0]);

  net::NodeConfig config;
  std::string error;
  if (!net::load_node_config(options.config_path, config, error)) {
    std::fprintf(stderr, "%s: %s\n", options.config_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (config.admin.empty()) {
    std::fprintf(stderr, "%s: no admin lines — nothing to poll\n",
                 options.config_path.c_str());
    return 2;
  }

  const std::uint64_t rounds = options.once ? 1 : options.count;
  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  std::map<SiteId, NodeSample> previous;
  std::uint64_t previous_at_ms = 0;
  bool converged = true;

  for (std::uint64_t round = 0; rounds == 0 || round < rounds; ++round) {
    if (round > 0) {
      timespec ts{
          static_cast<time_t>(options.interval_ms / 1000),
          static_cast<long>((options.interval_ms % 1000) * 1'000'000)};
      ::nanosleep(&ts, nullptr);
    }
    const std::uint64_t now_ms = wall_ms();
    std::map<SiteId, NodeSample> samples =
        poll_fleet(config, options.timeout_ms);

    std::uint64_t max_epoch = 0;
    for (const auto& [site, s] : samples)
      if (s.up && s.row.epoch > max_epoch) max_epoch = s.row.epoch;

    if (tty && !options.once) std::printf("\x1b[2J\x1b[H");
    std::printf(
        "%-5s %-21s %-4s %-10s %-7s %-4s %-5s %-6s %-4s %8s %8s %8s %6s %4s "
        "%-4s\n",
        "site", "addr", "grp", "view", "mode", "ev", "mbrs", "sv/set", "blk",
        "deliv", "msg/s", "rx", "drops", "lag", "hlth");
    const auto rate_of = [&](std::uint64_t now_delivered,
                             std::uint64_t prev_delivered, bool have_prev) {
      if (!have_prev || now_ms <= previous_at_ms ||
          now_delivered < prev_delivered)
        return 0.0;
      return 1000.0 * static_cast<double>(now_delivered - prev_delivered) /
             static_cast<double>(now_ms - previous_at_ms);
    };
    const auto print_row = [&](SiteId site, const net::PeerAddr& addr,
                               const char* grp, const NodeRow& r,
                               std::uint64_t frames_rx, std::uint64_t drops,
                               int health, double rate) {
      char svset[16];
      std::snprintf(svset, sizeof(svset), "%zu/%zu", r.subviews, r.svsets);
      std::printf(
          "%-5u %-21s %-4s %-10s %-7s %-4llu %-5zu %-6s %-4s %8llu %8.1f "
          "%8llu %6llu %4llu %-4s\n",
          site.value, addr.str().c_str(), grp, r.view.c_str(), r.mode.c_str(),
          static_cast<unsigned long long>(r.ev_seq), r.members, svset,
          r.blocked ? "yes" : "-",
          static_cast<unsigned long long>(r.app_delivered), rate,
          static_cast<unsigned long long>(frames_rx),
          static_cast<unsigned long long>(drops),
          static_cast<unsigned long long>(max_epoch - r.epoch),
          health < 0 ? "-" : (health == 1 ? "ok" : "BAD"));
    };
    for (const auto& [site, addr] : config.admin) {
      const NodeSample& s = samples.at(site);
      if (!s.up) {
        std::printf("%-5u %-21s down\n", site.value, addr.str().c_str());
        continue;
      }
      const auto prev = previous.find(site);
      const bool have_prev = prev != previous.end() && prev->second.up;
      if (s.groups.empty()) {
        print_row(site, addr, "-", s.row, s.frames_rx, s.drops, s.health,
                  rate_of(s.row.data_delivered,
                          have_prev ? prev->second.row.data_delivered : 0,
                          have_prev));
        continue;
      }
      // One row per hosted group instance; node-level drops and health
      // repeat on every row (they are per-process, not per-group).
      for (const GroupSample& g : s.groups) {
        std::uint64_t prev_delivered = 0;
        bool have_group_prev = false;
        if (have_prev) {
          for (const GroupSample& pg : prev->second.groups) {
            if (pg.id != g.id) continue;
            prev_delivered = pg.row.data_delivered;
            have_group_prev = true;
            break;
          }
        }
        std::string grp = std::to_string(g.id);
        if (!g.alive) grp += "!";
        print_row(site, addr, grp.c_str(), g.row, g.frames_rx, s.drops,
                  s.health,
                  rate_of(g.row.data_delivered, prev_delivered,
                          have_group_prev));
      }
    }

    // Convergence: every endpoint up, one view id, one mode, fleet-wide.
    converged = true;
    std::string view, mode;
    for (const auto& [site, s] : samples) {
      if (!s.up) {
        converged = false;
        if (options.expect_converged)
          std::fprintf(stderr, "diverged: site %u down\n", site.value);
        continue;
      }
      if (view.empty()) {
        view = s.row.view;
        mode = s.row.mode;
      } else if (s.row.view != view || s.row.mode != mode) {
        converged = false;
        if (options.expect_converged)
          std::fprintf(stderr,
                       "diverged: site %u reports view=%s mode=%s, expected "
                       "view=%s mode=%s\n",
                       site.value, s.row.view.c_str(), s.row.mode.c_str(),
                       view.c_str(), mode.c_str());
      }
    }

    previous = std::move(samples);
    previous_at_ms = now_ms;
    std::fflush(stdout);
  }

  if (options.expect_converged && !converged) return 1;
  return 0;
}
