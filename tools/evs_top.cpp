// evs_top: fleet-wide live status, one row per node.
//
// Polls the admin endpoint (net/admin.hpp) of every `admin` line in a
// node config — any node's config names the whole fleet — and renders a
// refreshing table:
//
//   site  addr             view     mode   ev  mbrs sv/set blk   deliv  msg/s  drops lag
//   0     127.0.0.1:9100   2@p0.1   normal 1   3    1/1    -     120    50.0   0     0
//
// Columns: the node's installed view id, its enriched-view mode (normal =
// degenerate structure, split = subview structure present), e-view seq,
// member count, subview/sv-set counts, blocked flag, app messages
// delivered, delivery rate since the previous poll, the sum of transport
// drop counters (from /metrics), and peer lag (max fleet view epoch minus
// this node's epoch). Unreachable nodes stay in the table as "down".
// Every poll round issues all per-node GETs as one concurrent batch under
// a single deadline (tools/http_client.hpp), so --timeout-ms bounds the
// whole scrape, not each node in turn.
//
//   ./evs_top --config node0.conf                 # refresh every second
//   ./evs_top --config node0.conf --once          # one table, no refresh
//   ./evs_top --config node0.conf --once --expect-converged
//
// --expect-converged (for scripts and CI) exits nonzero unless every
// configured admin endpoint responded and all nodes report the identical
// view id and mode — the one-shot "is the fleet healthy" probe.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "http_client.hpp"
#include "net/config.hpp"

using namespace evs;

namespace {

struct Options {
  std::string config_path;
  std::uint64_t interval_ms = 1000;
  std::uint64_t timeout_ms = 500;
  std::uint64_t count = 0;  // 0 = forever (or 1 with --once)
  bool once = false;
  bool expect_converged = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --config FILE [--interval-ms N] [--timeout-ms N]\n"
               "          [--count N] [--once] [--expect-converged]\n",
               argv0);
  return 2;
}

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return end != text && *end == '\0';
}

std::uint64_t wall_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000'000;
}

// ----- flat JSON field extraction ------------------------------------
// The admin plane's JSON is machine-generated with known key names; a
// full parser would be dead weight. These helpers find `"key":` and read
// the scalar after it.

std::optional<std::uint64_t> json_u64(const std::string& body,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return std::nullopt;
  std::size_t i = at + needle.size();
  if (i >= body.size() || body[i] < '0' || body[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (i < body.size() && body[i] >= '0' && body[i] <= '9')
    value = value * 10 + static_cast<std::uint64_t>(body[i++] - '0');
  return value;
}

std::optional<std::string> json_str(const std::string& body,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return body.substr(start, end - start);
}

std::optional<bool> json_bool(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return body.compare(at + needle.size(), 4, "true") == 0;
}

/// Counts `{"id":` occurrences in body[from, to) — the number of subview
/// or sv-set objects in that array section.
std::size_t count_objects(const std::string& body, std::size_t from,
                          std::size_t to) {
  std::size_t n = 0;
  std::size_t at = from;
  while ((at = body.find("{\"id\":", at)) != std::string::npos && at < to) {
    ++n;
    at += 6;
  }
  return n;
}

struct NodeSample {
  bool up = false;
  std::string view;
  std::uint64_t epoch = 0;
  std::string mode;
  std::uint64_t ev_seq = 0;
  std::size_t members = 0;
  std::size_t subviews = 0;
  std::size_t svsets = 0;
  bool blocked = false;
  std::uint64_t app_delivered = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t drops = 0;
};

/// Sums every `transport.dropped_*` counter in a /metrics JSON body.
std::uint64_t sum_drop_counters(const std::string& metrics) {
  std::uint64_t total = 0;
  std::size_t at = 0;
  while ((at = metrics.find("\"transport.dropped_", at)) != std::string::npos) {
    const std::size_t colon = metrics.find(':', at);
    if (colon == std::string::npos) break;
    std::size_t i = colon + 1;
    std::uint64_t value = 0;
    while (i < metrics.size() && metrics[i] >= '0' && metrics[i] <= '9')
      value = value * 10 + static_cast<std::uint64_t>(metrics[i++] - '0');
    total += value;
    at = colon;
  }
  return total;
}

NodeSample parse_sample(const tools::HttpResponse& status_response,
                        const tools::HttpResponse& metrics_response) {
  NodeSample s;
  if (!status_response.ok || status_response.status != 200) return s;
  const std::string& status = status_response.body;
  s.up = true;
  s.view = json_str(status, "view").value_or("?");
  s.epoch = json_u64(status, "view_epoch").value_or(0);
  s.mode = json_str(status, "mode").value_or("?");
  s.ev_seq = json_u64(status, "ev_seq").value_or(0);
  s.blocked = json_bool(status, "blocked").value_or(false);
  s.app_delivered = json_u64(status, "app_delivered").value_or(0);
  s.data_delivered = json_u64(status, "data_delivered").value_or(0);
  // Member count: entries of the "members" array.
  if (const std::size_t at = status.find("\"members\":[");
      at != std::string::npos) {
    const std::size_t end = status.find(']', at);
    if (end != std::string::npos && end > at + 11)
      s.members = 1 + static_cast<std::size_t>(
                          std::count(status.begin() + at, status.begin() + end,
                                     ','));
  }
  const std::size_t sv_at = status.find("\"subviews\":[");
  const std::size_t set_at = status.find("\"svsets\":[");
  if (sv_at != std::string::npos && set_at != std::string::npos) {
    s.subviews = count_objects(status, sv_at, set_at);
    s.svsets = count_objects(status, set_at, status.size());
  }
  if (metrics_response.ok && metrics_response.status == 200)
    s.drops = sum_drop_counters(metrics_response.body);
  return s;
}

/// Scrapes the whole fleet in one concurrent batch — every node's /status
/// and /metrics under a single shared deadline, so a poll round costs one
/// slowest-node round trip and a stopped node cannot serialise the scan.
std::map<SiteId, NodeSample> poll_fleet(const net::NodeConfig& config,
                                        std::uint64_t timeout_ms) {
  std::vector<SiteId> sites;
  std::vector<tools::HttpRequest> requests;
  for (const auto& [site, addr] : config.admin) {
    sites.push_back(site);
    tools::HttpRequest status_request;
    status_request.addr = addr;
    status_request.path = "/status";
    requests.push_back(std::move(status_request));
    tools::HttpRequest metrics_request;
    metrics_request.addr = addr;
    metrics_request.path = "/metrics";
    requests.push_back(std::move(metrics_request));
  }
  const auto responses = tools::http_fetch_all(requests, timeout_ms);
  std::map<SiteId, NodeSample> samples;
  for (std::size_t i = 0; i < sites.size(); ++i)
    samples.emplace(sites[i],
                    parse_sample(responses[2 * i], responses[2 * i + 1]));
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    bool ok = true;
    if (arg == "--config") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) options.config_path = v;
    } else if (arg == "--interval-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.interval_ms);
    } else if (arg == "--timeout-ms") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.timeout_ms);
    } else if (arg == "--count") {
      const char* v = value();
      ok = v != nullptr && parse_u64(v, options.count);
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--expect-converged") {
      options.expect_converged = true;
    } else {
      ok = false;
    }
    if (!ok) return usage(argv[0]);
  }
  if (options.config_path.empty()) return usage(argv[0]);

  net::NodeConfig config;
  std::string error;
  if (!net::load_node_config(options.config_path, config, error)) {
    std::fprintf(stderr, "%s: %s\n", options.config_path.c_str(),
                 error.c_str());
    return 2;
  }
  if (config.admin.empty()) {
    std::fprintf(stderr, "%s: no admin lines — nothing to poll\n",
                 options.config_path.c_str());
    return 2;
  }

  const std::uint64_t rounds = options.once ? 1 : options.count;
  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  std::map<SiteId, NodeSample> previous;
  std::uint64_t previous_at_ms = 0;
  bool converged = true;

  for (std::uint64_t round = 0; rounds == 0 || round < rounds; ++round) {
    if (round > 0) {
      timespec ts{
          static_cast<time_t>(options.interval_ms / 1000),
          static_cast<long>((options.interval_ms % 1000) * 1'000'000)};
      ::nanosleep(&ts, nullptr);
    }
    const std::uint64_t now_ms = wall_ms();
    std::map<SiteId, NodeSample> samples =
        poll_fleet(config, options.timeout_ms);

    std::uint64_t max_epoch = 0;
    for (const auto& [site, s] : samples)
      if (s.up && s.epoch > max_epoch) max_epoch = s.epoch;

    if (tty && !options.once) std::printf("\x1b[2J\x1b[H");
    std::printf("%-5s %-21s %-10s %-7s %-4s %-5s %-6s %-4s %8s %8s %6s %4s\n",
                "site", "addr", "view", "mode", "ev", "mbrs", "sv/set", "blk",
                "deliv", "msg/s", "drops", "lag");
    for (const auto& [site, addr] : config.admin) {
      const NodeSample& s = samples.at(site);
      if (!s.up) {
        std::printf("%-5u %-21s down\n", site.value, addr.str().c_str());
        continue;
      }
      double rate = 0;
      const auto prev = previous.find(site);
      if (prev != previous.end() && prev->second.up &&
          now_ms > previous_at_ms &&
          s.data_delivered >= prev->second.data_delivered) {
        rate = 1000.0 *
               static_cast<double>(s.data_delivered -
                                   prev->second.data_delivered) /
               static_cast<double>(now_ms - previous_at_ms);
      }
      char svset[16];
      std::snprintf(svset, sizeof(svset), "%zu/%zu", s.subviews, s.svsets);
      std::printf(
          "%-5u %-21s %-10s %-7s %-4llu %-5zu %-6s %-4s %8llu %8.1f %6llu "
          "%4llu\n",
          site.value, addr.str().c_str(), s.view.c_str(), s.mode.c_str(),
          static_cast<unsigned long long>(s.ev_seq), s.members, svset,
          s.blocked ? "yes" : "-",
          static_cast<unsigned long long>(s.app_delivered), rate,
          static_cast<unsigned long long>(s.drops),
          static_cast<unsigned long long>(max_epoch - s.epoch));
    }

    // Convergence: every endpoint up, one view id, one mode, fleet-wide.
    converged = true;
    std::string view, mode;
    for (const auto& [site, s] : samples) {
      if (!s.up) {
        converged = false;
        if (options.expect_converged)
          std::fprintf(stderr, "diverged: site %u down\n", site.value);
        continue;
      }
      if (view.empty()) {
        view = s.view;
        mode = s.mode;
      } else if (s.view != view || s.mode != mode) {
        converged = false;
        if (options.expect_converged)
          std::fprintf(stderr,
                       "diverged: site %u reports view=%s mode=%s, expected "
                       "view=%s mode=%s\n",
                       site.value, s.view.c_str(), s.mode.c_str(), view.c_str(),
                       mode.c_str());
      }
    }

    previous = std::move(samples);
    previous_at_ms = now_ms;
    std::fflush(stdout);
  }

  if (options.expect_converged && !converged) return 1;
  return 0;
}
