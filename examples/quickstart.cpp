// Quickstart: enriched view synchrony in ~80 lines.
//
// Spawns three processes on a simulated asynchronous network, watches
// them agree on a view, inspects the subview/sv-set structure, performs
// the two e-view merge calls from the paper's Section 6.1, multicasts a
// few totally-ordered messages, and crashes a member to show the
// structure shrinking asynchronously.
//
// Build & run:  ./build/examples/quickstart
//
// Set EVS_TRACE_OUT=<dir> to also dump the structured run trace
// (quickstart.trace.jsonl / .chrome.json / .metrics.json); open the
// chrome file in https://ui.perfetto.dev, or replay the jsonl through
// ./build/tools/trace_check.
#include <cstdio>

#include "evs/endpoint.hpp"
#include "obs/dump.hpp"
#include "sim/world.hpp"

using namespace evs;

namespace {

// Your application sits behind core::EvsDelegate.
class Printer : public core::EvsDelegate {
 public:
  explicit Printer(core::EvsEndpoint& ep, const char* name)
      : ep_(&ep), name_(name) {
    ep.set_evs_delegate(this);
  }

  void on_eview(const core::EView& eview) override {
    std::printf("[%s] e-view %s  ev_seq=%llu  structure=%s\n", name_,
                gms::to_string(eview.view).c_str(),
                static_cast<unsigned long long>(eview.ev_seq),
                eview.structure.str().c_str());
  }

  void on_app_deliver(ProcessId sender, const Bytes& payload) override {
    std::printf("[%s] delivered \"%s\" from %s\n", name_,
                to_string(payload).c_str(), to_string(sender).c_str());
  }

 private:
  core::EvsEndpoint* ep_;
  const char* name_;
};

}  // namespace

int main() {
  // A deterministic simulated world: three sites, one process each.
  sim::World world(/*seed=*/42);
  const auto sites = world.add_sites(3);

  vsync::EndpointConfig config;
  config.universe = sites;

  auto& a = world.spawn<core::EvsEndpoint>(sites[0], config);
  auto& b = world.spawn<core::EvsEndpoint>(sites[1], config);
  auto& c = world.spawn<core::EvsEndpoint>(sites[2], config);
  Printer pa(a, "a");
  Printer pb(b, "b");
  Printer pc(c, "c");

  std::printf("--- group formation (singletons merge into one view) ---\n");
  world.run_for(2 * kSecond);

  std::printf("--- SV-SetMerge: group the three singleton sv-sets ---\n");
  std::vector<SvSetId> svsets;
  for (const auto& ss : a.eview().structure.svsets()) svsets.push_back(ss.id);
  a.request_sv_set_merge(svsets);
  world.run_for(1 * kSecond);

  std::printf("--- SubviewMerge: collapse to the degenerate e-view ---\n");
  std::vector<SubviewId> subviews;
  for (const auto& sv : a.eview().structure.subviews())
    subviews.push_back(sv.id);
  a.request_subview_merge(subviews);
  world.run_for(1 * kSecond);

  std::printf("--- totally-ordered multicast ---\n");
  a.app_multicast(to_bytes("hello"));
  b.app_multicast(to_bytes("world"));
  world.run_for(1 * kSecond);

  std::printf("--- crash c: the view and the structure shrink ---\n");
  world.crash_site(sites[2]);
  world.run_for(2 * kSecond);

  std::printf("final view at a: %s\n", gms::to_string(a.view()).c_str());

  world.network().export_metrics(world.metrics());
  a.export_metrics(world.metrics(), "a");
  b.export_metrics(world.metrics(), "b");
  world.dump_trace("quickstart");
  return 0;
}
