// The paper's second Section-3 example: a replicated database whose
// look-up is executed in parallel, each member scanning the fraction of
// the database it is responsible for in the current view.
//
// "An inconsistency in this global state information could result in some
//  portion of the database not being searched at all or being searched
//  multiple times." — the demo prints the division of responsibility and
// verifies the exactly-once coverage invariant before and after a crash.
//
// Build & run:  ./build/examples/parallel_db_demo
#include <cstdio>

#include <string>
#include <set>

#include "objects/parallel_db.hpp"
#include "obs/dump.hpp"
#include "sim/world.hpp"

using namespace evs;

namespace {

void distributed_lookup(std::vector<objects::ParallelDb*>& dbs,
                        std::size_t total_keys) {
  std::set<std::string> covered;
  bool duplicates = false;
  for (auto* db : dbs) {
    if (!db->alive()) continue;
    const auto share = db->local_scan();
    std::printf("  %s scans %zu keys (mode=%s)\n", to_string(db->id()).c_str(),
                share.size(), app::to_string(db->mode()));
    for (const auto& [key, value] : share) {
      if (!covered.insert(key).second) duplicates = true;
    }
  }
  std::printf("  coverage: %zu/%zu keys, duplicates: %s\n", covered.size(),
              total_keys, duplicates ? "YES (invariant violated!)" : "none");
}

}  // namespace

int main() {
  sim::World world(11);
  const auto sites = world.add_sites(4);

  app::GroupObjectConfig config;
  config.endpoint.universe = sites;

  std::vector<objects::ParallelDb*> dbs;
  for (const SiteId site : sites)
    dbs.push_back(&world.spawn<objects::ParallelDb>(site, config));
  world.run_for(3 * kSecond);

  std::printf("loading 32 records...\n");
  for (int k = 0; k < 32; ++k)
    dbs[k % 4]->insert("record-" + std::to_string(k),
                       "payload-" + std::to_string(k));
  world.run_for(1 * kSecond);

  std::printf("\nparallel look-up over 4 members:\n");
  distributed_lookup(dbs, 32);

  std::printf("\n*** crash s3: responsibility must be redivided ***\n");
  world.crash_site(sites[3]);
  world.run_for(3 * kSecond);

  std::printf("parallel look-up over the 3 survivors:\n");
  distributed_lookup(dbs, 32);

  std::printf("\nnote: R-mode does not exist for this object — every view\n"
              "change was a Reconfigure straight into SETTLING:\n");
  for (auto* db : dbs) {
    if (!db->alive()) continue;
    std::printf("  %s: Failure=%llu Reconfigure=%llu Repair=%llu Reconcile=%llu\n",
                to_string(db->id()).c_str(),
                static_cast<unsigned long long>(
                    db->mode_machine()->count(app::Transition::Failure)),
                static_cast<unsigned long long>(
                    db->mode_machine()->count(app::Transition::Reconfigure)),
                static_cast<unsigned long long>(
                    db->mode_machine()->count(app::Transition::Repair)),
                static_cast<unsigned long long>(
                    db->mode_machine()->count(app::Transition::Reconcile)));
  }
  world.network().export_metrics(world.metrics());
  for (std::size_t i = 0; i < dbs.size(); ++i) {
    if (dbs[i]->alive())
      dbs[i]->export_metrics(world.metrics(), "p" + std::to_string(i));
  }
  world.dump_trace("parallel_db_demo");
  return 0;
}
