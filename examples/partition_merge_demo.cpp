// State merging after concurrent partitions — the problem class that the
// primary-partition model rules out by construction (Section 5) and that
// enriched view synchrony makes tractable (Section 6.2).
//
// A last-writer-wins key-value store keeps serving in BOTH halves of a
// partition. On healing, the new e-view contains the two cluster subviews
// in separate sv-sets, so every member classifies the situation as State
// Merging locally, merges the diverged states deterministically, and then
// collapses the structure with the Section-6.1 merge calls.
//
// Build & run:  ./build/examples/partition_merge_demo
#include <cstdio>

#include <string>

#include "objects/mergeable_kv.hpp"
#include "obs/dump.hpp"
#include "sim/world.hpp"

using namespace evs;

namespace {

void dump(const char* label, std::vector<objects::MergeableKv*>& stores) {
  std::printf("%s\n", label);
  for (auto* kv : stores) {
    if (!kv->alive()) continue;
    std::printf("  %s (mode=%-8s): cart=%s shared=%s\n",
                to_string(kv->id()).c_str(), app::to_string(kv->mode()),
                kv->get("cart").value_or("<none>").c_str(),
                kv->get("shared").value_or("<none>").c_str());
  }
}

}  // namespace

int main() {
  sim::World world(17);
  const auto sites = world.add_sites(4);

  app::GroupObjectConfig config;
  config.endpoint.universe = sites;

  std::vector<objects::MergeableKv*> stores;
  for (const SiteId site : sites)
    stores.push_back(&world.spawn<objects::MergeableKv>(site, config));
  world.run_for(3 * kSecond);

  stores[0]->put("shared", "written before the partition");
  world.run_for(1 * kSecond);
  dump("before the partition:", stores);

  std::printf("\n*** partition: {s0,s1} | {s2,s3} — both sides keep going ***\n");
  world.network().set_partition({{sites[0], sites[1]}, {sites[2], sites[3]}});
  world.run_for(3 * kSecond);
  stores[0]->put("cart", "left side's update");
  stores[2]->put("cart", "right side's update (later)");
  stores[2]->put("shared", "rewritten on the right");
  world.run_for(1 * kSecond);
  dump("during the partition (diverged!):", stores);

  std::printf("\n*** heal: state merging ***\n");
  world.network().heal();
  world.run_for(3 * kSecond);
  dump("after healing (last-writer-wins merge):", stores);

  std::printf("\nevery member classified the settle locally as: ");
  std::printf("%s\n",
              app::problems_to_string(stores[0]->object_stats().last_problems)
                  .c_str());
  std::printf("final e-view structure: %s\n",
              stores[0]->eview().structure.str().c_str());
  world.network().export_metrics(world.metrics());
  for (std::size_t i = 0; i < stores.size(); ++i) {
    if (stores[i]->alive())
      stores[i]->export_metrics(world.metrics(), "p" + std::to_string(i));
  }
  world.dump_trace("partition_merge_demo");
  return 0;
}
