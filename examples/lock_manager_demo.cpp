// The Section-6.2 example: a mutually-exclusive write lock managed in
// majority views, with the shared state (manager + holder) replicated via
// totally-ordered multicast.
//
// The demo shows the scenario the paper uses to argue for enriched views:
// the lock holder is cut off in a minority partition, the majority side
// re-grants the lock, and after healing every member converges on the
// majority's holder — no two processes ever believe they hold the lock at
// the same time.
//
// Build & run:  ./build/examples/lock_manager_demo
#include <cstdio>

#include <string>

#include "objects/lock_manager.hpp"
#include "obs/dump.hpp"
#include "sim/world.hpp"

using namespace evs;

namespace {

void report(const char* label, std::vector<objects::LockManager*>& locks) {
  std::printf("%s\n", label);
  for (auto* lock : locks) {
    if (!lock->alive()) continue;
    const auto holder = lock->holder();
    std::printf("  %s  mode=%-8s holder=%s%s\n", to_string(lock->id()).c_str(),
                app::to_string(lock->mode()),
                holder ? to_string(*holder).c_str() : "<free>",
                lock->i_hold_the_lock() ? "  <-- me" : "");
  }
}

}  // namespace

int main() {
  sim::World world(13);
  const auto sites = world.add_sites(3);

  // Long lease so the demo narrative is about views, not expiry; see
  // LockConfig::lease for the asynchronous-safety fence.
  objects::LockConfig config;
  config.object.endpoint.universe = sites;
  config.lease = 60 * kSecond;

  std::vector<objects::LockManager*> locks;
  for (const SiteId site : sites)
    locks.push_back(&world.spawn<objects::LockManager>(site, config));
  world.run_for(3 * kSecond);
  report("after formation:", locks);

  std::printf("\np at s2 acquires the lock...\n");
  locks[2]->acquire();
  world.run_for(1 * kSecond);
  report("after the grant:", locks);

  std::printf("\n*** partition: the holder is isolated in a minority ***\n");
  world.network().set_partition({{sites[0], sites[1]}, {sites[2]}});
  world.run_for(3 * kSecond);
  report("during the partition:", locks);
  std::printf("  isolated ex-holder acquire retry: %s\n",
              locks[2]->acquire() ? "accepted (BUG)" : "refused (R-mode)");

  std::printf("\nthe majority side grants the lock to s0...\n");
  locks[0]->acquire();
  world.run_for(1 * kSecond);
  report("after the majority re-grant:", locks);

  std::printf("\n*** heal ***\n");
  world.network().heal();
  world.run_for(3 * kSecond);
  report("after healing (everyone adopts the majority's state):", locks);

  std::size_t holders = 0;
  for (auto* lock : locks)
    if (lock->alive() && lock->i_hold_the_lock()) ++holders;
  std::printf("\nsafety: %zu process(es) believe they hold the lock\n", holders);
  world.network().export_metrics(world.metrics());
  for (std::size_t i = 0; i < locks.size(); ++i) {
    if (locks[i]->alive())
      locks[i]->export_metrics(world.metrics(), "p" + std::to_string(i));
  }
  world.dump_trace("lock_manager_demo");
  return 0;
}
