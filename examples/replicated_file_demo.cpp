// The paper's Section-3 file example, end to end.
//
// A file replicated over five sites with one vote each; writes need a
// majority quorum. The demo walks through the lifecycle the paper uses to
// motivate its modes:
//   1. group formation (state creation),
//   2. quorum writes in N-mode,
//   3. a partition: the minority drops to R-mode (reads only, possibly
//      stale) while the majority keeps writing,
//   4. healing: the stale side settles by state transfer and reconciles.
//
// Build & run:  ./build/examples/replicated_file_demo
#include <cstdio>

#include <string>

#include "objects/replicated_file.hpp"
#include "obs/dump.hpp"
#include "sim/world.hpp"

using namespace evs;

namespace {

const char* mode_name(app::Mode mode) { return app::to_string(mode); }

void report(const char* label, std::vector<objects::ReplicatedFile*>& files) {
  std::printf("%s\n", label);
  for (auto* f : files) {
    if (!f->alive()) continue;
    const auto content = f->read();
    std::printf("  %s  mode=%-8s version=%llu content=\"%s\"\n",
                to_string(f->id()).c_str(), mode_name(f->mode()),
                static_cast<unsigned long long>(f->version()),
                content ? content->c_str() : "<none>");
  }
}

}  // namespace

int main() {
  sim::World world(7);
  const auto sites = world.add_sites(5);

  objects::ReplicatedFileConfig config;
  config.object.endpoint.universe = sites;

  std::vector<objects::ReplicatedFile*> files;
  for (const SiteId site : sites)
    files.push_back(&world.spawn<objects::ReplicatedFile>(site, config));

  world.run_for(3 * kSecond);
  report("after formation (state creation settled):", files);

  files[0]->write("version one");
  world.run_for(1 * kSecond);
  report("after a quorum write:", files);

  std::printf("\n*** partition: {s0,s1,s2} | {s3,s4} ***\n");
  world.network().set_partition({{sites[0], sites[1], sites[2]},
                                 {sites[3], sites[4]}});
  world.run_for(3 * kSecond);
  report("during the partition:", files);
  std::printf("  minority write accepted? %s\n",
              files[4]->write("illegal") ? "yes (BUG)" : "no (R-mode)");
  files[0]->write("version two, majority only");
  world.run_for(1 * kSecond);
  report("after the majority wrote again:", files);

  std::printf("\n*** heal: the stale minority transfers state ***\n");
  world.network().heal();
  world.run_for(3 * kSecond);
  report("after healing:", files);

  std::printf("\nsettle history of %s:\n", to_string(files[4]->id()).c_str());
  for (const auto& rec : files[4]->settle_log()) {
    std::printf("  view epoch %llu: %s (%.2f ms to serve)\n",
                static_cast<unsigned long long>(rec.view.epoch),
                app::problems_to_string(rec.problems).c_str(),
                static_cast<double>(rec.serve_ready - rec.started) / 1000.0);
  }
  world.network().export_metrics(world.metrics());
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i]->alive())
      files[i]->export_metrics(world.metrics(), "p" + std::to_string(i));
  }
  world.dump_trace("replicated_file_demo");
  return 0;
}
