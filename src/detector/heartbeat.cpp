#include "detector/heartbeat.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace evs::detector {

HeartbeatDetector::HeartbeatDetector(ProcessId self, std::vector<SiteId> universe,
                                     DetectorHost host, DetectorConfig config,
                                     ChangeCallback on_change)
    : self_(self),
      universe_(std::move(universe)),
      host_(std::move(host)),
      config_(config),
      on_change_(std::move(on_change)) {
  EVS_CHECK(host_.send_heartbeat != nullptr);
  EVS_CHECK(host_.set_timer != nullptr);
  EVS_CHECK(host_.now != nullptr);
  last_reported_ = {self_};
}

void HeartbeatDetector::start() {
  EVS_CHECK(!started_);
  started_ = true;
  tick();
}

void HeartbeatDetector::tick() {
  for (const SiteId site : universe_) {
    if (site == self_.site) continue;
    host_.send_heartbeat(site);
    ++stats_.heartbeats_sent;
  }
  evaluate();
  host_.set_timer(config_.heartbeat_interval, [this]() { tick(); });
}

void HeartbeatDetector::on_heartbeat(ProcessId from) {
  if (left_.contains(from)) return;
  ++stats_.heartbeats_received;
  // A heartbeat from a newer incarnation at the same site supersedes the
  // older one: the old incarnation is dead by definition.
  for (auto it = last_seen_.begin(); it != last_seen_.end();) {
    if (it->first.site == from.site && it->first.incarnation < from.incarnation) {
      it = last_seen_.erase(it);
    } else {
      ++it;
    }
  }
  last_seen_[from] = host_.now();
}

void HeartbeatDetector::mark_left(ProcessId id) {
  left_.insert(id);
  last_seen_.erase(id);
  evaluate();
}

std::vector<ProcessId> HeartbeatDetector::reachable() const {
  const SimTime now = host_.now();
  std::vector<ProcessId> result;
  result.push_back(self_);
  for (const auto& [id, seen] : last_seen_) {
    if (now - seen <= config_.suspect_timeout) result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool HeartbeatDetector::is_reachable(ProcessId id) const {
  if (id == self_) return true;
  const auto it = last_seen_.find(id);
  if (it == last_seen_.end()) return false;
  return host_.now() - it->second <= config_.suspect_timeout;
}

void HeartbeatDetector::evaluate() {
  std::vector<ProcessId> current = reachable();
  if (current == last_reported_) return;
  const bool tracing = host_.trace != nullptr && host_.trace->enabled();
  // Count transitions for stats (suspicion = peer dropped out).
  for (const ProcessId id : last_reported_) {
    if (!std::binary_search(current.begin(), current.end(), id)) {
      ++stats_.suspicions;
      if (tracing) {
        host_.trace->record({host_.now(), self_,
                             obs::EventKind::HeartbeatSuspect, {}, id});
      }
    }
  }
  for (const ProcessId id : current) {
    if (!std::binary_search(last_reported_.begin(), last_reported_.end(), id)) {
      ++stats_.unsuspicions;
      if (tracing) {
        host_.trace->record({host_.now(), self_,
                             obs::EventKind::HeartbeatUnsuspect, {}, id});
      }
    }
  }
  last_reported_ = current;
  if (on_change_) on_change_(current);
}

void HeartbeatDetector::export_metrics(obs::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.counter(prefix + ".heartbeats_sent").set(stats_.heartbeats_sent);
  registry.counter(prefix + ".heartbeats_received")
      .set(stats_.heartbeats_received);
  registry.counter(prefix + ".suspicions").set(stats_.suspicions);
  registry.counter(prefix + ".unsuspicions").set(stats_.unsuspicions);
}

}  // namespace evs::detector
