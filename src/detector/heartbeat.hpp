// Unreliable heartbeat failure detector.
//
// Each process heartbeats every site in a configured universe and suspects
// a peer whose heartbeats have not arrived within `suspect_timeout`. The
// detector is *unreliable* by construction (Section 2 of the paper):
// long delays, message loss or partitions make it suspect processes that
// are actually alive — a "false suspicion" the membership layer must
// absorb as a view change like any real failure.
//
// The detector is a passive component embedded in a host actor (the
// view-synchrony endpoint); the host owns the wire and the timers and
// feeds incoming heartbeats in, so this class is pure, unit-testable
// timing/bookkeeping logic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::detector {

struct DetectorConfig {
  SimDuration heartbeat_interval = 20 * kMillisecond;
  SimDuration suspect_timeout = 120 * kMillisecond;
};

struct DetectorStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t unsuspicions = 0;
};

/// Services the owning actor provides to the detector.
struct DetectorHost {
  /// Sends a heartbeat (framed by the host) to the given site.
  std::function<void(SiteId)> send_heartbeat;
  /// Schedules a callback after a simulated delay.
  std::function<void(SimDuration, std::function<void()>)> set_timer;
  /// Current simulated time.
  std::function<SimTime()> now;
  /// Optional trace sink; suspicion/unsuspicion transitions are recorded
  /// when set and enabled.
  obs::TraceBus* trace = nullptr;
};

class HeartbeatDetector {
 public:
  /// `on_change` fires whenever the reachable set (sorted, always
  /// containing self) changes between ticks.
  using ChangeCallback = std::function<void(const std::vector<ProcessId>&)>;

  HeartbeatDetector(ProcessId self, std::vector<SiteId> universe,
                    DetectorHost host, DetectorConfig config,
                    ChangeCallback on_change);

  /// Begins the periodic heartbeat/evaluation loop.
  void start();

  /// Host feeds every received heartbeat here.
  void on_heartbeat(ProcessId from);

  /// Records a voluntary leave: the process is treated as permanently
  /// unreachable immediately, without waiting for a timeout.
  void mark_left(ProcessId id);

  /// Sorted reachable set, including self.
  std::vector<ProcessId> reachable() const;

  bool is_reachable(ProcessId id) const;

  const DetectorStats& stats() const { return stats_; }
  const DetectorConfig& config() const { return config_; }

  /// Projects the stats struct into `registry` as counters under `prefix`.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

 private:
  void tick();
  void evaluate();

  ProcessId self_;
  std::vector<SiteId> universe_;
  DetectorHost host_;
  DetectorConfig config_;
  ChangeCallback on_change_;
  DetectorStats stats_;

  std::unordered_map<ProcessId, SimTime> last_seen_;
  std::unordered_set<ProcessId> left_;
  std::vector<ProcessId> last_reported_;
  bool started_ = false;
};

}  // namespace evs::detector
