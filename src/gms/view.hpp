// Views and view-change round identifiers (Section 2 of the paper).
//
// A view is the membership service's agreed snapshot of which processes
// are up and mutually reachable. Concurrent views may exist in disjoint
// partitions; a ViewId orders them by (epoch, coordinator).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "common/ids.hpp"

namespace evs::gms {

struct View {
  ViewId id;
  /// Sorted, unique member list.
  std::vector<ProcessId> members;

  bool contains(ProcessId p) const;

  /// Index of `p` in the sorted member list; checks membership.
  std::size_t rank_of(ProcessId p) const;

  /// The distinguished member (smallest id): coordinator for view changes
  /// within this view and default sequencer for total order.
  ProcessId primary() const;

  std::size_t size() const { return members.size(); }

  bool operator==(const View&) const = default;

  void encode(Encoder& enc) const;
  static View decode(Decoder& dec);
};

std::string to_string(const View& view);

/// Identifies one attempt to agree on a new view. Numbers grow past every
/// epoch and round either endpoint has seen, so a restarted or competing
/// round always wins over a stale one.
struct RoundId {
  std::uint64_t number = 0;
  ProcessId coordinator;

  auto operator<=>(const RoundId&) const = default;

  void encode(Encoder& enc) const;
  static RoundId decode(Decoder& dec);
};

std::string to_string(RoundId round);

}  // namespace evs::gms
