#include "gms/view.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace evs::gms {

bool View::contains(ProcessId p) const {
  return std::binary_search(members.begin(), members.end(), p);
}

std::size_t View::rank_of(ProcessId p) const {
  const auto it = std::lower_bound(members.begin(), members.end(), p);
  EVS_CHECK_MSG(it != members.end() && *it == p,
                "rank_of: " + evs::to_string(p) + " not in view");
  return static_cast<std::size_t>(it - members.begin());
}

ProcessId View::primary() const {
  EVS_CHECK(!members.empty());
  return members.front();
}

void View::encode(Encoder& enc) const {
  enc.put_view_id(id);
  enc.put_vector(members, [](Encoder& e, ProcessId p) { e.put_process(p); });
}

View View::decode(Decoder& dec) {
  View view;
  view.id = dec.get_view_id();
  view.members =
      dec.get_vector<ProcessId>([](Decoder& d) { return d.get_process(); });
  if (!std::is_sorted(view.members.begin(), view.members.end()))
    throw DecodeError("view members not sorted");
  return view;
}

std::string to_string(const View& view) {
  std::string s = evs::to_string(view.id) + "{";
  for (std::size_t i = 0; i < view.members.size(); ++i) {
    if (i > 0) s += ",";
    s += evs::to_string(view.members[i]);
  }
  return s + "}";
}

void RoundId::encode(Encoder& enc) const {
  enc.put_u64(number);
  enc.put_process(coordinator);
}

RoundId RoundId::decode(Decoder& dec) {
  RoundId round;
  round.number = dec.get_u64();
  round.coordinator = dec.get_process();
  return round;
}

std::string to_string(RoundId round) {
  return "r" + std::to_string(round.number) + "@" +
         evs::to_string(round.coordinator);
}

}  // namespace evs::gms
