// View-expansion admission policy (Section 5 of the paper).
//
// Isis restricts consecutive views to expand by at most one member, which
// simplifies local reasoning but makes partition mergers cost N view
// changes instead of 1 — the paper's quantitative argument against it.
// Both policies are implemented so the CLAIM-MERGE bench can reproduce
// that argument. Shrinking is never restricted: failures remove members
// asynchronously under either policy.
#pragma once

#include <vector>

#include "common/ids.hpp"

namespace evs::gms {

enum class JoinPolicy {
  /// Admit every reachable candidate in one view change (Relacs/Transis
  /// model; the paper's system model).
  Batch,
  /// Admit at most one new member per view change (Isis model).
  OneAtATime,
};

/// Computes the membership a coordinator should propose: reachable
/// survivors of `current` plus new candidates as the policy allows.
/// Inputs must be sorted; the result is sorted.
std::vector<ProcessId> admit(JoinPolicy policy,
                             const std::vector<ProcessId>& current,
                             const std::vector<ProcessId>& reachable);

}  // namespace evs::gms
