#include "gms/wire.hpp"

namespace evs::gms {

void FlushedMessage::encode(Encoder& enc) const {
  enc.put_process(sender);
  enc.put_varint(seq);
  enc.put_bytes(payload);
}

FlushedMessage FlushedMessage::decode(Decoder& dec) {
  FlushedMessage msg;
  msg.sender = dec.get_process();
  msg.seq = dec.get_varint();
  msg.payload = dec.get_bytes();
  return msg;
}

void Propose::encode(Encoder& enc) const {
  round.encode(enc);
  enc.put_vector(members, [](Encoder& e, ProcessId p) { e.put_process(p); });
}

Propose Propose::decode(Decoder& dec) {
  Propose msg;
  msg.round = RoundId::decode(dec);
  msg.members =
      dec.get_vector<ProcessId>([](Decoder& d) { return d.get_process(); });
  return msg;
}

void Ack::encode(Encoder& enc) const {
  round.encode(enc);
  enc.put_view_id(prior_view);
  enc.put_varint(max_number_seen);
  enc.put_vector(unstable,
                 [](Encoder& e, const FlushedMessage& m) { m.encode(e); });
  enc.put_bytes(context);
}

Ack Ack::decode(Decoder& dec) {
  Ack msg;
  msg.round = RoundId::decode(dec);
  msg.prior_view = dec.get_view_id();
  msg.max_number_seen = dec.get_varint();
  msg.unstable = dec.get_vector<FlushedMessage>(
      [](Decoder& d) { return FlushedMessage::decode(d); });
  msg.context = dec.get_bytes();
  return msg;
}

void Nack::encode(Encoder& enc) const {
  round.encode(enc);
  enc.put_varint(max_number_seen);
}

Nack Nack::decode(Decoder& dec) {
  Nack msg;
  msg.round = RoundId::decode(dec);
  msg.max_number_seen = dec.get_varint();
  return msg;
}

void MemberContext::encode(Encoder& enc) const {
  enc.put_process(member);
  enc.put_view_id(prior_view);
  enc.put_bytes(context);
}

MemberContext MemberContext::decode(Decoder& dec) {
  MemberContext ctx;
  ctx.member = dec.get_process();
  ctx.prior_view = dec.get_view_id();
  ctx.context = dec.get_bytes();
  return ctx;
}

void Install::encode(Encoder& enc) const {
  round.encode(enc);
  view.encode(enc);
  enc.put_vector(contexts,
                 [](Encoder& e, const MemberContext& c) { c.encode(e); });
  enc.put_varint(unions.size());
  for (const auto& [view_id, messages] : unions) {
    enc.put_view_id(view_id);
    enc.put_vector(messages,
                   [](Encoder& e, const FlushedMessage& m) { m.encode(e); });
  }
}

Install Install::decode(Decoder& dec) {
  Install msg;
  msg.round = RoundId::decode(dec);
  msg.view = View::decode(dec);
  msg.contexts = dec.get_vector<MemberContext>(
      [](Decoder& d) { return MemberContext::decode(d); });
  const std::uint64_t n = dec.get_varint();
  if (n > dec.remaining()) throw DecodeError("unions length exceeds buffer");
  msg.unions.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    ViewId view_id = dec.get_view_id();
    auto messages = dec.get_vector<FlushedMessage>(
        [](Decoder& d) { return FlushedMessage::decode(d); });
    msg.unions.emplace_back(view_id, std::move(messages));
  }
  return msg;
}

void DataMsg::encode(Encoder& enc) const {
  enc.put_view_id(view);
  enc.put_varint(seq);
  enc.put_bytes(payload);
}

DataMsg DataMsg::decode(Decoder& dec) {
  DataMsg msg;
  msg.view = dec.get_view_id();
  msg.seq = dec.get_varint();
  msg.payload = dec.get_bytes();
  return msg;
}

void StabilityMsg::encode(Encoder& enc) const {
  enc.put_view_id(view);
  enc.put_vector(delivered_upto,
                 [](Encoder& e, std::uint64_t v) { e.put_varint(v); });
}

StabilityMsg StabilityMsg::decode(Decoder& dec) {
  StabilityMsg msg;
  msg.view = dec.get_view_id();
  msg.delivered_upto =
      dec.get_vector<std::uint64_t>([](Decoder& d) { return d.get_varint(); });
  return msg;
}

Bytes frame(Channel channel, const Encoder& body) {
  Encoder framed;
  framed.put_u8(static_cast<std::uint8_t>(channel));
  Bytes out = std::move(framed).take();
  const Bytes& inner = body.buffer();
  out.insert(out.end(), inner.begin(), inner.end());
  return out;
}

Bytes frame(Channel channel, Encoder&& body) {
  Bytes out = std::move(body).take();
  out.insert(out.begin(), static_cast<std::uint8_t>(channel));
  return out;
}

Channel peek_channel(Decoder& dec) {
  const std::uint8_t tag = dec.get_u8();
  switch (tag) {
    case 1: return Channel::Heartbeat;
    case 2: return Channel::Membership;
    case 3: return Channel::Data;
    case 4: return Channel::Stability;
    case 5: return Channel::Leave;
    default: throw DecodeError("unknown channel tag");
  }
}

}  // namespace evs::gms
