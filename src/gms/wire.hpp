// Wire formats for the membership / view-synchrony protocol.
//
// Every payload on the simulated network starts with a channel tag:
//   Heartbeat  — failure-detector traffic
//   Membership — PROPOSE / ACK / INSTALL view-agreement rounds
//   Data       — view-tagged application multicasts
//   Stability  — gossip used to garbage-collect stable messages
//   Leave      — voluntary-leave announcements
//
// The structures here are pure data + codec; the protocol engine lives in
// src/vsync/endpoint.*.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "gms/view.hpp"

namespace evs::gms {

enum class Channel : std::uint8_t {
  Heartbeat = 1,
  Membership = 2,
  Data = 3,
  Stability = 4,
  Leave = 5,
};

enum class MembershipKind : std::uint8_t {
  Propose = 1,
  Ack = 2,
  Install = 3,
  Nack = 4,
};

/// One buffered multicast, identified within its view by (sender, seq).
struct FlushedMessage {
  ProcessId sender;
  std::uint64_t seq = 0;
  Bytes payload;

  bool operator==(const FlushedMessage&) const = default;

  void encode(Encoder& enc) const;
  static FlushedMessage decode(Decoder& dec);
};

/// Coordinator's proposal: freeze and report your state for this round.
struct Propose {
  RoundId round;
  std::vector<ProcessId> members;

  void encode(Encoder& enc) const;
  static Propose decode(Decoder& dec);
};

/// Member's reply: its identity in the old world plus everything the new
/// world needs — unstable messages for the flush and the upper layer's
/// opaque flush context (the enriched-view structure, see src/evs/).
struct Ack {
  RoundId round;
  ViewId prior_view;
  /// Highest epoch/round number this member has seen; lets the
  /// coordinator pick an adequate round number when partitions merge.
  std::uint64_t max_number_seen = 0;
  std::vector<FlushedMessage> unstable;
  Bytes context;

  void encode(Encoder& enc) const;
  static Ack decode(Decoder& dec);
};

/// Refusal of a PROPOSE whose round number is not high enough (typically
/// after a partition merge where the other side's epoch is far ahead).
/// Tells the coordinator what number to exceed on the restart.
struct Nack {
  RoundId round;
  std::uint64_t max_number_seen = 0;

  void encode(Encoder& enc) const;
  static Nack decode(Decoder& dec);
};

/// (member, its prior view, its flush context) as gathered from ACKs.
struct MemberContext {
  ProcessId member;
  ViewId prior_view;
  Bytes context;

  bool operator==(const MemberContext&) const = default;

  void encode(Encoder& enc) const;
  static MemberContext decode(Decoder& dec);
};

/// Coordinator's decision: the new view, every member's context, and the
/// per-prior-view unions of unstable messages (each member delivers the
/// remainder of its own prior view's union before installing).
struct Install {
  RoundId round;
  View view;
  std::vector<MemberContext> contexts;
  std::vector<std::pair<ViewId, std::vector<FlushedMessage>>> unions;

  void encode(Encoder& enc) const;
  static Install decode(Decoder& dec);
};

/// Application multicast within a view.
struct DataMsg {
  ViewId view;
  std::uint64_t seq = 0;
  Bytes payload;

  void encode(Encoder& enc) const;
  static DataMsg decode(Decoder& dec);
};

/// Stability gossip: per-member contiguously-delivered sequence numbers,
/// indexed by sender rank in `view`.
struct StabilityMsg {
  ViewId view;
  std::vector<std::uint64_t> delivered_upto;

  void encode(Encoder& enc) const;
  static StabilityMsg decode(Decoder& dec);
};

/// Helpers that frame a channel payload. The rvalue overload steals the
/// encoder's buffer and prepends the tag in place — no second allocation,
/// no full-body copy; prefer it on every send path. The lvalue overload
/// copies and remains for call sites that reuse the body.
Bytes frame(Channel channel, const Encoder& body);
Bytes frame(Channel channel, Encoder&& body);
Channel peek_channel(Decoder& dec);

}  // namespace evs::gms
