#include "gms/policy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace evs::gms {

std::vector<ProcessId> admit(JoinPolicy policy,
                             const std::vector<ProcessId>& current,
                             const std::vector<ProcessId>& reachable) {
  EVS_CHECK(std::is_sorted(current.begin(), current.end()));
  EVS_CHECK(std::is_sorted(reachable.begin(), reachable.end()));

  // Survivors: current members still reachable.
  std::vector<ProcessId> survivors;
  std::set_intersection(current.begin(), current.end(), reachable.begin(),
                        reachable.end(), std::back_inserter(survivors));

  // Newcomers: reachable processes not in the current view.
  std::vector<ProcessId> newcomers;
  std::set_difference(reachable.begin(), reachable.end(), current.begin(),
                      current.end(), std::back_inserter(newcomers));

  std::vector<ProcessId> proposed = survivors;
  switch (policy) {
    case JoinPolicy::Batch:
      proposed.insert(proposed.end(), newcomers.begin(), newcomers.end());
      break;
    case JoinPolicy::OneAtATime:
      if (!newcomers.empty()) proposed.push_back(newcomers.front());
      break;
  }
  std::sort(proposed.begin(), proposed.end());
  return proposed;
}

}  // namespace evs::gms
