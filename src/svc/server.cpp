#include "svc/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace evs::svc {

using runtime::SvcRequest;
using runtime::SvcRespondFn;
using runtime::SvcResponse;
using runtime::SvcStatus;

SvcServer::SvcServer(net::EventLoop& loop, std::uint32_t ip,
                     std::uint16_t port, SvcServerConfig config)
    : loop_(loop),
      config_(config),
      listener_(
          loop, ip, port,
          net::TcpListener::Callbacks{
              .at_capacity =
                  [this]() {
                    return connections_.size() >= config_.max_connections;
                  },
              .on_connection = [this](int fd) { on_connection(fd); },
              .on_shed = [this]() { ++stats_.connections_shed; },
          },
          "svc") {}

SvcServer::~SvcServer() {
  *alive_ = false;  // completions and timers in flight become no-ops
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) {
    loop_.remove_fd(fd);
    ::close(fd);
  }
  connections_.clear();
}

void SvcServer::on_connection(int fd) {
  ++stats_.connections_accepted;
  Conn conn;
  conn.gen = next_conn_gen_++;
  connections_.emplace(fd, std::move(conn));
  loop_.add_fd(fd, [this, fd]() { on_readable(fd); });
}

void SvcServer::on_readable(int fd) {
  // One arrival stamp per socket pass: every frame parsed below waited at
  // least from here, so pipelined requests see their queueing delay.
  const SimTime arrival = loop_.now();
  {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Conn& conn = it->second;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n == 0) {  // peer closed
        close_connection(fd);
        return;
      }
      if (n < 0) break;  // EAGAIN (or transient): wait for the next wake
      conn.in.append(buf, static_cast<std::size_t>(n));
    }
  }
  // Parse complete frames. Every dispatch may mutate connections_ (a
  // synchronous completion can hit the slow-consumer guard or a broken
  // pipe and close this very connection), so the Conn is re-looked-up
  // per frame and consumed bytes erased only at the end.
  std::size_t offset = 0;
  for (;;) {
    const auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Conn& conn = it->second;
    Bytes body;
    const FrameStatus status =
        next_frame(conn.in, offset, body, config_.max_frame_bytes);
    if (status == FrameStatus::NeedMore) break;
    if (status == FrameStatus::Malformed) {
      ++stats_.dropped_malformed;
      close_connection(fd);
      return;
    }
    WireRequest wire;
    try {
      wire = decode_request(body);
    } catch (const DecodeError&) {
      ++stats_.dropped_malformed;
      close_connection(fd);
      return;
    }
    if (!dispatch(fd, wire.request_id, std::move(wire.req), arrival)) return;
  }
  const auto it = connections_.find(fd);
  if (it != connections_.end() && offset > 0) it->second.in.erase(0, offset);
}

bool SvcServer::dispatch(int fd, std::uint64_t request_id, SvcRequest req,
                         SimTime arrival) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return false;
  Conn& conn = it->second;

  // Admission control: shed with a retry hint instead of queueing beyond
  // the caps; the request never reaches the node.
  if (!handler_ || conn.inflight >= config_.max_inflight_per_conn ||
      pending_ >= config_.max_pending) {
    ++stats_.requests_shed;
    return send_response(fd, conn, request_id,
                         SvcResponse::unavailable(config_.shed_retry_after_ms));
  }

  ++conn.inflight;
  ++pending_;
  auto ctx = std::make_shared<RequestCtx>();
  ctx->server = this;
  ctx->alive = alive_;
  ctx->fd = fd;
  ctx->gen = conn.gen;
  ctx->request_id = request_id;
  ctx->trace = runtime::effective_trace(req);
  ctx->start = loop_.now();
  admit_us_.record(static_cast<double>(ctx->start - arrival));
  if (ctx->trace != 0 && trace_ != nullptr && trace_->enabled()) {
    trace_->record({ctx->start, self_, obs::EventKind::RequestAdmitted, {}, {},
                    ctx->trace, static_cast<std::uint64_t>(req.op),
                    request_id});
  }
  if (config_.request_timeout > 0) {
    ctx->timer = loop_.set_timer(config_.request_timeout, [ctx]() {
      complete(ctx, SvcResponse::unavailable(
                        ctx->alive && *ctx->alive
                            ? ctx->server->config_.shed_retry_after_ms
                            : 0),
               /*timed_out=*/true);
    });
  }
  handler_(std::move(req),
           [ctx](SvcResponse resp) { complete(ctx, std::move(resp), false); });
  return connections_.contains(fd);
}

void SvcServer::complete(const std::shared_ptr<RequestCtx>& ctx,
                         SvcResponse resp, bool timed_out) {
  if (ctx->done) return;  // late completion after timeout, or double call
  ctx->done = true;
  if (!ctx->alive || !*ctx->alive) return;  // server torn down
  SvcServer* server = ctx->server;
  if (ctx->timer != 0 && !timed_out) server->loop_.cancel_timer(ctx->timer);
  if (timed_out) ++server->stats_.requests_timed_out;
  EVS_CHECK(server->pending_ > 0);
  --server->pending_;
  server->latency_us_.record(
      static_cast<double>(server->loop_.now() - ctx->start));
  server->count_response(resp);
  const auto it = server->connections_.find(ctx->fd);
  if (it == server->connections_.end() || it->second.gen != ctx->gen) {
    ++server->stats_.responses_orphaned;
    return;
  }
  Conn& conn = it->second;
  EVS_CHECK(conn.inflight > 0);
  --conn.inflight;
  const SimTime reply_start = server->loop_.now();
  server->send_response(ctx->fd, conn, ctx->request_id, resp);
  server->reply_us_.record(
      static_cast<double>(server->loop_.now() - reply_start));
  if (ctx->trace != 0 && server->trace_ != nullptr &&
      server->trace_->enabled()) {
    server->trace_->record({reply_start, server->self_,
                            obs::EventKind::RequestReplied, {}, {}, ctx->trace,
                            static_cast<std::uint64_t>(resp.status),
                            ctx->request_id});
  }
}

void SvcServer::count_response(const SvcResponse& resp) {
  switch (resp.status) {
    case SvcStatus::Ok: ++stats_.requests_ok; break;
    case SvcStatus::Conflict: ++stats_.requests_conflict; break;
    case SvcStatus::InvalidEpoch: ++stats_.requests_stale_epoch; break;
    case SvcStatus::Unavailable: ++stats_.requests_unavailable; break;
    case SvcStatus::Unsupported: ++stats_.requests_unsupported; break;
    case SvcStatus::NotLeader: ++stats_.requests_not_leader; break;
  }
}

bool SvcServer::send_response(int fd, Conn& conn, std::uint64_t request_id,
                              const SvcResponse& resp) {
  append_frame(conn.out, encode_response(request_id, resp));
  if (conn.out.size() - conn.sent > config_.max_out_bytes) {
    // The client is not reading its responses; buffering without bound
    // would let one slow consumer eat the node's memory.
    ++stats_.slow_consumer_closed;
    close_connection(fd);
    return false;
  }
  return flush(fd, conn);
}

bool SvcServer::flush(int fd, Conn& conn) {
  while (conn.sent < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.sent,
                             conn.out.size() - conn.sent, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        conn.want_write = true;
        loop_.set_writable(fd, [this, fd]() { on_writable(fd); });
      }
      return true;
    }
    close_connection(fd);  // broken pipe etc.
    return false;
  }
  conn.out.clear();
  conn.sent = 0;
  if (conn.want_write) {
    conn.want_write = false;
    loop_.set_writable(fd, {});
  }
  return true;
}

void SvcServer::on_writable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  flush(fd, it->second);
}

void SvcServer::close_connection(int fd) {
  loop_.remove_fd(fd);
  ::close(fd);
  // In-flight completions for this connection find a missing fd (or a
  // different generation after reuse) and count responses_orphaned.
  connections_.erase(fd);
}

void SvcServer::export_metrics(obs::MetricsRegistry& registry,
                               const std::string& prefix) const {
  registry.counter(prefix + ".connections_accepted")
      .set(stats_.connections_accepted);
  registry.counter(prefix + ".connections_shed").set(stats_.connections_shed);
  registry.counter(prefix + ".dropped_malformed").set(stats_.dropped_malformed);
  registry.counter(prefix + ".requests_ok").set(stats_.requests_ok);
  registry.counter(prefix + ".requests_conflict").set(stats_.requests_conflict);
  registry.counter(prefix + ".requests_stale_epoch")
      .set(stats_.requests_stale_epoch);
  registry.counter(prefix + ".requests_unavailable")
      .set(stats_.requests_unavailable);
  registry.counter(prefix + ".requests_unsupported")
      .set(stats_.requests_unsupported);
  registry.counter(prefix + ".requests_not_leader")
      .set(stats_.requests_not_leader);
  registry.counter(prefix + ".requests_shed").set(stats_.requests_shed);
  registry.counter(prefix + ".requests_timed_out")
      .set(stats_.requests_timed_out);
  registry.counter(prefix + ".responses_orphaned")
      .set(stats_.responses_orphaned);
  registry.counter(prefix + ".slow_consumer_closed")
      .set(stats_.slow_consumer_closed);
  registry.gauge(prefix + ".connections")
      .set(static_cast<double>(connections_.size()));
  registry.gauge(prefix + ".pending").set(static_cast<double>(pending_));
  registry.histogram(prefix + ".admit_us") = admit_us_;
  registry.histogram(prefix + ".latency_us") = latency_us_;
  registry.histogram(prefix + ".reply_us") = reply_us_;
}

}  // namespace evs::svc
