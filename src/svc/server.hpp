// Client front door, part 3: the per-node service endpoint.
//
// One SvcServer per node serves the external-client request/response
// protocol (svc/protocol.hpp) on a TCP listen socket, driven entirely by
// the node's existing epoll EventLoop — no threads, same single-loop
// discipline as the admin plane, sharing its accept/cap/shed skeleton
// (net/tcp_listener.hpp). Connections are persistent and requests may be
// pipelined; responses carry the client's request_id, so they complete in
// any order.
//
// Admission control and backpressure are first-class, not best-effort:
//
//   * connection cap         — accepts past max_connections are shed at
//                              the listener (closed immediately);
//   * per-connection cap     — more than max_inflight_per_conn
//                              unanswered requests on one connection get
//                              Unavailable{retry_after_ms} without ever
//                              reaching the node;
//   * bounded request queue  — more than max_pending requests in flight
//                              across all connections likewise shed with
//                              Unavailable{retry_after_ms};
//   * request timeout        — a request the node has not answered within
//                              request_timeout is answered
//                              Unavailable{retry_after_ms} (the late
//                              completion is then dropped), so a wedged
//                              replica can never hang a client;
//   * slow-consumer guard    — a connection whose unread response backlog
//                              exceeds max_out_bytes is closed rather than
//                              buffering without bound.
//
// Every outcome is counted (SvcStats) and exported through
// export_metrics() under the "svc." prefix — requests_ok / _conflict /
// _stale_epoch / _shed and friends plus an end-to-end latency histogram —
// so /metrics shows exactly how the front door is treating clients.
//
// Requests are routed to the hosted node through a Handler wired to
// runtime::Node::svc_request. The handler's respond callback may fire
// synchronously (reads, rejections) or later (ordered writes); a
// completion that outlives its connection is counted responses_orphaned
// and dropped. Connection slots are generation-stamped so a completion
// can never write into an unrelated client that reused the fd number.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/time.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_listener.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/svc.hpp"
#include "svc/protocol.hpp"

namespace evs::svc {

struct SvcServerConfig {
  /// Simultaneous client connections; extra accepts are shed.
  std::size_t max_connections = 1024;
  /// Unanswered requests allowed per connection before shedding.
  std::size_t max_inflight_per_conn = 64;
  /// Unanswered requests allowed across all connections before shedding.
  std::size_t max_pending = 4096;
  /// Largest accepted frame body; larger prefixes drop the connection.
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Unread response backlog per connection before the slow consumer is
  /// closed.
  std::size_t max_out_bytes = 4 * 1024 * 1024;
  /// Hint carried in shed responses (Unavailable{retry_after_ms}).
  std::uint64_t shed_retry_after_ms = 50;
  /// Deadline for the node to answer one request, in microseconds of loop
  /// time; 0 disables the timeout.
  SimDuration request_timeout = 10'000'000;
};

struct SvcStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_shed = 0;     // over max_connections
  std::uint64_t dropped_malformed = 0;    // bad frame / undecodable request
  std::uint64_t requests_ok = 0;          // responses by status...
  std::uint64_t requests_conflict = 0;
  std::uint64_t requests_stale_epoch = 0;
  std::uint64_t requests_unavailable = 0;
  std::uint64_t requests_unsupported = 0;
  std::uint64_t requests_not_leader = 0;  // write redirected to coordinator
  std::uint64_t requests_shed = 0;        // admission control; never reached
                                          // the node (also Unavailable on
                                          // the wire, counted here instead)
  std::uint64_t requests_timed_out = 0;   // node missed request_timeout
  std::uint64_t responses_orphaned = 0;   // completed after conn close
  std::uint64_t slow_consumer_closed = 0;
};

class SvcServer {
 public:
  /// Routes one decoded request into the node; must call the respond
  /// callback exactly once (see runtime::Node::svc_request).
  using Handler =
      std::function<void(runtime::SvcRequest, runtime::SvcRespondFn)>;

  /// Binds ip:port (host byte order; port 0 picks an ephemeral port, see
  /// bound_port()) and registers with the loop. Throws InvariantViolation
  /// on bind/listen failure.
  SvcServer(net::EventLoop& loop, std::uint32_t ip, std::uint16_t port,
            SvcServerConfig config = {});
  ~SvcServer();
  SvcServer(const SvcServer&) = delete;
  SvcServer& operator=(const SvcServer&) = delete;

  std::uint16_t bound_port() const { return listener_.bound_port(); }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Wires the trace bus the server reports request lifecycle events to
  /// (RequestAdmitted at dispatch, RequestReplied when the response frame
  /// is queued). The server has no protocol identity of its own, so the
  /// host passes the hosted node's — events of both layers then collate
  /// under one process in the merged trace. Null disables emission.
  void set_trace(obs::TraceBus* bus, ProcessId self) {
    trace_ = bus;
    self_ = self;
  }

  const SvcStats& stats() const { return stats_; }
  const SvcServerConfig& config() const { return config_; }
  std::size_t connections() const { return connections_.size(); }
  /// Requests currently awaiting a node response.
  std::size_t pending() const { return pending_; }

  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "svc") const;

 private:
  struct Conn {
    std::string in;        // unparsed request bytes
    std::string out;       // response bytes awaiting the socket
    std::size_t sent = 0;  // prefix of `out` already written
    std::size_t inflight = 0;
    std::uint64_t gen = 0;  // guards completions against fd reuse
    bool want_write = false;
  };

  /// One in-flight request's identity, shared with the respond closure and
  /// the timeout timer. `alive` mirrors the server's lifetime so a
  /// completion arriving after teardown is a no-op, not a wild pointer.
  struct RequestCtx {
    SvcServer* server = nullptr;
    std::shared_ptr<bool> alive;
    int fd = -1;
    std::uint64_t gen = 0;
    std::uint64_t request_id = 0;
    /// Effective trace context of the request (0 = untraced).
    std::uint64_t trace = 0;
    SimTime start = 0;
    runtime::TimerId timer = 0;
    bool done = false;
  };

  void on_connection(int fd);
  void on_readable(int fd);
  void on_writable(int fd);
  void close_connection(int fd);
  /// Admits + dispatches one decoded request; returns false when the
  /// connection was closed underneath (stop parsing its buffer).
  /// `arrival` is when the socket pass that produced the frame started —
  /// the origin of the admission-wait histogram.
  bool dispatch(int fd, std::uint64_t request_id, runtime::SvcRequest req,
                SimTime arrival);
  static void complete(const std::shared_ptr<RequestCtx>& ctx,
                       runtime::SvcResponse resp, bool timed_out);
  void count_response(const runtime::SvcResponse& resp);
  /// Queues one response frame; returns false when the connection was
  /// closed (slow consumer or broken pipe).
  bool send_response(int fd, Conn& conn, std::uint64_t request_id,
                     const runtime::SvcResponse& resp);
  /// Writes what the socket accepts; arms/clears EPOLLOUT interest.
  /// Returns false when the connection was closed (broken pipe).
  bool flush(int fd, Conn& conn);

  net::EventLoop& loop_;
  SvcServerConfig config_;
  Handler handler_;
  std::map<int, Conn> connections_;
  std::uint64_t next_conn_gen_ = 1;
  std::size_t pending_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  SvcStats stats_;
  /// Per-phase attribution: admit_us (socket arrival to node dispatch),
  /// latency_us (dispatch to node completion — the node's share, the
  /// ordering/fence spans inside it are the group object's histograms),
  /// reply_us (completion to the response frame queued/written).
  obs::Histogram admit_us_;
  obs::Histogram latency_us_;
  obs::Histogram reply_us_;
  obs::TraceBus* trace_ = nullptr;
  ProcessId self_{};

  net::TcpListener listener_;  // last: accepts may fire once registered
};

}  // namespace evs::svc
