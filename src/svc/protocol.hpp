// Client front door, part 2: the wire protocol.
//
// External clients speak a length-prefixed binary framing over TCP:
//
//   frame   := u32-LE body-length | body        (length in 1..max_frame)
//   request := u64 request_id | u8 op | varint group | varint view_epoch
//              | u64 trace_id | u8 trace_flags | op-fields
//   response:= u64 request_id | u8 status | status-fields
//
// trace_id/trace_flags carry the propagated trace context (bit 0 of
// trace_flags = sampled; all other bits must be zero — an unknown flag
// bit is a DecodeError, so a bit-flipped frame is rejected instead of
// silently changing sampling semantics). This is a flag-day field: both
// sides encode and expect it, there is no versioned negotiation, same as
// the group field before it.
//
// `group` addresses one group instance of a multi-group host (0 = the
// default group); log operations ignore it, the host routes them to the
// owning shard itself.
//
// Per-op request fields (runtime/svc.hpp's SvcOp):
//   Get       -> string key
//   Put       -> string key | string value
//   Lock      -> (none)
//   Unlock    -> (none)
//   Append    -> string value
//   LogAppend -> string key (routing) | string value (record)
//   LogRead   -> string key (decimal global position)
//   LogTail   -> (none)
//   LogSeal   -> string key (decimal epoch)
//   LogTrim   -> string key (decimal global position)
//   LogFill   -> string key (decimal global position)
//
// Per-status response fields (SvcStatus):
//   Ok           -> varint view_epoch | string value
//   Conflict     -> varint retry_after_ms
//   InvalidEpoch -> varint current_epoch
//   Unavailable  -> varint retry_after_ms
//   Unsupported  -> (none)
//   NotLeader    -> varint coordinator_site | varint view_epoch
//
// request_id is an opaque client-chosen correlator echoed verbatim in the
// response; connections are persistent and requests may be pipelined, so
// responses are matched by id, not by order. Bodies are encoded with the
// stack's codec layer and decoded defensively: unknown tags, truncated
// fields and trailing bytes all throw DecodeError, and the server drops
// the connection rather than guess (the same hardening discipline as the
// UDP receive path).
#pragma once

#include <cstdint>
#include <string>

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "runtime/svc.hpp"

namespace evs::svc {

/// Default cap on one frame body; requests are small (a key + a value),
/// so anything near this is hostile or corrupt.
constexpr std::size_t kMaxFrameBytes = 64 * 1024;

struct WireRequest {
  std::uint64_t request_id = 0;
  runtime::SvcRequest req;
};

struct WireResponse {
  std::uint64_t request_id = 0;
  runtime::SvcResponse resp;
};

Bytes encode_request(std::uint64_t request_id, const runtime::SvcRequest& req);
/// Throws DecodeError on malformation (bad op tag, truncation, trailing
/// bytes).
WireRequest decode_request(const Bytes& body);

Bytes encode_response(std::uint64_t request_id,
                      const runtime::SvcResponse& resp);
/// Throws DecodeError on malformation (bad status tag, truncation,
/// trailing bytes).
WireResponse decode_response(const Bytes& body);

/// Appends one length-prefixed frame (u32-LE length + body) to `out`.
void append_frame(std::string& out, const Bytes& body);

enum class FrameStatus {
  NeedMore,   // prefix or body still incomplete; read more
  Frame,      // `body` extracted, `offset` advanced past the frame
  Malformed,  // zero or over-cap length prefix; drop the connection
};

/// Attempts to extract one frame from `buf` starting at `offset`.
FrameStatus next_frame(const std::string& buf, std::size_t& offset,
                       Bytes& body, std::size_t max_body = kMaxFrameBytes);

}  // namespace evs::svc
