#include "svc/protocol.hpp"

namespace evs::svc {

using runtime::SvcOp;
using runtime::SvcRequest;
using runtime::SvcResponse;
using runtime::SvcStatus;

Bytes encode_request(std::uint64_t request_id, const SvcRequest& req) {
  Encoder enc;
  enc.reserve(16 + req.key.size() + req.value.size());
  enc.put_u64(request_id);
  enc.put_u8(static_cast<std::uint8_t>(req.op));
  enc.put_varint(req.group);
  enc.put_varint(req.view_epoch);
  enc.put_u64(req.trace_id);
  enc.put_u8(req.sampled ? 1 : 0);
  switch (req.op) {
    case SvcOp::Get:
      enc.put_string(req.key);
      break;
    case SvcOp::Put:
      enc.put_string(req.key);
      enc.put_string(req.value);
      break;
    case SvcOp::Lock:
    case SvcOp::Unlock:
    case SvcOp::LogTail:
      break;
    case SvcOp::Append:
      enc.put_string(req.value);
      break;
    case SvcOp::LogAppend:
      enc.put_string(req.key);
      enc.put_string(req.value);
      break;
    case SvcOp::LogRead:
    case SvcOp::LogSeal:
    case SvcOp::LogTrim:
    case SvcOp::LogFill:
      enc.put_string(req.key);
      break;
  }
  return std::move(enc).take();
}

WireRequest decode_request(const Bytes& body) {
  Decoder dec(body);
  WireRequest wire;
  wire.request_id = dec.get_u64();
  const std::uint8_t op = dec.get_u8();
  if (op < static_cast<std::uint8_t>(SvcOp::Get) ||
      op > static_cast<std::uint8_t>(SvcOp::LogFill))
    throw DecodeError("svc request: bad op tag");
  wire.req.op = static_cast<SvcOp>(op);
  const std::uint64_t group = dec.get_varint();
  if (group > UINT32_MAX) throw DecodeError("svc request: bad group");
  wire.req.group = static_cast<GroupId>(group);
  wire.req.view_epoch = dec.get_varint();
  wire.req.trace_id = dec.get_u64();
  const std::uint8_t trace_flags = dec.get_u8();
  if ((trace_flags & ~std::uint8_t{1}) != 0)
    throw DecodeError("svc request: bad trace flags");
  wire.req.sampled = (trace_flags & 1) != 0;
  switch (wire.req.op) {
    case SvcOp::Get:
      wire.req.key = dec.get_string();
      break;
    case SvcOp::Put:
      wire.req.key = dec.get_string();
      wire.req.value = dec.get_string();
      break;
    case SvcOp::Lock:
    case SvcOp::Unlock:
    case SvcOp::LogTail:
      break;
    case SvcOp::Append:
      wire.req.value = dec.get_string();
      break;
    case SvcOp::LogAppend:
      wire.req.key = dec.get_string();
      wire.req.value = dec.get_string();
      break;
    case SvcOp::LogRead:
    case SvcOp::LogSeal:
    case SvcOp::LogTrim:
    case SvcOp::LogFill:
      wire.req.key = dec.get_string();
      break;
  }
  dec.expect_end();
  return wire;
}

Bytes encode_response(std::uint64_t request_id, const SvcResponse& resp) {
  Encoder enc;
  enc.reserve(16 + resp.value.size());
  enc.put_u64(request_id);
  enc.put_u8(static_cast<std::uint8_t>(resp.status));
  switch (resp.status) {
    case SvcStatus::Ok:
      enc.put_varint(resp.view_epoch);
      enc.put_string(resp.value);
      break;
    case SvcStatus::Conflict:
      enc.put_varint(resp.retry_after_ms);
      break;
    case SvcStatus::InvalidEpoch:
      enc.put_varint(resp.view_epoch);
      break;
    case SvcStatus::Unavailable:
      enc.put_varint(resp.retry_after_ms);
      break;
    case SvcStatus::Unsupported:
      break;
    case SvcStatus::NotLeader:
      enc.put_varint(resp.coordinator_site);
      enc.put_varint(resp.view_epoch);
      break;
  }
  return std::move(enc).take();
}

WireResponse decode_response(const Bytes& body) {
  Decoder dec(body);
  WireResponse wire;
  wire.request_id = dec.get_u64();
  const std::uint8_t status = dec.get_u8();
  if (status < static_cast<std::uint8_t>(SvcStatus::Ok) ||
      status > static_cast<std::uint8_t>(SvcStatus::NotLeader))
    throw DecodeError("svc response: bad status tag");
  wire.resp.status = static_cast<SvcStatus>(status);
  switch (wire.resp.status) {
    case SvcStatus::Ok:
      wire.resp.view_epoch = dec.get_varint();
      wire.resp.value = dec.get_string();
      break;
    case SvcStatus::Conflict:
      wire.resp.retry_after_ms = dec.get_varint();
      break;
    case SvcStatus::InvalidEpoch:
      wire.resp.view_epoch = dec.get_varint();
      break;
    case SvcStatus::Unavailable:
      wire.resp.retry_after_ms = dec.get_varint();
      break;
    case SvcStatus::Unsupported:
      break;
    case SvcStatus::NotLeader: {
      const std::uint64_t site = dec.get_varint();
      if (site > UINT32_MAX) throw DecodeError("svc response: bad site");
      wire.resp.coordinator_site = static_cast<std::uint32_t>(site);
      wire.resp.view_epoch = dec.get_varint();
      break;
    }
  }
  dec.expect_end();
  return wire;
}

void append_frame(std::string& out, const Bytes& body) {
  const auto len = static_cast<std::uint32_t>(body.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.append(reinterpret_cast<const char*>(body.data()), body.size());
}

FrameStatus next_frame(const std::string& buf, std::size_t& offset,
                       Bytes& body, std::size_t max_body) {
  if (buf.size() - offset < 4) return FrameStatus::NeedMore;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint8_t>(buf[offset + i]));
  };
  const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (len == 0 || len > max_body) return FrameStatus::Malformed;
  if (buf.size() - offset - 4 < len) return FrameStatus::NeedMore;
  const auto* begin =
      reinterpret_cast<const std::uint8_t*>(buf.data() + offset + 4);
  body.assign(begin, begin + len);
  offset += 4 + len;
  return FrameStatus::Frame;
}

}  // namespace evs::svc
