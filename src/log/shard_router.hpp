// Sharded shared log, part 2: the per-process request router.
//
// A multi-group host (net::NetRuntime::host_group) runs every shard of
// the log in one process; external clients talk to any member's front
// door (svc::SvcServer) without knowing the sharding. The ShardRouter is
// the piece between the two: it takes each decoded SvcRequest and hands
// it to the right in-process group instance.
//
//   * Non-log operations route by the request's `group` field to that
//     group's node (Unsupported when the group is not hosted here).
//   * LogAppend picks the shard from the routing key — a decimal key
//     routes as key % G (clients can target a shard deterministically),
//     anything else through FNV-1a % G — so one key always lands on one
//     shard's total order.
//   * LogRead / LogTrim / LogFill carry a global position; its owner is
//     position % G by the interleaving rule (log_shard.hpp).
//   * LogTail and LogSeal are whole-log operations: the router fans them
//     out to every shard and aggregates — tail is the max over shards of
//     their next unassigned global position; seal succeeds when every
//     shard sealed. Any shard's failure (Unavailable, NotLeader, ...)
//     becomes the whole operation's answer, so a client retries or
//     redirects exactly as for a single-shard op. Clients should send
//     whole-log operations with view_epoch 0: the shards are distinct
//     groups whose epochs advance independently, so no single fence
//     value can match all of them.
//
// The router holds plain Node pointers — the owner (evs_node) keeps the
// objects alive for the router's lifetime and the fan-out completions
// run on the same event loop, so no synchronisation is needed.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/svc.hpp"

namespace evs::log {

struct RouterStats {
  std::uint64_t routed_group = 0;    // non-log ops, by group field
  std::uint64_t routed_shard = 0;    // single-shard log ops
  std::uint64_t fanned_out = 0;      // whole-log ops (tail / seal)
  std::uint64_t unknown_group = 0;   // group field names nothing hosted
  std::uint64_t bad_position = 0;    // unparseable / misrouted position
};

class ShardRouter {
 public:
  /// Registers the node serving `group` for non-log requests.
  void add_group(GroupId group, runtime::Node& node);

  /// Registers log shard `index` (of the G shards hosted everywhere);
  /// call once per shard, any order. The node must be a LogShard (it
  /// answers the Log* svc ops).
  void add_shard(std::uint32_t index, runtime::Node& node);

  std::size_t shard_count() const { return shards_.size(); }
  const RouterStats& stats() const { return stats_; }

  /// Routes one request; invokes `respond` exactly once (possibly
  /// synchronously). Suitable as the svc::SvcServer handler.
  void route(runtime::SvcRequest req, runtime::SvcRespondFn respond);

 private:
  void route_log(runtime::SvcRequest req, runtime::SvcRespondFn respond);
  /// Fans `req` to every shard; aggregates per `op` (tail: max position,
  /// seal: all-ok).
  void fan_out(runtime::SvcRequest req, runtime::SvcRespondFn respond);
  std::uint32_t shard_for_key(const std::string& key) const;

  std::map<GroupId, runtime::Node*> groups_;
  std::vector<runtime::Node*> shards_;  // index = shard index
  RouterStats stats_;
};

}  // namespace evs::log
