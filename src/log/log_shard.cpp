#include "log/log_shard.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/check.hpp"

namespace evs::log {

using runtime::SvcOp;
using runtime::SvcRequest;
using runtime::SvcRespondFn;
using runtime::SvcResponse;

namespace {

/// Strict decimal u64; nullopt on anything else (positions and epochs
/// arrive as client-controlled strings).
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

}  // namespace

LogShard::LogShard(LogShardConfig config)
    : app::GroupObjectBase(config.object), config_(config) {
  EVS_CHECK(config_.shard_count >= 1);
  EVS_CHECK(config_.shard_index < config_.shard_count);
}

bool LogShard::can_serve(const std::vector<ProcessId>& members) const {
  // Single-copy ordering: only a majority of the universe may assign
  // positions, so two partitions can never both extend the log.
  return members.size() * 2 > config_.object.endpoint.universe.size();
}

bool LogShard::is_coordinator() const {
  return eview().view.id.coordinator == id();
}

void LogShard::svc_dispatch(SvcRequest req, SvcRespondFn respond) {
  switch (req.op) {
    case SvcOp::LogRead: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      const auto global = parse_u64(req.key);
      if (!global || *global % config_.shard_count != config_.shard_index) {
        respond(SvcResponse::unsupported());  // misrouted / malformed
        return;
      }
      const std::uint64_t local = *global / config_.shard_count;
      if (local < trim_floor_) {
        respond(SvcResponse::ok(view_epoch(), "T"));
        return;
      }
      if (local >= next_local_) {
        // Not yet assigned: the reader caught the tail; retry or fill.
        respond(SvcResponse::conflict(
            config_.object.svc_retry_after_ms));
        return;
      }
      const auto it = slots_.find(local);
      if (it == slots_.end() || it->second.filled) {
        respond(SvcResponse::ok(view_epoch(), "F"));
        return;
      }
      respond(SvcResponse::ok(view_epoch(), "D" + it->second.data));
      return;
    }
    case SvcOp::LogTail: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      respond(SvcResponse::ok(view_epoch(), std::to_string(global_tail())));
      return;
    }
    case SvcOp::LogAppend: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      if (sealed()) {
        // The CORFU fence: a sealed shard refuses new appends until a
        // view change advances the epoch past the seal. Same outcome as
        // an epoch fence, so the client SDK's re-fence path handles both.
        respond(SvcResponse::invalid_epoch(view_epoch()));
        return;
      }
      if (!is_coordinator()) {
        respond(SvcResponse::not_leader(
            eview().view.id.coordinator.site.value, view_epoch()));
        return;
      }
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(OpKind::Append));
      enc.put_string(req.value);
      svc_multicast(std::move(enc).take(), std::move(respond), [this]() {
        // Runs right after apply_append assigned this op's position.
        const std::uint64_t global =
            last_assigned_local_ * config_.shard_count + config_.shard_index;
        return SvcResponse::ok(view_epoch(), std::to_string(global));
      });
      return;
    }
    case SvcOp::LogSeal: {
      const auto epoch = parse_u64(req.key);
      if (!epoch) {
        respond(SvcResponse::unsupported());
        return;
      }
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      if (!is_coordinator()) {
        respond(SvcResponse::not_leader(
            eview().view.id.coordinator.site.value, view_epoch()));
        return;
      }
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(OpKind::Seal));
      enc.put_varint(*epoch);
      svc_multicast(std::move(enc).take(), std::move(respond), [this]() {
        return SvcResponse::ok(view_epoch(),
                               std::to_string(sealed_epoch_));
      });
      return;
    }
    case SvcOp::LogTrim:
    case SvcOp::LogFill: {
      const auto global = parse_u64(req.key);
      if (!global || *global % config_.shard_count != config_.shard_index) {
        respond(SvcResponse::unsupported());
        return;
      }
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      if (!is_coordinator()) {
        respond(SvcResponse::not_leader(
            eview().view.id.coordinator.site.value, view_epoch()));
        return;
      }
      const std::uint64_t local = *global / config_.shard_count;
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(
          req.op == SvcOp::LogTrim ? OpKind::Trim : OpKind::Fill));
      enc.put_varint(local);
      const std::string echo = req.key;
      svc_multicast(std::move(enc).take(), std::move(respond),
                    [this, echo]() {
                      return SvcResponse::ok(view_epoch(), echo);
                    });
      return;
    }
    default:
      respond(SvcResponse::unsupported());
  }
}

void LogShard::on_object_deliver(ProcessId sender, const Bytes& payload) {
  (void)sender;
  Decoder dec(payload);
  switch (static_cast<OpKind>(dec.get_u8())) {
    case OpKind::Append:
      apply_append(dec.get_string());
      break;
    case OpKind::Seal:
      apply_seal(dec.get_varint());
      break;
    case OpKind::Trim:
      apply_trim(dec.get_varint());
      break;
    case OpKind::Fill:
      apply_fill(dec.get_varint());
      break;
  }
}

void LogShard::apply_append(std::string record) {
  // Position assignment and write are one step in the total order: every
  // replica assigns the same local position to the same multicast.
  // Appends ordered before a seal landed still apply after it — the
  // fence is at admission, the order stays deterministic.
  const std::uint64_t local = next_local_++;
  slots_[local] = LogSlot{false, std::move(record)};
  last_assigned_local_ = local;
  ++version_;
}

void LogShard::apply_fill(std::uint64_t local) {
  if (local < next_local_) {
    ++version_;  // occupied (data raced the fill and won) — no-op
    return;
  }
  // Junk-fill everything up to and including `local`: in-order global
  // readers fill positions front to back, so the range is length 1 in
  // practice; filling it densely keeps every position below the tail
  // occupied.
  for (std::uint64_t l = next_local_; l <= local; ++l)
    slots_[l] = LogSlot{true, {}};
  next_local_ = local + 1;
  last_assigned_local_ = local;
  ++version_;
}

void LogShard::apply_trim(std::uint64_t local) {
  if (local > trim_floor_) {
    trim_floor_ = std::min(local, next_local_);
    slots_.erase(slots_.begin(), slots_.lower_bound(trim_floor_));
  }
  ++version_;
}

void LogShard::apply_seal(std::uint64_t epoch) {
  sealed_epoch_ = std::max(sealed_epoch_, epoch);
  ++version_;
}

Bytes LogShard::encode_state(const LogShard& s) {
  Encoder enc;
  enc.put_varint(s.version_);
  enc.put_varint(s.next_local_);
  enc.put_varint(s.trim_floor_);
  enc.put_varint(s.sealed_epoch_);
  enc.put_varint(s.slots_.size());
  for (const auto& [local, slot] : s.slots_) {
    enc.put_varint(local);
    enc.put_u8(slot.filled ? 1 : 0);
    enc.put_string(slot.data);
  }
  return std::move(enc).take();
}

void LogShard::decode_state(Decoder& dec) {
  // Decode the whole snapshot into temporaries before committing: a
  // truncated or bit-flipped snapshot throws DecodeError with the shard's
  // state untouched (the settle engine counts the rejection); the old
  // in-place decode left half-mutated protocol state behind the throw.
  const std::uint64_t version = dec.get_varint();
  const std::uint64_t next_local = dec.get_varint();
  const std::uint64_t trim_floor = dec.get_varint();
  const std::uint64_t sealed_epoch = dec.get_varint();
  const std::uint64_t n = dec.get_varint();
  // Every slot costs at least 3 encoded bytes; a length field larger than
  // the remaining payload can ever justify is corruption, not a big log.
  if (n > dec.remaining()) throw DecodeError("LogShard: slot count too large");
  std::map<std::uint64_t, LogSlot> slots;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t local = dec.get_varint();
    LogSlot slot;
    slot.filled = dec.get_u8() != 0;
    slot.data = dec.get_string();
    slots[local] = std::move(slot);
  }
  dec.expect_end();
  version_ = version;
  next_local_ = next_local;
  trim_floor_ = trim_floor;
  sealed_epoch_ = sealed_epoch;
  slots_ = std::move(slots);
}

Bytes LogShard::snapshot_state() const { return encode_state(*this); }

void LogShard::install_state(const Bytes& snapshot) {
  Decoder dec(snapshot);
  decode_state(dec);
}

Bytes LogShard::merge_cluster_states(const std::vector<Bytes>& snapshots) {
  // Majority-only serving means clusters cannot diverge: the states are
  // prefixes of one history. Adopt the longest (ties: highest version),
  // which is exactly the most-advanced prefix.
  const Bytes* best = nullptr;
  std::uint64_t best_tail = 0;
  std::uint64_t best_version = 0;
  for (const Bytes& snapshot : snapshots) {
    // Validate the whole candidate, not just its header: a truncated or
    // bit-flipped snapshot must fail the merge here (counted upstream),
    // not win on a corrupt tail field and poison the install.
    Decoder dec(snapshot);
    const std::uint64_t version = dec.get_varint();
    const std::uint64_t tail = dec.get_varint();
    dec.get_varint();  // trim_floor
    dec.get_varint();  // sealed_epoch
    const std::uint64_t n = dec.get_varint();
    if (n > dec.remaining()) throw DecodeError("LogShard: slot count too large");
    for (std::uint64_t i = 0; i < n; ++i) {
      dec.get_varint();
      dec.get_u8();
      dec.get_string();
    }
    dec.expect_end();
    if (best == nullptr || tail > best_tail ||
        (tail == best_tail && version > best_version)) {
      best = &snapshot;
      best_tail = tail;
      best_version = version;
    }
  }
  if (best == nullptr)
    throw DecodeError("LogShard: no cluster state to merge");
  return *best;
}

std::string LogShard::admin_status_json() const {
  // The endpoint's JSON with the shard's own block spliced in.
  std::string base = app::GroupObjectBase::admin_status_json();
  EVS_CHECK(!base.empty() && base.back() == '}');
  base.pop_back();
  std::ostringstream os;
  os << base << ",\"log\":{\"shard\":" << config_.shard_index
     << ",\"shards\":" << config_.shard_count
     << ",\"global_tail\":" << global_tail()
     << ",\"local_tail\":" << next_local_
     << ",\"trim_floor\":" << trim_floor_
     << ",\"sealed_epoch\":" << sealed_epoch_
     << ",\"sealed\":" << (sealed() ? "true" : "false")
     << ",\"records\":" << slots_.size() << "}}";
  return os.str();
}

}  // namespace evs::log
