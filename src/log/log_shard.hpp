// Sharded shared log, part 1: one shard (CORFU-style, view-synchronous).
//
// The shared log is the classic shared-memory abstraction over a cluster:
// append(bytes) -> global position, read(pos), tail(), seal(epoch),
// fill(pos), trim(pos). We shard it across G group instances hosted by
// the same processes (src/net/runtime.hpp's multi-group hosting): each
// shard is one view-synchronous group whose sv-set sequencer *is* the
// CORFU sequencer — an append is an ordered object multicast, and every
// replica assigns the next shard-local position to it at delivery, so
// position assignment and the write are one atomic step in the total
// order (no holes can form inside a shard; fill exists for the *global*
// interleaving, see below).
//
// Global positions interleave shards round-robin:
//
//   global = local * G + shard_index        local = global / G
//   owning shard of a global position = global % G
//
// so G shards appending concurrently produce a dense global position
// space, each shard dense in its own residue class. The global tail is
// the max over shards of their next unassigned global position. A slow
// shard leaves the positions of its residue class unassigned while
// faster shards run ahead — fill(global_pos) force-occupies such a
// position with junk so in-order global readers are not blocked by it
// (CORFU's hole-filling, relocated to the shard map).
//
// Epoch fencing (CORFU's seal) reuses the view-epoch machinery: seal(e)
// is itself an ordered multicast; once applied, the shard refuses
// appends while its installed view epoch is <= e, answering
// InvalidEpoch{current} — exactly the outcome a client sees across an
// e-view change, so the client SDK's re-fence path covers both. A view
// change advances the epoch past the seal and re-opens the shard.
//
// A log shard serves only in a majority partition (can_serve): unlike the
// mergeable KV, a log must be single-copy ordered — two partitions both
// assigning positions would fork history. State merging after heals is
// therefore trivial: pick the longest prefix (clusters cannot diverge).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "app/group_object.hpp"

namespace evs::log {

struct LogShardConfig {
  app::GroupObjectConfig object;
  /// This shard's index and the shard count G of the sharded log.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
};

/// One record slot. Data records carry bytes; filled slots are junk
/// minted by fill(); trimmed slots are gone entirely (below trim_floor_).
struct LogSlot {
  bool filled = false;  // true: junk from fill(), data empty
  std::string data;
};

class LogShard : public app::GroupObjectBase {
 public:
  explicit LogShard(LogShardConfig config);

  std::uint32_t shard_index() const { return config_.shard_index; }
  std::uint32_t shard_count() const { return config_.shard_count; }

  /// Next unassigned *global* position of this shard's residue class
  /// (local tail mapped through the interleaving).
  std::uint64_t global_tail() const {
    return next_local_ * config_.shard_count + config_.shard_index;
  }
  std::uint64_t local_tail() const { return next_local_; }
  std::uint64_t trim_floor() const { return trim_floor_; }
  std::uint64_t sealed_epoch() const { return sealed_epoch_; }
  /// Sealed right now: appends refused until a view change outruns the
  /// sealed epoch.
  bool sealed() const { return view_epoch() <= sealed_epoch_; }
  std::size_t records() const { return slots_.size(); }

  std::string admin_status_json() const override;

 protected:
  /// Majority partitions only: a log forked across partitions is no log.
  bool can_serve(const std::vector<ProcessId>& members) const override;
  Bytes snapshot_state() const override;
  void install_state(const Bytes& snapshot) override;
  Bytes merge_cluster_states(const std::vector<Bytes>& snapshots) override;
  std::uint64_t state_version() const override { return version_; }
  void on_object_deliver(ProcessId sender, const Bytes& payload) override;
  /// LogRead/LogTail answered locally by any serving member; LogAppend/
  /// LogSeal/LogTrim/LogFill are ordered writes, accepted only at the
  /// view coordinator (NotLeader{coordinator_site} elsewhere) and
  /// completed when the multicast delivers back.
  void svc_dispatch(runtime::SvcRequest req,
                    runtime::SvcRespondFn respond) override;

 private:
  enum class OpKind : std::uint8_t {
    Append = 1,
    Seal = 2,
    Trim = 3,
    Fill = 4,
  };

  bool is_coordinator() const;
  /// Applies one ordered op; returns the local position it assigned
  /// (Append/Fill) or 0.
  void apply_append(std::string record);
  void apply_fill(std::uint64_t local);
  void apply_trim(std::uint64_t local);
  void apply_seal(std::uint64_t epoch);

  static Bytes encode_state(const LogShard& s);
  void decode_state(Decoder& dec);

  LogShardConfig config_;
  /// local position -> slot; keys in [trim_floor_, next_local_).
  std::map<std::uint64_t, LogSlot> slots_;
  std::uint64_t next_local_ = 0;   // next local position to assign
  std::uint64_t trim_floor_ = 0;   // local positions below are trimmed
  std::uint64_t sealed_epoch_ = 0;
  std::uint64_t version_ = 0;      // bumps on every applied op
  /// Local position assigned by the most recently applied Append/Fill —
  /// read by svc finish lambdas, which run right after the apply.
  std::uint64_t last_assigned_local_ = 0;
};

}  // namespace evs::log
