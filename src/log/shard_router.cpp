#include "log/shard_router.hpp"

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/check.hpp"

namespace evs::log {

using runtime::SvcOp;
using runtime::SvcRequest;
using runtime::SvcRespondFn;
using runtime::SvcResponse;
using runtime::SvcStatus;

namespace {

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty() || s.size() > 20) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return std::nullopt;
    v = v * 10 + digit;
  }
  return v;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool is_log_op(SvcOp op) {
  switch (op) {
    case SvcOp::LogAppend:
    case SvcOp::LogRead:
    case SvcOp::LogTail:
    case SvcOp::LogSeal:
    case SvcOp::LogTrim:
    case SvcOp::LogFill:
      return true;
    default:
      return false;
  }
}

}  // namespace

void ShardRouter::add_group(GroupId group, runtime::Node& node) {
  EVS_CHECK_MSG(!groups_.contains(group), "duplicate router group");
  groups_[group] = &node;
}

void ShardRouter::add_shard(std::uint32_t index, runtime::Node& node) {
  if (index >= shards_.size()) shards_.resize(index + 1, nullptr);
  EVS_CHECK_MSG(shards_[index] == nullptr, "duplicate router shard");
  shards_[index] = &node;
}

std::uint32_t ShardRouter::shard_for_key(const std::string& key) const {
  const std::uint64_t n = parse_u64(key).value_or(fnv1a(key));
  return static_cast<std::uint32_t>(n % shards_.size());
}

void ShardRouter::route(SvcRequest req, SvcRespondFn respond) {
  if (is_log_op(req.op)) {
    route_log(std::move(req), std::move(respond));
    return;
  }
  const auto it = groups_.find(req.group);
  if (it == groups_.end()) {
    ++stats_.unknown_group;
    respond(SvcResponse::unsupported());
    return;
  }
  ++stats_.routed_group;
  it->second->svc_request(std::move(req), std::move(respond));
}

void ShardRouter::route_log(SvcRequest req, SvcRespondFn respond) {
  if (shards_.empty()) {
    ++stats_.unknown_group;
    respond(SvcResponse::unsupported());
    return;
  }
  std::uint32_t shard = 0;
  switch (req.op) {
    case SvcOp::LogAppend:
      shard = shard_for_key(req.key);
      break;
    case SvcOp::LogRead:
    case SvcOp::LogTrim:
    case SvcOp::LogFill: {
      const auto global = parse_u64(req.key);
      if (!global) {
        ++stats_.bad_position;
        respond(SvcResponse::unsupported());
        return;
      }
      shard = static_cast<std::uint32_t>(*global % shards_.size());
      break;
    }
    case SvcOp::LogTail:
    case SvcOp::LogSeal:
      fan_out(std::move(req), std::move(respond));
      return;
    default:
      respond(SvcResponse::unsupported());
      return;
  }
  if (shards_[shard] == nullptr) {
    ++stats_.unknown_group;
    respond(SvcResponse::unsupported());
    return;
  }
  ++stats_.routed_shard;
  shards_[shard]->svc_request(std::move(req), std::move(respond));
}

void ShardRouter::fan_out(SvcRequest req, SvcRespondFn respond) {
  ++stats_.fanned_out;
  for (const runtime::Node* shard : shards_) {
    if (shard == nullptr) {
      respond(SvcResponse::unsupported());
      return;
    }
  }
  // One answer per shard; completion may be deferred (seal is an ordered
  // multicast), so the aggregate lives on the heap until the last shard
  // answers. Any non-Ok answer wins — the client's retry/redirect logic
  // then treats the whole-log op like a single-shard one.
  struct Aggregate {
    std::size_t awaiting = 0;
    bool tail = false;
    std::uint64_t max_tail = 0;
    std::uint64_t epoch = 0;
    std::optional<SvcResponse> failure;
    SvcRespondFn respond;
  };
  auto agg = std::make_shared<Aggregate>();
  agg->awaiting = shards_.size();
  agg->tail = req.op == SvcOp::LogTail;
  agg->respond = std::move(respond);
  for (runtime::Node* shard : shards_) {
    SvcRequest copy = req;
    shard->svc_request(std::move(copy), [agg](SvcResponse resp) {
      if (resp.status != SvcStatus::Ok && !agg->failure)
        agg->failure = resp;
      if (resp.status == SvcStatus::Ok && agg->tail) {
        const auto tail = parse_u64(resp.value);
        if (tail && *tail >= agg->max_tail) {
          agg->max_tail = *tail;
          agg->epoch = resp.view_epoch;
        }
      }
      EVS_CHECK(agg->awaiting > 0);
      if (--agg->awaiting > 0) return;
      if (agg->failure) {
        agg->respond(*agg->failure);
      } else if (agg->tail) {
        agg->respond(SvcResponse::ok(agg->epoch,
                                     std::to_string(agg->max_tail)));
      } else {
        agg->respond(SvcResponse::ok(0, "sealed"));
      }
    });
  }
}

}  // namespace evs::log
