#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/datagram.hpp"

namespace evs::net {

namespace {

sockaddr_in to_sockaddr(const PeerAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.ip);
  sa.sin_port = htons(addr.port);
  return sa;
}

std::uint64_t addr_key(std::uint32_t ip_host_order, std::uint16_t port) {
  return (std::uint64_t{ip_host_order} << 16) | port;
}

}  // namespace

UdpTransport::UdpTransport(EventLoop& loop, NodeConfig config)
    : loop_(loop), config_(std::move(config)) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  EVS_CHECK_MSG(fd_ >= 0, "socket() failed");

  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in bind_addr = to_sockaddr(config_.self_addr());
  EVS_CHECK_MSG(
      ::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr), sizeof(bind_addr)) ==
          0,
      "bind(" + config_.self_addr().str() + ") failed: " + std::strerror(errno));

  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  EVS_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) == 0);
  bound_port_ = ntohs(actual.sin_port);

  // Self included: a datagram we send to ourselves loops back through the
  // socket and must pass source validation like any other peer's.
  for (const auto& [site, addr] : config_.peers)
    addr_to_site_.emplace(addr_key(addr.ip, addr.port), site);

  loop_.add_fd(fd_, [this]() { on_readable(); });
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) {
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void UdpTransport::set_drop_site(SiteId site, bool on) {
  if (on) {
    drop_sites_.insert(site);
  } else {
    drop_sites_.erase(site);
  }
}

void UdpTransport::transmit(SiteId dest_site, std::uint32_t dest_incarnation,
                            const std::uint8_t* payload, std::size_t size) {
  if (drop_all_ || drop_sites_.contains(dest_site)) {
    ++stats_.dropped_rule;
    return;
  }
  const auto it = config_.peers.find(dest_site);
  if (it == config_.peers.end()) {
    ++stats_.dropped_unknown_peer;
    return;
  }
  if (size > kMaxPayload) {
    ++stats_.dropped_oversize;
    EVS_WARN("udp: payload of " << size << " bytes exceeds the datagram bound"
                                << " — dropped (dest " << to_string(dest_site)
                                << ")");
    return;
  }

  std::uint8_t header[kHeaderSize];
  encode_header(DatagramHeader{self(), dest_incarnation}, header);

  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = kHeaderSize;
  iov[1].iov_base = const_cast<std::uint8_t*>(payload);
  iov[1].iov_len = size;

  sockaddr_in dest = to_sockaddr(it->second);
  msghdr msg{};
  msg.msg_name = &dest;
  msg.msg_namelen = sizeof(dest);
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;

  if (::sendmsg(fd_, &msg, 0) < 0) {
    // A full socket buffer or transient network error is just loss — the
    // substrate assumes lossy links, so we count it and move on.
    ++stats_.send_errors;
    return;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += kHeaderSize + size;
}

void UdpTransport::send(ProcessId to, Bytes payload) {
  ++stats_.payload_copies;
  transmit(to.site, to.incarnation, payload.data(), payload.size());
}

void UdpTransport::send_to_site(SiteId site, Bytes payload) {
  ++stats_.payload_copies;
  transmit(site, /*dest_incarnation=*/0, payload.data(), payload.size());
}

void UdpTransport::send_multi(const std::vector<ProcessId>& recipients,
                              SharedBytes payload) {
  // Encode-once fan-out: every transmit scatter/gathers out of the one
  // shared buffer; only the 16-byte header is rebuilt per recipient.
  const Bytes& bytes = payload.bytes();
  for (const ProcessId to : recipients) {
    ++stats_.payloads_shared;
    transmit(to.site, to.incarnation, bytes.data(), bytes.size());
  }
}

void UdpTransport::on_readable() {
  // Headroom past kMaxPayload lets recvmsg flag (rather than silently
  // clip) a datagram larger than anything we would ever send.
  std::uint8_t buffer[kHeaderSize + kMaxPayload + 1];
  for (;;) {
    sockaddr_in src{};
    iovec iov{buffer, sizeof(buffer)};
    msghdr msg{};
    msg.msg_name = &src;
    msg.msg_namelen = sizeof(src);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;

    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      ++stats_.send_errors;  // unexpected socket error; keep serving
      return;
    }
    stats_.bytes_received += static_cast<std::uint64_t>(n);

    if ((msg.msg_flags & MSG_TRUNC) != 0) {
      ++stats_.dropped_truncated;
      continue;
    }
    // Source validation first: traffic from an address outside the peer
    // book is dropped before we even look at its bytes.
    const auto site_it = addr_to_site_.find(
        addr_key(ntohl(src.sin_addr.s_addr), ntohs(src.sin_port)));
    if (site_it == addr_to_site_.end()) {
      ++stats_.dropped_unknown_peer;
      continue;
    }
    const auto header = parse_header(buffer, static_cast<std::size_t>(n));
    if (!header) {
      ++stats_.dropped_malformed;
      continue;
    }
    // The claimed site must be the one the book maps the source address
    // to — a spoofed site id is malformed traffic.
    if (site_it->second != header->from.site) {
      ++stats_.dropped_malformed;
      continue;
    }
    if (drop_all_ || drop_sites_.contains(header->from.site)) {
      ++stats_.dropped_rule;
      continue;
    }
    // Incarnation addressing: datagrams for a previous incarnation of
    // this site die here, matching sim::Network's dropped_dead.
    if (header->dest_incarnation != 0 &&
        header->dest_incarnation != config_.incarnation) {
      ++stats_.dropped_stale_incarnation;
      continue;
    }
    ++stats_.datagrams_received;
    if (deliver_) {
      const Bytes payload(buffer + kHeaderSize, buffer + n);
      deliver_(header->from, payload);
    }
  }
}

void UdpTransport::export_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.counter(prefix + ".datagrams_sent").set(stats_.datagrams_sent);
  registry.counter(prefix + ".datagrams_received")
      .set(stats_.datagrams_received);
  registry.counter(prefix + ".bytes_sent").set(stats_.bytes_sent);
  registry.counter(prefix + ".bytes_received").set(stats_.bytes_received);
  registry.counter(prefix + ".payload_copies").set(stats_.payload_copies);
  registry.counter(prefix + ".payloads_shared").set(stats_.payloads_shared);
  registry.counter(prefix + ".dropped_malformed").set(stats_.dropped_malformed);
  registry.counter(prefix + ".dropped_truncated").set(stats_.dropped_truncated);
  registry.counter(prefix + ".dropped_unknown_peer")
      .set(stats_.dropped_unknown_peer);
  registry.counter(prefix + ".dropped_stale_incarnation")
      .set(stats_.dropped_stale_incarnation);
  registry.counter(prefix + ".dropped_rule").set(stats_.dropped_rule);
  registry.counter(prefix + ".dropped_oversize").set(stats_.dropped_oversize);
  registry.counter(prefix + ".send_errors").set(stats_.send_errors);
}

}  // namespace evs::net
