#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/datagram.hpp"

namespace evs::net {

namespace {

sockaddr_in to_sockaddr(const PeerAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.ip);
  sa.sin_port = htons(addr.port);
  return sa;
}

std::uint64_t addr_key(std::uint32_t ip_host_order, std::uint16_t port) {
  return (std::uint64_t{ip_host_order} << 16) | port;
}

void put_u32_le(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

/// sendmmsg's vlen bound per invocation (the kernel clamps at UIO_MAXIOV).
constexpr std::size_t kMaxBatch = 1024;

}  // namespace

UdpTransport::UdpTransport(EventLoop& loop, NodeConfig config)
    : loop_(loop), config_(std::move(config)), coalesce_(config_.coalesce) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  EVS_CHECK_MSG(fd_ >= 0, "socket() failed");

  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in bind_addr = to_sockaddr(config_.self_addr());
  EVS_CHECK_MSG(
      ::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr), sizeof(bind_addr)) ==
          0,
      "bind(" + config_.self_addr().str() + ") failed: " + std::strerror(errno));

  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  EVS_CHECK(::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) == 0);
  bound_port_ = ntohs(actual.sin_port);

  // Self included: a datagram we send to ourselves loops back through the
  // socket and must pass source validation like any other peer's.
  for (const auto& [site, addr] : config_.peers)
    addr_to_site_.emplace(addr_key(addr.ip, addr.port), site);

  // Receive pool: buffers, iovecs and source-address slots are wired to
  // their mmsghdrs once; only msg_namelen/msg_flags reset per recvmmsg.
  recv_buffers_.resize(std::size_t{kRecvBatch} * kRecvBufSize);
  recv_msgs_.resize(kRecvBatch);
  recv_iovs_.resize(kRecvBatch);
  recv_srcs_.resize(kRecvBatch);
  for (unsigned k = 0; k < kRecvBatch; ++k) {
    recv_iovs_[k] = iovec{&recv_buffers_[std::size_t{k} * kRecvBufSize],
                          kRecvBufSize};
    msghdr& hdr = recv_msgs_[k].msg_hdr;
    hdr = msghdr{};
    hdr.msg_name = &recv_srcs_[k];
    hdr.msg_namelen = sizeof(sockaddr_in);
    hdr.msg_iov = &recv_iovs_[k];
    hdr.msg_iovlen = 1;
  }

  loop_.add_fd(fd_, [this]() { on_readable(); });
  flush_hook_ = loop_.add_flush_hook([this]() { flush(); });
}

UdpTransport::~UdpTransport() {
  flush();  // best effort: frames queued before teardown are not stranded
  loop_.remove_flush_hook(flush_hook_);
  if (fd_ >= 0) {
    loop_.remove_fd(fd_);
    ::close(fd_);
  }
}

void UdpTransport::set_drop_site(SiteId site, bool on) {
  if (on) {
    drop_sites_.insert(site);
  } else {
    drop_sites_.erase(site);
  }
}

void UdpTransport::set_deliver(GroupId group, DeliverFn fn) {
  if (fn) {
    deliver_[group] = std::move(fn);
  } else {
    deliver_.erase(group);
  }
}

void UdpTransport::clear_deliver(GroupId group) { deliver_.erase(group); }

void UdpTransport::enqueue(GroupId group, SiteId site,
                           std::uint32_t dest_incarnation,
                           SharedBytes payload) {
  if (drop_all_ || drop_sites_.contains(site)) {
    ++stats_.dropped_rule;
    return;
  }
  if (!config_.peers.contains(site)) {
    ++stats_.dropped_unknown_peer;
    return;
  }
  if (payload.size() > kMaxPayload) {
    ++stats_.dropped_oversize;
    EVS_WARN("udp: payload of " << payload.size()
                                << " bytes exceeds the datagram bound"
                                << " — dropped (dest " << to_string(site)
                                << ")");
    return;
  }
  pending_.push_back(PendingFrame{site, dest_incarnation, group,
                                  current_trace_, std::move(payload)});
}

void UdpTransport::send(ProcessId to, Bytes payload) {
  send(kDefaultGroup, to, std::move(payload));
}

void UdpTransport::send_to_site(SiteId site, Bytes payload) {
  send_to_site(kDefaultGroup, site, std::move(payload));
}

void UdpTransport::send_multi(const std::vector<ProcessId>& recipients,
                              SharedBytes payload) {
  send_multi(kDefaultGroup, recipients, std::move(payload));
}

void UdpTransport::send(GroupId group, ProcessId to, Bytes payload) {
  ++stats_.payload_copies;
  enqueue(group, to.site, to.incarnation, SharedBytes(std::move(payload)));
}

void UdpTransport::send_to_site(GroupId group, SiteId site, Bytes payload) {
  ++stats_.payload_copies;
  enqueue(group, site, /*dest_incarnation=*/0, SharedBytes(std::move(payload)));
}

void UdpTransport::send_multi(GroupId group,
                              const std::vector<ProcessId>& recipients,
                              SharedBytes payload) {
  // Encode-once fan-out: every recipient's queue entry refcounts the one
  // shared buffer; the flush scatter/gathers straight out of it.
  for (const ProcessId to : recipients) {
    ++stats_.payloads_shared;
    enqueue(group, to.site, to.incarnation, payload);
  }
}

void UdpTransport::flush() {
  if (pending_.empty()) return;

  // Group queued frames by (site, incarnation, group, trace) in
  // first-appearance order; per-destination FIFO order is what coalescing
  // and the receiver's split preserve end to end. Group id and trace
  // context live in the datagram header, so frames of different groups —
  // or of different traced requests — never share a coalesced datagram.
  flush_groups_.clear();
  flush_group_order_.clear();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const FlushKey key{pending_[i].site, pending_[i].dest_incarnation,
                       pending_[i].group, pending_[i].trace};
    auto [it, inserted] = flush_groups_.try_emplace(key);
    if (inserted) flush_group_order_.push_back(key);
    it->second.push_back(i);
  }

  // Header/prefix/destination arenas are sized up front from worst-case
  // bounds (one datagram and one prefix per frame), so pointers taken
  // into them below stay stable. iovecs are patched in afterwards.
  const std::size_t n = pending_.size();
  out_headers_.resize(n * kHeaderSize);
  out_prefixes_.resize(n * kSubFramePrefix);
  out_dests_.resize(n);
  out_msgs_.clear();
  out_iov_first_.clear();
  out_iovs_.clear();
  out_frame_counts_.clear();
  out_sizes_.clear();
  out_groups_.clear();
  out_payload_bytes_.clear();

  for (const FlushKey& key : flush_group_order_) {
    const std::vector<std::size_t>& frames = flush_groups_[key];
    const auto peer = config_.peers.find(key.site);
    if (peer == config_.peers.end()) continue;  // guarded at enqueue
    const sockaddr_in dest = to_sockaddr(peer->second);

    std::size_t i = 0;
    while (i < frames.size()) {
      // Greedy pack: as many following frames for this destination as fit
      // under kMaxPayload (with their length prefixes) and the frame cap.
      std::size_t count = 1;
      if (coalesce_) {
        std::size_t wire =
            kSubFramePrefix + pending_[frames[i]].payload.size();
        while (i + count < frames.size() && count < kMaxFramesPerDatagram) {
          const std::size_t next =
              kSubFramePrefix + pending_[frames[i + count]].payload.size();
          if (wire + next > kMaxPayload) break;
          wire += next;
          ++count;
        }
      }

      const std::size_t d = out_msgs_.size();
      std::uint8_t* header = &out_headers_[d * kHeaderSize];
      encode_header(DatagramHeader{self(), key.incarnation, key.group,
                                   key.trace, /*coalesced=*/count > 1},
                    header);
      out_dests_[d] = dest;

      const std::size_t iov_first = out_iovs_.size();
      out_iovs_.push_back(iovec{header, kHeaderSize});
      std::size_t dgram_bytes = kHeaderSize;
      std::size_t payload_bytes = 0;
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t frame = frames[i + k];
        const Bytes& bytes = pending_[frame].payload.bytes();
        if (count > 1) {
          std::uint8_t* prefix = &out_prefixes_[frame * kSubFramePrefix];
          put_u32_le(prefix, static_cast<std::uint32_t>(bytes.size()));
          out_iovs_.push_back(iovec{prefix, kSubFramePrefix});
          dgram_bytes += kSubFramePrefix;
        }
        out_iovs_.push_back(
            iovec{const_cast<std::uint8_t*>(bytes.data()), bytes.size()});
        dgram_bytes += bytes.size();
        payload_bytes += bytes.size();
      }

      mmsghdr msg{};
      msg.msg_hdr.msg_name = &out_dests_[d];
      msg.msg_hdr.msg_namelen = sizeof(sockaddr_in);
      msg.msg_hdr.msg_iovlen = out_iovs_.size() - iov_first;
      out_msgs_.push_back(msg);
      out_iov_first_.push_back(iov_first);
      out_frame_counts_.push_back(static_cast<std::uint32_t>(count));
      out_sizes_.push_back(dgram_bytes);
      out_groups_.push_back(key.group);
      out_payload_bytes_.push_back(payload_bytes);
      i += count;
    }
  }

  // All iovecs exist now; point each message at its range.
  for (std::size_t d = 0; d < out_msgs_.size(); ++d)
    out_msgs_[d].msg_hdr.msg_iov = &out_iovs_[out_iov_first_[d]];

  std::size_t base = 0;
  while (base < out_msgs_.size()) {
    const auto vlen = static_cast<unsigned>(
        std::min(out_msgs_.size() - base, kMaxBatch));
    ++stats_.sendmsg_calls;
    const int sent = ::sendmmsg(fd_, &out_msgs_[base], vlen, 0);
    if (sent <= 0) {
      // A full socket buffer or transient network error is loss for the
      // datagram at the head of the batch — the substrate assumes lossy
      // links — and the rest of the batch still gets its chance.
      ++stats_.send_errors;
      ++base;
      continue;
    }
    for (int k = 0; k < sent; ++k) {
      const std::size_t d = base + static_cast<std::size_t>(k);
      ++stats_.datagrams_sent;
      stats_.bytes_sent += out_sizes_[d];
      stats_.frames_sent += out_frame_counts_[d];
      if (out_frame_counts_[d] > 1) ++stats_.datagrams_coalesced;
      GroupWireStats& gs = group_stats_[out_groups_[d]];
      gs.frames_sent += out_frame_counts_[d];
      gs.frame_bytes_sent += out_payload_bytes_[d];
    }
    base += static_cast<std::size_t>(sent);
  }

  pending_.clear();
}

void UdpTransport::on_readable() {
  for (;;) {
    for (unsigned k = 0; k < kRecvBatch; ++k) {
      recv_msgs_[k].msg_hdr.msg_namelen = sizeof(sockaddr_in);
      recv_msgs_[k].msg_hdr.msg_flags = 0;
    }
    ++stats_.recvmsg_calls;
    const int got = ::recvmmsg(fd_, recv_msgs_.data(), kRecvBatch, 0, nullptr);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      ++stats_.recv_errors;  // unexpected socket error; keep serving
      return;
    }
    for (int k = 0; k < got; ++k) {
      handle_datagram(recv_srcs_[k],
                      &recv_buffers_[std::size_t{static_cast<unsigned>(k)} *
                                     kRecvBufSize],
                      recv_msgs_[k].msg_len, recv_msgs_[k].msg_hdr.msg_flags);
    }
    // A short batch means the queue is drained; if a datagram lands right
    // after, level-triggered epoll fires this handler again.
    if (got < static_cast<int>(kRecvBatch)) return;
  }
}

void UdpTransport::handle_datagram(const sockaddr_in& src,
                                   const std::uint8_t* data, std::size_t n,
                                   int flags) {
  stats_.bytes_received += n;

  if ((flags & MSG_TRUNC) != 0) {
    ++stats_.dropped_truncated;
    return;
  }
  // Source validation first: traffic from an address outside the peer
  // book is dropped before we even look at its bytes.
  const auto site_it = addr_to_site_.find(
      addr_key(ntohl(src.sin_addr.s_addr), ntohs(src.sin_port)));
  if (site_it == addr_to_site_.end()) {
    ++stats_.dropped_unknown_peer;
    return;
  }
  const auto header = parse_header(data, n);
  if (!header) {
    ++stats_.dropped_malformed;
    return;
  }
  // The claimed site must be the one the book maps the source address
  // to — a spoofed site id is malformed traffic.
  if (site_it->second != header->from.site) {
    ++stats_.dropped_malformed;
    return;
  }
  if (drop_all_ || drop_sites_.contains(header->from.site)) {
    ++stats_.dropped_rule;
    return;
  }
  // Incarnation addressing: datagrams for a previous incarnation of
  // this site die here, matching sim::Network's dropped_dead.
  if (header->dest_incarnation != 0 &&
      header->dest_incarnation != config_.incarnation) {
    ++stats_.dropped_stale_incarnation;
    return;
  }
  // Group demux: a datagram for a group this process does not host (a
  // torn-down instance, or a misconfigured peer) dies here, loudly
  // countable, before any frame is surfaced.
  const auto sink = deliver_.find(header->group);
  if (sink == deliver_.end()) {
    ++stats_.dropped_unknown_group;
    return;
  }
  GroupWireStats& gs = group_stats_[header->group];
  if (!header->coalesced) {
    ++stats_.datagrams_received;
    ++stats_.frames_received;
    ++gs.frames_received;
    gs.frame_bytes_received += n - kHeaderSize;
    const Bytes payload(data + kHeaderSize, data + n);
    sink->second(header->from, payload);
    return;
  }
  // Coalesced: validate the entire payload before delivering any frame —
  // one bad sub-frame length rejects the whole datagram.
  if (!split_subframes(data + kHeaderSize, n - kHeaderSize,
                       subframe_scratch_)) {
    ++stats_.dropped_malformed;
    return;
  }
  ++stats_.datagrams_received;
  stats_.frames_received += subframe_scratch_.size();
  gs.frames_received += subframe_scratch_.size();
  for (const auto& [offset, length] : subframe_scratch_) {
    gs.frame_bytes_received += length;
    const std::uint8_t* frame = data + kHeaderSize + offset;
    const Bytes payload(frame, frame + length);
    // Re-resolve per frame: a delivery may unhost its own group
    // (clear_deliver from inside the callback), invalidating `sink`.
    const auto s = deliver_.find(header->group);
    if (s == deliver_.end()) break;
    s->second(header->from, payload);
  }
}

GroupWireStats UdpTransport::group_stats(GroupId group) const {
  const auto it = group_stats_.find(group);
  return it == group_stats_.end() ? GroupWireStats{} : it->second;
}

void UdpTransport::export_metrics(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.counter(prefix + ".datagrams_sent").set(stats_.datagrams_sent);
  registry.counter(prefix + ".datagrams_received")
      .set(stats_.datagrams_received);
  registry.counter(prefix + ".bytes_sent").set(stats_.bytes_sent);
  registry.counter(prefix + ".bytes_received").set(stats_.bytes_received);
  registry.counter(prefix + ".frames_sent").set(stats_.frames_sent);
  registry.counter(prefix + ".frames_received").set(stats_.frames_received);
  registry.counter(prefix + ".datagrams_coalesced")
      .set(stats_.datagrams_coalesced);
  registry.counter(prefix + ".syscalls.sendmsg_calls")
      .set(stats_.sendmsg_calls);
  registry.counter(prefix + ".syscalls.recvmsg_calls")
      .set(stats_.recvmsg_calls);
  registry.counter(prefix + ".payload_copies").set(stats_.payload_copies);
  registry.counter(prefix + ".payloads_shared").set(stats_.payloads_shared);
  registry.counter(prefix + ".dropped_malformed").set(stats_.dropped_malformed);
  registry.counter(prefix + ".dropped_truncated").set(stats_.dropped_truncated);
  registry.counter(prefix + ".dropped_unknown_peer")
      .set(stats_.dropped_unknown_peer);
  registry.counter(prefix + ".dropped_stale_incarnation")
      .set(stats_.dropped_stale_incarnation);
  registry.counter(prefix + ".dropped_rule").set(stats_.dropped_rule);
  registry.counter(prefix + ".dropped_oversize").set(stats_.dropped_oversize);
  registry.counter(prefix + ".dropped_unknown_group")
      .set(stats_.dropped_unknown_group);
  registry.counter(prefix + ".send_errors").set(stats_.send_errors);
  registry.counter(prefix + ".recv_errors").set(stats_.recv_errors);
  registry.gauge(prefix + ".frames_per_datagram")
      .set(stats_.datagrams_sent == 0
               ? 0.0
               : static_cast<double>(stats_.frames_sent) /
                     static_cast<double>(stats_.datagrams_sent));
  // Per-group traffic slices, only once more than the default group has
  // traffic — single-group runs keep their flat metric namespace.
  if (group_stats_.size() > 1 ||
      (group_stats_.size() == 1 &&
       group_stats_.begin()->first != kDefaultGroup)) {
    for (const auto& [group, gs] : group_stats_) {
      const std::string g = prefix + ".group" + std::to_string(group);
      registry.counter(g + ".frames_sent").set(gs.frames_sent);
      registry.counter(g + ".frames_received").set(gs.frames_received);
      registry.counter(g + ".frame_bytes_sent").set(gs.frame_bytes_sent);
      registry.counter(g + ".frame_bytes_received")
          .set(gs.frame_bytes_received);
    }
  }
}

}  // namespace evs::net
