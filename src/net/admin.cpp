#include "net/admin.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace evs::net {

namespace {

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 413: return "Payload Too Large";
    case 503: return "Service Unavailable";
    default: return "?";
  }
}

/// Parses a decimal u64; rejects empty, non-digit, and values that do not
/// fit (a silent wrap would turn since=2^64 into since=0 and replay the
/// whole trace).
bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

/// Parses /trace's query: any &-separated combination of "since=<u64>"
/// and "req=<u64>" (each at most once). Empty query is since=0 with no
/// request filter; anything else — unknown keys, empty or overflowing
/// values — is malformed.
bool parse_trace_query(const std::string& query, std::uint64_t& since,
                       bool& req_filter, std::uint64_t& req) {
  since = 0;
  req_filter = false;
  req = 0;
  if (query.empty()) return true;
  std::size_t pos = 0;
  bool saw_since = false;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    pos = amp + 1;
    constexpr std::string_view kSince = "since=";
    constexpr std::string_view kReq = "req=";
    if (pair.size() > kSince.size() &&
        pair.compare(0, kSince.size(), kSince) == 0) {
      if (saw_since || !parse_u64(pair.substr(kSince.size()), since))
        return false;
      saw_since = true;
    } else if (pair.size() > kReq.size() &&
               pair.compare(0, kReq.size(), kReq) == 0) {
      if (req_filter || !parse_u64(pair.substr(kReq.size()), req) || req == 0)
        return false;
      req_filter = true;
    } else {
      return false;
    }
    if (pos > query.size()) break;
  }
  return true;
}

char ascii_lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Case-insensitive header lookup in a raw header block ("Name: value"
/// lines); returns the value with surrounding blanks stripped.
std::optional<std::string> find_header(const std::string& headers,
                                       std::string_view name) {
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find('\n', pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string_view line =
        std::string_view(headers).substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon != name.size()) continue;
    bool match = true;
    for (std::size_t i = 0; i < name.size(); ++i) {
      if (ascii_lower(line[i]) != ascii_lower(name[i])) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    std::size_t begin = colon + 1;
    std::size_t end = line.size();
    while (begin < end && (line[begin] == ' ' || line[begin] == '\t')) ++begin;
    while (end > begin &&
           (line[end - 1] == ' ' || line[end - 1] == '\t' ||
            line[end - 1] == '\r'))
      --end;
    return std::string(line.substr(begin, end - begin));
  }
  return std::nullopt;
}

/// Pulls `key`'s value out of an application/x-www-form-urlencoded body
/// ("a=1&b=2"); empty string when absent. No percent-decoding: tokens and
/// our parameter names never need it.
std::string body_param(const std::string& body, std::string_view key) {
  std::size_t pos = 0;
  while (pos <= body.size()) {
    std::size_t amp = body.find('&', pos);
    if (amp == std::string::npos) amp = body.size();
    const std::string_view pair =
        std::string_view(body).substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.size() > key.size() && pair[key.size()] == '=' &&
        pair.compare(0, key.size(), key) == 0)
      return std::string(pair.substr(key.size() + 1));
  }
  return {};
}

}  // namespace

std::uint64_t admin_command_code(const std::string& name) {
  if (name == "join") return 1;
  if (name == "leave") return 2;
  if (name == "merge-all") return 3;
  if (name == "merge") return 4;
  return 0;
}

AdminServer::AdminServer(EventLoop& loop, std::uint32_t ip, std::uint16_t port)
    : loop_(loop),
      listener_(
          loop, ip, port,
          TcpListener::Callbacks{
              .at_capacity =
                  [this]() { return connections_.size() >= kMaxConnections; },
              .on_connection = [this](int fd) { on_connection(fd); },
              .on_shed = [this]() { ++stats_.dropped_overload; },
          },
          "admin") {}

AdminServer::~AdminServer() {
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
}

void AdminServer::on_connection(int fd) {
  ++stats_.connections_accepted;
  connections_.emplace(fd, Connection{});
  loop_.add_fd(fd, [this, fd]() { on_readable(fd); });
}

void AdminServer::on_readable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {  // peer closed; nothing more to serve it
      close_connection(fd);
      return;
    }
    if (n < 0) break;  // EAGAIN (or transient): wait for the next wake
    if (conn.responded) continue;  // draining a late-talking client
    conn.in.append(buf, static_cast<std::size_t>(n));
    // A complete header section is the request line plus headers up to a
    // blank line; a POST body (bounded separately) follows it.
    std::size_t terminator = conn.in.find("\r\n\r\n");
    std::size_t terminator_len = 4;
    const std::size_t bare = conn.in.find("\n\n");
    if (bare != std::string::npos &&
        (terminator == std::string::npos || bare < terminator)) {
      terminator = bare;
      terminator_len = 2;
    }
    if (terminator == std::string::npos) {
      if (conn.in.size() > kMaxRequestBytes) {
        ++stats_.dropped_oversize;
        start_response(fd, conn, 400, "text/plain", "request too large\n", {});
        return;
      }
      continue;
    }
    handle_request(fd, conn, terminator + terminator_len);
    // A fully-flushed response closes and erases the connection, so conn
    // may be gone here — re-look it up before touching it again.
    const auto again = connections_.find(fd);
    if (again == connections_.end() || again->second.responded) return;
    // POST body still in flight: keep reading (the declared length has
    // already been checked against kMaxBodyBytes, so growth is bounded).
  }
}

void AdminServer::handle_request(int fd, Connection& conn,
                                 std::size_t body_at) {
  const std::size_t eol = conn.in.find_first_of("\r\n");
  const std::string line = conn.in.substr(0, eol);
  // Strict request line: <METHOD> <target> HTTP/1.x — exactly three tokens.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  const bool shaped = sp1 != std::string::npos && sp2 != std::string::npos &&
                      sp2 > sp1 + 1 && sp2 + 1 < line.size() &&
                      line.find(' ', sp2 + 1) == std::string::npos;
  const std::string method = shaped ? line.substr(0, sp1) : std::string{};
  if (!shaped || (method != "GET" && method != "POST") ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    ++stats_.dropped_malformed;
    start_response(fd, conn, 400, "text/plain", "bad request\n", {});
    return;
  }
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? std::string{} : target.substr(qmark + 1);
  const std::string headers = conn.in.substr(eol, body_at - eol);

  if (method == "POST") {
    std::uint64_t length = 0;
    if (const auto cl = find_header(headers, "content-length")) {
      if (!parse_u64(*cl, length)) {
        ++stats_.dropped_malformed;
        start_response(fd, conn, 400, "text/plain", "bad content-length\n",
                       {});
        return;
      }
    }
    if (length > kMaxBodyBytes) {
      ++stats_.dropped_oversize;
      start_response(fd, conn, 413, "text/plain", "body too large\n", {});
      return;
    }
    if (conn.in.size() < body_at + length) return;  // body still in flight
    const std::string body = conn.in.substr(body_at, length);
    handle_command(fd, conn, path, query, headers, body);
    return;
  }

  std::string extra_headers;
  std::string content_type = "text/plain";
  bool ok = true;
  std::string body = route(path, query, extra_headers, content_type, ok);
  if (!ok) {
    ++stats_.dropped_malformed;
    start_response(fd, conn, 400, "text/plain", std::move(body), {});
    return;
  }
  if (body.empty() && content_type.empty()) {  // route said 404
    ++stats_.not_found;
    start_response(fd, conn, 404, "text/plain", "not found\n", {});
    return;
  }
  if (content_type == "unavailable") {
    start_response(fd, conn, 503, "text/plain", std::move(body), {});
    return;
  }
  ++stats_.requests_ok;
  start_response(fd, conn, 200, content_type, std::move(body), extra_headers);
}

std::string AdminServer::route(const std::string& path,
                               const std::string& query,
                               std::string& extra_headers,
                               std::string& content_type, bool& ok) {
  if (path == "/status") {
    if (!status_) {
      content_type = "unavailable";
      return "no status provider\n";
    }
    content_type = "application/json";
    return status_();
  }
  if (path == "/metrics" || path == "/metrics.prom") {
    if (registry_ == nullptr) {
      content_type = "unavailable";
      return "no metrics registry\n";
    }
    if (refresh_) refresh_();
    if (path == "/metrics") {
      content_type = "application/json";
      return registry_->to_json() + "\n";
    }
    content_type = "text/plain; version=0.0.4";
    return registry_->to_prometheus();
  }
  if (path == "/trace") {
    if (trace_ == nullptr) {
      content_type = "unavailable";
      return "no trace bus\n";
    }
    std::uint64_t since = 0;
    bool req_filter = false;
    std::uint64_t req = 0;
    if (!parse_trace_query(query, since, req_filter, req)) {
      ok = false;
      return "bad trace query (since=<u64>, req=<u64>)\n";
    }
    std::uint64_t next = since;
    std::ostringstream os;
    for (const auto& [index, event] :
         trace_->events_since(since, kMaxTraceEvents, &next)) {
      // req= narrows the tail to one traced request's lifecycle hops
      // (the Request* kinds carry the trace id in their seq field).
      if (req_filter &&
          !(obs::is_request_event(event.kind) && event.seq == req))
        continue;
      obs::write_jsonl_event(os, event, &index);
    }
    extra_headers =
        "X-Evs-Next-Since: " + std::to_string(next) + "\r\n";
    content_type = "application/x-ndjson";
    return os.str();
  }
  if (path == "/health") {
    if (!health_) {
      content_type = "unavailable";
      return "no health provider\n";
    }
    content_type = "application/json";
    return health_();
  }
  content_type.clear();  // 404
  return {};
}

void AdminServer::handle_command(int fd, Connection& conn,
                                 const std::string& path,
                                 const std::string& query,
                                 const std::string& headers,
                                 const std::string& body) {
  std::string name;
  std::string arg;
  if (path == "/join" || path == "/leave" || path == "/merge-all") {
    if (!query.empty()) {
      ++stats_.dropped_malformed;
      start_response(fd, conn, 400, "text/plain", "unexpected query\n", {});
      return;
    }
    name = path.substr(1);
  } else if (path == "/merge") {
    constexpr std::string_view kKey = "svset=";
    if (query.size() <= kKey.size() ||
        query.compare(0, kKey.size(), kKey) != 0) {
      ++stats_.dropped_malformed;
      start_response(fd, conn, 400, "text/plain",
                     "merge requires ?svset=<id>,<id>,...\n", {});
      return;
    }
    name = "merge";
    arg = query.substr(kKey.size());
  } else {
    ++stats_.not_found;
    start_response(fd, conn, 404, "text/plain", "not found\n", {});
    return;
  }

  // Authenticate before touching the node: header token first, then the
  // form body. An unconfigured token keeps the whole write side off.
  std::string presented;
  if (const auto header_token = find_header(headers, "x-admin-token"))
    presented = *header_token;
  if (presented.empty()) presented = body_param(body, "token");
  if (token_.empty()) {
    ++stats_.dropped_unauthorized;
    start_response(fd, conn, 403, "text/plain",
                   "admin write side disabled (no admin_token configured)\n",
                   {});
    return;
  }
  if (presented != token_) {
    ++stats_.dropped_unauthorized;
    start_response(fd, conn, 401, "text/plain", "unauthorized\n", {});
    return;
  }

  if (!command_) {
    start_response(fd, conn, 503, "text/plain", "no command handler\n", {});
    return;
  }
  const AdminCommandResult result = command_(name, arg);
  if (!result.ok) {
    ++stats_.commands_rejected;
    std::string message =
        result.message.empty() ? "rejected" : result.message;
    start_response(fd, conn, 400, "text/plain", std::move(message) + "\n", {});
    return;
  }
  ++stats_.commands_ok;
  ++stats_.requests_ok;
  start_response(fd, conn, 200, "application/json",
                 "{\"ok\": true, \"command\": \"" + name + "\"}\n", {});
}

void AdminServer::start_response(int fd, Connection& conn, int code,
                                 const std::string& content_type,
                                 std::string body,
                                 const std::string& extra_headers) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << " " << reason_phrase(code) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << extra_headers << "\r\n";
  conn.out = os.str() + body;
  conn.in.clear();
  conn.in.shrink_to_fit();
  conn.responded = true;
  flush(fd, conn);
}

void AdminServer::flush(int fd, Connection& conn) {
  while (conn.sent < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.sent,
                             conn.out.size() - conn.sent, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Finish under write interest; a slow scraper never blocks the loop.
      loop_.set_writable(fd, [this, fd]() { on_writable(fd); });
      return;
    }
    break;  // broken pipe etc.: give up on this connection
  }
  close_connection(fd);
}

void AdminServer::on_writable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_.set_writable(fd, {});
  flush(fd, it->second);
}

void AdminServer::close_connection(int fd) {
  loop_.remove_fd(fd);
  ::close(fd);
  connections_.erase(fd);
}

void AdminServer::export_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.counter(prefix + ".connections_accepted")
      .set(stats_.connections_accepted);
  registry.counter(prefix + ".requests_ok").set(stats_.requests_ok);
  registry.counter(prefix + ".dropped_malformed").set(stats_.dropped_malformed);
  registry.counter(prefix + ".dropped_oversize").set(stats_.dropped_oversize);
  registry.counter(prefix + ".dropped_overload").set(stats_.dropped_overload);
  registry.counter(prefix + ".dropped_unauthorized")
      .set(stats_.dropped_unauthorized);
  registry.counter(prefix + ".not_found").set(stats_.not_found);
  registry.counter(prefix + ".commands_ok").set(stats_.commands_ok);
  registry.counter(prefix + ".commands_rejected")
      .set(stats_.commands_rejected);
}

}  // namespace evs::net
