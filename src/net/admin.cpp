#include "net/admin.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <string_view>
#include <vector>

#include "common/check.hpp"

namespace evs::net {

namespace {

const char* reason_phrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 503: return "Service Unavailable";
    default: return "?";
  }
}

/// Parses "since=<u64>" (the only query /trace accepts). Empty query is
/// since=0; anything else is malformed.
bool parse_since(const std::string& query, std::uint64_t& out) {
  out = 0;
  if (query.empty()) return true;
  constexpr std::string_view kKey = "since=";
  if (query.size() <= kKey.size() || query.compare(0, kKey.size(), kKey) != 0)
    return false;
  std::uint64_t value = 0;
  for (std::size_t i = kKey.size(); i < query.size(); ++i) {
    const char c = query[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

}  // namespace

AdminServer::AdminServer(EventLoop& loop, std::uint32_t ip, std::uint16_t port)
    : loop_(loop) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  EVS_CHECK_MSG(listen_fd_ >= 0, "admin: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip);
  addr.sin_port = htons(port);
  EVS_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "admin: cannot bind admin port");
  EVS_CHECK_MSG(::listen(listen_fd_, 16) == 0, "admin: listen() failed");
  socklen_t len = sizeof(addr);
  EVS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  bound_port_ = ntohs(addr.sin_port);
  loop_.add_fd(listen_fd_, [this]() { on_accept(); });
}

AdminServer::~AdminServer() {
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) close_connection(fd);
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void AdminServer::on_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next wake
    if (connections_.size() >= kMaxConnections) {
      // Shed load instead of queueing: the scraper will retry.
      ++stats_.dropped_overload;
      ::close(fd);
      continue;
    }
    ++stats_.connections_accepted;
    connections_.emplace(fd, Connection{});
    loop_.add_fd(fd, [this, fd]() { on_readable(fd); });
  }
}

void AdminServer::on_readable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) {  // peer closed; nothing more to serve it
      close_connection(fd);
      return;
    }
    if (n < 0) break;  // EAGAIN (or transient): wait for the next wake
    if (conn.responded) continue;  // draining a late-talking client
    conn.in.append(buf, static_cast<std::size_t>(n));
    if (conn.in.size() > kMaxRequestBytes) {
      ++stats_.dropped_oversize;
      start_response(fd, conn, 400, "text/plain", "request too large\n", {});
      return;
    }
    // A full request is the request line plus headers up to a blank line.
    if (conn.in.find("\r\n\r\n") != std::string::npos ||
        conn.in.find("\n\n") != std::string::npos) {
      handle_request(fd, conn);
      return;
    }
  }
}

void AdminServer::handle_request(int fd, Connection& conn) {
  const std::size_t eol = conn.in.find_first_of("\r\n");
  const std::string line = conn.in.substr(0, eol);
  // Strict request line: GET <target> HTTP/1.x — exactly three tokens.
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  const bool shaped = sp1 != std::string::npos && sp2 != std::string::npos &&
                      sp2 > sp1 + 1 && sp2 + 1 < line.size() &&
                      line.find(' ', sp2 + 1) == std::string::npos;
  if (!shaped || line.substr(0, sp1) != "GET" ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    ++stats_.dropped_malformed;
    start_response(fd, conn, 400, "text/plain", "bad request\n", {});
    return;
  }
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string extra_headers;
  std::string content_type = "text/plain";
  bool ok = true;
  std::string body = route(target, extra_headers, content_type, ok);
  if (!ok) {
    ++stats_.dropped_malformed;
    start_response(fd, conn, 400, "text/plain", std::move(body), {});
    return;
  }
  if (body.empty() && content_type.empty()) {  // route said 404
    ++stats_.not_found;
    start_response(fd, conn, 404, "text/plain", "not found\n", {});
    return;
  }
  if (content_type == "unavailable") {
    start_response(fd, conn, 503, "text/plain", std::move(body), {});
    return;
  }
  ++stats_.requests_ok;
  start_response(fd, conn, 200, content_type, std::move(body), extra_headers);
}

std::string AdminServer::route(const std::string& target,
                               std::string& extra_headers,
                               std::string& content_type, bool& ok) {
  const std::size_t qmark = target.find('?');
  const std::string path = target.substr(0, qmark);
  const std::string query =
      qmark == std::string::npos ? std::string{} : target.substr(qmark + 1);

  if (path == "/status") {
    if (!status_) {
      content_type = "unavailable";
      return "no status provider\n";
    }
    content_type = "application/json";
    return status_();
  }
  if (path == "/metrics" || path == "/metrics.prom") {
    if (registry_ == nullptr) {
      content_type = "unavailable";
      return "no metrics registry\n";
    }
    if (refresh_) refresh_();
    if (path == "/metrics") {
      content_type = "application/json";
      return registry_->to_json() + "\n";
    }
    content_type = "text/plain; version=0.0.4";
    return registry_->to_prometheus();
  }
  if (path == "/trace") {
    if (trace_ == nullptr) {
      content_type = "unavailable";
      return "no trace bus\n";
    }
    std::uint64_t since = 0;
    if (!parse_since(query, since)) {
      ok = false;
      return "bad since parameter\n";
    }
    std::uint64_t next = since;
    std::ostringstream os;
    for (const auto& [index, event] :
         trace_->events_since(since, kMaxTraceEvents, &next)) {
      obs::write_jsonl_event(os, event, &index);
    }
    extra_headers =
        "X-Evs-Next-Since: " + std::to_string(next) + "\r\n";
    content_type = "application/x-ndjson";
    return os.str();
  }
  content_type.clear();  // 404
  return {};
}

void AdminServer::start_response(int fd, Connection& conn, int code,
                                 const std::string& content_type,
                                 std::string body,
                                 const std::string& extra_headers) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << " " << reason_phrase(code) << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n"
     << extra_headers << "\r\n";
  conn.out = os.str() + body;
  conn.in.clear();
  conn.in.shrink_to_fit();
  conn.responded = true;
  flush(fd, conn);
}

void AdminServer::flush(int fd, Connection& conn) {
  while (conn.sent < conn.out.size()) {
    const ssize_t n = ::send(fd, conn.out.data() + conn.sent,
                             conn.out.size() - conn.sent, MSG_NOSIGNAL);
    if (n >= 0) {
      conn.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Finish under write interest; a slow scraper never blocks the loop.
      loop_.set_writable(fd, [this, fd]() { on_writable(fd); });
      return;
    }
    break;  // broken pipe etc.: give up on this connection
  }
  close_connection(fd);
}

void AdminServer::on_writable(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  loop_.set_writable(fd, {});
  flush(fd, it->second);
}

void AdminServer::close_connection(int fd) {
  loop_.remove_fd(fd);
  ::close(fd);
  connections_.erase(fd);
}

void AdminServer::export_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.counter(prefix + ".connections_accepted")
      .set(stats_.connections_accepted);
  registry.counter(prefix + ".requests_ok").set(stats_.requests_ok);
  registry.counter(prefix + ".dropped_malformed").set(stats_.dropped_malformed);
  registry.counter(prefix + ".dropped_oversize").set(stats_.dropped_oversize);
  registry.counter(prefix + ".dropped_overload").set(stats_.dropped_overload);
  registry.counter(prefix + ".not_found").set(stats_.not_found);
}

}  // namespace evs::net
