#include "net/tcp_listener.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "common/check.hpp"

namespace evs::net {

TcpListener::TcpListener(EventLoop& loop, std::uint32_t ip, std::uint16_t port,
                         Callbacks callbacks, const std::string& tag)
    : loop_(loop), callbacks_(std::move(callbacks)) {
  EVS_CHECK(callbacks_.on_connection != nullptr);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  EVS_CHECK_MSG(listen_fd_ >= 0, tag + ": socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ip);
  addr.sin_port = htons(port);
  EVS_CHECK_MSG(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      tag + ": cannot bind " + tag + " port");
  EVS_CHECK_MSG(::listen(listen_fd_, 128) == 0, tag + ": listen() failed");
  socklen_t len = sizeof(addr);
  EVS_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          &len) == 0);
  bound_port_ = ntohs(addr.sin_port);
  loop_.add_fd(listen_fd_, [this]() { on_accept(); });
}

TcpListener::~TcpListener() {
  if (listen_fd_ >= 0) {
    loop_.remove_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void TcpListener::on_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next wake
    if (callbacks_.at_capacity && callbacks_.at_capacity()) {
      // Shed load instead of queueing: the client will retry.
      ::close(fd);
      if (callbacks_.on_shed) callbacks_.on_shed();
      continue;
    }
    callbacks_.on_connection(fd);
  }
}

}  // namespace evs::net
