#include "net/timer_wheel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace evs::net {

void TimerWheel::place(Entry entry) {
  const std::uint64_t dtick = static_cast<std::uint64_t>(entry.deadline) >>
                              kTickBits;
  if (dtick < tick_) {
    imminent_.push_back(entry);
    index_[entry.id] =
        Location{kImminent, 0, std::prev(imminent_.end())};
    return;
  }
  const std::uint64_t delta = dtick - tick_;
  for (int level = 0; level < kLevels; ++level) {
    const int span_bits = kSlotBits * (level + 1);
    if (level + 1 < kLevels && span_bits < 64 &&
        (delta >> span_bits) != 0) {
      continue;  // farther than this level reaches
    }
    std::size_t idx = (dtick >> (kSlotBits * level)) & (kSlots - 1);
    if (level + 1 == kLevels && (delta >> (kSlotBits * kLevels)) != 0) {
      // Beyond even the top level's horizon (~2 years of ticks): park in
      // the farthest top slot; each wrap re-places it until it fits.
      idx = (static_cast<std::size_t>(tick_ >> (kSlotBits * level)) +
             kSlots - 1) &
            (kSlots - 1);
    }
    // A nearly-full-wrap deadline can hash onto the slot the wheel is
    // currently inside at this level; that slot's cascade has already
    // happened this round, so bump the entry one level up (where the
    // index provably differs) instead of parking it for a whole wrap.
    if (level > 0 && level + 1 < kLevels &&
        idx == ((tick_ >> (kSlotBits * level)) & (kSlots - 1))) {
      continue;
    }
    Slot& slot = slots_[level][idx];
    slot.push_back(entry);
    index_[entry.id] = Location{level, idx, std::prev(slot.end())};
    return;
  }
}

void TimerWheel::insert(SimTime deadline, std::uint64_t seq,
                        runtime::TimerId id) {
  EVS_CHECK_MSG(!index_.contains(id), "duplicate timer id in wheel");
  place(Entry{deadline, seq, id});
}

bool TimerWheel::erase(runtime::TimerId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const Location& loc = it->second;
  if (loc.level == kImminent) {
    imminent_.erase(loc.it);
  } else {
    slots_[loc.level][loc.slot].erase(loc.it);
  }
  index_.erase(it);
  return true;
}

void TimerWheel::advance(SimTime now) {
  const std::uint64_t target = static_cast<std::uint64_t>(now) >> kTickBits;
  while (tick_ <= target) {
    // Fast path: nothing bucketed in any slot (everything pending is
    // already staged), so the clock can jump without per-tick work.
    if (index_.size() == imminent_.size()) {
      tick_ = target + 1;
      return;
    }
    const std::size_t idx = tick_ & (kSlots - 1);
    if (idx == 0) {
      // Entering a new level-0 round: pull the matching higher-level
      // slots down, top level first only as far as rounds actually roll
      // over (level l+1 rolls only when level l's index wrapped to 0).
      for (int level = 1; level < kLevels; ++level) {
        const std::size_t i =
            (tick_ >> (kSlotBits * level)) & (kSlots - 1);
        Slot moved;
        moved.splice(moved.end(), slots_[level][i]);
        for (auto entry_it = moved.begin(); entry_it != moved.end();) {
          const Entry entry = *entry_it;
          entry_it = moved.erase(entry_it);
          index_.erase(entry.id);  // place() re-indexes at the new spot
          place(entry);
        }
        if (i != 0) break;
      }
    }
    Slot& slot = slots_[0][idx];
    while (!slot.empty()) {
      index_[slot.front().id] =
          Location{kImminent, 0, slot.begin()};
      imminent_.splice(imminent_.end(), slot, slot.begin());
    }
    ++tick_;
  }
}

void TimerWheel::collect_due(SimTime now, std::vector<Entry>& out) {
  advance(now);
  if (imminent_.empty()) return;
  // list::sort splices nodes in place, so the Location iterators held in
  // index_ stay valid across the reorder.
  imminent_.sort([](const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.seq < b.seq;
  });
  while (!imminent_.empty() && imminent_.front().deadline <= now) {
    out.push_back(imminent_.front());
    index_.erase(imminent_.front().id);
    imminent_.pop_front();
  }
}

std::optional<SimTime> TimerWheel::next_deadline_hint(SimTime now) {
  advance(now);
  std::optional<SimTime> best;
  const auto consider = [&best](SimTime t) {
    if (!best || t < *best) best = t;
  };
  for (const Entry& entry : imminent_) consider(entry.deadline);
  if (index_.size() == imminent_.size()) return best;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t cur = tick_ >> (kSlotBits * level);
    for (std::size_t j = 0; j < kSlots; ++j) {
      const Slot& slot = slots_[level][j];
      if (slot.empty()) continue;
      std::uint64_t absolute = (cur & ~(kSlots - 1)) | j;
      if (absolute < cur) absolute += kSlots;
      if (absolute == cur) {
        // The slot the wheel is currently inside at this level holds only
        // near-full-wrap entries; its base time is in the past, so use
        // the entries' real deadlines (the slot is small and this case
        // is rare).
        for (const Entry& entry : slot) consider(entry.deadline);
      } else {
        consider(static_cast<SimTime>(
            absolute << (kTickBits + kSlotBits * level)));
      }
    }
  }
  return best;
}

}  // namespace evs::net
