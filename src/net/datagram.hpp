// Real-time runtime, part 3: the UDP datagram envelope.
//
// The simulated network carries (from, payload) out of band; UDP gives us
// only a source address, so every datagram prepends a fixed 16-byte
// header to the unchanged gms::frame payload:
//
//   u32 magic "EVS1"      — rejects stray traffic on the port
//   u32 from.site         — sender identity (validated against the
//   u32 from.incarnation    address book: spoofed sites are dropped)
//   u32 dest_incarnation  — 0 for site-addressed traffic (heartbeats);
//                           otherwise the addressed incarnation, so a
//                           message to a dead incarnation is dropped by
//                           the receiver exactly as sim::Network drops it
//
// All fields little-endian, matching the codec. Parsing is total: any
// runt or mismatched buffer yields nullopt, never UB — headers are the
// first bytes of the system that a hostile network can reach.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/ids.hpp"

namespace evs::net {

inline constexpr std::uint32_t kDatagramMagic = 0x31535645;  // "EVS1" LE
inline constexpr std::size_t kHeaderSize = 16;
/// Largest payload we will send or accept in one datagram. UDP caps the
/// datagram at 65507 bytes; leaving header room gives the payload bound.
inline constexpr std::size_t kMaxPayload = 65507 - kHeaderSize;

struct DatagramHeader {
  ProcessId from;
  std::uint32_t dest_incarnation = 0;  // 0 = site-addressed

  bool operator==(const DatagramHeader&) const = default;
};

/// Writes exactly kHeaderSize bytes.
void encode_header(const DatagramHeader& header, std::uint8_t* out);

/// Validates magic and length; nullopt on any malformation.
std::optional<DatagramHeader> parse_header(const std::uint8_t* data,
                                           std::size_t size);

}  // namespace evs::net
