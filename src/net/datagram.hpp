// Real-time runtime, part 3: the UDP datagram envelope.
//
// The simulated network carries (from, payload) out of band; UDP gives us
// only a source address, so every datagram prepends a fixed 16-byte
// header to the unchanged gms::frame payload:
//
//   u32 magic "EVS1"      — rejects stray traffic on the port
//   u32 from.site         — sender identity (validated against the
//   u32 from.incarnation    address book: spoofed sites are dropped)
//   u32 dest_incarnation  — 0 for site-addressed traffic (heartbeats);
//                           otherwise the addressed incarnation, so a
//                           message to a dead incarnation is dropped by
//                           the receiver exactly as sim::Network drops it
//
// A second magic, "EVSB", marks a *coalesced* datagram: same header,
// but the payload is a sequence of length-prefixed sub-frames
//
//   [u32 len][len bytes of frame] [u32 len][frame] ...
//
// which the receiver splits back into individual protocol frames (same
// frames, same order — coalescing changes datagram counts, never wire
// semantics). Single-frame datagrams keep the plain "EVS1" form, so a
// coalescing sender stays wire-compatible with a pre-coalescing peer
// until it actually packs two frames together.
//
// All fields little-endian, matching the codec. Parsing is total: any
// runt or mismatched buffer yields nullopt, never UB — headers are the
// first bytes of the system that a hostile network can reach. Sub-frame
// splitting is equally total: the whole payload is validated before any
// frame is surfaced, so one malformed length poisons (rejects) the whole
// datagram rather than delivering a prefix of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace evs::net {

inline constexpr std::uint32_t kDatagramMagic = 0x31535645;  // "EVS1" LE
/// Coalesced-datagram magic: payload is length-prefixed sub-frames.
inline constexpr std::uint32_t kDatagramMagicBatch = 0x42535645;  // "EVSB" LE
inline constexpr std::size_t kHeaderSize = 16;
/// Length prefix of each sub-frame in a coalesced payload.
inline constexpr std::size_t kSubFramePrefix = 4;
/// Largest payload we will send or accept in one datagram. UDP caps the
/// datagram at 65507 bytes; leaving header room gives the payload bound.
inline constexpr std::size_t kMaxPayload = 65507 - kHeaderSize;

struct DatagramHeader {
  ProcessId from;
  std::uint32_t dest_incarnation = 0;  // 0 = site-addressed
  bool coalesced = false;  // "EVSB": payload holds length-prefixed frames

  bool operator==(const DatagramHeader&) const = default;
};

/// Writes exactly kHeaderSize bytes.
void encode_header(const DatagramHeader& header, std::uint8_t* out);

/// Validates magic and length; nullopt on any malformation.
std::optional<DatagramHeader> parse_header(const std::uint8_t* data,
                                           std::size_t size);

/// Splits a coalesced payload into (offset, length) sub-frame spans.
/// All-or-nothing: returns false (and clears `out`) unless the payload is
/// a non-empty sequence of [u32 LE len][len bytes] records, each len >= 1,
/// ending exactly at `size`.
bool split_subframes(const std::uint8_t* payload, std::size_t size,
                     std::vector<std::pair<std::size_t, std::size_t>>& out);

}  // namespace evs::net
