// Real-time runtime, part 3: the UDP datagram envelope (version 3).
//
// The simulated network carries (from, payload) out of band; UDP gives us
// only a source address, so every datagram prepends a fixed 28-byte
// header to the unchanged gms::frame payload:
//
//   u32 magic "EVS3"      — rejects stray traffic on the port
//   u32 from.site         — sender identity (validated against the
//   u32 from.incarnation    address book: spoofed sites are dropped)
//   u32 dest_incarnation  — 0 for site-addressed traffic (heartbeats);
//                           otherwise the addressed incarnation, so a
//                           message to a dead incarnation is dropped by
//                           the receiver exactly as sim::Network drops it
//   u32 group             — the group instance this frame belongs to. One
//                           process hosts many group instances over one
//                           socket; the messenger demuxes on this field.
//                           0 is the default group of single-group runs.
//   u64 trace             — propagated trace context: the sampled client
//                           request this datagram's frames were provoked
//                           by, 0 for everything untraced. Observability
//                           metadata only — delivery never branches on it.
//
// Older versions (v1 "EVS1"/"EVSB", v2 "EVS2"/"EVSC" without the trace
// field) are *rejected* into dropped_malformed: a mixed-version fleet
// would silently cross-wire or mis-frame traffic, so each envelope bump
// is a hard cut, same as any other unknown magic.
//
// A second magic, "EVSD", marks a *coalesced* datagram: same header,
// but the payload is a sequence of length-prefixed sub-frames
//
//   [u32 len][len bytes of frame] [u32 len][frame] ...
//
// which the receiver splits back into individual protocol frames (same
// frames, same order — coalescing changes datagram counts, never wire
// semantics). All frames of one coalesced datagram belong to the same
// group *and trace context*: the flush path packs per (site, incarnation,
// group, trace), so the header fields still label every sub-frame —
// untraced traffic (trace 0, the entirety of a sampling-off run) packs
// exactly as before. Single-frame datagrams keep the plain "EVS3" form,
// so a coalescing sender stays wire-compatible with a pre-coalescing peer
// until it actually packs two frames together.
//
// All fields little-endian, matching the codec. Parsing is total: any
// runt or mismatched buffer yields nullopt, never UB — headers are the
// first bytes of the system that a hostile network can reach. Sub-frame
// splitting is equally total: the whole payload is validated before any
// frame is surfaced, so one malformed length poisons (rejects) the whole
// datagram rather than delivering a prefix of it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/ids.hpp"

namespace evs::net {

inline constexpr std::uint32_t kDatagramMagic = 0x33535645;  // "EVS3" LE
/// Coalesced-datagram magic: payload is length-prefixed sub-frames.
inline constexpr std::uint32_t kDatagramMagicBatch = 0x44535645;  // "EVSD" LE
/// The retired v1/v2 magics; rejected, but named so tests can assert that.
inline constexpr std::uint32_t kDatagramMagicV1 = 0x31535645;       // "EVS1"
inline constexpr std::uint32_t kDatagramMagicBatchV1 = 0x42535645;  // "EVSB"
inline constexpr std::uint32_t kDatagramMagicV2 = 0x32535645;       // "EVS2"
inline constexpr std::uint32_t kDatagramMagicBatchV2 = 0x43535645;  // "EVSC"
inline constexpr std::size_t kHeaderSize = 28;
/// Length prefix of each sub-frame in a coalesced payload.
inline constexpr std::size_t kSubFramePrefix = 4;
/// Largest payload we will send or accept in one datagram. UDP caps the
/// datagram at 65507 bytes; leaving header room gives the payload bound.
inline constexpr std::size_t kMaxPayload = 65507 - kHeaderSize;

struct DatagramHeader {
  ProcessId from;
  std::uint32_t dest_incarnation = 0;  // 0 = site-addressed
  /// Group instance the frame belongs to (0 = the default group).
  std::uint32_t group = 0;
  /// Propagated trace context; 0 = untraced (observability only).
  std::uint64_t trace = 0;
  bool coalesced = false;  // "EVSD": payload holds length-prefixed frames

  bool operator==(const DatagramHeader&) const = default;
};

/// Writes exactly kHeaderSize bytes.
void encode_header(const DatagramHeader& header, std::uint8_t* out);

/// Validates magic and length; nullopt on any malformation.
std::optional<DatagramHeader> parse_header(const std::uint8_t* data,
                                           std::size_t size);

/// Splits a coalesced payload into (offset, length) sub-frame spans.
/// All-or-nothing: returns false (and clears `out`) unless the payload is
/// a non-empty sequence of [u32 LE len][len bytes] records, each len >= 1,
/// ending exactly at `size`.
bool split_subframes(const std::uint8_t* payload, std::size_t size,
                     std::vector<std::pair<std::size_t, std::size_t>>& out);

}  // namespace evs::net
