// Real-time runtime, part 5: the bundle that hosts protocol nodes.
//
// NetRuntime is the net-side counterpart of sim::World for a single
// process: it owns the event loop (Clock + TimerService), the UDP
// transport, the site's stable store and the observability sinks, wires
// them into runtime::Envs, and hosts one or more runtime::Nodes — the
// same vsync/evs endpoint classes the simulator spawns, byte-for-byte the
// same protocol code.
//
//   net::NodeConfig cfg = ...;             // static peer book
//   net::NetRuntime rt(cfg);
//   core::EvsEndpoint ep(rt.endpoint_config());
//   rt.host(ep);                           // bind + on_start (group 0)
//   rt.run();                              // until stop / halt / signal
//
// A process hosting several group instances (config `group` lines) calls
// host_group(id, node) once per instance: every node shares the one event
// loop, timer wheel, socket and trace ring, but sees a per-group
// Transport (frames stamped with its GroupId and demuxed back on
// receive), a per-group trace facade (events labelled with its group) and
// a per-group StableStore namespace. unhost_group() tears one instance
// down without disturbing the rest: its deliver entry leaves the demux
// table and detach() cancels its timers out of the shared wheel.
//
// EVS_TRACE_OUT works identically to sim runs: the trace bus records the
// same typed events (stamped with loop-monotonic µs) and dump_trace()
// writes the same three artifacts tools/trace_check consumes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/admin.hpp"
#include "net/config.hpp"
#include "net/event_loop.hpp"
#include "net/udp_transport.hpp"
#include "obs/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "store/wal_store.hpp"
#include "vsync/endpoint.hpp"

namespace evs::net {

class NetRuntime {
 public:
  explicit NetRuntime(NodeConfig config);
  ~NetRuntime();
  NetRuntime(const NetRuntime&) = delete;
  NetRuntime& operator=(const NetRuntime&) = delete;

  EventLoop& loop() { return loop_; }
  UdpTransport& transport() { return transport_; }
  /// The site's stable store: the durable WAL store (src/store/) when the
  /// config names a `store` directory, the volatile MemoryStore
  /// otherwise. Both sit behind the same runtime::StableStore seam the
  /// hosted nodes persist through.
  runtime::StableStore& store() {
    if (wal_store_ != nullptr) return *wal_store_;
    return memory_store_;
  }
  /// The durable store, or nullptr when running volatile.
  store::WalStore* wal_store() { return wal_store_.get(); }
  /// The incarnation this runtime actually runs as: the config's value,
  /// or the durably bumped one when a store directory shows a previous
  /// incarnation already lived at this site.
  std::uint32_t incarnation() const { return config_.incarnation; }
  obs::TraceBus& trace_bus() { return trace_bus_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// The online oracle checker fed from the trace bus's observer tap: as
  /// long as tracing is enabled, every recorded event is checked against
  /// the incremental safety oracles and violations surface in /health,
  /// /status's "health" flag and the obs.oracle_violations counter.
  const obs::LiveChecker& checker() const { return checker_; }

  ProcessId self() const { return transport_.self(); }

  /// The admin plane, created iff the config has an `admin` line for
  /// self; nullptr otherwise. Already wired to /status (runtime identity
  /// + hosted node's admin_status_json()), /metrics (refreshed at scrape
  /// time), /trace, and — when the config carries an `admin_token` — the
  /// POST control side (/join, /leave, /merge-all, /merge), routed to the
  /// hosted node's admin_command() and recorded as
  /// EventKind::AdminCommand trace events.
  AdminServer* admin() { return admin_.get(); }

  /// Extra per-node metrics exported on every /metrics scrape, after the
  /// runtime's own (transport + admin) exports. evs_node installs the
  /// endpoint's export_metrics here.
  void set_metrics_exporter(std::function<void(obs::MetricsRegistry&)> fn) {
    metrics_exporter_ = std::move(fn);
  }

  /// Runs every registered exporter into metrics() — the same refresh the
  /// admin plane performs before serving /metrics.
  void refresh_metrics();

  /// A vsync::EndpointConfig whose universe is this runtime's peer book;
  /// detector/protocol timings keep their defaults (already real-time
  /// millisecond scales).
  vsync::EndpointConfig endpoint_config() const;

  /// Binds `node` to this runtime's services as the default group (0) and
  /// starts it. The node must outlive run(). A node that halt()s
  /// (voluntary leave) gets its on_crash() hook; the loop stops when the
  /// last hosted group halts — the process-level analogue of
  /// sim::World::crash.
  void host(runtime::Node& node);

  /// Binds `node` as group instance `id` over the shared loop/socket:
  /// sends go out stamped with the group id, receives demux back to it,
  /// trace events carry the label, and persisted keys live under the
  /// "g<id>/" namespace of the site store. One node per group id; the
  /// node must outlive its hosting.
  void host_group(GroupId id, runtime::Node& node);

  /// Tears group `id` down without touching other groups: removes its
  /// deliver entry from the demux table, detaches the node (cancelling
  /// its timers out of the shared wheel) and drops the per-group wiring.
  /// The node object itself stays owned by the caller. No-op when the
  /// group is not hosted.
  void unhost_group(GroupId id);

  /// The node hosted as group `id`, or nullptr.
  runtime::Node* group_node(GroupId id);

  /// Ids of currently hosted groups, ascending.
  std::vector<GroupId> hosted_groups() const;

  /// Runs the event loop until stop()/halt/request_stop.
  void run() { loop_.run(); }

  /// Dumps trace + metrics under `name` via obs::dump_run (no-op without
  /// EVS_TRACE_OUT) and suppresses the destructor's auto-dump.
  bool dump_trace(const std::string& name);

 private:
  /// Per-group wiring owned by the runtime; the node itself is not owned.
  struct HostedGroup {
    std::unique_ptr<GroupChannel> channel;
    std::unique_ptr<obs::GroupTraceBus> trace;
    std::unique_ptr<runtime::PrefixStore> store;
    runtime::Node* node = nullptr;
  };

  /// The default-group node if hosted (legacy admin/status surface), else
  /// the lowest hosted group's node, else nullptr.
  runtime::Node* primary_node() const;

  /// Opens the durable store (when configured), recovers + bumps the
  /// incarnation from it, and registers the store's group-commit flush
  /// hook — all before the transport exists, so no frame can leave with
  /// a reused incarnation or ahead of its batch's sync. Returns the
  /// (possibly adjusted) config the transport binds with.
  NodeConfig boot_config();

  NodeConfig config_;
  EventLoop loop_;
  /// Durable store; non-null iff config_.store_dir is set. Declared
  /// before transport_: recovery and the incarnation bump must precede
  /// binding, and destruction must outlast the transport's final flush.
  std::unique_ptr<store::WalStore> wal_store_;
  runtime::MemoryStore memory_store_;
  EventLoop::FlushHookId store_flush_hook_ = 0;
  UdpTransport transport_;
  obs::TraceBus trace_bus_;
  obs::LiveChecker checker_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<AdminServer> admin_;
  std::function<void(obs::MetricsRegistry&)> metrics_exporter_;
  std::map<GroupId, HostedGroup> groups_;
  bool trace_dumped_ = false;
};

}  // namespace evs::net
