// Real-time runtime, part 1: epoll event loop + monotonic-clock timers.
//
// The net runtime's counterpart of sim::Scheduler: a single-threaded
// reactor that is both the runtime::Clock (microseconds of CLOCK_MONOTONIC
// since loop construction — same "µs since origin" convention as simulated
// time) and the runtime::TimerService (one-shot timers ordered by
// (deadline, insertion-sequence), exactly the scheduler's tie-break, fired
// from the loop thread between epoll waits).
//
// Everything runs on the one thread that called run(): fd callbacks, timer
// callbacks, posted closures. The only cross-thread entry points are
// post() (mutex-protected queue + eventfd wake) and request_stop()
// (async-signal-safe: an atomic flag plus an eventfd write), which is how
// signal handlers and benchmark driver threads talk to the loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "net/timer_wheel.hpp"
#include "runtime/runtime.hpp"

namespace evs::net {

class EventLoop final : public runtime::Clock, public runtime::TimerService {
 public:
  EventLoop();
  ~EventLoop() override;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // runtime::Clock: monotonic microseconds since this loop was created.
  SimTime now() const override;

  // runtime::TimerService.
  runtime::TimerId set_timer(SimDuration delay,
                             std::function<void()> fn) override;
  void cancel_timer(runtime::TimerId id) override;

  /// Registers a level-triggered read interest; `on_readable` must drain
  /// the fd (read until EAGAIN) or it will be called again immediately.
  void add_fd(int fd, std::function<void()> on_readable);
  void remove_fd(int fd);

  /// Adds (non-empty fn) or clears (empty fn) level-triggered write
  /// interest on an fd previously registered with add_fd; used by the
  /// admin plane to finish responses that did not fit the socket buffer.
  void set_writable(int fd, std::function<void()> on_writable);

  /// Runs until stop()/request_stop(). Returns the number of timer +
  /// readable callbacks fired.
  std::size_t run();

  /// Runs for at most `d` microseconds of wall time, then returns (used by
  /// in-process tests and benches that interleave loop work with asserts).
  std::size_t run_for(SimDuration d);

  /// Stops run() from a callback on the loop thread.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Async-signal-safe stop: may be called from a signal handler or any
  /// other thread; wakes the loop if it is blocked in epoll_wait.
  void request_stop();

  /// Enqueues `fn` to run on the loop thread; safe from any thread.
  void post(std::function<void()> fn);

  using FlushHookId = std::uint64_t;

  /// Registers a hook that runs on the loop thread at the top of every
  /// step (before the loop blocks in epoll_wait) and once more after the
  /// final drain when run()/run_for() returns. Transports use this to
  /// flush their per-iteration send queues, so everything queued by the
  /// previous step's callbacks hits the wire before the loop sleeps.
  /// Hooks must not add or remove hooks from inside a hook.
  FlushHookId add_flush_hook(std::function<void()> fn);
  void remove_flush_hook(FlushHookId id);

  std::size_t pending_timers() const { return timer_callbacks_.size(); }
  /// Timer-wheel entries still queued. Cancellation erases its entry
  /// directly (O(1) via the wheel's id index), so unlike the old lazy-
  /// cancelling heap this always equals pending_timers().
  std::size_t queued_timers() const { return wheel_.size(); }
  bool stopped() const { return stop_.load(std::memory_order_relaxed); }

 private:
  /// One pass: waits for fds/timers (capped at `max_wait` µs) and fires
  /// whatever is due. Returns callbacks fired.
  std::size_t step(SimDuration max_wait);
  std::size_t fire_due_timers();
  void run_flush_hooks();
  void drain_wakeup();
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  SimTime origin_ = 0;  // CLOCK_MONOTONIC µs at construction

  std::uint64_t next_timer_seq_ = 0;
  runtime::TimerId next_timer_id_ = 1;
  // Hierarchical wheel instead of a binary heap: the detector's per-peer
  // set/cancel/re-arm churn makes O(1) cancellation the hot requirement.
  TimerWheel wheel_;
  std::vector<TimerWheel::Entry> due_;  // reused by fire_due_timers
  std::unordered_map<runtime::TimerId, std::function<void()>> timer_callbacks_;

  std::vector<std::pair<FlushHookId, std::function<void()>>> flush_hooks_;
  FlushHookId next_flush_hook_id_ = 1;

  struct FdHandlers {
    std::function<void()> on_readable;
    std::function<void()> on_writable;  // empty: no write interest
    /// Registration generation: stamped by add_fd, compared against a
    /// snapshot taken right after epoll_wait so a stale event for a
    /// closed fd can never dispatch to a new connection that reused the
    /// fd number within the same batch.
    std::uint64_t gen = 0;
  };
  std::unordered_map<int, FdHandlers> fd_handlers_;
  std::uint64_t next_fd_gen_ = 1;

  std::atomic<bool> stop_{false};
  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace evs::net
