#include "net/runtime.hpp"

#include <unistd.h>

#include "common/check.hpp"
#include "obs/dump.hpp"

namespace evs::net {

NetRuntime::NetRuntime(NodeConfig config)
    : config_(config), transport_(loop_, std::move(config)) {
  // Same opt-in as sim::World: EVS_TRACE_OUT turns recording on without
  // per-binary plumbing.
  if (!obs::trace_out_dir().empty()) trace_bus_.set_enabled(true);
}

NetRuntime::~NetRuntime() {
  if (trace_dumped_ || trace_bus_.recorded() == 0) return;
  if (obs::trace_out_dir().empty()) return;
  dump_trace("evsnode-site" + std::to_string(config_.self.value) + "-p" +
             std::to_string(static_cast<long long>(::getpid())));
}

vsync::EndpointConfig NetRuntime::endpoint_config() const {
  vsync::EndpointConfig config;
  config.universe = config_.universe();
  return config;
}

void NetRuntime::host(runtime::Node& node) {
  EVS_CHECK_MSG(node_ == nullptr, "NetRuntime already hosts a node");
  node_ = &node;
  runtime::Env env;
  env.transport = &transport_;
  env.clock = &loop_;
  env.timers = &loop_;
  env.store = &store_;
  env.trace = &trace_bus_;
  env.halt = [this]() {
    // Voluntary leave / teardown: mirror sim::World::crash then stop.
    node_->on_crash();
    node_->detach();
    loop_.stop();
  };
  transport_.set_deliver([&node](ProcessId from, const Bytes& payload) {
    if (node.alive()) node.on_message(from, payload);
  });
  node.bind(std::move(env), self());
  node.on_start();
}

bool NetRuntime::dump_trace(const std::string& name) {
  trace_dumped_ = true;
  return obs::dump_run(trace_bus_, metrics_, name);
}

}  // namespace evs::net
