#include "net/runtime.hpp"

#include <unistd.h>

#include <sstream>

#include "codec/codec.hpp"
#include "common/check.hpp"
#include "obs/dump.hpp"

namespace evs::net {
namespace {

/// Durable record of the last incarnation that ran at this site.
constexpr char kIncarnationKey[] = "node/incarnation";

}  // namespace

NodeConfig NetRuntime::boot_config() {
  if (!config_.store_dir.empty()) {
    store::WalStoreConfig store_config;
    store_config.dir = config_.store_dir;
    wal_store_ = std::make_unique<store::WalStore>(store_config);
    // A restarted process must never reuse its predecessor's incarnation:
    // peers' receive validation silently drops frames addressed to a
    // stale one, so a same-incarnation restart would be invisible until
    // the detector timed the old incarnation out — and then still
    // indistinguishable from it. Bump monotonically past the durable
    // record and sync before any traffic can leave this process.
    if (const auto prev = wal_store_->get(kIncarnationKey)) {
      try {
        Decoder dec(*prev);
        const std::uint32_t last = dec.get_u32();
        dec.expect_end();
        config_.incarnation = std::max(config_.incarnation, last + 1);
      } catch (const DecodeError&) {
        // Unreadable record: fall through and overwrite it below.
      }
    }
    Encoder enc;
    enc.put_u32(config_.incarnation);
    wal_store_->put(kIncarnationKey, std::move(enc).take());
    wal_store_->flush();
    // Group commit rides the event loop: this hook runs before the
    // transport's own flush hook (registered next, in the UdpTransport
    // constructor), so every record buffered during a loop iteration is
    // on disk before any frame sent in that iteration hits the socket.
    store_flush_hook_ =
        loop_.add_flush_hook([this] { wal_store_->flush(); });
  }
  return config_;
}

NetRuntime::NetRuntime(NodeConfig config)
    : config_(std::move(config)), transport_(loop_, boot_config()) {
  // Same opt-in as sim::World: EVS_TRACE_OUT turns recording on without
  // per-binary plumbing.
  if (!obs::trace_out_dir().empty()) trace_bus_.set_enabled(true);
  // Online checking rides the bus's observer tap: with tracing off the
  // protocol hooks never even build events, so the checker idles (and
  // /health reports healthy over zero events checked).
  trace_bus_.set_observer(
      [this](const obs::TraceEvent& event) { checker_.observe(event); });
  if (const auto addr = config_.self_admin_addr()) {
    admin_ = std::make_unique<AdminServer>(loop_, addr->ip, addr->port);
    admin_->set_trace(&trace_bus_);
    admin_->set_health([this]() { return checker_.health_json(); });
    admin_->set_metrics(&metrics_, [this]() { refresh_metrics(); });
    admin_->set_status([this]() {
      runtime::Node* primary = primary_node();
      std::ostringstream os;
      os << "{\"site\":" << config_.self.value
         << ",\"incarnation\":" << config_.incarnation
         << ",\"process\":\"" << to_string(self()) << "\""
         << ",\"port\":" << transport_.bound_port()
         << ",\"admin_port\":" << admin_->bound_port()
         << ",\"uptime_us\":" << loop_.now()
         << ",\"health\":" << (checker_.healthy() ? "true" : "false")
         << ",\"node\":"
         << (primary != nullptr ? primary->admin_status_json() : "null");
      // Per-group detail only for true multi-group hosts; a single
      // default-group run keeps the exact legacy /status shape.
      if (groups_.size() > 1 || !groups_.contains(kDefaultGroup)) {
        os << ",\"groups\":[";
        bool first = true;
        for (const auto& [id, hosted] : groups_) {
          if (!first) os << ",";
          first = false;
          os << "{\"id\":" << id << ",\"alive\":"
             << (hosted.node->alive() ? "true" : "false")
             << ",\"node\":" << hosted.node->admin_status_json() << "}";
        }
        os << "]";
      }
      os << "}";
      return os.str();
    });
    admin_->set_token(config_.admin_token);
    admin_->set_command([this](const std::string& name,
                               const std::string& arg) {
      AdminCommandResult result;
      runtime::Node* primary = primary_node();
      if (primary == nullptr || !primary->alive()) {
        result.message = "no live node hosted";
      } else {
        result.ok = primary->admin_command(name, arg, result.message);
      }
      if (trace_bus_.enabled()) {
        obs::TraceEvent event;
        event.time = loop_.now();
        event.proc = self();
        event.kind = obs::EventKind::AdminCommand;
        event.seq = admin_command_code(name);
        event.value = result.ok ? 1 : 0;
        trace_bus_.record(event);
      }
      return result;
    });
  }
}

void NetRuntime::refresh_metrics() {
  transport_.export_metrics(metrics_, "transport");
  if (admin_ != nullptr) admin_->export_metrics(metrics_, "admin");
  if (wal_store_ != nullptr) {
    wal_store_->export_metrics(metrics_, "store");
    metrics_.counter("store.writes")
        .set(wal_store_->stats().puts + wal_store_->stats().erases);
  } else {
    metrics_.counter("store.writes").set(memory_store_.writes());
    metrics_.counter("store.bytes").set(memory_store_.bytes());
    metrics_.counter("store.keys").set(memory_store_.size());
  }
  metrics_.counter("obs.events_checked").set(checker_.events_checked());
  metrics_.counter("obs.oracle_violations").set(checker_.violations());
  metrics_.counter("obs.checker_saturated").set(checker_.saturated());
  if (metrics_exporter_) metrics_exporter_(metrics_);
}

NetRuntime::~NetRuntime() {
  if (store_flush_hook_ != 0) loop_.remove_flush_hook(store_flush_hook_);
  if (trace_dumped_ || trace_bus_.recorded() == 0) return;
  if (obs::trace_out_dir().empty()) return;
  dump_trace("evsnode-site" + std::to_string(config_.self.value) + "-p" +
             std::to_string(static_cast<long long>(::getpid())));
}

vsync::EndpointConfig NetRuntime::endpoint_config() const {
  vsync::EndpointConfig config;
  config.universe = config_.universe();
  return config;
}

void NetRuntime::host(runtime::Node& node) { host_group(kDefaultGroup, node); }

void NetRuntime::host_group(GroupId id, runtime::Node& node) {
  EVS_CHECK_MSG(!groups_.contains(id),
                "NetRuntime already hosts group " + std::to_string(id));
  HostedGroup hosted;
  hosted.channel = std::make_unique<GroupChannel>(transport_, id);
  hosted.trace = std::make_unique<obs::GroupTraceBus>(trace_bus_, id);
  hosted.store = std::make_unique<runtime::PrefixStore>(
      store(), "g" + std::to_string(id) + "/");
  hosted.node = &node;

  runtime::Env env;
  env.transport = hosted.channel.get();
  env.clock = &loop_;
  env.timers = &loop_;
  env.store = hosted.store.get();
  env.trace = hosted.trace.get();
  env.halt = [this, id]() {
    // Voluntary leave / teardown of this group: mirror sim::World::crash.
    // Other hosted groups keep running; the loop stops only when the
    // halting group was the last one alive.
    const auto it = groups_.find(id);
    if (it == groups_.end()) return;
    runtime::Node* halting = it->second.node;
    halting->on_crash();
    unhost_group(id);
    for (const auto& [other_id, other] : groups_)
      if (other.node->alive()) return;
    loop_.stop();
  };
  transport_.set_deliver(id, [&node](ProcessId from, const Bytes& payload) {
    if (node.alive()) node.on_message(from, payload);
  });
  groups_.emplace(id, std::move(hosted));
  node.bind(std::move(env), self());
  node.on_start();
  // on_start() runs before the loop does, so its sends (first heartbeats,
  // join probes) would otherwise sit queued until the first step's flush
  // hook; push them out now.
  transport_.flush();
}

void NetRuntime::unhost_group(GroupId id) {
  const auto it = groups_.find(id);
  if (it == groups_.end()) return;
  transport_.clear_deliver(id);
  // detach() also cancels the node's outstanding timers out of the shared
  // wheel — a destroyed node must leave nothing behind that captures it.
  it->second.node->detach();
  groups_.erase(it);
}

runtime::Node* NetRuntime::group_node(GroupId id) {
  const auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : it->second.node;
}

std::vector<GroupId> NetRuntime::hosted_groups() const {
  std::vector<GroupId> ids;
  ids.reserve(groups_.size());
  for (const auto& [id, hosted] : groups_) ids.push_back(id);
  return ids;
}

runtime::Node* NetRuntime::primary_node() const {
  const auto def = groups_.find(kDefaultGroup);
  if (def != groups_.end()) return def->second.node;
  return groups_.empty() ? nullptr : groups_.begin()->second.node;
}

bool NetRuntime::dump_trace(const std::string& name) {
  trace_dumped_ = true;
  refresh_metrics();  // the dump sees final counters, like a last scrape
  return obs::dump_run(trace_bus_, metrics_, name);
}

}  // namespace evs::net
