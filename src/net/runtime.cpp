#include "net/runtime.hpp"

#include <unistd.h>

#include <sstream>

#include "common/check.hpp"
#include "obs/dump.hpp"

namespace evs::net {

NetRuntime::NetRuntime(NodeConfig config)
    : config_(config), transport_(loop_, std::move(config)) {
  // Same opt-in as sim::World: EVS_TRACE_OUT turns recording on without
  // per-binary plumbing.
  if (!obs::trace_out_dir().empty()) trace_bus_.set_enabled(true);
  if (const auto addr = config_.self_admin_addr()) {
    admin_ = std::make_unique<AdminServer>(loop_, addr->ip, addr->port);
    admin_->set_trace(&trace_bus_);
    admin_->set_metrics(&metrics_, [this]() { refresh_metrics(); });
    admin_->set_status([this]() {
      std::ostringstream os;
      os << "{\"site\":" << config_.self.value
         << ",\"incarnation\":" << config_.incarnation
         << ",\"process\":\"" << to_string(self()) << "\""
         << ",\"port\":" << transport_.bound_port()
         << ",\"admin_port\":" << admin_->bound_port()
         << ",\"uptime_us\":" << loop_.now() << ",\"node\":"
         << (node_ != nullptr ? node_->admin_status_json() : "null") << "}";
      return os.str();
    });
    admin_->set_token(config_.admin_token);
    admin_->set_command([this](const std::string& name,
                               const std::string& arg) {
      AdminCommandResult result;
      if (node_ == nullptr || !node_->alive()) {
        result.message = "no live node hosted";
      } else {
        result.ok = node_->admin_command(name, arg, result.message);
      }
      if (trace_bus_.enabled()) {
        obs::TraceEvent event;
        event.time = loop_.now();
        event.proc = self();
        event.kind = obs::EventKind::AdminCommand;
        event.seq = admin_command_code(name);
        event.value = result.ok ? 1 : 0;
        trace_bus_.record(event);
      }
      return result;
    });
  }
}

void NetRuntime::refresh_metrics() {
  transport_.export_metrics(metrics_, "transport");
  if (admin_ != nullptr) admin_->export_metrics(metrics_, "admin");
  if (metrics_exporter_) metrics_exporter_(metrics_);
}

NetRuntime::~NetRuntime() {
  if (trace_dumped_ || trace_bus_.recorded() == 0) return;
  if (obs::trace_out_dir().empty()) return;
  dump_trace("evsnode-site" + std::to_string(config_.self.value) + "-p" +
             std::to_string(static_cast<long long>(::getpid())));
}

vsync::EndpointConfig NetRuntime::endpoint_config() const {
  vsync::EndpointConfig config;
  config.universe = config_.universe();
  return config;
}

void NetRuntime::host(runtime::Node& node) {
  EVS_CHECK_MSG(node_ == nullptr, "NetRuntime already hosts a node");
  node_ = &node;
  runtime::Env env;
  env.transport = &transport_;
  env.clock = &loop_;
  env.timers = &loop_;
  env.store = &store_;
  env.trace = &trace_bus_;
  env.halt = [this]() {
    // Voluntary leave / teardown: mirror sim::World::crash then stop.
    node_->on_crash();
    node_->detach();
    loop_.stop();
  };
  transport_.set_deliver([&node](ProcessId from, const Bytes& payload) {
    if (node.alive()) node.on_message(from, payload);
  });
  node.bind(std::move(env), self());
  node.on_start();
  // on_start() runs before the loop does, so its sends (first heartbeats,
  // join probes) would otherwise sit queued until the first step's flush
  // hook; push them out now.
  transport_.flush();
}

bool NetRuntime::dump_trace(const std::string& name) {
  trace_dumped_ = true;
  refresh_metrics();  // the dump sees final counters, like a last scrape
  return obs::dump_run(trace_bus_, metrics_, name);
}

}  // namespace evs::net
