#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/check.hpp"

namespace evs::net {

namespace {

SimTime monotonic_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * 1'000'000 +
         static_cast<SimTime>(ts.tv_nsec) / 1'000;
}

}  // namespace

EventLoop::EventLoop() : origin_(monotonic_us()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  EVS_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  EVS_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  EVS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SimTime EventLoop::now() const { return monotonic_us() - origin_; }

runtime::TimerId EventLoop::set_timer(SimDuration delay,
                                      std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  const runtime::TimerId id = next_timer_id_++;
  timer_heap_.push_back(TimerEntry{now() + delay, next_timer_seq_++, id});
  std::push_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
  timer_callbacks_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(runtime::TimerId id) {
  if (timer_callbacks_.erase(id) == 0) return;  // already fired or cancelled
  // The heap entry stays behind (removing from the middle of a heap is
  // O(n)); it is skipped lazily. Compact once cancelled entries dominate,
  // so set/cancel churn (the detector's heartbeat pattern) cannot grow
  // the heap without bound.
  ++cancelled_in_heap_;
  if (cancelled_in_heap_ >= 64 && cancelled_in_heap_ > timer_heap_.size() / 2) {
    std::erase_if(timer_heap_, [this](const TimerEntry& entry) {
      return !timer_callbacks_.contains(entry.id);
    });
    std::make_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
    cancelled_in_heap_ = 0;
  }
}

void EventLoop::pop_cancelled_top() {
  while (!timer_heap_.empty() &&
         !timer_callbacks_.contains(timer_heap_.front().id)) {
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
    timer_heap_.pop_back();
    --cancelled_in_heap_;
  }
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  EVS_CHECK(on_readable != nullptr);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  EVS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl ADD failed");
  fd_handlers_.emplace(fd, FdHandlers{std::move(on_readable), {}, next_fd_gen_++});
}

void EventLoop::set_writable(int fd, std::function<void()> on_writable) {
  const auto it = fd_handlers_.find(fd);
  EVS_CHECK_MSG(it != fd_handlers_.end(), "set_writable on unknown fd");
  it->second.on_writable = std::move(on_writable);
  epoll_event ev{};
  ev.events = it->second.on_writable ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = fd;
  EVS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll_ctl MOD failed");
}

void EventLoop::remove_fd(int fd) {
  if (fd_handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Wake a blocked epoll_wait. write() on an eventfd is async-signal-safe;
  // the result is ignored deliberately (the counter saturating is fine).
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wakeup() {
  std::uint64_t value = 0;
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

std::size_t EventLoop::fire_due_timers() {
  std::size_t fired = 0;
  const SimTime t = now();
  while (!timer_heap_.empty() && timer_heap_.front().deadline <= t) {
    const TimerEntry entry = timer_heap_.front();
    std::pop_heap(timer_heap_.begin(), timer_heap_.end(), std::greater<>{});
    timer_heap_.pop_back();
    const auto it = timer_callbacks_.find(entry.id);
    if (it == timer_callbacks_.end()) {  // cancelled
      --cancelled_in_heap_;
      continue;
    }
    auto fn = std::move(it->second);
    timer_callbacks_.erase(it);
    fn();
    ++fired;
  }
  return fired;
}

std::size_t EventLoop::step(SimDuration max_wait) {
  // Wait no longer than the nearest *live* timer deadline (rounded up so
  // we do not spin), the caller's budget, or a 500 ms heartbeat that
  // re-checks the stop flag even when nothing is scheduled. Cancelled
  // entries are purged off the top first, so a cancel-heavy workload
  // (heartbeat set/cancel churn) can neither wake the loop early nor
  // grow the heap without bound.
  pop_cancelled_top();
  SimDuration wait = std::min<SimDuration>(max_wait, 500 * kMillisecond);
  if (!timer_heap_.empty()) {
    const SimTime t = now();
    const SimTime deadline = timer_heap_.front().deadline;
    wait = deadline <= t ? 0 : std::min<SimDuration>(wait, deadline - t);
  }
  const int timeout_ms =
      static_cast<int>((wait + kMillisecond - 1) / kMillisecond);

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  std::size_t fired = 0;
  if (n > 0) {
    // Snapshot each ready fd's registration generation before running any
    // handler. A handler may close an fd whose event is still queued in
    // this batch, and a later handler may accept a new connection that
    // reuses the fd number; the generation mismatch then tells us the
    // queued event belongs to the dead registration, not the new one.
    std::uint64_t gens[64];
    for (int i = 0; i < n; ++i) {
      const auto it = fd_handlers_.find(events[i].data.fd);
      gens[i] = it == fd_handlers_.end() ? 0 : it->second.gen;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup();
        continue;
      }
      auto it = fd_handlers_.find(fd);
      if (it == fd_handlers_.end()) continue;  // removed by an earlier handler
      if (it->second.gen != gens[i]) continue;  // fd number reused mid-batch
      if ((events[i].events & EPOLLOUT) != 0 && it->second.on_writable) {
        // Copy: the handler may clear write interest or remove the fd.
        const auto on_writable = it->second.on_writable;
        on_writable();
        ++fired;
        it = fd_handlers_.find(fd);
        if (it == fd_handlers_.end() || it->second.gen != gens[i]) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        // Copy: the handler may remove_fd(fd) from inside the call.
        const auto on_readable = it->second.on_readable;
        on_readable();
        ++fired;
      }
    }
  }
  drain_posted();
  fired += fire_due_timers();
  return fired;
}

std::size_t EventLoop::run() {
  std::size_t fired = 0;
  while (!stopped()) fired += step(500 * kMillisecond);
  // One final drain so work posted just before the stop is not lost.
  drain_posted();
  return fired;
}

std::size_t EventLoop::run_for(SimDuration d) {
  const SimTime deadline = now() + d;
  std::size_t fired = 0;
  while (!stopped()) {
    const SimTime t = now();
    if (t >= deadline) break;
    fired += step(deadline - t);
  }
  // Same final drain as run(): a cross-thread post() landing just before
  // the deadline must not be silently dropped.
  drain_posted();
  return fired;
}

}  // namespace evs::net
