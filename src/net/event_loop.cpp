#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/check.hpp"

namespace evs::net {

namespace {

SimTime monotonic_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * 1'000'000 +
         static_cast<SimTime>(ts.tv_nsec) / 1'000;
}

}  // namespace

EventLoop::EventLoop() : origin_(monotonic_us()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  EVS_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  EVS_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  EVS_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

SimTime EventLoop::now() const { return monotonic_us() - origin_; }

runtime::TimerId EventLoop::set_timer(SimDuration delay,
                                      std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  const runtime::TimerId id = next_timer_id_++;
  wheel_.insert(now() + delay, next_timer_seq_++, id);
  timer_callbacks_.emplace(id, std::move(fn));
  return id;
}

void EventLoop::cancel_timer(runtime::TimerId id) {
  if (timer_callbacks_.erase(id) == 0) return;  // already fired or cancelled
  // O(1) direct erase via the wheel's id index — no lazy-cancellation
  // residue, so set/cancel churn (the detector's heartbeat pattern) never
  // leaves dead entries behind. erase can miss only if the entry was
  // already collected into the current firing batch; fire_due_timers
  // re-checks timer_callbacks_ before invoking, so the cancel still wins.
  wheel_.erase(id);
}

EventLoop::FlushHookId EventLoop::add_flush_hook(std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  const FlushHookId id = next_flush_hook_id_++;
  flush_hooks_.emplace_back(id, std::move(fn));
  return id;
}

void EventLoop::remove_flush_hook(FlushHookId id) {
  std::erase_if(flush_hooks_,
                [id](const auto& hook) { return hook.first == id; });
}

void EventLoop::run_flush_hooks() {
  for (auto& [id, fn] : flush_hooks_) fn();
}

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  EVS_CHECK(on_readable != nullptr);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  EVS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl ADD failed");
  fd_handlers_.emplace(fd, FdHandlers{std::move(on_readable), {}, next_fd_gen_++});
}

void EventLoop::set_writable(int fd, std::function<void()> on_writable) {
  const auto it = fd_handlers_.find(fd);
  EVS_CHECK_MSG(it != fd_handlers_.end(), "set_writable on unknown fd");
  it->second.on_writable = std::move(on_writable);
  epoll_event ev{};
  ev.events = it->second.on_writable ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = fd;
  EVS_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll_ctl MOD failed");
}

void EventLoop::remove_fd(int fd) {
  if (fd_handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Wake a blocked epoll_wait. write() on an eventfd is async-signal-safe;
  // the result is ignored deliberately (the counter saturating is fine).
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_wakeup() {
  std::uint64_t value = 0;
  while (::read(wake_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    const std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

std::size_t EventLoop::fire_due_timers() {
  std::size_t fired = 0;
  const SimTime t = now();
  // Collect-and-fire until a pass finds nothing: a callback that sets a
  // zero-delay timer still gets it fired in this batch (the heap had the
  // same behavior via its re-checked while condition).
  for (;;) {
    due_.clear();
    wheel_.collect_due(t, due_);
    if (due_.empty()) break;
    for (const TimerWheel::Entry& entry : due_) {
      const auto it = timer_callbacks_.find(entry.id);
      // Collected but cancelled by an earlier callback in this batch.
      if (it == timer_callbacks_.end()) continue;
      auto fn = std::move(it->second);
      timer_callbacks_.erase(it);
      fn();
      ++fired;
    }
  }
  return fired;
}

std::size_t EventLoop::step(SimDuration max_wait) {
  // Flush first: everything the previous step's callbacks queued (and,
  // on the first step, anything queued before run()) goes to the wire
  // before the loop blocks.
  run_flush_hooks();
  // Wait no longer than the nearest pending timer (the wheel's hint is a
  // lower bound, so a coarse-bucketed far-future timer can wake us a bit
  // early but never late), the caller's budget, or a 500 ms heartbeat
  // that re-checks the stop flag even when nothing is scheduled.
  SimDuration wait = std::min<SimDuration>(max_wait, 500 * kMillisecond);
  {
    const SimTime t = now();
    if (const auto hint = wheel_.next_deadline_hint(t)) {
      wait = *hint <= t ? 0 : std::min<SimDuration>(wait, *hint - t);
    }
  }
  const int timeout_ms =
      static_cast<int>((wait + kMillisecond - 1) / kMillisecond);

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  std::size_t fired = 0;
  if (n > 0) {
    // Snapshot each ready fd's registration generation before running any
    // handler. A handler may close an fd whose event is still queued in
    // this batch, and a later handler may accept a new connection that
    // reuses the fd number; the generation mismatch then tells us the
    // queued event belongs to the dead registration, not the new one.
    std::uint64_t gens[64];
    for (int i = 0; i < n; ++i) {
      const auto it = fd_handlers_.find(events[i].data.fd);
      gens[i] = it == fd_handlers_.end() ? 0 : it->second.gen;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        drain_wakeup();
        continue;
      }
      auto it = fd_handlers_.find(fd);
      if (it == fd_handlers_.end()) continue;  // removed by an earlier handler
      if (it->second.gen != gens[i]) continue;  // fd number reused mid-batch
      if ((events[i].events & EPOLLOUT) != 0 && it->second.on_writable) {
        // Copy: the handler may clear write interest or remove the fd.
        const auto on_writable = it->second.on_writable;
        on_writable();
        ++fired;
        it = fd_handlers_.find(fd);
        if (it == fd_handlers_.end() || it->second.gen != gens[i]) continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        // Copy: the handler may remove_fd(fd) from inside the call.
        const auto on_readable = it->second.on_readable;
        on_readable();
        ++fired;
      }
    }
  }
  drain_posted();
  fired += fire_due_timers();
  return fired;
}

std::size_t EventLoop::run() {
  std::size_t fired = 0;
  while (!stopped()) fired += step(500 * kMillisecond);
  // One final drain so work posted just before the stop is not lost, and
  // a final flush so its sends (and the last step's) are not stranded.
  drain_posted();
  run_flush_hooks();
  return fired;
}

std::size_t EventLoop::run_for(SimDuration d) {
  const SimTime deadline = now() + d;
  std::size_t fired = 0;
  while (!stopped()) {
    const SimTime t = now();
    if (t >= deadline) break;
    fired += step(deadline - t);
  }
  // Same final drain as run(): a cross-thread post() landing just before
  // the deadline must not be silently dropped, nor its sends stranded.
  drain_posted();
  run_flush_hooks();
  return fired;
}

}  // namespace evs::net
