// Hierarchical timer wheel: O(1) set / cancel / fire for the event loop.
//
// The binary heap this replaces cost O(log n) per set_timer/cancel_timer,
// which the detector's per-peer heartbeat pattern (arm, cancel, re-arm,
// thousands of times a second at fleet scale) turned into the dominant
// timer cost. The wheel hashes each deadline into one of six levels of 64
// slots — level l covers deadlines up to 64^(l+1) ticks away, one tick =
// 2^10 µs — so placement, cancellation (direct list-node erasure via an
// id index) and expiry are all constant-time; entries far in the future
// cascade down one level at a time as their slot comes due.
//
// The firing contract is exactly the heap's: timers fire in strict
// (deadline, insertion-seq) order with microsecond deadlines. Slots only
// bucket *storage* — entries whose tick has arrived move to an `imminent`
// staging list that is sorted before anything is handed out, so sub-tick
// ordering and the insertion-order tie-break survive the bucketing.
//
// The wheel is a pure data structure driven by caller-supplied `now`
// values (monotone, never wall-clock), which keeps it unit-testable
// without sleeping: tests drive cascades by jumping `now` forward.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "runtime/runtime.hpp"

namespace evs::net {

class TimerWheel {
 public:
  struct Entry {
    SimTime deadline = 0;
    std::uint64_t seq = 0;  // insertion sequence, the deadline tie-break
    runtime::TimerId id = 0;
  };

  /// Granularity of one tick in microseconds (2^10 = 1.024 ms). Deadlines
  /// keep full µs precision — the tick only sizes the hash buckets.
  static constexpr int kTickBits = 10;
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 64
  static constexpr int kLevels = 6;  // horizon ≈ 64^6 ticks ≈ 2.2 years

  explicit TimerWheel(SimTime now = 0) : tick_(now >> kTickBits) {}

  /// Inserts a timer; `seq` must be unique and monotone across inserts
  /// (the caller's insertion counter), `id` unique among live timers.
  void insert(SimTime deadline, std::uint64_t seq, runtime::TimerId id);

  /// Cancels a timer in O(1); false if the id is unknown (already fired
  /// or collected).
  bool erase(runtime::TimerId id);

  /// Moves every entry with deadline <= now into `out`, ordered by
  /// (deadline, seq). Time must never go backwards across calls.
  void collect_due(SimTime now, std::vector<Entry>& out);

  /// A lower bound on the earliest pending deadline, for the caller's
  /// wait computation: never later than the true earliest deadline (and
  /// <= now when something is already due). For entries still bucketed in
  /// a coarse level the hint is the slot's start time, so a far-future
  /// timer costs at most one early wake per level as it cascades toward
  /// precision.
  std::optional<SimTime> next_deadline_hint(SimTime now);

  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

 private:
  using Slot = std::list<Entry>;
  struct Location {
    int level = 0;  // kImminent when staged in imminent_
    std::size_t slot = 0;
    Slot::iterator it;
  };
  static constexpr int kImminent = -1;

  /// Files an entry into the level/slot its distance-from-now selects
  /// (or imminent_ when its tick has already passed) and indexes it.
  void place(Entry entry);
  /// Advances the wheel clock to `now`, cascading higher-level slots as
  /// their rounds begin and staging every expired slot into imminent_.
  void advance(SimTime now);

  Slot slots_[kLevels][kSlots];
  Slot imminent_;
  std::uint64_t tick_;  // next tick not yet staged
  std::unordered_map<runtime::TimerId, Location> index_;
};

}  // namespace evs::net
