#include "net/datagram.hpp"

namespace evs::net {

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         (static_cast<std::uint64_t>(get_u32(in + 4)) << 32);
}

}  // namespace

void encode_header(const DatagramHeader& header, std::uint8_t* out) {
  put_u32(out, header.coalesced ? kDatagramMagicBatch : kDatagramMagic);
  put_u32(out + 4, header.from.site.value);
  put_u32(out + 8, header.from.incarnation);
  put_u32(out + 12, header.dest_incarnation);
  put_u32(out + 16, header.group);
  put_u64(out + 20, header.trace);
}

std::optional<DatagramHeader> parse_header(const std::uint8_t* data,
                                           std::size_t size) {
  if (data == nullptr || size < kHeaderSize) return std::nullopt;
  const std::uint32_t magic = get_u32(data);
  if (magic != kDatagramMagic && magic != kDatagramMagicBatch) {
    return std::nullopt;
  }
  DatagramHeader header;
  header.from.site = SiteId{get_u32(data + 4)};
  header.from.incarnation = get_u32(data + 8);
  header.dest_incarnation = get_u32(data + 12);
  header.group = get_u32(data + 16);
  header.trace = get_u64(data + 20);
  header.coalesced = magic == kDatagramMagicBatch;
  if (header.from.incarnation == 0) return std::nullopt;  // never minted
  return header;
}

bool split_subframes(const std::uint8_t* payload, std::size_t size,
                     std::vector<std::pair<std::size_t, std::size_t>>& out) {
  out.clear();
  if (payload == nullptr || size == 0) return false;
  std::size_t off = 0;
  while (off < size) {
    if (size - off < kSubFramePrefix) return (out.clear(), false);
    const std::size_t len = get_u32(payload + off);
    off += kSubFramePrefix;
    // Zero-length frames do not exist in the codec; a zero here is a
    // malformed (or adversarial) length, not padding.
    if (len == 0 || len > size - off) return (out.clear(), false);
    out.emplace_back(off, len);
    off += len;
  }
  return true;  // off == size exactly, and at least one frame was seen
}

}  // namespace evs::net
