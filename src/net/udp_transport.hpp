// Real-time runtime, part 4: the UDP messenger.
//
// One non-blocking UDP socket per *process*, driven by the EventLoop,
// speaking the unchanged gms::frame wire format wrapped in the 28-byte
// datagram header (net/datagram.hpp). Addressing uses the static peer
// book from NodeConfig — sites never move during a run, matching the
// paper's model of sites as stable locations.
//
// The socket is shared by every group instance the process hosts: each
// frame carries its GroupId in the envelope, sends take the group as an
// explicit argument (or go through a GroupChannel facade, which is what a
// hosted node's runtime::Transport actually is), and the receive path
// demuxes on the header's group field to the per-group deliver-callback.
// A frame for a group this process does not host is counted
// dropped_unknown_group and discarded — the multi-group analogue of
// dropped_unknown_peer.
//
// The send path is batched: send/send_to_site/send_multi enqueue frames
// (validated and counted at enqueue time, preserving the old synchronous
// drop semantics) and flush() — run by the EventLoop's flush hook once
// per loop iteration — packs the whole queue onto the wire:
//
//   * frames to the same (site, incarnation, group, trace) may be
//     coalesced into one datagram of length-prefixed sub-frames (magic
//     "EVSD"), so a tick's burst of small protocol messages costs one
//     datagram per peer per group — the trace context rides the envelope,
//     so frames of different traced requests never share a datagram, and
//     untraced traffic (trace 0, all of a sampling-off run) packs exactly
//     as before;
//   * all datagrams of the flush go down in one sendmmsg() (headers and
//     sub-frame prefixes encoded into preallocated arenas, payload bytes
//     scatter/gathered straight out of their SharedBytes buffers — the
//     encode-once fan-out contract survives batching *and* coalescing);
//   * a sendmmsg failure is loss for exactly one datagram (counted in
//     send_errors, the rest of the batch still goes out), matching the
//     old per-datagram sendmsg error handling.
//
// The receive path drains the socket with recvmmsg() into a reusable
// buffer pool and splits coalesced datagrams back into individual frames
// before delivery — same frames, same per-peer order as the unbatched
// path. It stays bounded and drop-oriented: the substrate already assumes
// lossy links, so every malformed, truncated, spoofed, unknown-peer or
// stale-incarnation datagram is counted and dropped — a malformed
// sub-frame length rejects its whole datagram (no partial delivery).
// Drop-rules (set_drop_all / set_drop_site) emulate partitions for tests
// and demos, the real-socket analogue of sim::Network::set_partition.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "net/config.hpp"
#include "net/datagram.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace evs::net {

/// Most sub-frames one coalesced datagram will carry. Keeps the iovec
/// count per message (1 header + 2 per frame) far under IOV_MAX while
/// still amortizing one datagram over a whole tick's worth of small
/// protocol messages.
inline constexpr std::size_t kMaxFramesPerDatagram = 128;

/// Wire counters of one group's share of the socket. The aggregate
/// counters in UdpStats keep their exact old meaning; these slice the
/// frame/byte counters per group so /metrics can show both views.
struct GroupWireStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frame_bytes_sent = 0;      // payload bytes, headers excluded
  std::uint64_t frame_bytes_received = 0;
};

struct UdpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;  // accepted and delivered
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Protocol frames carried by sent / accepted datagrams; exceeds the
  /// datagram counters exactly by what coalescing packed together.
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  /// Sent datagrams that carried >= 2 coalesced sub-frames.
  std::uint64_t datagrams_coalesced = 0;
  /// Syscall counters: the wire path's real cost. sendmsg_calls counts
  /// sendmmsg() invocations, recvmsg_calls counts recvmmsg() — each
  /// covers a whole batch, so calls << datagrams is the win being bought.
  std::uint64_t sendmsg_calls = 0;
  std::uint64_t recvmsg_calls = 0;
  /// Sends that owned their buffer (send / send_to_site): one heap buffer.
  std::uint64_t payload_copies = 0;
  /// Sends off a ref-counted fan-out buffer (send_multi): no copy at all.
  std::uint64_t payloads_shared = 0;
  std::uint64_t dropped_malformed = 0;    // runt, bad magic, spoofed site
  std::uint64_t dropped_truncated = 0;    // datagram exceeded our buffer
  std::uint64_t dropped_unknown_peer = 0;  // source address not in the book
  std::uint64_t dropped_unknown_group = 0;  // group not hosted here
  std::uint64_t dropped_stale_incarnation = 0;
  std::uint64_t dropped_rule = 0;   // partition drop-rules
  std::uint64_t dropped_oversize = 0;  // payload > kMaxPayload on send
  std::uint64_t send_errors = 0;    // sendmmsg failures (EAGAIN, ENETUNREACH..)
  std::uint64_t recv_errors = 0;    // unexpected recvmmsg failures
};

class UdpTransport final : public runtime::Transport {
 public:
  /// Binds the socket to config.self's peer address and registers it with
  /// the loop. Throws InvariantViolation (EVS_CHECK) on bind failure.
  UdpTransport(EventLoop& loop, NodeConfig config);
  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The identity this transport gives its node.
  ProcessId self() const { return ProcessId{config_.self, config_.incarnation}; }
  const NodeConfig& config() const { return config_; }
  int fd() const { return fd_; }
  /// The port actually bound (differs from config when it said port 0).
  std::uint16_t bound_port() const { return bound_port_; }

  /// Registers the deliver-callback of one group instance; frames whose
  /// envelope names `group` go to `fn`. The overload without a group is
  /// the single-group legacy spelling (kDefaultGroup).
  void set_deliver(GroupId group, DeliverFn fn);
  void set_deliver(DeliverFn fn) { set_deliver(kDefaultGroup, std::move(fn)); }
  /// Unregisters a group's deliver-callback: subsequent frames for it are
  /// counted dropped_unknown_group (per-group teardown, see NetRuntime).
  void clear_deliver(GroupId group);

  // runtime::Transport (the single-group legacy surface: kDefaultGroup).
  // Frames are queued; the loop's flush hook (or an explicit flush())
  // puts them on the wire.
  void send(ProcessId to, Bytes payload) override;
  void send_to_site(SiteId site, Bytes payload) override;
  void send_multi(const std::vector<ProcessId>& recipients,
                  SharedBytes payload) override;

  // Group-addressed sends: what GroupChannel forwards to.
  void send(GroupId group, ProcessId to, Bytes payload);
  void send_to_site(GroupId group, SiteId site, Bytes payload);
  void send_multi(GroupId group, const std::vector<ProcessId>& recipients,
                  SharedBytes payload);

  /// Sets the trace context stamped onto subsequently enqueued frames
  /// (carried in the datagram envelope, 0 = untraced). Scoped by the
  /// caller around the sends a traced request provokes.
  void set_trace_context(std::uint64_t trace) override {
    current_trace_ = trace;
  }

  /// Transmits everything queued since the last flush: groups frames per
  /// (site, incarnation, group, trace), coalesces where enabled, and
  /// issues one sendmmsg per <= 1024 datagrams. Idempotent when the queue
  /// is empty.
  void flush();
  std::size_t pending_frames() const { return pending_.size(); }

  /// Toggles small-message coalescing (initialized from config.coalesce).
  /// Batched sendmmsg and the wire format are unaffected; this only
  /// controls whether a flush may pack frames together.
  void set_coalescing(bool on) { coalesce_ = on; }
  bool coalescing() const { return coalesce_; }

  /// Partition emulation: drop all traffic in both directions (incoming
  /// datagrams are discarded on receive, outgoing at enqueue time).
  void set_drop_all(bool on) { drop_all_ = on; }
  void set_drop_site(SiteId site, bool on);

  const UdpStats& stats() const { return stats_; }
  /// One group's slice of the frame/byte counters (zeroes if never seen).
  GroupWireStats group_stats(GroupId group) const;
  /// Exports the aggregate counters under `prefix` plus, when more than
  /// one group has touched the wire, per-group slices under
  /// `prefix.group<id>.` — the per-group labels /metrics reports.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "udp") const;

 private:
  friend struct UdpTransportTestHook;  // tests inject socket-level faults

  struct PendingFrame {
    SiteId site;
    std::uint32_t dest_incarnation = 0;
    GroupId group = kDefaultGroup;
    /// Trace context active when the frame was enqueued (0 = untraced).
    std::uint64_t trace = 0;
    SharedBytes payload;
  };

  /// Enqueue-time validation and accounting (drop rules, unknown peer,
  /// oversize), so counters move when send() runs, not at flush.
  void enqueue(GroupId group, SiteId site, std::uint32_t dest_incarnation,
               SharedBytes payload);
  void on_readable();
  /// Validates and delivers one received datagram (splitting coalesced
  /// payloads); `n` is the wire size, `flags` the per-message msg_flags.
  void handle_datagram(const sockaddr_in& src, const std::uint8_t* data,
                       std::size_t n, int flags);

  EventLoop& loop_;
  NodeConfig config_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  /// Per-group demux table; receive looks the envelope's group up here.
  std::unordered_map<GroupId, DeliverFn> deliver_;
  UdpStats stats_;
  std::map<GroupId, GroupWireStats> group_stats_;
  bool coalesce_ = true;
  bool drop_all_ = false;
  /// Trace context stamped onto frames at enqueue time (0 = untraced).
  std::uint64_t current_trace_ = 0;
  std::unordered_set<SiteId> drop_sites_;
  /// (ip << 16 | port) -> site, for source validation on receive.
  std::unordered_map<std::uint64_t, SiteId> addr_to_site_;
  EventLoop::FlushHookId flush_hook_ = 0;

  std::vector<PendingFrame> pending_;

  // Flush arenas, reused across flushes (grow-only): mmsghdr/iovec/
  // sockaddr/header/prefix storage filled per flush, with iovec ranges
  // patched into the mmsghdrs only after every push_back is done so
  // vector growth can never leave a stale pointer behind.
  struct FlushKey {
    SiteId site;
    std::uint32_t incarnation = 0;
    GroupId group = kDefaultGroup;
    /// Trace context of the frames under this key: the envelope carries
    /// one trace per datagram, so mixed-trace frames never coalesce.
    std::uint64_t trace = 0;
    bool operator==(const FlushKey&) const = default;
  };
  struct FlushKeyHash {
    std::size_t operator()(const FlushKey& k) const {
      std::uint64_t h = (std::uint64_t{k.site.value} << 32) | k.incarnation;
      h ^= (std::uint64_t{k.group} + 0x9e3779b97f4a7c15ull) + (h << 6) +
           (h >> 2);
      h ^= k.trace + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return std::hash<std::uint64_t>{}(h);
    }
  };
  std::unordered_map<FlushKey, std::vector<std::size_t>, FlushKeyHash>
      flush_groups_;
  std::vector<FlushKey> flush_group_order_;
  std::vector<mmsghdr> out_msgs_;
  std::vector<std::size_t> out_iov_first_;
  std::vector<iovec> out_iovs_;
  std::vector<sockaddr_in> out_dests_;
  std::vector<std::uint8_t> out_headers_;
  std::vector<std::uint8_t> out_prefixes_;
  std::vector<std::uint32_t> out_frame_counts_;
  std::vector<std::size_t> out_sizes_;
  std::vector<GroupId> out_groups_;
  std::vector<std::size_t> out_payload_bytes_;

  // Receive pool: kRecvBatch fixed-size buffers drained per recvmmsg.
  static constexpr unsigned kRecvBatch = 16;
  static constexpr std::size_t kRecvBufSize = kHeaderSize + kMaxPayload + 1;
  std::vector<std::uint8_t> recv_buffers_;
  std::vector<mmsghdr> recv_msgs_;
  std::vector<iovec> recv_iovs_;
  std::vector<sockaddr_in> recv_srcs_;
  std::vector<std::pair<std::size_t, std::size_t>> subframe_scratch_;
};

/// The runtime::Transport one hosted group instance actually sees: every
/// send is forwarded to the shared UdpTransport stamped with this group's
/// id. Receive-side wiring is separate (UdpTransport::set_deliver(group)),
/// done by the host when it binds the node.
class GroupChannel final : public runtime::Transport {
 public:
  GroupChannel(UdpTransport& transport, GroupId group)
      : transport_(transport), group_(group) {}

  GroupId group() const { return group_; }

  void send(ProcessId to, Bytes payload) override {
    transport_.send(group_, to, std::move(payload));
  }
  void send_to_site(SiteId site, Bytes payload) override {
    transport_.send_to_site(group_, site, std::move(payload));
  }
  void send_multi(const std::vector<ProcessId>& recipients,
                  SharedBytes payload) override {
    transport_.send_multi(group_, recipients, std::move(payload));
  }
  void set_trace_context(std::uint64_t trace) override {
    transport_.set_trace_context(trace);
  }

 private:
  UdpTransport& transport_;
  GroupId group_;
};

}  // namespace evs::net
