// Real-time runtime, part 4: the UDP messenger.
//
// One non-blocking UDP socket per node, driven by the EventLoop, speaking
// the unchanged gms::frame wire format wrapped in the 16-byte datagram
// header (net/datagram.hpp). Addressing uses the static peer book from
// NodeConfig — sites never move during a run, matching the paper's model
// of sites as stable locations.
//
// The send path preserves the encode-once fan-out contract: send_multi
// shares one SharedBytes frame across all recipients and transmits each
// copy with sendmsg(iovec{header, payload}) — one encode, n sendtos, zero
// payload copies (the per-recipient header lives on the stack because the
// addressed incarnation differs per recipient).
//
// The receive path is bounded and drop-oriented: the substrate already
// assumes lossy links, so every malformed, truncated, spoofed,
// unknown-peer or stale-incarnation datagram is counted and dropped — no
// new protocol machinery, exactly the sim::Network drop semantics.
// Drop-rules (set_drop_all / set_drop_site) emulate partitions for tests
// and demos, the real-socket analogue of sim::Network::set_partition.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "net/config.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace evs::net {

struct UdpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;  // accepted and delivered
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Sends that owned their buffer (send / send_to_site): one heap buffer.
  std::uint64_t payload_copies = 0;
  /// Sends off a ref-counted fan-out buffer (send_multi): no copy at all.
  std::uint64_t payloads_shared = 0;
  std::uint64_t dropped_malformed = 0;    // runt, bad magic, spoofed site
  std::uint64_t dropped_truncated = 0;    // datagram exceeded our buffer
  std::uint64_t dropped_unknown_peer = 0;  // source address not in the book
  std::uint64_t dropped_stale_incarnation = 0;
  std::uint64_t dropped_rule = 0;   // partition drop-rules
  std::uint64_t dropped_oversize = 0;  // payload > kMaxPayload on send
  std::uint64_t send_errors = 0;    // sendmsg failures (EAGAIN, ENETUNREACH..)
};

class UdpTransport final : public runtime::Transport {
 public:
  /// Binds the socket to config.self's peer address and registers it with
  /// the loop. Throws InvariantViolation (EVS_CHECK) on bind failure.
  UdpTransport(EventLoop& loop, NodeConfig config);
  ~UdpTransport() override;
  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The identity this transport gives its node.
  ProcessId self() const { return ProcessId{config_.self, config_.incarnation}; }
  const NodeConfig& config() const { return config_; }
  int fd() const { return fd_; }
  /// The port actually bound (differs from config when it said port 0).
  std::uint16_t bound_port() const { return bound_port_; }

  /// Registers the deliver-callback (the hosted node's on_message).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  // runtime::Transport.
  void send(ProcessId to, Bytes payload) override;
  void send_to_site(SiteId site, Bytes payload) override;
  void send_multi(const std::vector<ProcessId>& recipients,
                  SharedBytes payload) override;

  /// Partition emulation: drop all traffic in both directions (incoming
  /// datagrams are discarded on receive, outgoing before sendmsg).
  void set_drop_all(bool on) { drop_all_ = on; }
  void set_drop_site(SiteId site, bool on);

  const UdpStats& stats() const { return stats_; }
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "udp") const;

 private:
  void on_readable();
  /// Sends one datagram: header (stack) + payload via scatter/gather.
  void transmit(SiteId dest_site, std::uint32_t dest_incarnation,
                const std::uint8_t* payload, std::size_t size);

  EventLoop& loop_;
  NodeConfig config_;
  int fd_ = -1;
  std::uint16_t bound_port_ = 0;
  DeliverFn deliver_;
  UdpStats stats_;
  bool drop_all_ = false;
  std::unordered_set<SiteId> drop_sites_;
  /// (ip << 16 | port) -> site, for source validation on receive.
  std::unordered_map<std::uint64_t, SiteId> addr_to_site_;
};

}  // namespace evs::net
