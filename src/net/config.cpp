#include "net/config.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace evs::net {

std::string PeerAddr::str() const {
  std::ostringstream os;
  os << ((ip >> 24) & 0xff) << '.' << ((ip >> 16) & 0xff) << '.'
     << ((ip >> 8) & 0xff) << '.' << (ip & 0xff) << ':' << port;
  return os.str();
}

std::optional<PeerAddr> parse_addr(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size())
    return std::nullopt;

  // Dotted quad.
  std::uint32_t ip = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (pos < colon) {
    std::size_t end = text.find('.', pos);
    if (end == std::string::npos || end > colon) end = colon;
    if (end == pos || end - pos > 3) return std::nullopt;
    std::uint32_t octet = 0;
    for (std::size_t i = pos; i < end; ++i) {
      if (text[i] < '0' || text[i] > '9') return std::nullopt;
      octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
    }
    if (octet > 255 || octets >= 4) return std::nullopt;
    ip = (ip << 8) | octet;
    ++octets;
    pos = end + 1;
  }
  if (octets != 4) return std::nullopt;

  std::uint32_t port = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return std::nullopt;
    port = port * 10 + static_cast<std::uint32_t>(text[i] - '0');
    if (port > 65535) return std::nullopt;
  }
  if (port == 0) return std::nullopt;
  return PeerAddr{ip, static_cast<std::uint16_t>(port)};
}

std::vector<SiteId> NodeConfig::universe() const {
  std::vector<SiteId> sites;
  sites.reserve(peers.size());
  for (const auto& [site, addr] : peers) sites.push_back(site);
  return sites;  // std::map keys are already sorted
}

std::vector<GroupSpec> NodeConfig::log_shards() const {
  std::vector<GroupSpec> shards;
  for (const GroupSpec& g : groups)
    if (g.object == "log") shards.push_back(g);
  std::sort(shards.begin(), shards.end());
  return shards;
}

bool parse_node_config(std::istream& in, NodeConfig& out, std::string& error) {
  out = NodeConfig{};
  bool have_self = false;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and surrounding whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // blank line

    const auto fail = [&](const std::string& what) {
      error = "line " + std::to_string(line_no) + ": " + what;
      return false;
    };

    if (keyword == "self") {
      std::uint32_t site = 0;
      if (!(fields >> site)) return fail("expected: self <site-id>");
      out.self = SiteId{site};
      have_self = true;
    } else if (keyword == "incarnation") {
      std::uint32_t inc = 0;
      if (!(fields >> inc) || inc == 0)
        return fail("expected: incarnation <positive-u32>");
      out.incarnation = inc;
    } else if (keyword == "peer") {
      std::uint32_t site = 0;
      std::string addr_text;
      if (!(fields >> site >> addr_text))
        return fail("expected: peer <site-id> <ip:port>");
      const auto addr = parse_addr(addr_text);
      if (!addr) return fail("bad address '" + addr_text + "'");
      if (!out.peers.emplace(SiteId{site}, *addr).second)
        return fail("duplicate peer " + std::to_string(site));
    } else if (keyword == "admin") {
      std::uint32_t site = 0;
      std::string addr_text;
      if (!(fields >> site >> addr_text))
        return fail("expected: admin <site-id> <ip:port>");
      const auto addr = parse_addr(addr_text);
      if (!addr) return fail("bad address '" + addr_text + "'");
      if (!out.admin.emplace(SiteId{site}, *addr).second)
        return fail("duplicate admin " + std::to_string(site));
    } else if (keyword == "svc") {
      std::uint32_t site = 0;
      std::string addr_text;
      if (!(fields >> site >> addr_text))
        return fail("expected: svc <site-id> <ip:port>");
      const auto addr = parse_addr(addr_text);
      if (!addr) return fail("bad address '" + addr_text + "'");
      if (!out.svc.emplace(SiteId{site}, *addr).second)
        return fail("duplicate svc " + std::to_string(site));
    } else if (keyword == "admin_token") {
      std::string token;
      if (!(fields >> token)) return fail("expected: admin_token <secret>");
      if (!out.admin_token.empty()) return fail("duplicate admin_token");
      out.admin_token = token;
    } else if (keyword == "store") {
      std::string dir;
      if (!(fields >> dir)) return fail("expected: store <directory>");
      if (!out.store_dir.empty()) return fail("duplicate store");
      out.store_dir = dir;
    } else if (keyword == "coalesce") {
      std::string value;
      if (!(fields >> value) || (value != "on" && value != "off"))
        return fail("expected: coalesce on|off");
      out.coalesce = value == "on";
    } else if (keyword == "group") {
      std::uint32_t id = 0;
      std::string object;
      if (!(fields >> id >> object))
        return fail("expected: group <id> <object>");
      if (object != "kv" && object != "lock" && object != "file" &&
          object != "log" && object != "none")
        return fail("unknown group object '" + object +
                    "' (kv|lock|file|log|none)");
      for (const GroupSpec& g : out.groups)
        if (g.id == id) return fail("duplicate group " + std::to_string(id));
      out.groups.push_back(GroupSpec{GroupId{id}, object});
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (fields >> extra) return fail("trailing tokens after '" + keyword + "'");
  }
  if (!have_self) {
    error = "missing 'self' line";
    return false;
  }
  if (!out.peers.contains(out.self)) {
    error = "self site " + to_string(out.self) + " has no peer line";
    return false;
  }
  if (out.peers.size() < 2) {
    error = "config needs at least two peers to form a group";
    return false;
  }
  for (const auto& [site, addr] : out.admin) {
    if (!out.peers.contains(site)) {
      error = "admin line for unknown site " + to_string(site);
      return false;
    }
  }
  for (const auto& [site, addr] : out.svc) {
    if (!out.peers.contains(site)) {
      error = "svc line for unknown site " + to_string(site);
      return false;
    }
  }
  error.clear();
  return true;
}

bool load_node_config(const std::string& path, NodeConfig& out,
                      std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  return parse_node_config(in, out, error);
}

}  // namespace evs::net
