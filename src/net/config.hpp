// Real-time runtime, part 2: static peer configuration.
//
// A node learns the universe — every site that may ever host a group
// member, the same bootstrap set sim runs pass as
// EndpointConfig::universe — from a small text file:
//
//   # evs_node config
//   self 0            # this process's SiteId (must appear as a peer)
//   incarnation 1     # optional; bump after a crash-recovery restart
//   peer 0 127.0.0.1:9000
//   peer 1 127.0.0.1:9001
//   peer 2 10.0.0.7:9000
//   admin 0 127.0.0.1:9100   # optional per-node admin (HTTP) endpoint
//   admin 1 127.0.0.1:9101
//   admin_token hunter2      # shared secret enabling the admin write side
//   svc 0 127.0.0.1:9200     # optional per-node client service endpoint
//   svc 1 127.0.0.1:9201     # (binary request/response, see svc/server.hpp)
//   coalesce off             # optional; default on (pack small frames
//                            # into one datagram per peer per flush)
//   store /var/lib/evs/s0    # optional durable store directory (WAL +
//                            # snapshots, src/store/); omitted = volatile
//   group 0 kv               # optional: group instances this process
//   group 1 log              # hosts, one line per instance — id is the
//   group 2 log              # wire-level GroupId, the word names the
//                            # hosted object kind (kv | lock | file |
//                            # log | none). No group lines = the single
//                            # default group 0, object chosen by the
//                            # host binary's flags, exactly as before.
//
// The peer line for `self` doubles as the bind address; an admin line for
// `self` makes the node serve the live-observability HTTP plane there
// (see net/admin.hpp), and admin lines for other sites are how fleet
// tools (tools/evs_top, tools/evs_ctl) find every node's endpoint from
// one file. A `svc` line for `self` additionally serves the external-client
// front door there (length-prefixed binary request/response, svc/server.hpp);
// svc lines for other sites let load generators (tools/svc_bench) find the
// whole fleet. An `admin_token` line (one word, no spaces) arms the admin
// plane's POST side: control commands (/join, /leave, /merge-all,
// /merge) are only accepted when they carry the same token, and a config
// without the line leaves the plane read-only. Parsing is strict:
// unknown keywords, duplicate sites, admin lines for unknown sites, or
// malformed addresses fail with a line-numbered error rather than
// half-loading a cluster map.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace evs::net {

/// IPv4 endpoint, host byte order.
struct PeerAddr {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  auto operator<=>(const PeerAddr&) const = default;

  std::string str() const;
};

/// Parses "a.b.c.d:port"; returns nullopt on any malformation.
std::optional<PeerAddr> parse_addr(const std::string& text);

/// One `group <id> <object>` line: a group instance this process hosts.
/// The object word is the hosted group-object kind; the config layer only
/// checks it is a known kind, the host binary instantiates it.
struct GroupSpec {
  GroupId id = kDefaultGroup;
  std::string object;  // "kv" | "lock" | "file" | "log" | "none"

  auto operator<=>(const GroupSpec&) const = default;
};

struct NodeConfig {
  SiteId self;
  std::uint32_t incarnation = 1;
  /// Site -> address for every member of the universe, self included.
  std::map<SiteId, PeerAddr> peers;
  /// Site -> admin-plane (HTTP) address; optional, any subset of `peers`.
  std::map<SiteId, PeerAddr> admin;
  /// Site -> client-service (binary front door) address; optional, any
  /// subset of `peers`.
  std::map<SiteId, PeerAddr> svc;
  /// Shared secret for admin-plane POST commands; empty = write side off.
  std::string admin_token;
  /// Directory for the durable store (WAL + snapshots, src/store/). Empty
  /// = volatile MemoryStore, exactly the pre-durability behaviour. With a
  /// directory configured the runtime also persists and monotonically
  /// bumps the incarnation across restarts (a restarted process must
  /// never reuse its predecessor's incarnation — peers drop frames
  /// addressed to a stale one), and hosted objects persist their state
  /// and rejoin via bounded-delta state transfer.
  std::string store_dir;
  /// Small-message coalescing on the wire path (UdpTransport); on by
  /// default, `coalesce off` pins every frame to its own datagram.
  bool coalesce = true;
  /// Group instances to host, in file order (ids unique). Empty = the
  /// single default group, configured by the host binary as before.
  std::vector<GroupSpec> groups;

  /// The log-object groups among `groups`, in id order. Their rank in
  /// this vector is the shard index of the sharded log (shard i of G).
  std::vector<GroupSpec> log_shards() const;

  /// Sorted universe (the key set of `peers`).
  std::vector<SiteId> universe() const;
  const PeerAddr& self_addr() const { return peers.at(self); }
  /// This node's admin endpoint, if configured.
  std::optional<PeerAddr> self_admin_addr() const {
    const auto it = admin.find(self);
    return it == admin.end() ? std::nullopt : std::optional<PeerAddr>(it->second);
  }
  /// This node's client-service endpoint, if configured.
  std::optional<PeerAddr> self_svc_addr() const {
    const auto it = svc.find(self);
    return it == svc.end() ? std::nullopt : std::optional<PeerAddr>(it->second);
  }
};

/// Parses a config stream. On failure returns false and sets `error` to a
/// line-numbered description; `out` is left unspecified.
bool parse_node_config(std::istream& in, NodeConfig& out, std::string& error);

/// Convenience: parse a file by path.
bool load_node_config(const std::string& path, NodeConfig& out,
                      std::string& error);

}  // namespace evs::net
