// Shared TCP accept/cap/shed machinery for the node's plane servers.
//
// Both front doors of a node — the HTTP admin plane (net/admin.hpp) and
// the binary client service (svc/server.hpp) — need the same listen-side
// skeleton: a non-blocking CLOEXEC listen socket bound to ip:port (port 0
// picks an ephemeral port), registered with the single epoll EventLoop,
// draining accept4() in a loop on every wake, and *shedding* connections
// past a capacity check instead of queueing them (close immediately; the
// client retries). This class is that skeleton, extracted so there is
// exactly one conn-cap + shed implementation; the owners keep their own
// counters and per-connection state via the callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/event_loop.hpp"

namespace evs::net {

class TcpListener {
 public:
  struct Callbacks {
    /// Checked before each accepted connection is handed over; true sheds
    /// it (closed immediately, on_shed fires). Null means no cap.
    std::function<bool()> at_capacity;
    /// Receives each accepted fd (non-blocking, CLOEXEC); ownership
    /// transfers — the owner registers it with the loop and closes it.
    std::function<void(int fd)> on_connection;
    /// One shed connection was closed (owner counts dropped_overload).
    std::function<void()> on_shed;
  };

  /// Binds ip:port (host byte order; port 0 picks an ephemeral port, see
  /// bound_port()) and registers with the loop. Throws InvariantViolation
  /// on socket/bind/listen failure; `tag` names the owner in the message.
  TcpListener(EventLoop& loop, std::uint32_t ip, std::uint16_t port,
              Callbacks callbacks, const std::string& tag);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::uint16_t bound_port() const { return bound_port_; }

 private:
  void on_accept();

  EventLoop& loop_;
  Callbacks callbacks_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
};

}  // namespace evs::net
