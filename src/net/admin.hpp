// The per-node admin plane: live observability plus the control surface.
//
// A tiny HTTP/1.0 text server on one TCP listen socket, driven entirely
// by the node's existing epoll EventLoop — no threads, no allocation on
// the wire path, nothing shared with the UDP transport.
//
// Read side (GET):
//
//   GET /status        — one JSON object: runtime identity (site,
//                        incarnation, ports, uptime) plus whatever the
//                        hosted node reports through
//                        runtime::Node::admin_status_json() (view id,
//                        mode, subview/sv-set structure, member list).
//   GET /metrics       — MetricsRegistry snapshot as JSON. The registry
//                        is refreshed through a caller-supplied hook
//                        right before serialising, so scrapes always see
//                        live counters, not the last export.
//   GET /metrics.prom  — the same snapshot as Prometheus text exposition
//                        (MetricsRegistry::to_prometheus()).
//   GET /trace?since=N — incremental JSONL tail of the TraceBus: events
//                        with recording index >= N (capped per response),
//                        each line carrying an "i" index field; the
//                        X-Evs-Next-Since response header is the N to
//                        pass on the next poll.
//   GET /trace?req=T   — the same tail filtered to the Request* lifecycle
//                        events of trace id T (combinable with since=),
//                        i.e. the hops one sampled client request took
//                        through this node.
//   GET /health        — the online oracle checker's verdict (a JSON
//                        object from obs::LiveChecker::health_json):
//                        events checked, violations total / per group,
//                        recent violation summaries. Always HTTP 200; the
//                        body's "healthy" flag carries the verdict.
//
// Write side (POST) — the paper's application-control calls, exposed so
// an operator, orchestrator or tools/evs_ctl can drive Figure-1 mode
// transitions (Reconfigure / Reconcile) from outside the process:
//
//   POST /join             — nudge an immediate reconfiguration round
//   POST /leave            — announce departure and halt the node
//   POST /merge-all        — collapse the whole e-view structure
//   POST /merge?svset=<id>,<id>,... — SV-SetMerge of the listed sv-sets
//
// Commands are routed through a host-supplied callback (NetRuntime wires
// it to runtime::Node::admin_command) and require a shared-secret token
// (config line `admin_token <secret>`), carried either in an
// X-Admin-Token request header or a `token=<secret>` form body. Without
// a configured token the write side is disabled entirely (403). Requests
// failing authentication are 401; both are counted in
// admin.dropped_unauthorized. Accepted and rejected commands are counted
// in admin.commands_*.
//
// The receive path is hardened the same way udp_transport's is: requests
// are read into a bounded buffer, anything malformed (bad request line,
// unknown method, unparseable Content-Length) is counted and the
// connection dropped with a terse error, bodies over the cap are 413'd,
// and a cap on simultaneous connections sheds load instead of queueing
// it. Responses that overrun the socket buffer finish under EPOLLOUT
// write interest — a slow scraper never blocks the loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "net/event_loop.hpp"
#include "net/tcp_listener.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::net {

struct AdminStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_ok = 0;
  std::uint64_t dropped_malformed = 0;     // bad request line / method / query
  std::uint64_t dropped_oversize = 0;      // request or body exceeded its cap
  std::uint64_t dropped_overload = 0;      // connection cap reached
  std::uint64_t dropped_unauthorized = 0;  // POST without a valid token
  std::uint64_t not_found = 0;             // unknown path (404 served)
  std::uint64_t commands_ok = 0;           // POST commands accepted
  std::uint64_t commands_rejected = 0;     // authenticated but refused (400)
};

/// Outcome of one admin-plane control command, as reported by the host's
/// command callback.
struct AdminCommandResult {
  bool ok = false;
  std::string message;  // human-readable rejection reason when !ok
};

/// Stable numeric code for an admin command name, recorded in the `seq`
/// field of EventKind::AdminCommand trace events (0 = unknown).
std::uint64_t admin_command_code(const std::string& name);

class AdminServer {
 public:
  /// Longest request (line + headers) accepted before 400 + drop.
  static constexpr std::size_t kMaxRequestBytes = 4096;
  /// Longest POST body accepted before 413 + drop.
  static constexpr std::size_t kMaxBodyBytes = 1024;
  /// Simultaneous connections served; extra accepts are shed immediately.
  static constexpr std::size_t kMaxConnections = 32;
  /// Trace events per /trace response; pollers page with ?since=.
  static constexpr std::size_t kMaxTraceEvents = 4096;

  /// Binds ip:port (host byte order; port 0 picks an ephemeral port, see
  /// bound_port()) and registers with the loop. Throws InvariantViolation
  /// on bind/listen failure.
  AdminServer(EventLoop& loop, std::uint32_t ip, std::uint16_t port);
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  std::uint16_t bound_port() const { return listener_.bound_port(); }

  /// Supplies the /status body (a complete JSON object).
  void set_status(std::function<std::string()> fn) { status_ = std::move(fn); }

  /// Wires /metrics[.prom] to `registry`; `refresh` (may be empty) runs
  /// before every serialisation so exports are current at scrape time.
  void set_metrics(const obs::MetricsRegistry* registry,
                   std::function<void()> refresh) {
    registry_ = registry;
    refresh_ = std::move(refresh);
  }

  /// Wires /trace to `bus` (served 503 until set).
  void set_trace(const obs::TraceBus* bus) { trace_ = bus; }

  /// Supplies the /health body (a complete JSON object; served 503 until
  /// set). NetRuntime wires this to its online LiveChecker.
  void set_health(std::function<std::string()> fn) { health_ = std::move(fn); }

  /// Arms the write side: POST commands are only accepted when the
  /// request carries `token`. An empty token keeps the plane read-only.
  void set_token(std::string token) { token_ = std::move(token); }

  /// Routes authenticated POST commands; receives the command name
  /// ("join", "leave", "merge-all", "merge") and its argument text (the
  /// svset= query value for /merge, empty otherwise). Served 503 until
  /// set.
  using CommandFn =
      std::function<AdminCommandResult(const std::string& name,
                                       const std::string& arg)>;
  void set_command(CommandFn fn) { command_ = std::move(fn); }

  const AdminStats& stats() const { return stats_; }
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "admin") const;

 private:
  struct Connection {
    std::string in;       // bounded request buffer
    std::string out;      // response remainder awaiting the socket
    std::size_t sent = 0;
    bool responded = false;
  };

  void on_connection(int fd);
  void on_readable(int fd);
  void on_writable(int fd);
  /// Parses conn.in; fills conn.out once the request (line + headers +
  /// any POST body) is complete, or leaves conn.responded false when more
  /// body bytes are still owed. Counts drops.
  void handle_request(int fd, Connection& conn, std::size_t body_at);
  std::string route(const std::string& path, const std::string& query,
                    std::string& extra_headers, std::string& content_type,
                    bool& ok);
  /// Authenticates and dispatches one POST command; sends the response.
  void handle_command(int fd, Connection& conn, const std::string& path,
                      const std::string& query, const std::string& headers,
                      const std::string& body);
  void start_response(int fd, Connection& conn, int code,
                      const std::string& content_type, std::string body,
                      const std::string& extra_headers);
  /// Writes what the socket accepts; closes when done or broken.
  void flush(int fd, Connection& conn);
  void close_connection(int fd);

  EventLoop& loop_;
  std::map<int, Connection> connections_;
  TcpListener listener_;  // after connections_: accepts may fire during init

  std::function<std::string()> status_;
  std::function<std::string()> health_;
  const obs::MetricsRegistry* registry_ = nullptr;
  std::function<void()> refresh_;
  const obs::TraceBus* trace_ = nullptr;
  std::string token_;
  CommandFn command_;

  AdminStats stats_;
};

}  // namespace evs::net
