// View-synchronous communication endpoint.
//
// One Endpoint per process implements the paper's Section-2 service:
// a partitionable group-membership protocol integrated with reliable
// multicast such that
//
//   Agreement  (P2.1) — processes surviving from view v to the same next
//                        view deliver the same set of v's messages,
//   Uniqueness (P2.2) — a message is delivered in at most one view,
//   Integrity  (P2.3) — no duplicates, no spontaneous messages.
//
// Protocol sketch (coordinator-driven, restartable rounds):
//   * A heartbeat detector tracks a reachable set over a configured
//     universe of sites. When the reachable set disagrees with the current
//     view and this process is the minimum of the desired membership, it
//     starts a round: PROPOSE(round, members).
//   * Members freeze (stop sending and delivering), then ACK with their
//     prior view id, their buffered ("unstable") messages of that view,
//     and an opaque flush context supplied by the upper layer (the
//     enriched-view structure, see src/evs/).
//   * When every proposed member has ACKed, the coordinator builds the
//     per-prior-view unions of unstable messages and INSTALLs the new
//     view. Each member first delivers the missing remainder of its own
//     prior view's union (still in the old view — Uniqueness), then
//     installs and unfreezes.
//   * Any failure or competing round restarts with a higher round number;
//     stale PROPOSE/ACK/INSTALL are discarded by round id.
//
// Concurrent views arise naturally: a coordinator can only assemble ACKs
// from its own partition, so each partition installs its own view.
//
// Within a view, delivery is FIFO per sender. A periodic stability gossip
// lets members garbage-collect messages that every view member has
// delivered (they can never be needed by a flush again).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "detector/heartbeat.hpp"
#include "gms/policy.hpp"
#include "gms/view.hpp"
#include "gms/wire.hpp"
#include "runtime/runtime.hpp"

namespace evs::vsync {

struct EndpointConfig {
  /// All sites that may ever host a group member (discovery bootstrap).
  std::vector<SiteId> universe;
  detector::DetectorConfig detector;
  gms::JoinPolicy policy = gms::JoinPolicy::Batch;
  /// Coordinator restarts an unfinished round after this long.
  SimDuration round_retry = 300 * kMillisecond;
  /// Periodic reconfiguration check interval.
  SimDuration check_interval = 40 * kMillisecond;
  /// A member frozen longer than this tries to coordinate itself out.
  SimDuration stale_block_timeout = 400 * kMillisecond;
  /// Stability-gossip period; 0 disables GC (all view messages buffered).
  SimDuration stability_interval = 100 * kMillisecond;
};

/// Everything delivered alongside a new view, for upper layers that merge
/// state across the view change (the enriched-view layer reads both).
struct InstallInfo {
  const std::vector<gms::MemberContext>& contexts;
  const std::vector<std::pair<ViewId, std::vector<gms::FlushedMessage>>>& unions;
};

/// Upper-layer interface.
class Delegate {
 public:
  virtual ~Delegate() = default;

  /// A new view was installed. All flush deliveries for the old view have
  /// already happened.
  virtual void on_view(const gms::View& view, const InstallInfo& info) = 0;

  /// A multicast was delivered in the current view.
  virtual void on_deliver(ProcessId sender, const Bytes& payload) = 0;

  /// Called when this member freezes for a view change; the returned bytes
  /// travel with the ACK and reappear in InstallInfo::contexts.
  virtual Bytes flush_context() { return {}; }

  /// Notification that sending is now blocked (flush in progress).
  virtual void on_block() {}
};

struct EndpointStats {
  std::uint64_t views_installed = 0;
  std::uint64_t rounds_started = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t data_multicast = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t flush_deliveries = 0;  // delivered from an install union
  std::uint64_t messages_discarded = 0;
  std::uint64_t install_bytes = 0;
  std::uint64_t ack_bytes = 0;
  std::uint64_t stability_gc_messages = 0;
  /// Wire frames built by this endpoint — with encode-once fan-out this
  /// advances by 1 per multicast/PROPOSE/INSTALL/stability burst, not by
  /// n−1 (asserted by tests and reported by benches).
  std::uint64_t frames_encoded = 0;
  std::uint64_t frame_bytes_encoded = 0;
  std::size_t buffer_peak = 0;
  SimTime last_install_time = 0;
};

class Endpoint : public runtime::Node {
 public:
  explicit Endpoint(EndpointConfig config);
  ~Endpoint() override;

  /// Must be called before the first event fires (i.e., right at spawn).
  void set_delegate(Delegate* delegate) { delegate_ = delegate; }

  /// Multicasts to the current view. While frozen for a view change the
  /// payload is queued and sent in the next view.
  void multicast(Bytes payload);

  /// Announces departure and crashes this incarnation.
  void leave();

  /// Application-driven reconfiguration nudge: runs the same reachability
  /// check the periodic timer runs, immediately. Used by the admin plane's
  /// /join command to pull reachable peers into a view on demand instead
  /// of waiting out the next check tick.
  void reconfigure() { maybe_coordinate(); }

  /// True once leave() announced this incarnation's departure.
  bool left() const { return left_; }

  const gms::View& view() const { return view_; }
  bool blocked() const { return acked_round_.has_value(); }
  /// Messages currently buffered for a potential flush.
  std::size_t buffer_size() const { return buffer_.size(); }
  const EndpointStats& stats() const { return stats_; }
  const EndpointConfig& config() const { return config_; }

  /// Projects the endpoint's and its detector's stats into `registry` as
  /// counters under `prefix` (e.g. "p0.vsync"), for MetricsRegistry
  /// snapshots; the stats structs remain the cheap direct accessors.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

  // runtime::Node interface.
  void on_start() override;
  void on_message(ProcessId from, const Bytes& payload) override;
  /// Admin-plane /status body: view id, membership and core counters.
  std::string admin_status_json() const override;

 protected:
  /// The key/value fields of admin_status_json() without the surrounding
  /// braces, so derived endpoints (EvsEndpoint) can splice in their own.
  std::string admin_status_fields() const;

 private:
  struct PerSender {
    std::uint64_t next_expected = 1;
    std::map<std::uint64_t, Bytes> pending;  // received out of order
  };

  struct Coordinating {
    gms::RoundId round;
    std::vector<ProcessId> proposed;
    std::map<ProcessId, gms::Ack> acks;
  };

  void handle_heartbeat(ProcessId from);
  void handle_membership(ProcessId from, Decoder& dec);
  void handle_data(ProcessId from, Decoder& dec);
  void handle_stability(ProcessId from, Decoder& dec);
  void handle_leave(ProcessId from);

  void handle_propose(ProcessId from, const gms::Propose& msg);
  void handle_ack(ProcessId from, const gms::Ack& msg);
  void handle_install(const gms::Install& msg);

  void on_reachability_change();
  void maybe_coordinate();
  void start_round(std::vector<ProcessId> members);
  void finish_round();
  void install_singleton();
  void check_tick();
  void collect_garbage();

  void accept_data(ProcessId sender, gms::DataMsg msg);
  void try_deliver(ProcessId sender);
  void deliver(ProcessId sender, std::uint64_t seq, const Bytes& payload);
  bool already_delivered(ProcessId sender, std::uint64_t seq) const;

  /// Builds the wire frame exactly once, counting the encode work.
  SharedBytes frame_once(gms::Channel channel, Encoder&& body);
  /// Encode-once fan-out: frames `body` once and shares the buffer across
  /// every member of `recipients` except self. When there is no remote
  /// recipient the frame is never built.
  void fan_out(const std::vector<ProcessId>& recipients, gms::Channel channel,
               Encoder&& body);
  /// Thin single-recipient wrapper over the shared path.
  void send_framed(ProcessId to, gms::Channel channel, Encoder&& body);

  void stability_tick();
  gms::Ack make_ack(gms::RoundId round);

  EndpointConfig config_;
  Delegate* delegate_ = nullptr;
  std::unique_ptr<detector::HeartbeatDetector> detector_;

  gms::View view_;
  std::uint64_t max_number_seen_ = 0;
  std::uint64_t send_seq_ = 0;

  // Messages of the current view (sent + received), keyed (sender, seq);
  // the flush summary. Stability GC trims it.
  std::map<std::pair<ProcessId, std::uint64_t>, Bytes> buffer_;
  std::unordered_map<ProcessId, PerSender> streams_;

  // Freeze state: highest round ACKed; set while a view change is pending.
  std::optional<gms::RoundId> acked_round_;
  SimTime blocked_since_ = 0;
  std::deque<Bytes> pending_sends_;

  std::optional<Coordinating> coordinating_;

  // DATA that arrived for a view we have not installed yet.
  std::map<ViewId, std::vector<std::pair<ProcessId, gms::DataMsg>>> future_stash_;
  static constexpr std::size_t kMaxStashPerView = 4096;

  // Stability gossip state: latest per-member delivered vectors.
  std::map<ProcessId, std::vector<std::uint64_t>> stability_reports_;

  EndpointStats stats_;
  bool left_ = false;
};

}  // namespace evs::vsync
