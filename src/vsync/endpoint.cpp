#include "vsync/endpoint.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace evs::vsync {

namespace {

const std::vector<gms::MemberContext> kNoContexts;
const std::vector<std::pair<ViewId, std::vector<gms::FlushedMessage>>> kNoUnions;

}  // namespace

Endpoint::Endpoint(EndpointConfig config) : config_(std::move(config)) {}

Endpoint::~Endpoint() = default;

void Endpoint::on_start() {
  detector::DetectorHost host;
  host.send_heartbeat = [this](SiteId site) {
    send_to_site(site, gms::frame(gms::Channel::Heartbeat, Encoder{}));
  };
  host.set_timer = [this](SimDuration d, std::function<void()> fn) {
    set_timer(d, std::move(fn));
  };
  host.now = [this]() { return now(); };
  host.trace = trace();

  detector_ = std::make_unique<detector::HeartbeatDetector>(
      id(), config_.universe, std::move(host), config_.detector,
      [this](const std::vector<ProcessId>&) { on_reachability_change(); });

  install_singleton();
  detector_->start();

  // Periodic reconfiguration check (covers lost protocol messages).
  set_timer(config_.check_interval, [this]() { check_tick(); });

  if (config_.stability_interval > 0) {
    set_timer(config_.stability_interval, [this]() { stability_tick(); });
  }
}

void Endpoint::check_tick() {
  maybe_coordinate();
  set_timer(config_.check_interval, [this]() { check_tick(); });
}

void Endpoint::install_singleton() {
  max_number_seen_ += 1;
  view_.id = ViewId{max_number_seen_, id()};
  view_.members = {id()};
  ++stats_.views_installed;
  stats_.last_install_time = now();
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ViewInstalled,
                 view_.id, id(), 0, 1});
  }
  if (delegate_ != nullptr)
    delegate_->on_view(view_, InstallInfo{kNoContexts, kNoUnions});
}

void Endpoint::multicast(Bytes payload) {
  if (left_) return;
  if (blocked()) {
    pending_sends_.push_back(std::move(payload));
    return;
  }
  ++stats_.data_multicast;
  gms::DataMsg msg;
  msg.view = view_.id;
  msg.seq = ++send_seq_;
  msg.payload = std::move(payload);
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::MessageSent, view_.id,
                 id(), msg.seq, obs::payload_hash(msg.payload)});
  }

  Encoder body;
  body.reserve(msg.payload.size() + 32);
  msg.encode(body);
  fan_out(view_.members, gms::Channel::Data, std::move(body));
  // Self-delivery goes through the normal acceptance path so the message
  // is buffered for the flush and delivered FIFO like any other.
  accept_data(id(), std::move(msg));
}

void Endpoint::leave() {
  if (left_) return;
  left_ = true;
  Encoder body;
  fan_out(view_.members, gms::Channel::Leave, std::move(body));
  // Tear the incarnation down once the announcements are on the wire.
  set_timer(0, [this]() { halt(); });
}

void Endpoint::on_message(ProcessId from, const Bytes& payload) {
  Decoder dec(payload);
  try {
    switch (gms::peek_channel(dec)) {
      case gms::Channel::Heartbeat:
        handle_heartbeat(from);
        break;
      case gms::Channel::Membership:
        handle_membership(from, dec);
        break;
      case gms::Channel::Data:
        handle_data(from, dec);
        break;
      case gms::Channel::Stability:
        handle_stability(from, dec);
        break;
      case gms::Channel::Leave:
        handle_leave(from);
        break;
    }
  } catch (const DecodeError& err) {
    // A malformed payload must never corrupt protocol state.
    std::ostringstream head;
    for (std::size_t i = 0; i < payload.size() && i < 8; ++i)
      head << static_cast<int>(payload[i]) << " ";
    EVS_WARN(to_string(id()) << " dropped malformed message from "
                             << to_string(from) << ": " << err.what()
                             << " [size=" << payload.size() << " head="
                             << head.str() << "]");
    ++stats_.messages_discarded;
  }
}

void Endpoint::handle_heartbeat(ProcessId from) {
  detector_->on_heartbeat(from);
}

void Endpoint::handle_leave(ProcessId from) {
  detector_->mark_left(from);
}

void Endpoint::handle_membership(ProcessId from, Decoder& dec) {
  const auto kind = static_cast<gms::MembershipKind>(dec.get_u8());
  switch (kind) {
    case gms::MembershipKind::Propose:
      handle_propose(from, gms::Propose::decode(dec));
      break;
    case gms::MembershipKind::Ack:
      handle_ack(from, gms::Ack::decode(dec));
      break;
    case gms::MembershipKind::Install:
      handle_install(gms::Install::decode(dec));
      break;
    case gms::MembershipKind::Nack: {
      const gms::Nack nack = gms::Nack::decode(dec);
      max_number_seen_ = std::max(max_number_seen_, nack.max_number_seen);
      if (coordinating_ && coordinating_->round == nack.round) {
        // Our number was too low (e.g. the other side of a healed
        // partition has a higher epoch). Restart with a bigger one.
        const std::vector<ProcessId> members = coordinating_->proposed;
        coordinating_.reset();
        start_round(members);
      }
      break;
    }
    default:
      throw DecodeError("unknown membership kind " +
                        std::to_string(static_cast<int>(kind)));
  }
}

gms::Ack Endpoint::make_ack(gms::RoundId round) {
  gms::Ack ack;
  ack.round = round;
  ack.prior_view = view_.id;
  ack.max_number_seen = max_number_seen_;
  ack.unstable.reserve(buffer_.size());
  for (const auto& [key, payload] : buffer_) {
    ack.unstable.push_back(gms::FlushedMessage{key.first, key.second, payload});
  }
  if (delegate_ != nullptr) ack.context = delegate_->flush_context();
  return ack;
}

void Endpoint::handle_propose(ProcessId from, const gms::Propose& msg) {
  max_number_seen_ = std::max(max_number_seen_, msg.round.number);
  const bool number_ok = msg.round.number > view_.id.epoch &&
                         (!acked_round_ || msg.round > *acked_round_);
  if (!number_ok) {
    if (from != id()) {
      gms::Nack nack;
      nack.round = msg.round;
      nack.max_number_seen =
          std::max(max_number_seen_,
                   acked_round_ ? acked_round_->number : std::uint64_t{0});
      Encoder body;
      body.put_u8(static_cast<std::uint8_t>(gms::MembershipKind::Nack));
      nack.encode(body);
      send_framed(from, gms::Channel::Membership, std::move(body));
    }
    return;
  }
  if (!std::binary_search(msg.members.begin(), msg.members.end(), id())) {
    // We are being excluded; our own reconfiguration logic will form a
    // view on our side of the world.
    return;
  }

  const bool was_blocked = blocked();
  acked_round_ = msg.round;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ViewAcked, view_.id,
                 from, msg.round.number, msg.members.size()});
  }
  if (!was_blocked) {
    blocked_since_ = now();
    if (delegate_ != nullptr) delegate_->on_block();
  }
  // A strictly higher competing round kills any round we were running.
  if (coordinating_ && coordinating_->round < msg.round) coordinating_.reset();

  gms::Ack ack = make_ack(msg.round);
  if (from == id()) {
    handle_ack(id(), ack);
    return;
  }
  Encoder body;
  body.put_u8(static_cast<std::uint8_t>(gms::MembershipKind::Ack));
  ack.encode(body);
  stats_.ack_bytes += body.size();
  send_framed(from, gms::Channel::Membership, std::move(body));
}

void Endpoint::handle_ack(ProcessId from, const gms::Ack& msg) {
  if (!coordinating_ || msg.round != coordinating_->round) return;
  max_number_seen_ = std::max(max_number_seen_, msg.max_number_seen);
  if (msg.max_number_seen > coordinating_->round.number) {
    // Someone has seen a higher number than our round; restart above it.
    const std::vector<ProcessId> members = coordinating_->proposed;
    coordinating_.reset();
    start_round(members);
    return;
  }
  coordinating_->acks[from] = msg;
  if (coordinating_->acks.size() == coordinating_->proposed.size())
    finish_round();
}

void Endpoint::start_round(std::vector<ProcessId> members) {
  EVS_CHECK(std::binary_search(members.begin(), members.end(), id()));
  const std::uint64_t number = ++max_number_seen_;
  const gms::RoundId round{number, id()};
  coordinating_ = Coordinating{round, members, {}};
  ++stats_.rounds_started;
  EVS_DEBUG(to_string(id()) << " starts round " << gms::to_string(round));
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ViewProposed,
                 view_.id, id(), round.number, members.size()});
  }

  gms::Propose propose;
  propose.round = round;
  propose.members = members;
  Encoder body;
  body.put_u8(static_cast<std::uint8_t>(gms::MembershipKind::Propose));
  propose.encode(body);
  fan_out(members, gms::Channel::Membership, std::move(body));
  // Self-propose freezes us and self-acks.
  handle_propose(id(), propose);

  set_timer(config_.round_retry, [this, round]() {
    if (!coordinating_ || coordinating_->round != round) return;
    // Round stalled (lost messages or members died mid-round): abandon it;
    // maybe_coordinate() restarts from fresh detector state.
    coordinating_.reset();
    maybe_coordinate();
  });
}

void Endpoint::finish_round() {
  EVS_CHECK(coordinating_.has_value());
  Coordinating coord = std::move(*coordinating_);

  gms::Install install;
  install.round = coord.round;
  install.view.id = ViewId{coord.round.number, id()};
  install.view.members = coord.proposed;

  // Per-prior-view unions of unstable messages, deduplicated by
  // (sender, seq); deterministic order via std::map.
  std::map<ViewId, std::map<std::pair<ProcessId, std::uint64_t>, Bytes>> unions;
  for (const auto& [member, ack] : coord.acks) {
    install.contexts.push_back(
        gms::MemberContext{member, ack.prior_view, ack.context});
    auto& bucket = unions[ack.prior_view];
    for (const gms::FlushedMessage& fm : ack.unstable) {
      bucket.emplace(std::make_pair(fm.sender, fm.seq), fm.payload);
    }
  }
  for (auto& [view_id, bucket] : unions) {
    std::vector<gms::FlushedMessage> messages;
    messages.reserve(bucket.size());
    for (auto& [key, payload] : bucket) {
      messages.push_back(
          gms::FlushedMessage{key.first, key.second, std::move(payload)});
    }
    install.unions.emplace_back(view_id, std::move(messages));
  }

  ++stats_.rounds_completed;
  Encoder body;
  body.put_u8(static_cast<std::uint8_t>(gms::MembershipKind::Install));
  install.encode(body);
  // install_bytes stays per-recipient: sharing the buffer must not change
  // what the wire carries, only how often we build it.
  for (const ProcessId member : coord.proposed)
    if (member != id()) stats_.install_bytes += body.size();
  fan_out(coord.proposed, gms::Channel::Membership, std::move(body));
  handle_install(install);
}

void Endpoint::handle_install(const gms::Install& msg) {
  if (!acked_round_ || msg.round != *acked_round_) return;  // stale round
  EVS_DEBUG(to_string(id()) << " installs " << gms::to_string(msg.view));

  // Deliver the remainder of our own prior view's union — still in the old
  // view, preserving Uniqueness (P2.2) and establishing Agreement (P2.1).
  for (const auto& [view_id, messages] : msg.unions) {
    if (view_id != view_.id) continue;
    for (const gms::FlushedMessage& fm : messages) {
      if (already_delivered(fm.sender, fm.seq)) continue;
      ++stats_.flush_deliveries;
      deliver(fm.sender, fm.seq, fm.payload);
    }
  }

  view_ = msg.view;
  max_number_seen_ = std::max(max_number_seen_, view_.id.epoch);
  buffer_.clear();
  streams_.clear();
  stability_reports_.clear();
  send_seq_ = 0;
  acked_round_.reset();
  coordinating_.reset();
  ++stats_.views_installed;
  stats_.last_install_time = now();
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ViewInstalled,
                 view_.id, msg.round.coordinator, msg.round.number,
                 view_.members.size()});
  }

  if (delegate_ != nullptr)
    delegate_->on_view(view_, InstallInfo{msg.contexts, msg.unions});

  // Sends queued while frozen go out in the new view.
  while (!pending_sends_.empty() && !blocked()) {
    Bytes payload = std::move(pending_sends_.front());
    pending_sends_.pop_front();
    multicast(std::move(payload));
  }

  // Replay data that raced ahead of this install, and drop stale stashes.
  const auto it = future_stash_.find(view_.id);
  if (it != future_stash_.end()) {
    auto replay = std::move(it->second);
    future_stash_.erase(it);
    for (auto& [sender, dm] : replay) accept_data(sender, std::move(dm));
  }
  std::erase_if(future_stash_,
                [this](const auto& entry) { return entry.first <= view_.id; });
}

void Endpoint::handle_data(ProcessId from, Decoder& dec) {
  gms::DataMsg msg;
  try {
    msg = gms::DataMsg::decode(dec);
  } catch (const DecodeError& err) {
    throw DecodeError(std::string("datamsg: ") + err.what());
  }
  if (msg.view == view_.id) {
    accept_data(from, std::move(msg));
    return;
  }
  if (view_.id < msg.view) {
    // Possibly a view we are about to install; hold it briefly.
    auto& stash = future_stash_[msg.view];
    if (stash.size() < kMaxStashPerView) {
      stash.emplace_back(from, std::move(msg));
      return;
    }
  }
  ++stats_.messages_discarded;
}

void Endpoint::accept_data(ProcessId sender, gms::DataMsg msg) {
  if (msg.view != view_.id) return;
  PerSender& stream = streams_[sender];
  if (msg.seq < stream.next_expected) return;  // duplicate
  const auto key = std::make_pair(sender, msg.seq);
  if (buffer_.contains(key)) return;  // duplicate
  buffer_.emplace(key, msg.payload);
  stats_.buffer_peak = std::max(stats_.buffer_peak, buffer_.size());
  stream.pending.emplace(msg.seq, std::move(msg.payload));
  if (!blocked()) try_deliver(sender);
}

void Endpoint::try_deliver(ProcessId sender) {
  PerSender& stream = streams_[sender];
  for (;;) {
    const auto it = stream.pending.find(stream.next_expected);
    if (it == stream.pending.end()) break;
    Bytes payload = std::move(it->second);
    stream.pending.erase(it);
    const std::uint64_t seq = stream.next_expected;
    ++stream.next_expected;
    ++stats_.data_delivered;
    if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
      bus->record({now(), id(), obs::EventKind::MessageDelivered,
                   view_.id, sender, seq, obs::payload_hash(payload)});
    }
    if (delegate_ != nullptr) delegate_->on_deliver(sender, payload);
  }
}

void Endpoint::deliver(ProcessId sender, std::uint64_t seq, const Bytes& payload) {
  // Flush-path delivery: out-of-FIFO order is fine here, the union is the
  // agreed final set for the dying view. Advance bookkeeping so a
  // duplicate can never deliver twice.
  PerSender& stream = streams_[sender];
  stream.pending.erase(seq);
  if (seq >= stream.next_expected) stream.next_expected = seq + 1;
  ++stats_.data_delivered;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    // view_ is still the dying view here — flush deliveries belong to it.
    bus->record({now(), id(), obs::EventKind::FlushDelivery,
                 view_.id, sender, seq, obs::payload_hash(payload)});
  }
  if (delegate_ != nullptr) delegate_->on_deliver(sender, payload);
}

bool Endpoint::already_delivered(ProcessId sender, std::uint64_t seq) const {
  const auto it = streams_.find(sender);
  if (it == streams_.end()) return false;
  // Delivered = below the contiguous front and not waiting in pending.
  return seq < it->second.next_expected && !it->second.pending.contains(seq);
}

void Endpoint::on_reachability_change() {
  if (coordinating_) {
    // If a proposed member vanished, this round can never complete.
    for (const ProcessId member : coordinating_->proposed) {
      if (!detector_->is_reachable(member)) {
        coordinating_.reset();
        break;
      }
    }
  }
  maybe_coordinate();
}

void Endpoint::maybe_coordinate() {
  if (left_ || coordinating_) return;
  const std::vector<ProcessId> reachable = detector_->reachable();
  const std::vector<ProcessId> desired =
      gms::admit(config_.policy, view_.members, reachable);
  if (desired.empty()) return;

  const bool needs_change = desired != view_.members;
  const bool stale_block =
      blocked() &&
      now() - blocked_since_ > config_.stale_block_timeout;
  if (blocked() && !stale_block) return;  // let the running round finish
  if (!needs_change && !stale_block) return;
  if (desired.front() != id()) return;  // not our job
  start_round(desired);
}

SharedBytes Endpoint::frame_once(gms::Channel channel, Encoder&& body) {
  ++stats_.frames_encoded;
  SharedBytes framed(gms::frame(channel, std::move(body)));
  stats_.frame_bytes_encoded += framed.size();
  return framed;
}

void Endpoint::fan_out(const std::vector<ProcessId>& recipients,
                       gms::Channel channel, Encoder&& body) {
  std::vector<ProcessId> others;
  others.reserve(recipients.size());
  for (const ProcessId member : recipients)
    if (member != id()) others.push_back(member);
  if (others.empty()) return;
  send_multi(others, frame_once(channel, std::move(body)));
}

void Endpoint::send_framed(ProcessId to, gms::Channel channel, Encoder&& body) {
  send_multi({to}, frame_once(channel, std::move(body)));
}

void Endpoint::stability_tick() {
  if (!left_ && view_.size() > 1 && !blocked()) {
    gms::StabilityMsg msg;
    msg.view = view_.id;
    msg.delivered_upto.reserve(view_.size());
    for (const ProcessId member : view_.members) {
      const auto it = streams_.find(member);
      msg.delivered_upto.push_back(
          it == streams_.end() ? 0 : it->second.next_expected - 1);
    }
    stability_reports_[id()] = msg.delivered_upto;
    Encoder body;
    msg.encode(body);
    fan_out(view_.members, gms::Channel::Stability, std::move(body));
    collect_garbage();
  }
  set_timer(config_.stability_interval, [this]() { stability_tick(); });
}

void Endpoint::handle_stability(ProcessId from, Decoder& dec) {
  const gms::StabilityMsg msg = gms::StabilityMsg::decode(dec);
  if (msg.view != view_.id) return;
  if (msg.delivered_upto.size() != view_.size()) return;
  stability_reports_[from] = msg.delivered_upto;
  collect_garbage();
}

void Endpoint::collect_garbage() {
  if (stability_reports_.size() < view_.size()) return;
  // A message (s, seq) is stable once every member has delivered the
  // contiguous prefix through seq; it can never be needed by a flush.
  for (std::size_t rank = 0; rank < view_.size(); ++rank) {
    const ProcessId sender = view_.members[rank];
    std::uint64_t stable = UINT64_MAX;
    bool have_all = true;
    for (const ProcessId member : view_.members) {
      const auto it = stability_reports_.find(member);
      if (it == stability_reports_.end() || it->second.size() != view_.size()) {
        have_all = false;
        break;
      }
      stable = std::min(stable, it->second[rank]);
    }
    if (!have_all) return;
    const auto begin = buffer_.lower_bound(std::make_pair(sender, std::uint64_t{0}));
    auto it = begin;
    while (it != buffer_.end() && it->first.first == sender &&
           it->first.second <= stable) {
      ++stats_.stability_gc_messages;
      it = buffer_.erase(it);
    }
  }
}

void Endpoint::export_metrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + ".views_installed").set(stats_.views_installed);
  registry.counter(prefix + ".rounds_started").set(stats_.rounds_started);
  registry.counter(prefix + ".rounds_completed").set(stats_.rounds_completed);
  registry.counter(prefix + ".data_multicast").set(stats_.data_multicast);
  registry.counter(prefix + ".data_delivered").set(stats_.data_delivered);
  registry.counter(prefix + ".flush_deliveries").set(stats_.flush_deliveries);
  registry.counter(prefix + ".messages_discarded").set(stats_.messages_discarded);
  registry.counter(prefix + ".install_bytes").set(stats_.install_bytes);
  registry.counter(prefix + ".ack_bytes").set(stats_.ack_bytes);
  registry.counter(prefix + ".stability_gc_messages")
      .set(stats_.stability_gc_messages);
  registry.counter(prefix + ".frames_encoded").set(stats_.frames_encoded);
  registry.counter(prefix + ".frame_bytes_encoded")
      .set(stats_.frame_bytes_encoded);
  registry.counter(prefix + ".buffer_peak").set(stats_.buffer_peak);
  if (detector_ != nullptr)
    detector_->export_metrics(registry, prefix + ".detector");
}

std::string Endpoint::admin_status_fields() const {
  std::ostringstream os;
  os << "\"process\":\"" << to_string(id()) << "\""
     << ",\"view\":\"" << to_string(view_.id) << "\""
     << ",\"view_epoch\":" << view_.id.epoch << ",\"members\":[";
  for (std::size_t i = 0; i < view_.members.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << to_string(view_.members[i]) << '"';
  }
  os << "],\"blocked\":" << (blocked() ? "true" : "false")
     << ",\"buffered\":" << buffer_.size()
     << ",\"views_installed\":" << stats_.views_installed
     << ",\"data_multicast\":" << stats_.data_multicast
     << ",\"data_delivered\":" << stats_.data_delivered;
  return os.str();
}

std::string Endpoint::admin_status_json() const {
  return "{" + admin_status_fields() + "}";
}

}  // namespace evs::vsync
