// Observability: the unified metrics registry.
//
// One MetricsRegistry gathers every layer's counters, gauges and
// histograms behind a single snapshot-to-JSON API. The per-module stats
// structs (sim::NetworkStats, vsync::EndpointStats, detector, ordering
// and group-object stats) stay as cheap always-on accumulators — they are
// the compatibility accessors benches read directly — and each module
// provides an export_metrics() that projects its struct into a registry
// under a caller-chosen prefix, so one to_json() call captures the whole
// run.
//
// Histograms keep raw samples (protocol runs record thousands of latency
// points, not millions) so quantiles are exact, not sketched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace evs::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  /// Snapshot-style absorption of an externally accumulated total.
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  void record(double sample);

  std::uint64_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Exact quantile by nearest-rank over the recorded samples; q in [0,1].
  double quantile(double q) const;

 private:
  std::vector<double> samples_;
  double sum_ = 0;
};

class MetricsRegistry {
 public:
  /// Named instruments are created on first use; names are hierarchical by
  /// convention ("net.messages_sent", "p0.vsync.views_installed", ...).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One JSON object with "counters"/"gauges"/"histograms" sections;
  /// histograms report count/sum/min/max/mean plus p50/p90/p95/p99. Keys
  /// are sorted (std::map) so snapshots diff cleanly across runs.
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace evs::obs
