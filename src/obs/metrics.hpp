// Observability: the unified metrics registry.
//
// One MetricsRegistry gathers every layer's counters, gauges and
// histograms behind a single snapshot-to-JSON API. The per-module stats
// structs (sim::NetworkStats, vsync::EndpointStats, detector, ordering
// and group-object stats) stay as cheap always-on accumulators — they are
// the compatibility accessors benches read directly — and each module
// provides an export_metrics() that projects its struct into a registry
// under a caller-chosen prefix, so one to_json() call captures the whole
// run.
//
// Histograms keep raw samples up to a fixed reservoir cap so quantiles
// are exact for protocol-sized runs (thousands of latency points); a
// long-lived real-socket node that records past the cap degrades to
// uniform reservoir sampling (Vitter's Algorithm R with a deterministic
// generator) instead of growing without bound. count/sum/min/max stay
// exact at any volume.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace evs::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  /// Snapshot-style absorption of an externally accumulated total.
  void set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  /// Raw samples kept for quantile estimation. Protocol runs stay well
  /// below this, so their quantiles are exact; past the cap the stored
  /// set becomes a uniform sample of everything recorded.
  static constexpr std::size_t kDefaultSampleCap = 8192;

  explicit Histogram(std::size_t sample_cap = kDefaultSampleCap);

  void record(double sample);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;
  /// Quantile by nearest-rank over the stored samples; q in [0,1].
  /// Exact while count() <= sample_cap(), estimated from the reservoir
  /// beyond it.
  double quantile(double q) const;

  std::size_t sample_cap() const { return sample_cap_; }
  /// Samples currently held (== count() until the cap, then == the cap).
  std::size_t stored_samples() const { return samples_.size(); }

 private:
  std::size_t sample_cap_;
  std::vector<double> samples_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::uint64_t rng_state_;  // deterministic reservoir replacement
};

class MetricsRegistry {
 public:
  /// Named instruments are created on first use; names are hierarchical by
  /// convention ("net.messages_sent", "p0.vsync.views_installed", ...).
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// One JSON object with "counters"/"gauges"/"histograms" sections;
  /// histograms report count/sum/min/max/mean plus p50/p90/p95/p99. Keys
  /// are sorted (std::map) so snapshots diff cleanly across runs.
  std::string to_json() const;

  /// Prometheus text exposition (format 0.0.4): counters and gauges as
  /// single samples, histograms as summaries (quantile series + _sum +
  /// _count). Instrument names are sanitised to [a-zA-Z0-9_] ("." -> "_").
  std::string to_prometheus() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace evs::obs
