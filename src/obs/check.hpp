// Observability: the in-library run checker.
//
// Promotes the correctness oracles that used to live only in gtest
// support headers into the library itself: any recorded trace — from a
// test, a bench, an example run with EVS_TRACE_OUT, or a file replayed
// through tools/trace_check — can be validated against the paper's
// Section-2 specification plus the enriched-view structure rules, and the
// result is a structured violation list instead of a test assertion.
//
// Properties checked:
//   Agreement  (P2.1) — processes surviving from view v to the same next
//                       view delivered the same message set in v.
//   Uniqueness (P2.2) — a message is delivered in at most one view.
//   Integrity  (P2.3) — at most once per process, and only if sent.
//   Structure  (P6.3) — within a view, subview/sv-set counts change only
//                       through applied e-view changes and only shrink
//                       (structures grow solely under application control;
//                       failures shrink them across view boundaries).
//   Modes (Figure 1)  — every reported mode transition is one of the four
//                       legal edges and transitions chain per process.
//
// Message identity is the (sender, payload-hash) pair — the same
// "payloads are unique" convention the gtest oracles have always relied
// on; runs that multicast identical bytes twice from one process will
// alias them.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace evs::obs {

struct Violation {
  std::string property;  // e.g. "Uniqueness (P2.2)"
  std::string detail;

  std::string str() const { return property + ": " + detail; }
};

class RunChecker {
 public:
  /// All checks; violations in property order, worst-offender lists
  /// truncated rather than exhaustive (one violation per broken fact).
  static std::vector<Violation> check(const std::vector<TraceEvent>& events);

  /// Only the Section-2 view-synchrony properties (what the old gtest
  /// oracles covered); used by the oracle wrappers and by vsync-level
  /// traces that carry no EVS or mode events.
  static std::vector<Violation> check_vs(const std::vector<TraceEvent>& events);

  static std::vector<Violation> check_uniqueness(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_integrity(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_agreement(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_structure(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_modes(
      const std::vector<TraceEvent>& events);
};

}  // namespace evs::obs
