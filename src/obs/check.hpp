// Observability: the in-library run checker.
//
// Promotes the correctness oracles that used to live only in gtest
// support headers into the library itself: any recorded trace — from a
// test, a bench, an example run with EVS_TRACE_OUT, or a file replayed
// through tools/trace_check — can be validated against the paper's
// Section-2 specification plus the enriched-view structure rules, and the
// result is a structured violation list instead of a test assertion.
//
// Properties checked:
//   Agreement  (P2.1) — processes surviving from view v to the same next
//                       view delivered the same message set in v.
//   Uniqueness (P2.2) — a message is delivered in at most one view.
//   Integrity  (P2.3) — at most once per process, and only if sent.
//   Structure  (P6.3) — within a view, subview/sv-set counts change only
//                       through applied e-view changes and only shrink
//                       (structures grow solely under application control;
//                       failures shrink them across view boundaries).
//   Modes (Figure 1)  — every reported mode transition is one of the four
//                       legal edges and transitions chain per process.
//
// Message identity is the (sender, payload-hash) pair — the same
// "payloads are unique" convention the gtest oracles have always relied
// on; runs that multicast identical bytes twice from one process will
// alias them.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace evs::obs {

struct Violation {
  std::string property;  // e.g. "Uniqueness (P2.2)"
  std::string detail;

  std::string str() const { return property + ": " + detail; }
};

class RunChecker {
 public:
  /// All checks; violations in property order, worst-offender lists
  /// truncated rather than exhaustive (one violation per broken fact).
  static std::vector<Violation> check(const std::vector<TraceEvent>& events);

  /// Only the Section-2 view-synchrony properties (what the old gtest
  /// oracles covered); used by the oracle wrappers and by vsync-level
  /// traces that carry no EVS or mode events.
  static std::vector<Violation> check_vs(const std::vector<TraceEvent>& events);

  static std::vector<Violation> check_uniqueness(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_integrity(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_agreement(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_structure(
      const std::vector<TraceEvent>& events);
  static std::vector<Violation> check_modes(
      const std::vector<TraceEvent>& events);
};

/// The online form of the oracles: evaluated incrementally, one event at
/// a time, on the live node (wired as the TraceBus observer by
/// net::NetRuntime). Because one process's trace ring only ever holds
/// that process's own events, only the *local* slices of the properties
/// run here:
///
///   Uniqueness (P2.2) — this process delivered a message in two views;
///   Integrity  (P2.3) — this process delivered a message twice;
///   Structure  (P6.3) — e-view seq regressed / structure grew in-view;
///   Modes (Figure 1)  — illegal edge or broken transition chain;
///   Request phases    — a traced request's per-(trace, process) phase
///                       timestamps ran backwards (Admitted <= Ordered <=
///                       Delivered <= Applied <= Replied).
///
/// The cross-process halves (agreement, only-if-sent) still belong to the
/// offline RunChecker over merged dumps. All tracking maps are bounded:
/// past the cap new keys are no longer tracked (counted in saturated()),
/// never evicted mid-run — a saturated checker under-reports, it never
/// false-positives.
class LiveChecker {
 public:
  /// Tracked keys per property map before saturation.
  static constexpr std::size_t kMaxTracked = 1 << 14;
  /// Most recent violations retained for /health reporting.
  static constexpr std::size_t kMaxRecent = 16;

  void observe(const TraceEvent& event);

  std::uint64_t events_checked() const { return events_checked_; }
  std::uint64_t violations() const { return violations_; }
  std::uint64_t saturated() const { return saturated_; }
  bool healthy() const { return violations_ == 0; }

  /// Violations per group label (only groups that violated appear).
  const std::map<GroupId, std::uint64_t>& violations_by_group() const {
    return group_violations_;
  }
  /// The last kMaxRecent violations, oldest first.
  const std::deque<Violation>& recent() const { return recent_; }

  /// One JSON object for the /health endpoint: healthy flag, counters,
  /// per-group violation counts and the recent violation details.
  std::string health_json() const;

 private:
  void report(GroupId group, std::string property, std::string detail);

  // --- per-property incremental state, all keyed under the group label
  // so one shared bus checks every hosted group's slice independently.
  using MsgId = std::pair<ProcessId, std::uint64_t>;  // (sender, payload hash)
  struct DeliveryState {
    ViewId first_view;
    bool duplicate_reported = false;
  };
  std::map<std::tuple<GroupId, ProcessId, MsgId>, DeliveryState> delivered_;
  struct StructureState {
    std::uint64_t seq = 0;
    std::uint64_t subviews = 0;
    std::uint64_t svsets = 0;
  };
  std::map<std::tuple<GroupId, ProcessId, ViewId>, StructureState> structure_;
  std::map<std::pair<GroupId, ProcessId>, std::uint64_t> mode_;
  struct RequestState {
    std::uint8_t last_phase = 0;  // rank within the Request* order
    SimTime last_time = 0;
  };
  std::map<std::tuple<GroupId, std::uint64_t, ProcessId>, RequestState>
      requests_;

  std::uint64_t events_checked_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t saturated_ = 0;
  std::map<GroupId, std::uint64_t> group_violations_;
  std::deque<Violation> recent_;
};

}  // namespace evs::obs
