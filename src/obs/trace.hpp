// Observability: the structured trace bus.
//
// One TraceBus per sim::World collects typed, sim-timestamped events from
// every protocol layer (detector suspicions, view-change rounds, flush
// deliveries, e-view changes, mode transitions, state-transfer chunks...)
// into a bounded ring buffer. Recording is off by default and every hook
// is guarded by `enabled()` — a single bool load — so an uninstrumented
// run pays near-zero cost and, crucially, the wire path is never
// perturbed: the bus consumes no randomness and schedules no events.
//
// Two exporters serve two audiences:
//   * write_jsonl(): one JSON object per line, machine-readable; the
//     format round-trips through read_jsonl() so recorded runs can be
//     replayed through the RunChecker (obs/check.hpp) offline.
//   * write_chrome_trace(): Chrome trace-event JSON; open the file in
//     chrome://tracing or https://ui.perfetto.dev to see a per-process
//     timeline of every run (sites become processes, incarnations become
//     threads).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace evs::obs {

/// Every event the protocol layers can report. Values are stable: they
/// appear by name in trace files.
enum class EventKind : std::uint8_t {
  HeartbeatSuspect = 1,   // detector: peer dropped out of the reachable set
  HeartbeatUnsuspect,     // detector: peer re-entered the reachable set
  ViewProposed,           // coordinator started a round (seq = round number)
  ViewAcked,              // member froze and ACKed (peer = coordinator)
  ViewInstalled,          // new view installed (value = member count)
  FlushDelivery,          // delivery from an install union, in the old view
  MessageSent,            // data multicast sent (value = payload hash)
  MessageDelivered,       // in-view FIFO delivery (value = payload hash)
  EviewChange,            // e-view structure state (value/aux = sv/svset counts)
  SvSetMerge,             // sequencer accepted an SV-SetMerge (value = inputs)
  SubviewMerge,           // sequencer accepted a SubviewMerge (value = inputs)
  OrderDrain,             // ordering layer force-drained held messages
  ModeTransition,         // Figure-1 edge (seq = Transition, value/aux = to/from)
  ReconcilePhase,         // settle lifecycle (seq = ReconcilePhase value)
  StateTransferChunk,     // split-transfer chunk received (seq = index)
  AdminCommand,           // admin-plane control command (seq = AdminCommandCode,
                          // value = 1 accepted / 0 rejected)
  // Request lifecycle events: every hop a traced client request takes
  // through the svc front door and the ordered multicast it provokes.
  // All six carry the propagated 64-bit trace id in `seq` — that field is
  // the correlator trace_check --request joins on across processes.
  RequestAdmitted,        // svc server dispatched it (value = op, aux = req id)
  RequestFenced,          // e-view change fenced the pending op (value = epoch)
  RequestOrdered,         // coordinator multicast it (value = object op seq)
  RequestDelivered,       // ordered delivery at a replica (peer = sender,
                          // value = object op seq)
  RequestApplied,         // replica applied it (value = object op seq)
  RequestReplied,         // svc server wrote the reply (value = status,
                          // aux = req id)
};

/// True for the six Request* lifecycle kinds (whose seq is a trace id).
constexpr bool is_request_event(EventKind kind) {
  return kind >= EventKind::RequestAdmitted && kind <= EventKind::RequestReplied;
}

const char* to_string(EventKind kind);
/// Inverse of to_string; returns false on unknown names.
bool parse_event_kind(const std::string& name, EventKind& out);

/// Phases reported under EventKind::ReconcilePhase (seq field).
enum class ReconcilePhase : std::uint8_t {
  SettleStarted = 1,   // view needs reconstruction, offers requested
  StateAdopted = 2,    // classification complete, state good enough to serve
  FullyDone = 3,       // all state applied (split-transfer chunks included)
  Reconciled = 4,      // application took the Reconcile edge back to NORMAL
};

/// One structured event. A fixed small record (no heap fields) so the ring
/// buffer is cache-friendly and recording never allocates.
struct TraceEvent {
  SimTime time = 0;       // simulated microseconds
  ProcessId proc;         // the process the event happened at
  EventKind kind = EventKind::MessageSent;
  ViewId view;            // view context (delivery view, installed view...)
  ProcessId peer;         // sender / suspect / coordinator / chunk source
  std::uint64_t seq = 0;  // msg seq, round number, ev_seq, chunk index...
  std::uint64_t value = 0;  // payload hash, member count, new mode...
  std::uint64_t aux = 0;    // secondary numeric (sv-set count, prior mode...)
  /// Group instance the event belongs to; 0 (the default group) for
  /// single-group runs. Stamped by the host's GroupTraceBus forwarder, not
  /// by protocol code — the stack stays group-oblivious.
  GroupId group = kDefaultGroup;

  bool operator==(const TraceEvent&) const = default;
};

/// FNV-1a over a payload; the message identity used by MessageSent /
/// MessageDelivered events (the RunChecker assumes distinct payloads hash
/// distinctly, the same assumption the test oracles make about payload
/// uniqueness).
std::uint64_t payload_hash(const std::vector<std::uint8_t>& payload);

class TraceBus {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceBus(std::size_t capacity = kDefaultCapacity);
  virtual ~TraceBus() = default;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Resets the buffer; only legal while empty or after clear().
  void set_capacity(std::size_t capacity);

  /// Appends one event; the oldest event is overwritten once the ring is
  /// full (dropped() counts how many were lost that way). Virtual so a
  /// forwarding bus (GroupTraceBus) can relabel events in flight.
  virtual void record(const TraceEvent& event);

  /// Events in recording order, oldest first.
  std::vector<TraceEvent> events() const;

  /// Incremental tail: events whose recording index (0-based, counted over
  /// everything ever recorded) is >= `since` and still in the ring, capped
  /// at `max_events`, paired with their index. `next_since` (if non-null)
  /// receives the index to pass on the next call — one past the last
  /// event returned, or `since` itself when nothing new arrived. Events
  /// older than the ring are simply gone; the caller observes the gap as
  /// a jump in the returned indices.
  std::vector<std::pair<std::uint64_t, TraceEvent>> events_since(
      std::uint64_t since, std::size_t max_events,
      std::uint64_t* next_since = nullptr) const;

  std::uint64_t recorded() const { return total_; }
  std::uint64_t dropped() const {
    return total_ > ring_.capacity() ? total_ - ring_.capacity() : 0;
  }
  std::size_t size() const { return ring_.size(); }

  void clear();

  /// Optional per-event tap, invoked for every event actually recorded
  /// (i.e. after the enabled() gate, with the final group label when the
  /// event arrived through a GroupTraceBus). This is the seam the online
  /// RunChecker hangs off; keep the callback cheap, it runs on the
  /// recording path.
  using ObserverFn = std::function<void(const TraceEvent&)>;
  void set_observer(ObserverFn fn) { observer_ = std::move(fn); }

  void write_jsonl(std::ostream& os) const;
  void write_chrome_trace(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;  // capacity fixed up front
  std::uint64_t total_ = 0;       // events ever recorded
  ObserverFn observer_;
};

/// Per-group facade over a shared TraceBus: stamps every recorded event
/// with one group id and forwards it to the host's real bus. A multi-group
/// host hands each group instance one of these as its Env.trace, so the
/// protocol stack records exactly as before while every event lands in the
/// shared ring carrying its group label. Holds no events of its own (the
/// minimum ring of 1 slot exists only to satisfy the base class); enabled
/// state mirrors the sink at construction — flip the *sink* at runtime,
/// not the facade.
class GroupTraceBus final : public TraceBus {
 public:
  GroupTraceBus(TraceBus& sink, GroupId group)
      : TraceBus(/*capacity=*/1), sink_(sink), group_(group) {
    set_enabled(sink.enabled());
  }

  GroupId group() const { return group_; }

  void record(const TraceEvent& event) override {
    TraceEvent labelled = event;
    labelled.group = group_;
    sink_.record(labelled);
  }

 private:
  TraceBus& sink_;
  GroupId group_;
};

/// Writes `event` as one write_jsonl-format line; a non-null `index`
/// prepends an "i":<recording index> field (read_jsonl ignores it), which
/// is how the admin plane's /trace endpoint lets pollers resume.
void write_jsonl_event(std::ostream& os, const TraceEvent& event,
                       const std::uint64_t* index = nullptr);

/// Parses a trace written by write_jsonl(). Unparseable lines are skipped
/// (count reported via `skipped` when non-null): a truncated trail from a
/// crashed run should not hide the events before it.
std::vector<TraceEvent> read_jsonl(std::istream& is,
                                   std::size_t* skipped = nullptr);

}  // namespace evs::obs
