#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace evs::obs {

namespace {

constexpr std::array<const char*, 23> kKindNames = {
    "?",
    "HeartbeatSuspect",
    "HeartbeatUnsuspect",
    "ViewProposed",
    "ViewAcked",
    "ViewInstalled",
    "FlushDelivery",
    "MessageSent",
    "MessageDelivered",
    "EviewChange",
    "SvSetMerge",
    "SubviewMerge",
    "OrderDrain",
    "ModeTransition",
    "ReconcilePhase",
    "StateTransferChunk",
    "AdminCommand",
    "RequestAdmitted",
    "RequestFenced",
    "RequestOrdered",
    "RequestDelivered",
    "RequestApplied",
    "RequestReplied",
};

// Compact textual ids that survive the JSONL round trip.
std::string proc_str(ProcessId p) {
  return std::to_string(p.site.value) + ":" + std::to_string(p.incarnation);
}

std::string view_str(ViewId v) {
  return std::to_string(v.epoch) + ":" + proc_str(v.coordinator);
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > UINT32_MAX) return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

bool parse_proc(std::string_view s, ProcessId& out) {
  const std::size_t colon = s.find(':');
  if (colon == std::string_view::npos) return false;
  return parse_u32(s.substr(0, colon), out.site.value) &&
         parse_u32(s.substr(colon + 1), out.incarnation);
}

bool parse_view(std::string_view s, ViewId& out) {
  const std::size_t colon = s.find(':');
  if (colon == std::string_view::npos) return false;
  return parse_u64(s.substr(0, colon), out.epoch) &&
         parse_proc(s.substr(colon + 1), out.coordinator);
}

/// Value of `"key":` in a single-line JSON object written by write_jsonl
/// (string values without the quotes). Empty view on absence.
std::string_view field(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return {};
  std::size_t begin = at + needle.size();
  bool quoted = false;
  if (begin < line.size() && line[begin] == '"') {
    quoted = true;
    ++begin;
  }
  std::size_t end = begin;
  while (end < line.size()) {
    const char c = line[end];
    if (quoted ? c == '"' : (c == ',' || c == '}')) break;
    ++end;
  }
  return line.substr(begin, end - begin);
}

}  // namespace

const char* to_string(EventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "?";
}

bool parse_event_kind(const std::string& name, EventKind& out) {
  for (std::size_t i = 1; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) {
      out = static_cast<EventKind>(i);
      return true;
    }
  }
  return false;
}

std::uint64_t payload_hash(const std::vector<std::uint8_t>& payload) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t byte : payload) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

TraceBus::TraceBus(std::size_t capacity) {
  EVS_CHECK(capacity > 0);
  ring_.reserve(capacity);
}

void TraceBus::set_capacity(std::size_t capacity) {
  EVS_CHECK(capacity > 0);
  EVS_CHECK_MSG(ring_.empty(), "set_capacity on a non-empty TraceBus");
  ring_.shrink_to_fit();
  ring_.reserve(capacity);
}

void TraceBus::record(const TraceEvent& event) {
  if (!enabled_) return;
  if (ring_.size() < ring_.capacity()) {
    ring_.push_back(event);
  } else {
    ring_[total_ % ring_.capacity()] = event;
  }
  ++total_;
  if (observer_) observer_(event);
}

std::vector<TraceEvent> TraceBus::events() const {
  if (total_ <= ring_.capacity()) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  const std::size_t head = total_ % ring_.capacity();
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head));
  return out;
}

std::vector<std::pair<std::uint64_t, TraceEvent>> TraceBus::events_since(
    std::uint64_t since, std::size_t max_events,
    std::uint64_t* next_since) const {
  // Index of the oldest event still in the ring.
  const std::uint64_t oldest = total_ > ring_.size() ? total_ - ring_.size() : 0;
  std::uint64_t index = std::max(since, oldest);
  std::vector<std::pair<std::uint64_t, TraceEvent>> out;
  while (index < total_ && out.size() < max_events) {
    const std::size_t slot =
        total_ <= ring_.capacity()
            ? static_cast<std::size_t>(index)
            : static_cast<std::size_t>(index % ring_.capacity());
    out.emplace_back(index, ring_[slot]);
    ++index;
  }
  if (next_since != nullptr) *next_since = out.empty() ? since : index;
  return out;
}

void TraceBus::clear() {
  ring_.clear();
  total_ = 0;
}

void write_jsonl_event(std::ostream& os, const TraceEvent& e,
                       const std::uint64_t* index) {
  os << "{";
  if (index != nullptr) os << "\"i\":" << *index << ",";
  os << "\"t\":" << e.time << ",\"proc\":\"" << proc_str(e.proc)
     << "\",\"kind\":\"" << to_string(e.kind) << "\",\"view\":\""
     << view_str(e.view) << "\",\"peer\":\"" << proc_str(e.peer)
     << "\",\"seq\":" << e.seq << ",\"value\":" << e.value
     << ",\"aux\":" << e.aux;
  // Group label only when off the default group: single-group traces keep
  // their exact pre-multigroup shape (and old readers keep parsing them).
  if (e.group != kDefaultGroup) os << ",\"g\":" << e.group;
  os << "}\n";
}

void TraceBus::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& e : events()) write_jsonl_event(os, e);
}

void TraceBus::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> all = events();
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Metadata: name each site's process track once.
  std::vector<std::uint32_t> seen_sites;
  for (const TraceEvent& e : all) {
    bool known = false;
    for (const std::uint32_t s : seen_sites) known = known || s == e.proc.site.value;
    if (known) continue;
    seen_sites.push_back(e.proc.site.value);
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << e.proc.site.value
       << ",\"args\":{\"name\":\"site " << e.proc.site.value << "\"}}";
  }
  for (const TraceEvent& e : all) {
    if (!first) os << ",";
    first = false;
    // Instant events on the incarnation's thread track; args carry the
    // structured fields so Perfetto's detail pane shows them verbatim.
    os << "{\"name\":\"" << to_string(e.kind) << "\",\"cat\":\"evs\""
       << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.time
       << ",\"pid\":" << e.proc.site.value << ",\"tid\":" << e.proc.incarnation
       << ",\"args\":{\"view\":\"" << view_str(e.view) << "\",\"peer\":\""
       << proc_str(e.peer) << "\",\"seq\":" << e.seq << ",\"value\":" << e.value
       << ",\"aux\":" << e.aux << ",\"group\":" << e.group << "}}";
  }
  os << "]}\n";
}

std::vector<TraceEvent> read_jsonl(std::istream& is, std::size_t* skipped) {
  std::vector<TraceEvent> out;
  std::size_t bad = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    TraceEvent e;
    const std::string kind_name{field(line, "kind")};
    const bool ok = parse_u64(field(line, "t"), e.time) &&
                    parse_proc(field(line, "proc"), e.proc) &&
                    parse_event_kind(kind_name, e.kind) &&
                    parse_view(field(line, "view"), e.view) &&
                    parse_proc(field(line, "peer"), e.peer) &&
                    parse_u64(field(line, "seq"), e.seq) &&
                    parse_u64(field(line, "value"), e.value) &&
                    parse_u64(field(line, "aux"), e.aux);
    if (!ok) {
      ++bad;
      continue;
    }
    // Optional group label; absent = the default group.
    const std::string_view g = field(line, "g");
    if (!g.empty() && !parse_u32(g, e.group)) {
      ++bad;
      continue;
    }
    out.push_back(e);
  }
  if (skipped != nullptr) *skipped = bad;
  return out;
}

}  // namespace evs::obs
