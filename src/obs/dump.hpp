// Observability: one-call run dumping, steered by EVS_TRACE_OUT.
//
// Set EVS_TRACE_OUT=<directory> before running any bench or example and
// dump_run() writes four artifacts there:
//   <name>.trace.jsonl   — the raw event stream (read_jsonl round-trips it,
//                          tools/trace_check replays it through RunChecker)
//   <name>.chrome.json   — Chrome trace-event form; open in ui.perfetto.dev
//   <name>.metrics.json  — the MetricsRegistry snapshot
//   <name>.metrics.prom  — the same snapshot as Prometheus text exposition
// When EVS_TRACE_OUT is unset, dump_run() is a no-op returning false, so
// callers can dump unconditionally.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::obs {

/// Directory named by EVS_TRACE_OUT, or empty when tracing is off.
std::string trace_out_dir();

/// Writes the run artifacts into trace_out_dir(); returns true if files
/// were written. `name` must be a bare file stem ("quickstart", ...).
bool dump_run(const TraceBus& bus, const MetricsRegistry& metrics,
              const std::string& name);

}  // namespace evs::obs
