#include "obs/check.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace evs::obs {

namespace {

// (sender, payload-hash): the message identity under the unique-payload
// convention (see header).
using MsgId = std::pair<ProcessId, std::uint64_t>;

std::string proc_str(ProcessId p) {
  return std::to_string(p.site.value) + ":" + std::to_string(p.incarnation);
}

std::string view_str(ViewId v) {
  return std::to_string(v.epoch) + ":" + proc_str(v.coordinator);
}

std::string msg_str(const MsgId& id) {
  std::ostringstream os;
  os << "message (from " << proc_str(id.first) << ", hash " << std::hex
     << id.second << ")";
  return os.str();
}

bool is_delivery(EventKind kind) {
  return kind == EventKind::MessageDelivered || kind == EventKind::FlushDelivery;
}

const char* mode_name(std::uint64_t m) {
  switch (m) {
    case 0: return "NORMAL";
    case 1: return "REDUCED";
    case 2: return "SETTLING";
  }
  return "?";
}

const char* transition_name(std::uint64_t t) {
  switch (t) {
    case 0: return "Failure";
    case 1: return "Repair";
    case 2: return "Reconfigure";
    case 3: return "Reconcile";
  }
  return "?";
}

}  // namespace

// P2.2: every message is delivered in at most one view, globally.
std::vector<Violation> RunChecker::check_uniqueness(
    const std::vector<TraceEvent>& events) {
  std::vector<Violation> out;
  std::map<MsgId, std::set<ViewId>> views_of;
  for (const TraceEvent& e : events) {
    if (!is_delivery(e.kind)) continue;
    views_of[{e.peer, e.value}].insert(e.view);
  }
  for (const auto& [id, views] : views_of) {
    if (views.size() <= 1) continue;
    std::ostringstream os;
    os << msg_str(id) << " delivered in " << views.size() << " views:";
    for (const ViewId& v : views) os << " " << view_str(v);
    out.push_back({"Uniqueness (P2.2)", os.str()});
  }
  return out;
}

// P2.3: a process delivers a message at most once, and only if some
// process actually multicast it.
std::vector<Violation> RunChecker::check_integrity(
    const std::vector<TraceEvent>& events) {
  std::vector<Violation> out;
  std::map<ProcessId, std::set<std::uint64_t>> sent_by;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::MessageSent) sent_by[e.proc].insert(e.value);
  }
  std::map<ProcessId, std::set<MsgId>> delivered_at;
  for (const TraceEvent& e : events) {
    if (!is_delivery(e.kind)) continue;
    const MsgId id{e.peer, e.value};
    if (!delivered_at[e.proc].insert(id).second) {
      out.push_back({"Integrity (P2.3)", "process " + proc_str(e.proc) +
                                             " delivered " + msg_str(id) +
                                             " more than once"});
      continue;
    }
    const auto sender = sent_by.find(e.peer);
    if (sender == sent_by.end() || sender->second.count(e.value) == 0) {
      out.push_back({"Integrity (P2.3)",
                     "process " + proc_str(e.proc) + " delivered " +
                         msg_str(id) + " which its sender never multicast"});
    }
  }
  return out;
}

// P2.1: two processes that both survive the same view change v -> v'
// delivered the same message set in v. View succession comes from each
// process's own ordered ViewInstalled events; deliveries tagged with a
// view the process never installed are agreement-relevant only through
// uniqueness/integrity, exactly like the original gtest oracle.
std::vector<Violation> RunChecker::check_agreement(
    const std::vector<TraceEvent>& events) {
  std::vector<Violation> out;
  std::map<ProcessId, std::vector<ViewId>> views_of;
  std::map<ProcessId, std::map<ViewId, std::set<MsgId>>> delivered_in;
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::ViewInstalled) {
      views_of[e.proc].push_back(e.view);
    } else if (is_delivery(e.kind)) {
      delivered_in[e.proc][e.view].insert({e.peer, e.value});
    }
  }

  // transition (v, v') -> the processes that took it.
  std::map<std::pair<ViewId, ViewId>, std::vector<ProcessId>> took;
  for (const auto& [proc, views] : views_of) {
    for (std::size_t i = 0; i + 1 < views.size(); ++i) {
      took[{views[i], views[i + 1]}].push_back(proc);
    }
  }

  for (const auto& [edge, procs] : took) {
    if (procs.size() <= 1) continue;
    const ViewId view = edge.first;
    const std::set<MsgId>& reference = delivered_in[procs.front()][view];
    for (std::size_t i = 1; i < procs.size(); ++i) {
      const std::set<MsgId>& other = delivered_in[procs[i]][view];
      if (other == reference) continue;
      std::ostringstream os;
      os << "processes " << proc_str(procs.front()) << " and "
         << proc_str(procs[i]) << " both moved " << view_str(view) << " -> "
         << view_str(edge.second) << " but delivered " << reference.size()
         << " vs " << other.size() << " messages in " << view_str(view);
      out.push_back({"Agreement (P2.1)", os.str()});
    }
  }
  return out;
}

// Enriched-view structure: within one installed view a process's structure
// only coarsens — e-view sequence numbers increase with every applied
// change, and subview / sv-set counts never grow (growth happens only
// across view boundaries, when the merged structures of a new membership
// are adopted).
std::vector<Violation> RunChecker::check_structure(
    const std::vector<TraceEvent>& events) {
  std::vector<Violation> out;
  std::map<std::pair<ProcessId, ViewId>, TraceEvent> last;
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::EviewChange) continue;
    const std::pair<ProcessId, ViewId> key{e.proc, e.view};
    const auto prev = last.find(key);
    if (prev != last.end()) {
      const TraceEvent& p = prev->second;
      if (e.seq <= p.seq) {
        std::ostringstream os;
        os << "process " << proc_str(e.proc) << " in view " << view_str(e.view)
           << ": e-view seq went " << p.seq << " -> " << e.seq
           << " (must strictly increase)";
        out.push_back({"Structure (P6.3)", os.str()});
      }
      if (e.value > p.value || e.aux > p.aux) {
        std::ostringstream os;
        os << "process " << proc_str(e.proc) << " in view " << view_str(e.view)
           << ": structure grew within the view (subviews " << p.value << " -> "
           << e.value << ", sv-sets " << p.aux << " -> " << e.aux << ")";
        out.push_back({"Structure (P6.3)", os.str()});
      }
    }
    last[key] = e;
  }
  return out;
}

// Figure 1: only the four edges exist, and each process's transitions form
// a chain starting from SETTLING (every process joins settling).
std::vector<Violation> RunChecker::check_modes(
    const std::vector<TraceEvent>& events) {
  constexpr std::uint64_t kNormal = 0, kReduced = 1, kSettling = 2;
  std::vector<Violation> out;
  std::map<ProcessId, std::uint64_t> mode_of;
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::ModeTransition) continue;
    const std::uint64_t via = e.seq, to = e.value, from = e.aux;
    const auto known = mode_of.find(e.proc);
    const std::uint64_t expected =
        known == mode_of.end() ? kSettling : known->second;
    if (from != expected) {
      std::ostringstream os;
      os << "process " << proc_str(e.proc) << " reports a transition out of "
         << mode_name(from) << " but was in " << mode_name(expected);
      out.push_back({"Modes (Figure 1)", os.str()});
    }
    const bool legal =
        (via == 0 && (from == kNormal || from == kSettling) && to == kReduced) ||
        (via == 1 && from == kReduced && to == kSettling) ||
        (via == 2 && (from == kNormal || from == kSettling) && to == kSettling) ||
        (via == 3 && from == kSettling && to == kNormal);
    if (!legal) {
      std::ostringstream os;
      os << "process " << proc_str(e.proc) << " took an illegal edge "
         << mode_name(from) << " -> " << mode_name(to) << " via "
         << transition_name(via);
      out.push_back({"Modes (Figure 1)", os.str()});
    }
    mode_of[e.proc] = to;
  }
  return out;
}

std::vector<Violation> RunChecker::check_vs(
    const std::vector<TraceEvent>& events) {
  std::vector<Violation> out = check_agreement(events);
  std::vector<Violation> more = check_uniqueness(events);
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
  more = check_integrity(events);
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
  return out;
}

std::vector<Violation> RunChecker::check(const std::vector<TraceEvent>& events) {
  std::vector<Violation> out = check_vs(events);
  std::vector<Violation> more = check_structure(events);
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
  more = check_modes(events);
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
  return out;
}

// ----------------------------------------------------------------------
// LiveChecker: the incremental, local-only slices of the same oracles.

void LiveChecker::report(GroupId group, std::string property,
                         std::string detail) {
  ++violations_;
  ++group_violations_[group];
  recent_.push_back({std::move(property), std::move(detail)});
  while (recent_.size() > kMaxRecent) recent_.pop_front();
}

void LiveChecker::observe(const TraceEvent& e) {
  ++events_checked_;
  switch (e.kind) {
    case EventKind::MessageDelivered:
    case EventKind::FlushDelivery: {
      const MsgId id{e.peer, e.value};
      const auto key = std::make_tuple(e.group, e.proc, id);
      const auto it = delivered_.find(key);
      if (it == delivered_.end()) {
        if (delivered_.size() >= kMaxTracked) {
          ++saturated_;
          return;
        }
        delivered_[key] = DeliveryState{e.view, false};
        return;
      }
      if (it->second.duplicate_reported) return;
      it->second.duplicate_reported = true;
      if (it->second.first_view == e.view) {
        report(e.group, "Integrity (P2.3)",
               "process " + proc_str(e.proc) + " delivered " + msg_str(id) +
                   " more than once in view " + view_str(e.view));
      } else {
        report(e.group, "Uniqueness (P2.2)",
               "process " + proc_str(e.proc) + " delivered " + msg_str(id) +
                   " in views " + view_str(it->second.first_view) + " and " +
                   view_str(e.view));
      }
      return;
    }
    case EventKind::EviewChange: {
      const auto key = std::make_tuple(e.group, e.proc, e.view);
      const auto it = structure_.find(key);
      if (it == structure_.end()) {
        if (structure_.size() >= kMaxTracked) {
          ++saturated_;
          return;
        }
        structure_[key] = StructureState{e.seq, e.value, e.aux};
        return;
      }
      StructureState& prev = it->second;
      if (e.seq <= prev.seq) {
        std::ostringstream os;
        os << "process " << proc_str(e.proc) << " in view " << view_str(e.view)
           << ": e-view seq went " << prev.seq << " -> " << e.seq;
        report(e.group, "Structure (P6.3)", os.str());
      }
      if (e.value > prev.subviews || e.aux > prev.svsets) {
        std::ostringstream os;
        os << "process " << proc_str(e.proc) << " in view " << view_str(e.view)
           << ": structure grew within the view (subviews " << prev.subviews
           << " -> " << e.value << ", sv-sets " << prev.svsets << " -> "
           << e.aux << ")";
        report(e.group, "Structure (P6.3)", os.str());
      }
      prev = StructureState{e.seq, e.value, e.aux};
      return;
    }
    case EventKind::ModeTransition: {
      constexpr std::uint64_t kNormal = 0, kReduced = 1, kSettling = 2;
      const std::uint64_t via = e.seq, to = e.value, from = e.aux;
      const auto key = std::make_pair(e.group, e.proc);
      const auto known = mode_.find(key);
      if (known == mode_.end() && mode_.size() >= kMaxTracked) {
        ++saturated_;
        return;
      }
      const std::uint64_t expected =
          known == mode_.end() ? kSettling : known->second;
      if (from != expected) {
        std::ostringstream os;
        os << "process " << proc_str(e.proc) << " reports a transition out of "
           << mode_name(from) << " but was in " << mode_name(expected);
        report(e.group, "Modes (Figure 1)", os.str());
      }
      const bool legal =
          (via == 0 && (from == kNormal || from == kSettling) &&
           to == kReduced) ||
          (via == 1 && from == kReduced && to == kSettling) ||
          (via == 2 && (from == kNormal || from == kSettling) &&
           to == kSettling) ||
          (via == 3 && from == kSettling && to == kNormal);
      if (!legal) {
        std::ostringstream os;
        os << "process " << proc_str(e.proc) << " took an illegal edge "
           << mode_name(from) << " -> " << mode_name(to) << " via "
           << transition_name(via);
        report(e.group, "Modes (Figure 1)", os.str());
      }
      mode_[key] = to;
      return;
    }
    case EventKind::RequestAdmitted:
    case EventKind::RequestOrdered:
    case EventKind::RequestDelivered:
    case EventKind::RequestApplied:
    case EventKind::RequestReplied: {
      // Per-(trace, process) phase timestamps must never run backwards on
      // that process's own clock; a rank regression (Admitted after
      // Replied) is a *new cycle* of a reused trace id, legal as long as
      // time still advances. RequestFenced is out of band and unchecked.
      const std::uint8_t rank = static_cast<std::uint8_t>(
          static_cast<int>(e.kind) - static_cast<int>(EventKind::RequestAdmitted));
      const auto key = std::make_tuple(e.group, e.seq, e.proc);
      const auto it = requests_.find(key);
      if (it == requests_.end()) {
        if (requests_.size() >= kMaxTracked) {
          ++saturated_;
          return;
        }
        requests_[key] = RequestState{rank, e.time};
        return;
      }
      if (e.time < it->second.last_time) {
        std::ostringstream os;
        os << "request " << e.seq << " at process " << proc_str(e.proc)
           << ": phase " << to_string(e.kind) << " at t=" << e.time
           << " precedes the prior phase at t=" << it->second.last_time;
        report(e.group, "Request phases", os.str());
      }
      it->second = RequestState{rank, e.time};
      return;
    }
    default:
      return;
  }
}

std::string LiveChecker::health_json() const {
  std::ostringstream os;
  os << "{\"healthy\":" << (healthy() ? "true" : "false")
     << ",\"events_checked\":" << events_checked_
     << ",\"violations\":" << violations_ << ",\"saturated\":" << saturated_
     << ",\"groups\":[";
  bool first = true;
  for (const auto& [group, count] : group_violations_) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << group << ",\"violations\":" << count << "}";
  }
  os << "],\"recent\":[";
  first = true;
  for (const Violation& v : recent_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << v.str() << "\"";
  }
  os << "]}";
  return os.str();
}

}  // namespace evs::obs
