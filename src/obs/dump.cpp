#include "obs/dump.hpp"

#include <cstdlib>
#include <fstream>

#include "common/log.hpp"

namespace evs::obs {

std::string trace_out_dir() {
  const char* dir = std::getenv("EVS_TRACE_OUT");
  return dir == nullptr ? std::string{} : std::string{dir};
}

bool dump_run(const TraceBus& bus, const MetricsRegistry& metrics,
              const std::string& name) {
  const std::string dir = trace_out_dir();
  if (dir.empty()) return false;
  const std::string stem = dir + "/" + name;

  {
    std::ofstream os(stem + ".trace.jsonl");
    if (!os) {
      EVS_WARN("dump_run: cannot write into EVS_TRACE_OUT dir " << dir);
      return false;
    }
    bus.write_jsonl(os);
  }
  {
    std::ofstream os(stem + ".chrome.json");
    bus.write_chrome_trace(os);
  }
  {
    std::ofstream os(stem + ".metrics.json");
    os << metrics.to_json() << "\n";
  }
  {
    // Same snapshot in Prometheus text exposition, so scrape configs and
    // dump files share one format (checked by the CI smoke).
    std::ofstream os(stem + ".metrics.prom");
    os << metrics.to_prometheus();
  }
  EVS_INFO("dump_run: wrote " << stem
                              << ".{trace.jsonl,chrome.json,metrics.json,"
                                 "metrics.prom} ("
                              << bus.recorded() << " events, " << bus.dropped()
                              << " dropped)");
  return true;
}

}  // namespace evs::obs
