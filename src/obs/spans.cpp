#include "obs/spans.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <ostream>
#include <sstream>
#include <tuple>

namespace evs::obs {

namespace {

// Same compact textual ids the JSONL trace format uses.
std::string proc_str(ProcessId p) {
  return std::to_string(p.site.value) + ":" + std::to_string(p.incarnation);
}

std::string view_str(ViewId v) {
  return std::to_string(v.epoch) + ":" + proc_str(v.coordinator);
}

void put_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

using MsgKey = std::tuple<ProcessId, std::uint64_t, ViewId>;  // sender,seq,view
using PairKey = std::pair<ProcessId, ProcessId>;

}  // namespace

double ClockModel::correct(SimTime t, ProcessId p) const {
  const auto it = offset_us.find(p);
  const double off = it == offset_us.end() ? 0.0 : it->second;
  return static_cast<double>(t) + off;
}

std::string PhaseBreakdown::str() const {
  std::ostringstream os;
  os << "view " << view_str(new_view) << " round " << round << " coord "
     << proc_str(coordinator) << ": propose->last-ack ";
  const auto dur = [&os](double d) {
    if (d < 0) {
      os << "n/a";
    } else {
      os << d << "us";
    }
  };
  dur(propose_to_last_ack_us);
  os << " (" << acks << " acks), last-ack->install ";
  dur(last_ack_to_first_install_us);
  os << ", install spread ";
  dur(install_spread_us);
  os << ", install->e-view ";
  dur(install_to_eview_us);
  os << " (" << installs << " installs)";
  return os.str();
}

SpanAnalysis correlate_spans(const std::vector<TraceEvent>& events) {
  SpanAnalysis out;

  // ---- pass 1: index sends, collect deliveries and the process set.
  std::map<MsgKey, std::size_t> send_index;  // -> out.spans slot
  std::vector<ProcessId> procs;
  const auto note_proc = [&procs](ProcessId p) {
    if (std::find(procs.begin(), procs.end(), p) == procs.end())
      procs.push_back(p);
  };
  for (const TraceEvent& e : events) {
    note_proc(e.proc);
    if (e.kind != EventKind::MessageSent) continue;
    const MsgKey key{e.proc, e.seq, e.view};
    if (send_index.contains(key)) continue;  // duplicate line (merged dumps)
    send_index.emplace(key, out.spans.size());
    MessageSpan span;
    span.sender = e.proc;
    span.seq = e.seq;
    span.view = e.view;
    span.payload_hash = e.value;
    span.send_raw = e.time;
    out.spans.push_back(std::move(span));
  }

  // ---- pass 2: match deliveries, accumulating per-pair minimum one-way
  // deltas for the clock model (cross-process matches only).
  std::map<PairKey, SimTime> pair_send;  // raw send time per matched pair msg
  std::map<PairKey, double> min_delta;   // min(recv_raw - send_raw)
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::MessageDelivered &&
        e.kind != EventKind::FlushDelivery)
      continue;
    const auto it = send_index.find(MsgKey{e.peer, e.seq, e.view});
    if (it == send_index.end()) {
      ++out.unmatched_deliveries;
      continue;
    }
    MessageSpan& span = out.spans[it->second];
    const bool duplicate =
        std::any_of(span.deliveries.begin(), span.deliveries.end(),
                    [&e](const DeliverySpan& d) { return d.recipient == e.proc; });
    if (duplicate) continue;  // same dump merged twice
    DeliverySpan d;
    d.recipient = e.proc;
    d.recv_raw = e.time;
    d.flush = e.kind == EventKind::FlushDelivery;
    span.deliveries.push_back(d);
    ++out.matched_deliveries;
    if (e.proc != span.sender) {
      const PairKey pair{span.sender, e.proc};
      const double delta =
          static_cast<double>(e.time) - static_cast<double>(span.send_raw);
      const auto md = min_delta.find(pair);
      if (md == min_delta.end() || delta < md->second)
        min_delta[pair] = delta;
    }
  }
  for (const MessageSpan& span : out.spans)
    if (span.deliveries.empty()) ++out.unmatched_sends;

  // ---- clock model: BFS from the smallest traced process over the pair
  // graph, preferring two-sided (symmetric-path) edges.
  ClockModel& clocks = out.clocks;
  if (!procs.empty()) {
    std::sort(procs.begin(), procs.end());
    clocks.reference = procs.front();
    clocks.offset_us[clocks.reference] = 0.0;
    std::deque<ProcessId> frontier{clocks.reference};
    while (!frontier.empty()) {
      const ProcessId a = frontier.front();
      frontier.pop_front();
      const double off_a = clocks.offset_us.at(a);
      for (const ProcessId& b : procs) {
        if (clocks.offset_us.contains(b)) continue;
        const auto ab = min_delta.find(PairKey{a, b});
        const auto ba = min_delta.find(PairKey{b, a});
        if (ab == min_delta.end() && ba == min_delta.end()) continue;
        // rel = o_a - o_b; with both directions the symmetric-path
        // estimate, else the one-sided upper bound (zero-delay assumption).
        double rel;
        if (ab != min_delta.end() && ba != min_delta.end()) {
          rel = (ab->second - ba->second) / 2.0;
        } else if (ab != min_delta.end()) {
          rel = ab->second;
          clocks.one_sided.push_back(b);
        } else {
          rel = -ba->second;
          clocks.one_sided.push_back(b);
        }
        clocks.offset_us[b] = off_a - rel;
        frontier.push_back(b);
      }
    }
  }

  // ---- corrected times, latencies, per-channel histograms.
  // Two sweeps: the first computes corrected latencies and each directed
  // channel's minimum; a negative minimum means the symmetric-path split
  // under-corrected this (faster) direction of an asymmetric path, and the
  // second sweep lifts the whole direction by that floor so no channel
  // reports negative latency while relative shape is preserved.
  std::map<PairKey, double> channel_min;
  for (MessageSpan& span : out.spans) {
    span.send_corrected = clocks.correct(span.send_raw, span.sender);
    for (DeliverySpan& d : span.deliveries) {
      d.recv_corrected = clocks.correct(d.recv_raw, d.recipient);
      d.latency_us = d.recv_corrected - span.send_corrected;
      const PairKey pair{span.sender, d.recipient};
      const auto it = channel_min.find(pair);
      if (it == channel_min.end() || d.latency_us < it->second)
        channel_min[pair] = d.latency_us;
    }
  }
  const auto is_one_sided = [&clocks](ProcessId p) {
    return std::find(clocks.one_sided.begin(), clocks.one_sided.end(), p) !=
           clocks.one_sided.end();
  };
  std::map<PairKey, std::size_t> channel_index;
  for (MessageSpan& span : out.spans) {
    for (DeliverySpan& d : span.deliveries) {
      const PairKey pair{span.sender, d.recipient};
      const double minimum = channel_min.at(pair);
      const double floor = minimum < 0 ? -minimum : 0.0;
      d.latency_us += floor;
      auto it = channel_index.find(pair);
      if (it == channel_index.end()) {
        it = channel_index.emplace(pair, out.channels.size()).first;
        ChannelLatency channel;
        channel.from = span.sender;
        channel.to = d.recipient;
        channel.floor_us = floor;
        channel.one_sided =
            is_one_sided(span.sender) || is_one_sided(d.recipient);
        out.channels.push_back(std::move(channel));
      }
      out.channels[it->second].latency_us.record(d.latency_us);
    }
  }

  // ---- view-change phase breakdowns, keyed by (round, coordinator).
  struct RoundState {
    ViewId new_view;
    bool have_view = false;
    double propose = -1;
    std::vector<double> acks;
    std::vector<std::pair<ProcessId, double>> installs;
  };
  std::map<std::pair<std::uint64_t, ProcessId>, RoundState> rounds;
  // Earliest e-view baseline (EviewChange seq 0) per (process, view).
  std::map<std::pair<ProcessId, ViewId>, double> eview_baseline;
  for (const TraceEvent& e : events) {
    const double t = clocks.correct(e.time, e.proc);
    switch (e.kind) {
      case EventKind::ViewProposed: {
        RoundState& r = rounds[{e.seq, e.proc}];
        if (r.propose < 0 || t < r.propose) r.propose = t;
        break;
      }
      case EventKind::ViewAcked:
        rounds[{e.seq, e.peer}].acks.push_back(t);
        break;
      case EventKind::ViewInstalled: {
        if (e.seq == 0) break;  // singleton bootstrap install, no round
        RoundState& r = rounds[{e.seq, e.peer}];
        r.installs.emplace_back(e.proc, t);
        r.new_view = e.view;
        r.have_view = true;
        break;
      }
      case EventKind::EviewChange: {
        if (e.seq != 0) break;  // only the per-view baseline
        const auto key = std::make_pair(e.proc, e.view);
        const auto it = eview_baseline.find(key);
        if (it == eview_baseline.end() || t < it->second)
          eview_baseline[key] = t;
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [key, r] : rounds) {
    if (r.installs.empty()) continue;  // aborted / superseded round
    PhaseBreakdown b;
    b.round = key.first;
    b.coordinator = key.second;
    b.new_view = r.new_view;
    b.installs = r.installs.size();
    b.acks = r.acks.size();
    const double first_install =
        std::min_element(r.installs.begin(), r.installs.end(),
                         [](const auto& x, const auto& y) {
                           return x.second < y.second;
                         })
            ->second;
    const double last_install =
        std::max_element(r.installs.begin(), r.installs.end(),
                         [](const auto& x, const auto& y) {
                           return x.second < y.second;
                         })
            ->second;
    b.install_spread_us = last_install - first_install;
    if (!r.acks.empty()) {
      const double last_ack = *std::max_element(r.acks.begin(), r.acks.end());
      if (r.propose >= 0) b.propose_to_last_ack_us = last_ack - r.propose;
      b.last_ack_to_first_install_us = first_install - last_ack;
    }
    double eview_lag = -1;
    for (const auto& [member, install_t] : r.installs) {
      const auto it = eview_baseline.find({member, r.new_view});
      if (it == eview_baseline.end()) continue;
      eview_lag = std::max(eview_lag, it->second - install_t);
    }
    b.install_to_eview_us = eview_lag;
    out.view_changes.push_back(std::move(b));
  }
  std::sort(out.view_changes.begin(), out.view_changes.end(),
            [](const PhaseBreakdown& a, const PhaseBreakdown& b) {
              return std::tie(a.new_view.epoch, a.round) <
                     std::tie(b.new_view.epoch, b.round);
            });
  return out;
}

void write_spans_json(std::ostream& os, const SpanAnalysis& a) {
  os << "{\"clock\":{\"reference\":\"" << proc_str(a.clocks.reference)
     << "\",\"offsets_us\":{";
  bool first = true;
  for (const auto& [p, off] : a.clocks.offset_us) {
    if (!first) os << ",";
    first = false;
    os << "\"" << proc_str(p) << "\":";
    put_number(os, off);
  }
  os << "},\"one_sided\":[";
  first = true;
  for (const ProcessId& p : a.clocks.one_sided) {
    if (!first) os << ",";
    first = false;
    os << "\"" << proc_str(p) << "\"";
  }
  os << "]},\"spans\":" << a.spans.size()
     << ",\"matched_deliveries\":" << a.matched_deliveries
     << ",\"unmatched_sends\":" << a.unmatched_sends
     << ",\"unmatched_deliveries\":" << a.unmatched_deliveries
     << ",\"channels\":[";
  first = true;
  for (const ChannelLatency& c : a.channels) {
    if (!first) os << ",";
    first = false;
    os << "{\"from\":\"" << proc_str(c.from) << "\",\"to\":\""
       << proc_str(c.to) << "\",\"count\":" << c.latency_us.count()
       << ",\"min_us\":";
    put_number(os, c.latency_us.min());
    os << ",\"mean_us\":";
    put_number(os, c.latency_us.mean());
    os << ",\"p50_us\":";
    put_number(os, c.latency_us.quantile(0.50));
    os << ",\"p95_us\":";
    put_number(os, c.latency_us.quantile(0.95));
    os << ",\"max_us\":";
    put_number(os, c.latency_us.max());
    os << ",\"floor_us\":";
    put_number(os, c.floor_us);
    os << ",\"one_sided\":" << (c.one_sided ? "true" : "false") << "}";
  }
  os << "],\"view_changes\":[";
  first = true;
  for (const PhaseBreakdown& b : a.view_changes) {
    if (!first) os << ",";
    first = false;
    os << "{\"view\":\"" << view_str(b.new_view) << "\",\"round\":" << b.round
       << ",\"coordinator\":\"" << proc_str(b.coordinator)
       << "\",\"installs\":" << b.installs << ",\"acks\":" << b.acks
       << ",\"propose_to_last_ack_us\":";
    put_number(os, b.propose_to_last_ack_us);
    os << ",\"last_ack_to_first_install_us\":";
    put_number(os, b.last_ack_to_first_install_us);
    os << ",\"install_spread_us\":";
    put_number(os, b.install_spread_us);
    os << ",\"install_to_eview_us\":";
    put_number(os, b.install_to_eview_us);
    os << "}";
  }
  os << "]}\n";
}

namespace {

// Lifecycle rank of a request phase on one node; Fenced is out-of-band
// (a view change can fence at any point) and gets no rank.
int request_phase_rank(EventKind kind) {
  switch (kind) {
    case EventKind::RequestAdmitted:
      return 0;
    case EventKind::RequestOrdered:
      return 1;
    case EventKind::RequestDelivered:
      return 2;
    case EventKind::RequestApplied:
      return 3;
    case EventKind::RequestReplied:
      return 4;
    default:
      return -1;
  }
}

}  // namespace

RequestTree assemble_request_tree(const std::vector<TraceEvent>& events,
                                  std::uint64_t trace_id,
                                  const ClockModel& clocks) {
  RequestTree tree;
  tree.trace_id = trace_id;
  for (const TraceEvent& e : events) {
    if (!is_request_event(e.kind) || e.seq != trace_id) continue;
    const bool duplicate = std::any_of(
        tree.hops.begin(), tree.hops.end(), [&e](const RequestHop& h) {
          return h.proc == e.proc && h.kind == e.kind && h.group == e.group &&
                 h.time_raw == e.time && h.value == e.value && h.aux == e.aux;
        });
    if (duplicate) continue;  // same dump merged twice
    RequestHop hop;
    hop.proc = e.proc;
    hop.kind = e.kind;
    hop.group = e.group;
    hop.time_raw = e.time;
    hop.time_corrected = clocks.correct(e.time, e.proc);
    hop.value = e.value;
    hop.aux = e.aux;
    tree.hops.push_back(hop);
  }
  tree.found = !tree.hops.empty();
  for (const RequestHop& hop : tree.hops)
    if (std::find(tree.processes.begin(), tree.processes.end(), hop.proc) ==
        tree.processes.end())
      tree.processes.push_back(hop.proc);
  std::sort(tree.processes.begin(), tree.processes.end());

  // Per-node phase monotonicity on raw clocks: order the node's ranked
  // hops by (raw time, rank) and require ranks non-decreasing — a later
  // raw timestamp with an earlier phase is a violation.
  for (const ProcessId& proc : tree.processes) {
    std::vector<std::pair<SimTime, int>> phases;
    for (const RequestHop& hop : tree.hops) {
      const int rank = request_phase_rank(hop.kind);
      if (hop.proc == proc && rank >= 0) phases.emplace_back(hop.time_raw, rank);
    }
    std::sort(phases.begin(), phases.end());
    for (std::size_t i = 1; i < phases.size(); ++i) {
      if (phases[i].second < phases[i - 1].second) {
        tree.monotonic = false;
        tree.errors.push_back(
            "process " + proc_str(proc) + ": phase rank " +
            std::to_string(phases[i].second) + " at t=" +
            std::to_string(phases[i].first) + "us after rank " +
            std::to_string(phases[i - 1].second) + " at t=" +
            std::to_string(phases[i - 1].first) + "us");
      }
    }
  }

  std::sort(tree.hops.begin(), tree.hops.end(),
            [](const RequestHop& a, const RequestHop& b) {
              return std::tie(a.time_corrected, a.proc, a.time_raw) <
                     std::tie(b.time_corrected, b.proc, b.time_raw);
            });
  return tree;
}

void write_request_tree_json(std::ostream& os, const RequestTree& tree) {
  os << "{\"trace_id\":" << tree.trace_id
     << ",\"found\":" << (tree.found ? "true" : "false")
     << ",\"monotonic\":" << (tree.monotonic ? "true" : "false")
     << ",\"processes\":[";
  bool first = true;
  for (const ProcessId& p : tree.processes) {
    if (!first) os << ",";
    first = false;
    os << "\"" << proc_str(p) << "\"";
  }
  os << "],\"hops\":[";
  first = true;
  for (const RequestHop& hop : tree.hops) {
    if (!first) os << ",";
    first = false;
    os << "{\"proc\":\"" << proc_str(hop.proc) << "\",\"kind\":\""
       << to_string(hop.kind) << "\",\"group\":" << hop.group
       << ",\"time_raw_us\":" << hop.time_raw << ",\"time_corrected_us\":";
    put_number(os, hop.time_corrected);
    os << ",\"value\":" << hop.value << ",\"aux\":" << hop.aux << "}";
  }
  os << "],\"errors\":[";
  first = true;
  for (const std::string& err : tree.errors) {
    if (!first) os << ",";
    first = false;
    os << "\"" << err << "\"";
  }
  os << "]}\n";
}

void write_chrome_flows(std::ostream& os, const SpanAnalysis& a) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::vector<std::uint32_t> seen_sites;
  const auto emit_process_meta = [&](ProcessId p) {
    for (const std::uint32_t s : seen_sites)
      if (s == p.site.value) return;
    seen_sites.push_back(p.site.value);
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << p.site.value
       << ",\"args\":{\"name\":\"site " << p.site.value << "\"}}";
  };
  std::size_t flow_id = 0;
  for (const MessageSpan& span : a.spans) {
    if (span.deliveries.empty()) continue;
    ++flow_id;
    emit_process_meta(span.sender);
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"send " << proc_str(span.sender) << "#" << span.seq
       << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
    put_number(os, span.send_corrected);
    os << ",\"dur\":1,\"pid\":" << span.sender.site.value
       << ",\"tid\":" << span.sender.incarnation << "}";
    os << ",{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":" << flow_id
       << ",\"ts\":";
    put_number(os, span.send_corrected);
    os << ",\"pid\":" << span.sender.site.value
       << ",\"tid\":" << span.sender.incarnation << "}";
    for (const DeliverySpan& d : span.deliveries) {
      emit_process_meta(d.recipient);
      os << ",{\"name\":\"" << (d.flush ? "flush-recv " : "recv ")
         << proc_str(span.sender) << "#" << span.seq
         << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":";
      put_number(os, d.recv_corrected);
      os << ",\"dur\":1,\"pid\":" << d.recipient.site.value
         << ",\"tid\":" << d.recipient.incarnation << "}";
      os << ",{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
            "\"id\":"
         << flow_id << ",\"ts\":";
      put_number(os, d.recv_corrected);
      os << ",\"pid\":" << d.recipient.site.value
         << ",\"tid\":" << d.recipient.incarnation << "}";
    }
  }
  os << "]}\n";
}

}  // namespace evs::obs
