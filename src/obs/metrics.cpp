#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace evs::obs {

void Histogram::record(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
}

double Histogram::min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::quantile(double q) const {
  EVS_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest rank: smallest index whose cumulative share is >= q.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

namespace {

// JSON numbers must not be NaN/Inf; clamp defensively.
void put_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    put_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h.count() << ",\"sum\":";
    put_number(os, h.sum());
    os << ",\"min\":";
    put_number(os, h.min());
    os << ",\"max\":";
    put_number(os, h.max());
    os << ",\"mean\":";
    put_number(os, h.mean());
    os << ",\"p50\":";
    put_number(os, h.quantile(0.50));
    os << ",\"p90\":";
    put_number(os, h.quantile(0.90));
    os << ",\"p95\":";
    put_number(os, h.quantile(0.95));
    os << ",\"p99\":";
    put_number(os, h.quantile(0.99));
    os << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace evs::obs
