#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace evs::obs {

namespace {

// splitmix64: tiny, deterministic, good enough to pick reservoir victims.
std::uint64_t next_random(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Histogram::Histogram(std::size_t sample_cap)
    : sample_cap_(sample_cap), rng_state_(0x853c49e6748fea9bULL) {
  EVS_CHECK(sample_cap_ > 0);
}

void Histogram::record(double sample) {
  if (count_ == 0 || sample < min_) min_ = sample;
  if (count_ == 0 || sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
  if (samples_.size() < sample_cap_) {
    samples_.push_back(sample);
    return;
  }
  // Algorithm R: keep each of the count_ samples with probability cap/count.
  const std::uint64_t slot = next_random(rng_state_) % count_;
  if (slot < sample_cap_) samples_[static_cast<std::size_t>(slot)] = sample;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  EVS_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  // Nearest rank: smallest index whose cumulative share is >= q.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

namespace {

// JSON numbers must not be NaN/Inf; clamp defensively.
void put_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":";
    put_number(os, g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << h.count() << ",\"sum\":";
    put_number(os, h.sum());
    os << ",\"min\":";
    put_number(os, h.min());
    os << ",\"max\":";
    put_number(os, h.max());
    os << ",\"mean\":";
    put_number(os, h.mean());
    os << ",\"p50\":";
    put_number(os, h.quantile(0.50));
    os << ",\"p90\":";
    put_number(os, h.quantile(0.90));
    os << ",\"p95\":";
    put_number(os, h.quantile(0.95));
    os << ",\"p99\":";
    put_number(os, h.quantile(0.99));
    os << "}";
  }
  os << "}}";
  return os.str();
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

void put_prom_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  os << v;
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " ";
    put_prom_number(os, g.value());
    os << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " summary\n";
    for (const double q : {0.5, 0.9, 0.95, 0.99}) {
      os << n << "{quantile=\"" << q << "\"} ";
      put_prom_number(os, h.quantile(q));
      os << "\n";
    }
    os << n << "_sum ";
    put_prom_number(os, h.sum());
    os << "\n" << n << "_count " << h.count() << "\n";
  }
  return os.str();
}

}  // namespace evs::obs
