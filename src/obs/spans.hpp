// Observability: cross-process span correlation.
//
// A sim run records every process on one clock, but a real-socket fleet
// (tools/evs_node) dumps one trace per process, each stamped with that
// process's own loop-monotonic clock. This module turns the *union* of
// those traces (the same union trace_check --merge builds) into artifacts
// that reason across processes:
//
//   * a clock model — per-process offsets onto a reference clock,
//     estimated from minimum one-way delays of matched message pairs
//     (the classic NTP-style symmetric-path assumption: for processes a,b
//     with d_ab = min(recv_b - send_a) and d_ba = min(recv_a - send_b),
//     the skew is (d_ab - d_ba)/2). Processes without reverse traffic get
//     a one-sided (upper-bound) estimate, flagged in the model;
//   * message spans — each MessageSent matched to its per-recipient
//     MessageDelivered / FlushDelivery events via the (sender, seq, view)
//     identity the protocol already guarantees unique, with per-channel
//     (sender -> recipient) latency histograms on the corrected clock;
//   * view-change phase breakdowns — per round, the PROPOSE -> last ACK ->
//     first INSTALL -> e-view install durations, attributing view-change
//     latency to protocol phases;
//   * exporters: a JSON report, and Chrome trace *flow* events so
//     Perfetto draws arrows from each send to its deliveries across
//     process tracks.
//
// Everything here is offline analysis: it consumes recorded TraceEvents
// and never touches the wire path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::obs {

/// Maps each traced process's local clock onto the reference process's
/// clock: corrected(t, p) = t + offset_us[p].
struct ClockModel {
  ProcessId reference;
  std::map<ProcessId, double> offset_us;
  /// Processes whose offset came from one traffic direction only — an
  /// upper bound (assumes zero network delay on the observed direction).
  std::vector<ProcessId> one_sided;

  bool knows(ProcessId p) const { return offset_us.contains(p); }
  double correct(SimTime t, ProcessId p) const;
};

struct DeliverySpan {
  ProcessId recipient;
  SimTime recv_raw = 0;       // recipient's clock
  double recv_corrected = 0;  // reference clock
  double latency_us = 0;      // corrected recv - corrected send
  bool flush = false;         // delivered from an install union
};

struct MessageSpan {
  ProcessId sender;
  std::uint64_t seq = 0;
  ViewId view;
  std::uint64_t payload_hash = 0;
  SimTime send_raw = 0;
  double send_corrected = 0;
  std::vector<DeliverySpan> deliveries;
};

/// Latency distribution of one directed channel (sender -> recipient),
/// corrected-clock microseconds. Self-delivery channels are included:
/// their latency is pure local queueing.
struct ChannelLatency {
  ProcessId from;
  ProcessId to;
  Histogram latency_us;
  /// Per-direction minimum-delay floor: the symmetric-path clock model
  /// splits asymmetry evenly, so the faster direction of an asymmetric
  /// path can come out with *negative* corrected latencies. When that
  /// happens the whole direction is shifted up by `floor_us` (the amount
  /// that makes its minimum exactly zero) — relative latency shape is
  /// preserved, absolute values are lower bounds.
  double floor_us = 0;
  /// Either endpoint's clock offset was a one-sided (upper-bound)
  /// estimate, so this channel's absolute latencies inherit that bias.
  bool one_sided = false;
};

/// One view-change round, attributed to protocol phases. Durations are -1
/// when the trace lacks the events to compute them (e.g. the PROPOSE fell
/// out of a ring buffer).
struct PhaseBreakdown {
  ViewId new_view;
  std::uint64_t round = 0;
  ProcessId coordinator;
  std::size_t installs = 0;  // members observed installing this round
  std::size_t acks = 0;
  double propose_to_last_ack_us = -1;
  double last_ack_to_first_install_us = -1;
  double install_spread_us = -1;  // last install - first install
  /// Max over members of (first e-view install for the new view - its
  /// ViewInstalled); -1 when no member traced an e-view baseline.
  double install_to_eview_us = -1;

  std::string str() const;
};

struct SpanAnalysis {
  ClockModel clocks;
  std::vector<MessageSpan> spans;
  std::vector<ChannelLatency> channels;
  std::vector<PhaseBreakdown> view_changes;
  std::uint64_t matched_deliveries = 0;
  std::uint64_t unmatched_sends = 0;       // no delivery observed anywhere
  std::uint64_t unmatched_deliveries = 0;  // delivery without a traced send
};

/// Runs the whole correlation over a merged event union (any order; events
/// are grouped by their recording process internally).
SpanAnalysis correlate_spans(const std::vector<TraceEvent>& events);

/// One JSON object: clock model, per-channel latency stats, view-change
/// phase breakdowns, and span/match counts (individual spans are summarised
/// per channel, not dumped one by one).
void write_spans_json(std::ostream& os, const SpanAnalysis& analysis);

/// Chrome trace-event JSON of the spans as flow events: a slice + flow-out
/// at each send, a slice + flow-in at each delivery, on corrected
/// timestamps — Perfetto draws the cross-process arrows.
void write_chrome_flows(std::ostream& os, const SpanAnalysis& analysis);

// ---------------------------------------------------------------------------
// Request span trees: the causal tree of one traced client request,
// assembled from the Request* lifecycle events of a merged multi-process
// trace (trace_check --request).

/// One lifecycle hop of a traced request at one process.
struct RequestHop {
  ProcessId proc;
  EventKind kind = EventKind::RequestAdmitted;
  GroupId group = kDefaultGroup;
  SimTime time_raw = 0;       // that process's own clock
  double time_corrected = 0;  // reference clock (cross-process ordering only)
  std::uint64_t value = 0;    // op / op seq / epoch / status (kind-specific)
  std::uint64_t aux = 0;      // request id for Admitted/Replied
};

/// The assembled tree of one trace id. Validity is judged on *raw*
/// per-process timestamps — phase order within one node never needs the
/// clock model; corrected times are only used to order hops of different
/// processes for display.
struct RequestTree {
  std::uint64_t trace_id = 0;
  /// All hops, corrected-time order (ties broken by process then phase).
  std::vector<RequestHop> hops;
  /// Distinct processes the request touched, ascending.
  std::vector<ProcessId> processes;
  bool found = false;      // any hop carried this trace id
  bool monotonic = true;   // per-node phase order held on raw clocks
  std::vector<std::string> errors;  // what broke, when !monotonic
};

/// Collects the Request* events of `trace_id` and validates per-node phase
/// monotonicity (Admitted <= Ordered <= Delivered <= Applied <= Replied on
/// each node's own clock; Fenced is out-of-band and exempt). `clocks`
/// usually comes from correlate_spans() over the same event union.
RequestTree assemble_request_tree(const std::vector<TraceEvent>& events,
                                  std::uint64_t trace_id,
                                  const ClockModel& clocks);

/// One JSON object: trace id, verdict, per-hop list (process, kind, group,
/// raw + corrected time, kind-specific values), and any validation errors.
void write_request_tree_json(std::ostream& os, const RequestTree& tree);

}  // namespace evs::obs
