// Simulated asynchronous network with partitions.
//
// This is the substrate substitution documented in DESIGN.md §2: the paper
// assumes a real asynchronous network where processes and links crash and
// the network partitions; we model it as point-to-point message passing
// with randomized delay (min + exponential jitter — unbounded, so the
// system is genuinely asynchronous), probabilistic loss, and a partition
// topology over *sites*. Messages crossing a partition boundary are
// dropped; optionally messages already in flight when a partition forms
// are dropped too (the default, matching a cable pull).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "obs/metrics.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"

namespace evs::sim {

struct NetworkConfig {
  /// Fixed component of one-way delay.
  SimDuration min_delay = 200 * kMicrosecond;
  /// Mean of the exponential jitter added on top of min_delay.
  double mean_jitter_us = 800.0;
  /// Probability an individual message is lost even within a partition.
  double loss_rate = 0.0;
  /// Drop messages that are in flight when a partition separates the
  /// endpoints (checked again at delivery time).
  bool drop_in_flight_on_partition = true;
  /// Link bandwidth in bytes per simulated microsecond (0 = infinite).
  /// When finite, each directed link serialises its messages: a big
  /// snapshot occupies the link and delays everything queued behind it —
  /// required for the Section-5 state-transfer experiments.
  double bytes_per_us = 0.0;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t dropped_partition = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_dead = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  /// Sends that handed the network a uniquely-owned buffer (send /
  /// send_to_site); each cost one heap buffer.
  std::uint64_t payload_copies = 0;
  /// Deliveries scheduled off a ref-counted buffer (send_multi); they cost
  /// no payload allocation at all.
  std::uint64_t payloads_shared = 0;
};

class Network {
 public:
  using Handler = std::function<void(ProcessId from, const Bytes& payload)>;

  Network(Scheduler& scheduler, Rng rng, NetworkConfig config = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the live incarnation at a destination. Messages addressed
  /// to any other ProcessId (e.g. a crashed incarnation) are dropped.
  void attach(ProcessId id, Handler handler);
  void detach(ProcessId id);
  bool attached(ProcessId id) const;

  /// Sends one message; delivery (if any) is scheduled on the scheduler.
  void send(ProcessId from, ProcessId to, Bytes payload);

  /// Sends to whatever incarnation is attached at `site` when the message
  /// arrives (models host:port addressing — the sender need not know the
  /// incarnation). Used for discovery traffic such as heartbeats.
  void send_to_site(ProcessId from, SiteId site, Bytes payload);

  /// Fan-out: schedules one delivery per recipient, all sharing `payload`'s
  /// buffer instead of copying it per destination. Wire semantics are
  /// identical to calling send() once per recipient — loss, partition,
  /// bandwidth and stats accounting all stay per-link.
  void send_multi(ProcessId from, const std::vector<ProcessId>& recipients,
                  SharedBytes payload);

  /// Installs a partition: each group is a connected component; any site
  /// not mentioned becomes isolated in its own component.
  void set_partition(const std::vector<std::vector<SiteId>>& groups);

  /// Restores full connectivity.
  void heal();

  bool reachable(SiteId a, SiteId b) const;

  const NetworkStats& stats() const { return stats_; }
  NetworkConfig& config() { return config_; }

  /// Projects the stats struct into `registry` as counters under `prefix`.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "net") const;

 private:
  std::uint32_t component_of(SiteId site) const;
  SimDuration transit_delay(SiteId from, SiteId to, std::size_t bytes);
  /// Shared send path: stats, partition/loss checks and delay scheduling
  /// for one message to one destination site. When `to` is unset the live
  /// incarnation at `site` is resolved at delivery time (site addressing).
  void enqueue(ProcessId from, SiteId site, std::optional<ProcessId> to,
               SharedBytes payload);
  void deliver(ProcessId from, ProcessId to, const Bytes& payload,
               std::uint64_t version_at_send);

  Scheduler& scheduler_;
  Rng rng_;
  NetworkConfig config_;
  NetworkStats stats_;
  std::unordered_map<ProcessId, Handler> handlers_;
  std::unordered_map<SiteId, ProcessId> site_endpoint_;
  // Empty map means fully connected; otherwise site -> component index,
  // and unmapped sites are isolated (component = kIsolatedBase + site).
  std::unordered_map<SiteId, std::uint32_t> component_;
  bool partitioned_ = false;
  // Per directed (src-site, dst-site) link: time the link frees up.
  std::map<std::pair<SiteId, SiteId>, SimTime> link_busy_until_;
  // Bumped on every topology change; used to detect "partition formed
  // while the message was in flight".
  std::uint64_t topology_version_ = 0;
};

}  // namespace evs::sim
