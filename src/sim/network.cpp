#include "sim/network.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace evs::sim {

Network::Network(Scheduler& scheduler, Rng rng, NetworkConfig config)
    : scheduler_(scheduler), rng_(rng), config_(config) {}

void Network::attach(ProcessId id, Handler handler) {
  EVS_CHECK(handler != nullptr);
  const auto [it, inserted] = handlers_.emplace(id, std::move(handler));
  (void)it;
  EVS_CHECK_MSG(inserted, "process attached twice: " + to_string(id));
  site_endpoint_[id.site] = id;
}

void Network::detach(ProcessId id) {
  handlers_.erase(id);
  const auto it = site_endpoint_.find(id.site);
  if (it != site_endpoint_.end() && it->second == id) site_endpoint_.erase(it);
}

bool Network::attached(ProcessId id) const { return handlers_.contains(id); }

std::uint32_t Network::component_of(SiteId site) const {
  const auto it = component_.find(site);
  if (it != component_.end()) return it->second;
  // Sites not named in the partition spec are isolated.
  return 0x80000000u | site.value;
}

bool Network::reachable(SiteId a, SiteId b) const {
  if (a == b) return true;  // loopback always works
  if (!partitioned_) return true;
  return component_of(a) == component_of(b);
}

void Network::set_partition(const std::vector<std::vector<SiteId>>& groups) {
  component_.clear();
  std::uint32_t index = 0;
  for (const auto& group : groups) {
    for (const SiteId site : group) {
      const auto [it, inserted] = component_.emplace(site, index);
      (void)it;
      EVS_CHECK_MSG(inserted, "site in two partition groups");
    }
    ++index;
  }
  partitioned_ = true;
  ++topology_version_;
}

void Network::heal() {
  component_.clear();
  partitioned_ = false;
  ++topology_version_;
}

void Network::send(ProcessId from, ProcessId to, Bytes payload) {
  ++stats_.payload_copies;
  enqueue(from, to.site, to, SharedBytes(std::move(payload)));
}

void Network::send_to_site(ProcessId from, SiteId site, Bytes payload) {
  ++stats_.payload_copies;
  enqueue(from, site, std::nullopt, SharedBytes(std::move(payload)));
}

void Network::send_multi(ProcessId from,
                         const std::vector<ProcessId>& recipients,
                         SharedBytes payload) {
  stats_.payloads_shared += recipients.size();
  for (const ProcessId to : recipients) enqueue(from, to.site, to, payload);
}

void Network::enqueue(ProcessId from, SiteId site, std::optional<ProcessId> to,
                      SharedBytes payload) {
  ++stats_.messages_sent;
  stats_.bytes_sent += payload.size();

  if (!reachable(from.site, site)) {
    ++stats_.dropped_partition;
    return;
  }
  if (config_.loss_rate > 0.0 && rng_.bernoulli(config_.loss_rate)) {
    ++stats_.dropped_loss;
    return;
  }

  const SimDuration delay = transit_delay(from.site, site, payload.size());
  const std::uint64_t version_at_send = topology_version_;

  scheduler_.schedule_after(delay, [this, from, site, to, version_at_send,
                                    payload = std::move(payload)]() {
    ProcessId dest;
    if (to.has_value()) {
      dest = *to;
    } else {
      // Site addressing: resolve the incarnation at delivery time.
      const auto it = site_endpoint_.find(site);
      if (it == site_endpoint_.end()) {
        ++stats_.dropped_dead;
        return;
      }
      dest = it->second;
    }
    deliver(from, dest, payload.bytes(), version_at_send);
  });
}

SimDuration Network::transit_delay(SiteId from, SiteId to, std::size_t bytes) {
  SimDuration delay =
      config_.min_delay +
      static_cast<SimDuration>(rng_.exponential(config_.mean_jitter_us));
  if (config_.bytes_per_us > 0.0) {
    // Serialise the directed link: transmission begins when the link is
    // free and occupies it for size/bandwidth.
    const auto key = std::make_pair(from, to);
    const SimDuration tx = static_cast<SimDuration>(
        static_cast<double>(bytes) / config_.bytes_per_us);
    SimTime start = scheduler_.now();
    const auto it = link_busy_until_.find(key);
    if (it != link_busy_until_.end() && it->second > start) start = it->second;
    link_busy_until_[key] = start + tx;
    delay += (start + tx) - scheduler_.now();
  }
  return delay;
}

void Network::deliver(ProcessId from, ProcessId to, const Bytes& payload,
                      std::uint64_t version_at_send) {
  if (config_.drop_in_flight_on_partition &&
      topology_version_ != version_at_send &&
      !reachable(from.site, to.site)) {
    ++stats_.dropped_partition;
    return;
  }
  const auto it = handlers_.find(to);
  if (it == handlers_.end()) {
    // Destination incarnation crashed (or never existed).
    ++stats_.dropped_dead;
    return;
  }
  ++stats_.messages_delivered;
  stats_.bytes_delivered += payload.size();
  it->second(from, payload);
}

void Network::export_metrics(obs::MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.counter(prefix + ".messages_sent").set(stats_.messages_sent);
  registry.counter(prefix + ".messages_delivered").set(stats_.messages_delivered);
  registry.counter(prefix + ".dropped_partition").set(stats_.dropped_partition);
  registry.counter(prefix + ".dropped_loss").set(stats_.dropped_loss);
  registry.counter(prefix + ".dropped_dead").set(stats_.dropped_dead);
  registry.counter(prefix + ".bytes_sent").set(stats_.bytes_sent);
  registry.counter(prefix + ".bytes_delivered").set(stats_.bytes_delivered);
  registry.counter(prefix + ".payload_copies").set(stats_.payload_copies);
  registry.counter(prefix + ".payloads_shared").set(stats_.payloads_shared);
}

}  // namespace evs::sim
