#include "sim/scheduler.hpp"

#include <utility>

#include "common/check.hpp"

namespace evs::sim {

EventId Scheduler::schedule_at(SimTime t, std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Scheduler::schedule_after(SimDuration d, std::function<void()> fn) {
  return schedule_at(now_ + d, std::move(fn));
}

void Scheduler::cancel(EventId id) { callbacks_.erase(id); }

bool Scheduler::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(entry.id);
    if (it == callbacks_.end()) continue;  // cancelled
    // Move the callback out before invoking: the callback may schedule
    // new events and rehash callbacks_.
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = entry.time;
    ++events_fired_;
    fn();
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && step()) ++fired;
  EVS_CHECK_MSG(fired < max_events || queue_.empty(),
                "event budget exhausted — livelock?");
  return fired;
}

std::size_t Scheduler::run_until(SimTime t) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Skip cancelled entries at the head so their timestamps do not
    // prevent progress decisions.
    const Entry entry = queue_.top();
    if (callbacks_.find(entry.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.time > t) break;
    if (step()) ++fired;
  }
  if (now_ < t) now_ = t;
  return fired;
}

}  // namespace evs::sim
