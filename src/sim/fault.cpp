#include "sim/fault.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "sim/world.hpp"

namespace evs::sim {

FaultPlan& FaultPlan::crash_at(SimTime t, SiteId site) {
  entries_.push_back({t, [site](World& w) { w.crash_site(site); }});
  return *this;
}

FaultPlan& FaultPlan::recover_at(SimTime t, SiteId site) {
  entries_.push_back({t, [site](World& w) {
                        if (!w.site_alive(site)) w.respawn(site);
                      }});
  return *this;
}

FaultPlan& FaultPlan::partition_at(SimTime t,
                                   std::vector<std::vector<SiteId>> groups) {
  entries_.push_back({t, [groups = std::move(groups)](World& w) {
                        w.network().set_partition(groups);
                      }});
  return *this;
}

FaultPlan& FaultPlan::heal_at(SimTime t) {
  entries_.push_back({t, [](World& w) { w.network().heal(); }});
  return *this;
}

FaultPlan& FaultPlan::custom_at(SimTime t, std::function<void(World&)> action) {
  EVS_CHECK(action != nullptr);
  entries_.push_back({t, std::move(action)});
  return *this;
}

void FaultPlan::arm(World& world) const {
  for (const Entry& entry : entries_) {
    world.scheduler().schedule_at(entry.time,
                                  [&world, action = entry.action]() {
                                    action(world);
                                  });
  }
}

FaultPlan random_fault_plan(Rng& rng, const std::vector<SiteId>& sites,
                            SimTime horizon, const FaultProfile& profile) {
  EVS_CHECK(!sites.empty());
  FaultPlan plan;

  // Model of which sites the plan has killed so far, so recover events are
  // well-targeted. (The world itself is the source of truth at run time;
  // crash/recover on an already-dead/live site is a no-op there.)
  std::unordered_set<SiteId> dead;
  bool partitioned = false;

  const double total_weight = profile.crash_weight + profile.recover_weight +
                              profile.partition_weight + profile.heal_weight;
  EVS_CHECK(total_weight > 0.0);

  SimTime t = 0;
  for (;;) {
    t += static_cast<SimDuration>(
        rng.exponential(static_cast<double>(profile.mean_interval)));
    if (t > horizon) break;

    const double pick = rng.uniform01() * total_weight;
    if (pick < profile.crash_weight) {
      std::vector<SiteId> live;
      for (const SiteId s : sites)
        if (!dead.contains(s)) live.push_back(s);
      const std::size_t min_live = profile.keep_one_alive ? 2 : 1;
      if (live.size() < min_live) continue;
      const SiteId victim = live[rng.uniform(live.size())];
      dead.insert(victim);
      plan.crash_at(t, victim);
    } else if (pick < profile.crash_weight + profile.recover_weight) {
      if (dead.empty()) continue;
      std::vector<SiteId> candidates(dead.begin(), dead.end());
      std::sort(candidates.begin(), candidates.end());
      const SiteId site = candidates[rng.uniform(candidates.size())];
      dead.erase(site);
      plan.recover_at(t, site);
    } else if (pick < profile.crash_weight + profile.recover_weight +
                          profile.partition_weight) {
      if (sites.size() < 2) continue;
      // Random bipartition with both sides nonempty.
      std::vector<SiteId> a;
      std::vector<SiteId> b;
      for (const SiteId s : sites) (rng.bernoulli(0.5) ? a : b).push_back(s);
      if (a.empty() || b.empty()) continue;
      plan.partition_at(t, {a, b});
      partitioned = true;
    } else {
      if (!partitioned) continue;
      plan.heal_at(t);
      partitioned = false;
    }
  }
  return plan;
}

}  // namespace evs::sim
