// Deterministic pseudo-random source (splitmix64).
//
// Every run of the simulator is fully reproducible from one seed: the
// world forks independent substreams for the network, the fault injector
// and each process, so adding a random draw in one component never
// perturbs the stream seen by another.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace evs::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).
  std::uint64_t uniform(std::uint64_t bound) {
    EVS_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_range(std::uint64_t lo, std::uint64_t hi) {
    EVS_CHECK(lo <= hi);
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform01();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  /// Derives an independent substream.
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace evs::sim
