// World: owns the scheduler, network, sites, stable stores and actors.
//
// An Actor is one process incarnation. Spawning at a site mints a new
// ProcessId (site, incarnation) — the paper's recovery model — and
// crashing a site silences its current incarnation forever (messages to a
// dead incarnation are dropped by the network). Actors are kept alive in
// memory after a crash so in-flight closures remain valid, but their
// `alive()` flag gates every callback.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/runtime.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/stable_store.hpp"

namespace evs::sim {

class World;

/// Base class for every simulated process.
class Actor {
 public:
  virtual ~Actor() = default;

  ProcessId id() const { return id_; }
  bool alive() const { return alive_; }

  /// The world's trace bus, or nullptr before adoption. Hooks should test
  /// `trace() != nullptr && trace()->enabled()` (cheap) before building an
  /// event. Public so wrapper layers (ordering, app objects) can trace
  /// through the actor they decorate.
  obs::TraceBus* trace() const;

  /// Current simulated time (usable from const members).
  SimTime now() const;

  /// Called once, at spawn time (time of the spawn event).
  virtual void on_start() {}

  /// Called for every message delivered to this incarnation while alive.
  virtual void on_message(ProcessId from, const Bytes& payload) = 0;

  /// Called when the incarnation crashes, before it is detached.
  virtual void on_crash() {}

 protected:
  void send(ProcessId to, Bytes payload);

  /// Encode-once fan-out: every recipient's delivery shares one buffer.
  void send_multi(const std::vector<ProcessId>& recipients, SharedBytes payload);

  /// Schedules a callback that is silently dropped if this incarnation has
  /// crashed by the time it fires.
  EventId set_timer(SimDuration delay, std::function<void()> fn);
  void cancel_timer(EventId id);

  World& world() {
    EVS_CHECK(world_ != nullptr);
    return *world_;
  }
  Scheduler& scheduler();
  Rng& rng() { return rng_; }
  /// This site's permanent storage (survives crashes).
  StableStore& store();

 private:
  friend class World;

  World* world_ = nullptr;
  ProcessId id_{};
  bool alive_ = false;
  Rng rng_{0};
};

/// Adapter that hosts a runtime-neutral protocol endpoint (runtime::Node)
/// inside the simulator: the simulated scheduler is its Clock and
/// TimerService, the simulated network its Transport. This class is what
/// makes sim::World "one implementation of the runtime interfaces" — the
/// net runtime (src/net/) is the other.
class NodeHost final : public Actor,
                       private runtime::Clock,
                       private runtime::TimerService,
                       private runtime::Transport {
 public:
  explicit NodeHost(std::unique_ptr<runtime::Node> node)
      : node_(std::move(node)) {
    EVS_CHECK(node_ != nullptr);
  }

  runtime::Node& node() { return *node_; }

  void on_start() override;
  void on_message(ProcessId from, const Bytes& payload) override {
    node_->on_message(from, payload);
  }
  void on_crash() override {
    node_->on_crash();
    node_->detach();
  }

 private:
  // runtime::Clock
  SimTime now() const override { return Actor::now(); }
  // runtime::TimerService (EventId and TimerId are both u64 handles).
  runtime::TimerId set_timer(SimDuration delay,
                             std::function<void()> fn) override {
    return Actor::set_timer(delay, std::move(fn));
  }
  void cancel_timer(runtime::TimerId id) override { Actor::cancel_timer(id); }
  // runtime::Transport
  void send(ProcessId to, Bytes payload) override {
    Actor::send(to, std::move(payload));
  }
  void send_to_site(SiteId site, Bytes payload) override;
  void send_multi(const std::vector<ProcessId>& recipients,
                  SharedBytes payload) override {
    Actor::send_multi(recipients, std::move(payload));
  }

  std::unique_ptr<runtime::Node> node_;
};

class World {
 public:
  explicit World(std::uint64_t seed, NetworkConfig net_config = {});
  /// If EVS_TRACE_OUT is set and the bus recorded anything that was not
  /// already dumped via dump_trace(), writes the run artifacts under an
  /// auto-generated name — a failing test run leaves its trace behind.
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  Network& network() { return network_; }
  Rng& rng() { return rng_; }

  /// Per-world structured event trace (obs/trace.hpp). Enabled
  /// automatically when EVS_TRACE_OUT is set; tests enable it explicitly.
  /// Recording never touches rng_ or the scheduler, so enabling the bus
  /// cannot perturb a simulation.
  obs::TraceBus& trace_bus() { return trace_bus_; }
  const obs::TraceBus& trace_bus() const { return trace_bus_; }

  /// Per-world metrics registry; layers project their stats structs into
  /// it via their export_metrics() helpers.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Dumps this world's trace + metrics under `name` via obs::dump_run
  /// (no-op returning false when EVS_TRACE_OUT is unset) and suppresses
  /// the destructor's auto-dump.
  bool dump_trace(const std::string& name);

  SiteId add_site();
  std::vector<SiteId> add_sites(std::size_t n);

  /// Spawns a new incarnation at `site`. The site must have no live
  /// incarnation. Constructor receives (args...); the framework wires in
  /// id/world before on_start runs. T may be a raw sim::Actor or a
  /// runtime::Node (vsync/evs endpoints, application objects) — a Node is
  /// transparently wrapped in a NodeHost bound to this world's runtime
  /// services, so the protocol stack itself never sees the simulator.
  template <typename T, typename... Args>
  T& spawn(SiteId site, Args&&... args) {
    if constexpr (std::is_base_of_v<Actor, T>) {
      auto actor = std::make_unique<T>(std::forward<Args>(args)...);
      T& ref = *actor;
      adopt(site, std::move(actor));
      return ref;
    } else {
      static_assert(std::is_base_of_v<runtime::Node, T>,
                    "spawn<T>: T must derive from sim::Actor or runtime::Node");
      auto node = std::make_unique<T>(std::forward<Args>(args)...);
      T& ref = *node;
      adopt(site, std::make_unique<NodeHost>(std::move(node)));
      return ref;
    }
  }

  /// Registered factory used by FaultPlan recovery actions.
  using Spawner = std::function<void(World&, SiteId)>;
  void set_default_spawner(Spawner spawner) { spawner_ = std::move(spawner); }
  /// Spawns a fresh incarnation at `site` via the default spawner.
  void respawn(SiteId site);

  /// Crashes the live incarnation at `site` (no-op if none).
  void crash_site(SiteId site);
  void crash(ProcessId id);

  bool site_alive(SiteId site) const;
  /// Live incarnation at `site`; checks that one exists.
  ProcessId live_process(SiteId site) const;

  StableStore& store(SiteId site);

  Actor* find_actor(ProcessId id);

  std::size_t sites() const { return site_count_; }

  /// Convenience: runs the scheduler for `d` simulated time.
  void run_for(SimDuration d) { scheduler_.run_until(scheduler_.now() + d); }
  void run_until_idle() { scheduler_.run(); }

 private:
  friend class Actor;

  void adopt(SiteId site, std::unique_ptr<Actor> actor);

  std::uint64_t seed_;
  Rng rng_;
  Scheduler scheduler_;
  Network network_;
  obs::TraceBus trace_bus_;
  obs::MetricsRegistry metrics_;
  bool trace_dumped_ = false;
  std::uint32_t site_count_ = 0;
  std::unordered_map<SiteId, std::uint32_t> incarnations_;
  std::unordered_map<SiteId, ProcessId> live_;
  std::unordered_map<ProcessId, std::unique_ptr<Actor>> actors_;
  std::unordered_map<SiteId, StableStore> stores_;
  Spawner spawner_;
};

}  // namespace evs::sim
