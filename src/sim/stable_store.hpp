// Per-site stable storage.
//
// Models the paper's "permanent part of the local state" (Section 3):
// a process crash destroys volatile state, but the site's StableStore
// survives and is visible to the next incarnation spawned at that site.
// Used by recovery logic and by the Skeen-style last-process-to-fail
// protocol (Section 4, reference [11]).
//
// The implementation is the runtime-neutral runtime::MemoryStore — the
// same concrete store the net runtime uses — aliased here so existing
// sim call sites keep their spelling.
#pragma once

#include "runtime/runtime.hpp"

namespace evs::sim {

using StableStore = runtime::MemoryStore;

}  // namespace evs::sim
