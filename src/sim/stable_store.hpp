// Per-site stable storage.
//
// Models the paper's "permanent part of the local state" (Section 3):
// a process crash destroys volatile state, but the site's StableStore
// survives and is visible to the next incarnation spawned at that site.
// Used by recovery logic and by the Skeen-style last-process-to-fail
// protocol (Section 4, reference [11]).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace evs::sim {

class StableStore {
 public:
  /// Atomically replaces the value under `key`.
  void put(const std::string& key, Bytes value);

  std::optional<Bytes> get(const std::string& key) const;

  void erase(const std::string& key);

  bool contains(const std::string& key) const;

  std::size_t size() const { return entries_.size(); }

  /// Total payload bytes held — used by benches to report storage cost.
  std::size_t bytes() const;

  /// Number of put() calls — a proxy for synchronous-write cost.
  std::uint64_t writes() const { return writes_; }

 private:
  std::map<std::string, Bytes> entries_;
  std::uint64_t writes_ = 0;
};

}  // namespace evs::sim
