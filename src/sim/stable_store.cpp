#include "sim/stable_store.hpp"

#include <utility>

namespace evs::sim {

void StableStore::put(const std::string& key, Bytes value) {
  entries_[key] = std::move(value);
  ++writes_;
}

std::optional<Bytes> StableStore::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void StableStore::erase(const std::string& key) { entries_.erase(key); }

bool StableStore::contains(const std::string& key) const {
  return entries_.contains(key);
}

std::size_t StableStore::bytes() const {
  std::size_t total = 0;
  for (const auto& [key, value] : entries_) total += key.size() + value.size();
  return total;
}

}  // namespace evs::sim
