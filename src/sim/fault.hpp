// Fault injection: scripted and randomized crash/recover/partition/heal
// schedules, used by integration tests, property suites and benches.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "sim/rng.hpp"

namespace evs::sim {

class World;

/// A deterministic schedule of fault events. Build it, then arm() it on a
/// world: each entry becomes one scheduler event.
class FaultPlan {
 public:
  FaultPlan& crash_at(SimTime t, SiteId site);
  /// Respawn via the world's default spawner (new incarnation).
  FaultPlan& recover_at(SimTime t, SiteId site);
  FaultPlan& partition_at(SimTime t, std::vector<std::vector<SiteId>> groups);
  FaultPlan& heal_at(SimTime t);
  FaultPlan& custom_at(SimTime t, std::function<void(World&)> action);

  void arm(World& world) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::function<void(World&)> action;
  };
  std::vector<Entry> entries_;
};

/// Parameters for random fault generation (property tests).
struct FaultProfile {
  /// Mean time between fault events (exponential inter-arrival).
  SimDuration mean_interval = 500 * kMillisecond;
  /// Relative weights of the four event kinds.
  double crash_weight = 1.0;
  double recover_weight = 1.0;
  double partition_weight = 1.0;
  double heal_weight = 1.0;
  /// Never crash the last live site (keeps some runs total-failure-free);
  /// set false to exercise total failures.
  bool keep_one_alive = true;
};

/// Generates a random but deterministic (seeded) FaultPlan over [0, horizon]
/// for the given sites. Tracks which sites it has crashed so recover events
/// target genuinely dead sites.
FaultPlan random_fault_plan(Rng& rng, const std::vector<SiteId>& sites,
                            SimTime horizon, const FaultProfile& profile = {});

}  // namespace evs::sim
