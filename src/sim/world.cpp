#include "sim/world.hpp"

#include <unistd.h>

#include <atomic>

#include "common/log.hpp"
#include "obs/dump.hpp"

namespace evs::sim {

void Actor::send(ProcessId to, Bytes payload) {
  if (!alive_) return;
  world().network().send(id_, to, std::move(payload));
}

void Actor::send_multi(const std::vector<ProcessId>& recipients,
                       SharedBytes payload) {
  if (!alive_) return;
  world().network().send_multi(id_, recipients, std::move(payload));
}

EventId Actor::set_timer(SimDuration delay, std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  // Actors outlive their timers (the world never destroys actors until it
  // is torn down), so capturing `this` is safe; alive_ gates execution.
  return scheduler().schedule_after(delay, [this, fn = std::move(fn)]() {
    if (alive_) fn();
  });
}

void Actor::cancel_timer(EventId id) { scheduler().cancel(id); }

Scheduler& Actor::scheduler() { return world().scheduler(); }

obs::TraceBus* Actor::trace() const {
  return world_ == nullptr ? nullptr : &world_->trace_bus();
}

SimTime Actor::now() const {
  EVS_CHECK(world_ != nullptr);
  return world_->scheduler().now();
}

StableStore& Actor::store() { return world().store(id_.site); }

void NodeHost::on_start() {
  runtime::Env env;
  env.transport = this;
  env.clock = this;
  env.timers = this;
  env.store = &store();
  env.trace = trace();
  env.halt = [this]() { world().crash(id()); };
  node_->bind(std::move(env), id());
  node_->on_start();
}

void NodeHost::send_to_site(SiteId site, Bytes payload) {
  if (!alive()) return;
  world().network().send_to_site(id(), site, std::move(payload));
}

World::World(std::uint64_t seed, NetworkConfig net_config)
    : seed_(seed),
      rng_(seed),
      network_(scheduler_, Rng(seed ^ 0xa0761d6478bd642fULL), net_config) {
  // Opt every run into tracing when EVS_TRACE_OUT names a dump directory,
  // so benches and examples need no per-binary flag plumbing.
  if (!obs::trace_out_dir().empty()) trace_bus_.set_enabled(true);
}

World::~World() {
  if (trace_dumped_ || trace_bus_.recorded() == 0) return;
  if (obs::trace_out_dir().empty()) return;
  // Auto-generated stem: unique across the parallel test binaries that
  // may share one EVS_TRACE_OUT directory.
  static std::atomic<std::uint64_t> run_counter{0};
  dump_trace("world-seed" + std::to_string(seed_) + "-p" +
             std::to_string(static_cast<long long>(::getpid())) + "-" +
             std::to_string(run_counter.fetch_add(1)));
}

bool World::dump_trace(const std::string& name) {
  trace_dumped_ = true;
  return obs::dump_run(trace_bus_, metrics_, name);
}

SiteId World::add_site() {
  const SiteId site{site_count_++};
  stores_.try_emplace(site);
  incarnations_.try_emplace(site, 0);
  return site;
}

std::vector<SiteId> World::add_sites(std::size_t n) {
  std::vector<SiteId> sites;
  sites.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sites.push_back(add_site());
  return sites;
}

void World::adopt(SiteId site, std::unique_ptr<Actor> actor) {
  EVS_CHECK_MSG(incarnations_.contains(site), "unknown site");
  EVS_CHECK_MSG(!live_.contains(site),
                "site already has a live incarnation: " + to_string(site));
  const ProcessId id{site, ++incarnations_[site]};
  Actor* raw = actor.get();
  raw->world_ = this;
  raw->id_ = id;
  raw->alive_ = true;
  raw->rng_ = rng_.fork();
  live_.emplace(site, id);
  actors_.emplace(id, std::move(actor));
  network_.attach(id, [this, raw](ProcessId from, const Bytes& payload) {
    if (raw->alive_) raw->on_message(from, payload);
  });
  // Run on_start as a scheduled event so spawn order at the same instant
  // stays deterministic and on_start may send messages.
  scheduler_.schedule_after(0, [raw]() {
    if (raw->alive_) raw->on_start();
  });
}

void World::respawn(SiteId site) {
  EVS_CHECK_MSG(spawner_ != nullptr, "no default spawner registered");
  spawner_(*this, site);
}

void World::crash_site(SiteId site) {
  const auto it = live_.find(site);
  if (it == live_.end()) return;
  crash(it->second);
}

void World::crash(ProcessId id) {
  const auto it = actors_.find(id);
  if (it == actors_.end() || !it->second->alive_) return;
  EVS_DEBUG("crash " << id << " at t=" << scheduler_.now());
  it->second->on_crash();
  it->second->alive_ = false;
  network_.detach(id);
  live_.erase(id.site);
}

bool World::site_alive(SiteId site) const { return live_.contains(site); }

ProcessId World::live_process(SiteId site) const {
  const auto it = live_.find(site);
  EVS_CHECK_MSG(it != live_.end(), "no live incarnation at " + to_string(site));
  return it->second;
}

StableStore& World::store(SiteId site) {
  const auto it = stores_.find(site);
  EVS_CHECK_MSG(it != stores_.end(), "unknown site");
  return it->second;
}

Actor* World::find_actor(ProcessId id) {
  const auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : it->second.get();
}

}  // namespace evs::sim
