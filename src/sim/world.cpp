#include "sim/world.hpp"

#include "common/log.hpp"

namespace evs::sim {

void Actor::send(ProcessId to, Bytes payload) {
  if (!alive_) return;
  world().network().send(id_, to, std::move(payload));
}

void Actor::send_multi(const std::vector<ProcessId>& recipients,
                       SharedBytes payload) {
  if (!alive_) return;
  world().network().send_multi(id_, recipients, std::move(payload));
}

EventId Actor::set_timer(SimDuration delay, std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  // Actors outlive their timers (the world never destroys actors until it
  // is torn down), so capturing `this` is safe; alive_ gates execution.
  return scheduler().schedule_after(delay, [this, fn = std::move(fn)]() {
    if (alive_) fn();
  });
}

void Actor::cancel_timer(EventId id) { scheduler().cancel(id); }

Scheduler& Actor::scheduler() { return world().scheduler(); }

SimTime Actor::now() const {
  EVS_CHECK(world_ != nullptr);
  return world_->scheduler().now();
}

StableStore& Actor::store() { return world().store(id_.site); }

World::World(std::uint64_t seed, NetworkConfig net_config)
    : seed_(seed),
      rng_(seed),
      network_(scheduler_, Rng(seed ^ 0xa0761d6478bd642fULL), net_config) {}

SiteId World::add_site() {
  const SiteId site{site_count_++};
  stores_.try_emplace(site);
  incarnations_.try_emplace(site, 0);
  return site;
}

std::vector<SiteId> World::add_sites(std::size_t n) {
  std::vector<SiteId> sites;
  sites.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sites.push_back(add_site());
  return sites;
}

void World::adopt(SiteId site, std::unique_ptr<Actor> actor) {
  EVS_CHECK_MSG(incarnations_.contains(site), "unknown site");
  EVS_CHECK_MSG(!live_.contains(site),
                "site already has a live incarnation: " + to_string(site));
  const ProcessId id{site, ++incarnations_[site]};
  Actor* raw = actor.get();
  raw->world_ = this;
  raw->id_ = id;
  raw->alive_ = true;
  raw->rng_ = rng_.fork();
  live_.emplace(site, id);
  actors_.emplace(id, std::move(actor));
  network_.attach(id, [this, raw](ProcessId from, const Bytes& payload) {
    if (raw->alive_) raw->on_message(from, payload);
  });
  // Run on_start as a scheduled event so spawn order at the same instant
  // stays deterministic and on_start may send messages.
  scheduler_.schedule_after(0, [raw]() {
    if (raw->alive_) raw->on_start();
  });
}

void World::respawn(SiteId site) {
  EVS_CHECK_MSG(spawner_ != nullptr, "no default spawner registered");
  spawner_(*this, site);
}

void World::crash_site(SiteId site) {
  const auto it = live_.find(site);
  if (it == live_.end()) return;
  crash(it->second);
}

void World::crash(ProcessId id) {
  const auto it = actors_.find(id);
  if (it == actors_.end() || !it->second->alive_) return;
  EVS_DEBUG("crash " << id << " at t=" << scheduler_.now());
  it->second->on_crash();
  it->second->alive_ = false;
  network_.detach(id);
  live_.erase(id.site);
}

bool World::site_alive(SiteId site) const { return live_.contains(site); }

ProcessId World::live_process(SiteId site) const {
  const auto it = live_.find(site);
  EVS_CHECK_MSG(it != live_.end(), "no live incarnation at " + to_string(site));
  return it->second;
}

StableStore& World::store(SiteId site) {
  const auto it = stores_.find(site);
  EVS_CHECK_MSG(it != stores_.end(), "unknown site");
  return it->second;
}

Actor* World::find_actor(ProcessId id) {
  const auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : it->second.get();
}

}  // namespace evs::sim
