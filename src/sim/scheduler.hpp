// Discrete-event scheduler: the single source of time in the system.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in a deterministic order and a run is reproducible event-for-event.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"

namespace evs::sim {

using EventId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute simulated time `t` (clamped to now).
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `d` microseconds from now.
  EventId schedule_after(SimDuration d, std::function<void()> fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void cancel(EventId id);

  /// Runs the next pending event. Returns false if none are pending.
  bool step();

  /// Runs events until the queue is empty or `max_events` have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t max_events = kDefaultEventBudget);

  /// Runs all events with time <= t, then advances the clock to t.
  std::size_t run_until(SimTime t);

  std::size_t pending() const { return callbacks_.size(); }
  std::uint64_t events_fired() const { return events_fired_; }

  /// Backstop against livelocked protocols in tests.
  static constexpr std::size_t kDefaultEventBudget = 50'000'000;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

}  // namespace evs::sim
