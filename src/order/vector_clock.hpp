// Vector clocks, indexed by member rank within a view.
//
// Used by the causal ordering layer (Section 2 of the paper notes that
// ordering guarantees "can only help" with shared-state problems; the
// causal layer is what makes e-view changes define consistent cuts when
// the total-order layer is not in use).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/codec.hpp"

namespace evs::order {

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : counts_(n, 0) {}

  std::size_t size() const { return counts_.size(); }
  std::uint64_t at(std::size_t rank) const { return counts_.at(rank); }
  void set(std::size_t rank, std::uint64_t value) { counts_.at(rank) = value; }
  void increment(std::size_t rank) { ++counts_.at(rank); }

  /// Component-wise maximum.
  void merge(const VectorClock& other);

  /// True iff this <= other component-wise.
  bool leq(const VectorClock& other) const;

  /// Sum of components — a cheap deterministic tiebreaker.
  std::uint64_t total() const;

  /// A message stamped `msg_vc` by `sender_rank` is causally deliverable
  /// once the receiver's clock `delivered` covers every dependency:
  /// delivered[sender] == msg_vc[sender] - 1 and delivered[i] >= msg_vc[i]
  /// for all other i.
  bool deliverable_at(std::size_t sender_rank,
                      const VectorClock& delivered) const;

  bool operator==(const VectorClock&) const = default;

  void encode(Encoder& enc) const;
  static VectorClock decode(Decoder& dec);

  std::string str() const;

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace evs::order
