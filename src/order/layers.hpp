// Ordering layers stacked on a vsync::Endpoint.
//
// View synchrony itself imposes no order on deliveries within a view
// (Section 2). These adapters add one:
//   FifoLayer   — per-sender FIFO (what the endpoint already provides);
//                 a transparent pass-through, the baseline for benches.
//   CausalLayer — causal order via vector clocks piggybacked on payloads.
//   TotalLayer  — total order via a sequencer (the view primary): members
//                 forward sends through the group, the sequencer stamps a
//                 global sequence, everyone delivers in stamp order.
//
// All three preserve the view-synchrony properties: their traffic rides
// on the endpoint's multicast, so it participates in the flush. At a view
// change each layer deterministically drains whatever ordering state it
// holds — Agreement guarantees every survivor holds the same set, so the
// drained delivery order is identical everywhere.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "order/vector_clock.hpp"
#include "vsync/endpoint.hpp"

namespace evs::order {

/// What a layer exposes upward (mirrors vsync::Delegate).
class OrderDelegate {
 public:
  virtual ~OrderDelegate() = default;
  virtual void on_view(const gms::View& view, const vsync::InstallInfo& info) = 0;
  virtual void on_deliver(ProcessId sender, const Bytes& payload) = 0;
  virtual void on_block() {}
  virtual Bytes flush_context() { return {}; }
};

struct LayerStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t reordered = 0;       // held back before delivery
  std::uint64_t drained_at_view = 0; // force-delivered at a view change
  std::uint64_t overhead_bytes = 0;  // ordering metadata on the wire
};

/// Projects a layer's stats into `registry` as counters under `prefix`.
void export_metrics(const LayerStats& stats, obs::MetricsRegistry& registry,
                    const std::string& prefix);

class FifoLayer : public vsync::Delegate {
 public:
  FifoLayer(vsync::Endpoint& endpoint, OrderDelegate& up);

  void multicast(Bytes payload);
  const LayerStats& stats() const { return stats_; }

  void on_view(const gms::View& view, const vsync::InstallInfo& info) override;
  void on_deliver(ProcessId sender, const Bytes& payload) override;
  void on_block() override;
  Bytes flush_context() override;

 private:
  vsync::Endpoint& endpoint_;
  OrderDelegate& up_;
  LayerStats stats_;
};

class CausalLayer : public vsync::Delegate {
 public:
  CausalLayer(vsync::Endpoint& endpoint, OrderDelegate& up);

  void multicast(Bytes payload);
  const LayerStats& stats() const { return stats_; }

  void on_view(const gms::View& view, const vsync::InstallInfo& info) override;
  void on_deliver(ProcessId sender, const Bytes& payload) override;
  void on_block() override;
  Bytes flush_context() override;

 private:
  struct Held {
    ProcessId sender;
    VectorClock vc;
    Bytes payload;
  };

  void drain_ready();
  void deliver(const Held& held);

  vsync::Endpoint& endpoint_;
  OrderDelegate& up_;
  VectorClock delivered_;  // per current view
  std::vector<Held> held_;
  LayerStats stats_;
};

class TotalLayer : public vsync::Delegate {
 public:
  TotalLayer(vsync::Endpoint& endpoint, OrderDelegate& up);

  void multicast(Bytes payload);
  const LayerStats& stats() const { return stats_; }
  bool is_sequencer() const;

  void on_view(const gms::View& view, const vsync::InstallInfo& info) override;
  void on_deliver(ProcessId sender, const Bytes& payload) override;
  void on_block() override;
  Bytes flush_context() override;

 private:
  using MsgKey = std::pair<ProcessId, std::uint64_t>;  // (origin, lseq)

  void deliver(ProcessId origin, const Bytes& payload);

  vsync::Endpoint& endpoint_;
  OrderDelegate& up_;
  std::uint64_t lseq_ = 0;        // own forward counter (per view)
  std::uint64_t gseq_out_ = 0;    // sequencer's stamp counter (per view)
  std::map<MsgKey, Bytes> unordered_;  // forwarded, not yet stamped
  std::set<MsgKey> delivered_keys_;    // stamped & delivered
  LayerStats stats_;
};

}  // namespace evs::order
