#include "order/vector_clock.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace evs::order {

void VectorClock::merge(const VectorClock& other) {
  EVS_CHECK(size() == other.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] = std::max(counts_[i], other.counts_[i]);
}

bool VectorClock::leq(const VectorClock& other) const {
  EVS_CHECK(size() == other.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    if (counts_[i] > other.counts_[i]) return false;
  return true;
}

std::uint64_t VectorClock::total() const {
  std::uint64_t sum = 0;
  for (const auto c : counts_) sum += c;
  return sum;
}

bool VectorClock::deliverable_at(std::size_t sender_rank,
                                 const VectorClock& delivered) const {
  EVS_CHECK(size() == delivered.size());
  EVS_CHECK(sender_rank < size());
  if (counts_[sender_rank] != delivered.counts_[sender_rank] + 1) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i == sender_rank) continue;
    if (counts_[i] > delivered.counts_[i]) return false;
  }
  return true;
}

void VectorClock::encode(Encoder& enc) const {
  enc.put_vector(counts_, [](Encoder& e, std::uint64_t v) { e.put_varint(v); });
}

VectorClock VectorClock::decode(Decoder& dec) {
  VectorClock vc;
  vc.counts_ =
      dec.get_vector<std::uint64_t>([](Decoder& d) { return d.get_varint(); });
  return vc;
}

std::string VectorClock::str() const {
  std::string s = "[";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(counts_[i]);
  }
  return s + "]";
}

}  // namespace evs::order
