#include "order/layers.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace evs::order {

namespace {

enum class Tag : std::uint8_t {
  Plain = 1,    // FifoLayer payload
  Causal = 2,   // vector clock + payload
  Forward = 3,  // total order: unstamped send
  Stamped = 4,  // total order: sequencer's stamped copy
};

}  // namespace

void export_metrics(const LayerStats& stats, obs::MetricsRegistry& registry,
                    const std::string& prefix) {
  registry.counter(prefix + ".sent").set(stats.sent);
  registry.counter(prefix + ".delivered").set(stats.delivered);
  registry.counter(prefix + ".reordered").set(stats.reordered);
  registry.counter(prefix + ".drained_at_view").set(stats.drained_at_view);
  registry.counter(prefix + ".overhead_bytes").set(stats.overhead_bytes);
}

// ---------------------------------------------------------------- Fifo ---

FifoLayer::FifoLayer(vsync::Endpoint& endpoint, OrderDelegate& up)
    : endpoint_(endpoint), up_(up) {
  endpoint_.set_delegate(this);
}

void FifoLayer::multicast(Bytes payload) {
  ++stats_.sent;
  Encoder enc;
  enc.reserve(payload.size() + 8);
  enc.put_u8(static_cast<std::uint8_t>(Tag::Plain));
  enc.put_bytes(payload);
  stats_.overhead_bytes += enc.size() - payload.size();
  endpoint_.multicast(std::move(enc).take());
}

void FifoLayer::on_view(const gms::View& view, const vsync::InstallInfo& info) {
  up_.on_view(view, info);
}

void FifoLayer::on_deliver(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  if (static_cast<Tag>(dec.get_u8()) != Tag::Plain)
    throw DecodeError("FifoLayer: unexpected tag");
  ++stats_.delivered;
  up_.on_deliver(sender, dec.get_bytes());
}

void FifoLayer::on_block() { up_.on_block(); }

Bytes FifoLayer::flush_context() { return up_.flush_context(); }

// -------------------------------------------------------------- Causal ---

CausalLayer::CausalLayer(vsync::Endpoint& endpoint, OrderDelegate& up)
    : endpoint_(endpoint), up_(up) {
  endpoint_.set_delegate(this);
}

void CausalLayer::multicast(Bytes payload) {
  const gms::View& view = endpoint_.view();
  if (delivered_.size() != view.size()) delivered_ = VectorClock(view.size());
  VectorClock stamp = delivered_;
  stamp.increment(view.rank_of(endpoint_.id()));

  ++stats_.sent;
  Encoder enc;
  enc.reserve(payload.size() + 10 * stamp.size() + 8);
  enc.put_u8(static_cast<std::uint8_t>(Tag::Causal));
  stamp.encode(enc);
  enc.put_bytes(payload);
  stats_.overhead_bytes += enc.size() - payload.size();
  endpoint_.multicast(std::move(enc).take());
  // Own delivery comes back through on_deliver like everyone else's.
}

void CausalLayer::on_deliver(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  if (static_cast<Tag>(dec.get_u8()) != Tag::Causal)
    throw DecodeError("CausalLayer: unexpected tag");
  Held held;
  held.sender = sender;
  held.vc = VectorClock::decode(dec);
  held.payload = dec.get_bytes();
  if (held.vc.size() != endpoint_.view().size()) {
    // A message stamped in a different view slipped through the flush of a
    // concurrent membership; deliver it unordered rather than drop it.
    deliver(held);
    return;
  }
  held_.push_back(std::move(held));
  drain_ready();
}

void CausalLayer::drain_ready() {
  const gms::View& view = endpoint_.view();
  if (delivered_.size() != view.size()) delivered_ = VectorClock(view.size());
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < held_.size(); ++i) {
      const Held& h = held_[i];
      if (!view.contains(h.sender)) continue;
      const std::size_t rank = view.rank_of(h.sender);
      if (h.vc.deliverable_at(rank, delivered_)) {
        delivered_.set(rank, h.vc.at(rank));
        deliver(h);
        held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
        break;
      }
    }
  }
  stats_.reordered += held_.size();
}

void CausalLayer::deliver(const Held& held) {
  ++stats_.delivered;
  up_.on_deliver(held.sender, held.payload);
}

void CausalLayer::on_view(const gms::View& view, const vsync::InstallInfo& info) {
  // Drain everything still held, deterministically: Agreement says every
  // survivor holds the same set, so sorting by (vc-total, sender, clock)
  // yields the same order everywhere. Dependencies that never arrived were
  // delivered nowhere, so skipping them cannot split histories.
  std::sort(held_.begin(), held_.end(), [](const Held& a, const Held& b) {
    if (a.vc.total() != b.vc.total()) return a.vc.total() < b.vc.total();
    if (a.sender != b.sender) return a.sender < b.sender;
    return a.vc.str() < b.vc.str();
  });
  stats_.drained_at_view += held_.size();
  if (auto* bus = endpoint_.trace(); bus != nullptr && bus->enabled()) {
    if (!held_.empty()) {
      // The endpoint has already installed `view`; the drain is the first
      // thing that happens in it.
      bus->record({endpoint_.now(), endpoint_.id(), obs::EventKind::OrderDrain,
                   view.id, {}, 0, held_.size()});
    }
  }
  for (const Held& h : held_) deliver(h);
  held_.clear();
  delivered_ = VectorClock(view.size());
  up_.on_view(view, info);
}

void CausalLayer::on_block() { up_.on_block(); }

Bytes CausalLayer::flush_context() { return up_.flush_context(); }

// --------------------------------------------------------------- Total ---

TotalLayer::TotalLayer(vsync::Endpoint& endpoint, OrderDelegate& up)
    : endpoint_(endpoint), up_(up) {
  endpoint_.set_delegate(this);
}

bool TotalLayer::is_sequencer() const {
  return endpoint_.view().primary() == endpoint_.id();
}

void TotalLayer::multicast(Bytes payload) {
  ++stats_.sent;
  const std::uint64_t seq = ++lseq_;
  Encoder enc;
  enc.reserve(payload.size() + 32);
  if (is_sequencer()) {
    // The sequencer stamps its own sends directly.
    enc.put_u8(static_cast<std::uint8_t>(Tag::Stamped));
    enc.put_process(endpoint_.id());
    enc.put_varint(seq);
    enc.put_varint(++gseq_out_);
    enc.put_bytes(payload);
  } else {
    enc.put_u8(static_cast<std::uint8_t>(Tag::Forward));
    enc.put_varint(seq);
    enc.put_bytes(payload);
  }
  stats_.overhead_bytes += enc.size() - payload.size();
  endpoint_.multicast(std::move(enc).take());
}

void TotalLayer::on_deliver(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  const Tag tag = static_cast<Tag>(dec.get_u8());
  if (tag == Tag::Forward) {
    const std::uint64_t lseq = dec.get_varint();
    Bytes body = dec.get_bytes();
    const MsgKey key{sender, lseq};
    if (delivered_keys_.contains(key)) return;  // stamped copy came first
    unordered_.emplace(key, std::move(body));
    // Sequencer stamps it (unless frozen — then the view-change drain will
    // deliver it deterministically).
    if (is_sequencer() && !endpoint_.blocked()) {
      const auto it = unordered_.find(key);
      Encoder enc;
      enc.reserve(it->second.size() + 32);
      enc.put_u8(static_cast<std::uint8_t>(Tag::Stamped));
      enc.put_process(sender);
      enc.put_varint(lseq);
      enc.put_varint(++gseq_out_);
      enc.put_bytes(it->second);
      stats_.overhead_bytes += enc.size() - it->second.size();
      endpoint_.multicast(std::move(enc).take());
    }
    return;
  }
  if (tag != Tag::Stamped) throw DecodeError("TotalLayer: unexpected tag");
  const ProcessId origin = dec.get_process();
  const std::uint64_t lseq = dec.get_varint();
  dec.get_varint();  // gseq: FIFO from the sequencer already orders these
  Bytes body = dec.get_bytes();
  const MsgKey key{origin, lseq};
  if (delivered_keys_.contains(key)) return;  // duplicate stamp
  delivered_keys_.insert(key);
  unordered_.erase(key);
  deliver(origin, body);
}

void TotalLayer::deliver(ProcessId origin, const Bytes& payload) {
  ++stats_.delivered;
  up_.on_deliver(origin, payload);
}

void TotalLayer::on_view(const gms::View& view, const vsync::InstallInfo& info) {
  // Forwards that never got stamped: every survivor holds the same set
  // (Agreement), delivered here in deterministic (origin, lseq) order.
  stats_.drained_at_view += unordered_.size();
  if (auto* bus = endpoint_.trace(); bus != nullptr && bus->enabled()) {
    if (!unordered_.empty()) {
      bus->record({endpoint_.now(), endpoint_.id(), obs::EventKind::OrderDrain,
                   view.id, {}, 0, unordered_.size()});
    }
  }
  for (const auto& [key, body] : unordered_) deliver(key.first, body);
  unordered_.clear();
  delivered_keys_.clear();
  lseq_ = 0;
  gseq_out_ = 0;
  up_.on_view(view, info);
}

void TotalLayer::on_block() { up_.on_block(); }

Bytes TotalLayer::flush_context() { return up_.flush_context(); }

}  // namespace evs::order
