// Minimal leveled logger.
//
// Protocol layers log through this so that debugging a failing randomized
// schedule is a matter of flipping the level; the default (Warn) keeps
// test and bench output clean. The initial level can be set without a
// rebuild via the EVS_LOG_LEVEL environment variable: one of trace, debug,
// info, warn, error, off.
#pragma once

#include <sstream>
#include <string>

namespace evs::log {

enum class Level { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are discarded cheaply.
void set_level(Level level);
Level level();

/// Emits one line to stderr; used via the EVS_LOG macro.
void write(Level level, const std::string& message);

}  // namespace evs::log

#define EVS_LOG(lvl, expr)                                    \
  do {                                                        \
    if (static_cast<int>(lvl) >=                              \
        static_cast<int>(::evs::log::level())) {              \
      std::ostringstream evs_log_os_;                         \
      evs_log_os_ << expr;                                    \
      ::evs::log::write((lvl), evs_log_os_.str());            \
    }                                                         \
  } while (0)

#define EVS_TRACE(expr) EVS_LOG(::evs::log::Level::Trace, expr)
#define EVS_DEBUG(expr) EVS_LOG(::evs::log::Level::Debug, expr)
#define EVS_INFO(expr) EVS_LOG(::evs::log::Level::Info, expr)
#define EVS_WARN(expr) EVS_LOG(::evs::log::Level::Warn, expr)
#define EVS_ERROR(expr) EVS_LOG(::evs::log::Level::Error, expr)
