// Internal invariant checking.
//
// EVS_CHECK is used for programmer errors and protocol invariants whose
// violation means the process state is corrupt; it throws
// evs::InvariantViolation so tests can assert on invariant failures
// without killing the test binary.
#pragma once

#include <stdexcept>
#include <string>

namespace evs {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace evs

#define EVS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::evs::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define EVS_CHECK_MSG(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) ::evs::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
