#include "common/ids.hpp"

#include <ostream>
#include <sstream>

namespace evs {

std::string to_string(SiteId id) {
  return "s" + std::to_string(id.value);
}

std::string to_string(ProcessId id) {
  return "p" + std::to_string(id.site.value) + "." +
         std::to_string(id.incarnation);
}

std::string to_string(ViewId id) {
  return "v" + std::to_string(id.epoch) + "@" + to_string(id.coordinator);
}

std::string to_string(SubviewId id) {
  return "sv(" + to_string(id.origin) + "," + std::to_string(id.counter) + ")";
}

std::string to_string(SvSetId id) {
  return "ss(" + to_string(id.origin) + "," + std::to_string(id.counter) + ")";
}

std::ostream& operator<<(std::ostream& os, SiteId id) { return os << to_string(id); }
std::ostream& operator<<(std::ostream& os, ProcessId id) { return os << to_string(id); }
std::ostream& operator<<(std::ostream& os, ViewId id) { return os << to_string(id); }
std::ostream& operator<<(std::ostream& os, SubviewId id) { return os << to_string(id); }
std::ostream& operator<<(std::ostream& os, SvSetId id) { return os << to_string(id); }

}  // namespace evs
