// Raw byte-buffer type used for all wire payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace evs {

using Bytes = std::vector<std::uint8_t>;

/// Ref-counted immutable payload: one encoded buffer shared by every
/// scheduled delivery of a fan-out, instead of one heap copy per
/// recipient. Immutability is structural (shared_ptr<const Bytes>), so a
/// handler can never mutate bytes another in-flight delivery will read.
class SharedBytes {
 public:
  SharedBytes() = default;
  explicit SharedBytes(Bytes bytes)
      : data_(std::make_shared<const Bytes>(std::move(bytes))) {}

  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// Number of owners of the underlying buffer (0 for a default-constructed
  /// value); exposed so tests can assert sharing rather than guess.
  long use_count() const { return data_.use_count(); }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes empty;
    return empty;
  }

  std::shared_ptr<const Bytes> data_;
};

/// Builds a byte buffer from a string literal / std::string (test helper).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (test helper; no validation).
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace evs
