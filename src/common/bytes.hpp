// Raw byte-buffer type used for all wire payloads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace evs {

using Bytes = std::vector<std::uint8_t>;

/// Builds a byte buffer from a string literal / std::string (test helper).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a byte buffer as text (test helper; no validation).
inline std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace evs
