#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace evs::log {

namespace {

std::atomic<Level> g_level{Level::Warn};

const char* level_name(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace evs::log
