#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace evs::log {

namespace {

// Initial threshold comes from EVS_LOG_LEVEL when set (one of: trace,
// debug, info, warn, error, off — case-sensitive), so a failing run can be
// re-executed verbosely without a rebuild. Unset or unknown values keep
// the quiet default.
Level initial_level() {
  const char* env = std::getenv("EVS_LOG_LEVEL");
  if (env == nullptr) return Level::Warn;
  const std::string_view v{env};
  if (v == "trace") return Level::Trace;
  if (v == "debug") return Level::Debug;
  if (v == "info") return Level::Info;
  if (v == "warn") return Level::Warn;
  if (v == "error") return Level::Error;
  if (v == "off") return Level::Off;
  std::fprintf(stderr, "[WARN] unknown EVS_LOG_LEVEL '%s' ignored\n", env);
  return Level::Warn;
}

std::atomic<Level> g_level{initial_level()};

const char* level_name(Level level) {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace evs::log
