// Strong identifier types shared by every layer.
//
// The paper models process recovery by assigning the recovered process a
// *new identifier* (Section 2). We realise that with a two-part id:
// a SiteId names the stable location (which owns permanent storage), and
// a ProcessId is a (site, incarnation) pair — each recovery bumps the
// incarnation, so a recovered process is a brand-new group member while
// still finding its permanent local state at the site.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace evs {

/// Names one group instance inside a multi-group process. Plain integer
/// (not a strong type): it is a routing label minted by configuration,
/// never computed with, and it crosses the wire as a raw u32. Group 0 is
/// the default group of single-group runs.
using GroupId = std::uint32_t;
inline constexpr GroupId kDefaultGroup = 0;

/// Stable location of a process; owns the site's StableStore.
struct SiteId {
  std::uint32_t value = 0;

  auto operator<=>(const SiteId&) const = default;
};

/// One incarnation of a process at a site. A fresh incarnation after a
/// crash is a different ProcessId, per the paper's recovery model.
struct ProcessId {
  SiteId site;
  std::uint32_t incarnation = 0;

  auto operator<=>(const ProcessId&) const = default;
};

/// Identifies an installed view. Epochs grow across view changes; the
/// coordinator id breaks ties between views formed concurrently in
/// disjoint partitions.
struct ViewId {
  std::uint64_t epoch = 0;
  ProcessId coordinator;

  auto operator<=>(const ViewId&) const = default;
};

/// Identifies a subview (Section 6.1). A fresh member joins in a singleton
/// subview identified by (member, 0); a SubviewMerge creates a new subview
/// whose id is minted by the view coordinator from its monotonic counter,
/// so ids are unique system-wide (ProcessId includes the incarnation).
struct SubviewId {
  ProcessId origin;
  std::uint64_t counter = 0;

  auto operator<=>(const SubviewId&) const = default;
};

/// Identifies an sv-set (Section 6.1); same minting scheme as SubviewId.
struct SvSetId {
  ProcessId origin;
  std::uint64_t counter = 0;

  auto operator<=>(const SvSetId&) const = default;
};

std::string to_string(SiteId id);
std::string to_string(ProcessId id);
std::string to_string(ViewId id);
std::string to_string(SubviewId id);
std::string to_string(SvSetId id);

std::ostream& operator<<(std::ostream& os, SiteId id);
std::ostream& operator<<(std::ostream& os, ProcessId id);
std::ostream& operator<<(std::ostream& os, ViewId id);
std::ostream& operator<<(std::ostream& os, SubviewId id);
std::ostream& operator<<(std::ostream& os, SvSetId id);

}  // namespace evs

namespace std {

template <>
struct hash<evs::SiteId> {
  size_t operator()(evs::SiteId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct hash<evs::ProcessId> {
  size_t operator()(evs::ProcessId id) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{id.site.value} << 32) | id.incarnation);
  }
};

template <>
struct hash<evs::ViewId> {
  size_t operator()(evs::ViewId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.epoch * 0x9e3779b97f4a7c15ULL) ^
           std::hash<evs::ProcessId>{}(id.coordinator);
  }
};

template <>
struct hash<evs::SubviewId> {
  size_t operator()(evs::SubviewId id) const noexcept {
    return std::hash<evs::ProcessId>{}(id.origin) ^
           std::hash<std::uint64_t>{}(id.counter * 0x9e3779b97f4a7c15ULL);
  }
};

template <>
struct hash<evs::SvSetId> {
  size_t operator()(evs::SvSetId id) const noexcept {
    return std::hash<evs::ProcessId>{}(id.origin) ^
           std::hash<std::uint64_t>{}(id.counter * 0xbf58476d1ce4e5b9ULL);
  }
};

}  // namespace std
