#include "common/check.hpp"

#include <sstream>

namespace evs {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace evs
