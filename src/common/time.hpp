// Simulated-time primitives.
//
// All protocol code in this repository runs on a discrete-event simulator
// (see sim/scheduler.hpp); simulated time is an integral count of
// microseconds since the start of the run. Using a distinct strong-ish
// alias (rather than std::chrono) keeps the simulator honest: nothing in
// protocol code can accidentally consult the wall clock.
#pragma once

#include <cstdint>

namespace evs {

/// Microseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated microseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000;
constexpr SimDuration kSecond = 1000 * 1000;

}  // namespace evs
