// Enriched-view structures: subviews and subview-sets (Section 6.1).
//
// Within a view, every process belongs to exactly one subview and every
// subview to exactly one sv-set. Structures shrink asynchronously when
// members fail and grow only by application-requested merges (EvOps).
// Across a view change, survivors that shared a subview (sv-set) remain
// together (Property 6.3); the deterministic merge_structures() function
// here is what every member runs at install time to agree on the new
// structure without any extra communication.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "common/ids.hpp"
#include "gms/view.hpp"

namespace evs::core {

struct Subview {
  SubviewId id;
  std::vector<ProcessId> members;  // sorted

  bool operator==(const Subview&) const = default;
  void encode(Encoder& enc) const;
  static Subview decode(Decoder& dec);
};

struct SvSet {
  SvSetId id;
  std::vector<SubviewId> subviews;  // sorted

  bool operator==(const SvSet&) const = default;
  void encode(Encoder& enc) const;
  static SvSet decode(Decoder& dec);
};

/// One application-requested e-view change (Section 6.1's SV-SetMerge and
/// SubviewMerge calls), with the result ids minted by the sequencer so
/// every member creates identical structure.
struct EvOp {
  enum class Kind : std::uint8_t { SvSetMerge = 1, SubviewMerge = 2 };

  Kind kind = Kind::SvSetMerge;
  std::vector<SvSetId> svsets;      // inputs for SvSetMerge
  std::vector<SubviewId> subviews;  // inputs for SubviewMerge
  SvSetId new_svset;                // minted id (SvSetMerge)
  SubviewId new_subview;            // minted id (SubviewMerge)

  bool operator==(const EvOp&) const = default;
  void encode(Encoder& enc) const;
  static EvOp decode(Decoder& dec);
};

class EViewStructure {
 public:
  EViewStructure() = default;

  /// The structure of a freshly joined process: one singleton subview in
  /// one singleton sv-set, both identified by the process itself.
  static EViewStructure singleton(ProcessId p);

  /// Builds a structure from parts (sorted internally). Used by the
  /// deterministic structure merge at view installation.
  static EViewStructure from_parts(std::vector<Subview> subviews,
                                   std::vector<SvSet> svsets);

  const std::vector<Subview>& subviews() const { return subviews_; }
  const std::vector<SvSet>& svsets() const { return svsets_; }

  const Subview* find_subview(SubviewId id) const;
  const SvSet* find_svset(SvSetId id) const;

  /// The subview containing `p`; nullopt if `p` is not in the structure.
  std::optional<SubviewId> subview_of(ProcessId p) const;

  /// The sv-set containing `sv`; nullopt if unknown.
  std::optional<SvSetId> svset_of(SubviewId sv) const;

  std::vector<ProcessId> all_members() const;

  /// Applies a merge op. Returns false (leaving the structure unchanged)
  /// when the op is invalid — unknown ids, or a SubviewMerge whose inputs
  /// are not all in the same sv-set (the paper: "the call has no effect").
  bool apply(const EvOp& op);

  /// Removes members not in `members`; drops empty subviews and sv-sets.
  void restrict_to(const std::vector<ProcessId>& members);

  /// Adds a fresh singleton subview + sv-set for `p`.
  void add_singleton(ProcessId p);

  /// Invariants from Section 6.1: subviews partition the member set,
  /// sv-sets partition the subviews, all ids unique. Throws on violation.
  void validate(const std::vector<ProcessId>& view_members) const;

  bool operator==(const EViewStructure&) const = default;

  void encode(Encoder& enc) const;
  static EViewStructure decode(Decoder& dec);

  std::string str() const;

 private:
  void sort_all();

  std::vector<Subview> subviews_;  // sorted by id
  std::vector<SvSet> svsets_;      // sorted by id
};

/// An enriched view: the view plus its structure and the count of e-view
/// changes applied within it.
struct EView {
  gms::View view;
  std::uint64_t ev_seq = 0;
  EViewStructure structure;

  /// True when the structure has collapsed to one subview containing the
  /// whole view — the degenerate case equivalent to a traditional view.
  bool degenerate() const;
};

/// One member's flush context: the structure it had when it froze, and
/// how many e-view changes it had applied in its prior view.
struct StructureContext {
  EViewStructure structure;
  std::uint64_t applied_ev_seq = 0;

  Bytes encode() const;
  static std::optional<StructureContext> decode(const Bytes& bytes);
};

struct MemberStructureInfo {
  ProcessId member;
  ViewId prior_view;
  StructureContext context;
};

/// Deterministically computes the structure of a new view from every
/// member's flush context plus the e-view ops that were still in flight
/// per prior view (recovered from the flush unions). All members run this
/// with identical inputs and obtain identical structures — the heart of
/// Property 6.3.
///
/// Subviews "do not span across view boundaries" (Section 6.1): what is
/// preserved is the *grouping* of survivors, not identity. Ids are
/// re-minted per view as (min member, view epoch) — crucial, because the
/// same pre-partition subview id legitimately survives into both sides of
/// a partition, and keeping it would alias the two clusters back into one
/// subview when the partition heals.
EViewStructure merge_structures(
    const ViewId& new_view, const std::vector<ProcessId>& new_members,
    const std::vector<MemberStructureInfo>& infos,
    const std::map<ViewId, std::vector<std::pair<std::uint64_t, EvOp>>>&
        pending_ops);

/// Parses the textual sv-set id form produced by to_string(SvSetId) —
/// "ss(p<site>.<incarnation>,<counter>)" — the ids the admin plane's
/// /status endpoint reports and its /merge command accepts back.
std::optional<SvSetId> parse_svset_id(const std::string& text);

/// Parses a comma-separated list of sv-set ids (the comma inside each
/// "ss(...)" is unambiguous because ids are matched whole). Returns
/// nullopt when any element is malformed or the list is empty.
std::optional<std::vector<SvSetId>> parse_svset_ids(const std::string& text);

}  // namespace evs::core
