#include "evs/endpoint.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace evs::core {

namespace {

// Inner framing on top of the view-synchronous payload.
enum class Tag : std::uint8_t {
  Fwd = 1,       // unstamped app payload: [lseq][payload]
  Stamped = 2,   // sequencer's copy:      [origin][lseq][payload]
  EvChange = 3,  // e-view change:         [ev_seq][EvOp]
  MergeReq = 4,  // merge request:         [kind][ids...]
};

}  // namespace

EvsEndpoint::EvsEndpoint(vsync::EndpointConfig config)
    : vsync::Endpoint(std::move(config)) {
  set_delegate(this);
}

// ------------------------------------------------------------- sending ---

void EvsEndpoint::app_multicast(Bytes payload) {
  if (blocked()) {
    // Do not ride the vsync send queue: frames must be built in the view
    // they will travel in (the sequencer changes across views).
    app_queue_.push_back(std::move(payload));
    return;
  }
  send_app(std::move(payload));
}

void EvsEndpoint::send_app(Bytes payload) {
  ++evs_stats_.app_sent;
  const std::uint64_t seq = ++lseq_;
  Encoder enc;
  enc.reserve(payload.size() + 24);
  if (is_sequencer()) {
    enc.put_u8(static_cast<std::uint8_t>(Tag::Stamped));
    enc.put_process(id());
    enc.put_varint(seq);
    enc.put_bytes(payload);
  } else {
    enc.put_u8(static_cast<std::uint8_t>(Tag::Fwd));
    enc.put_varint(seq);
    enc.put_bytes(payload);
  }
  multicast(std::move(enc).take());
}

void EvsEndpoint::request_sv_set_merge(std::vector<SvSetId> svsets) {
  ++evs_stats_.merges_requested;
  MergeRequest request{EvOp::Kind::SvSetMerge, std::move(svsets), {}};
  if (blocked()) {
    merge_queue_.push_back(std::move(request));
    return;
  }
  if (is_sequencer()) {
    sequence_merge(request);
    return;
  }
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Tag::MergeReq));
  enc.put_u8(static_cast<std::uint8_t>(request.kind));
  enc.put_vector(request.svsets,
                 [](Encoder& e, SvSetId s) { e.put_svset_id(s); });
  enc.put_vector(request.subviews,
                 [](Encoder& e, SubviewId s) { e.put_subview_id(s); });
  multicast(std::move(enc).take());
}

void EvsEndpoint::request_subview_merge(std::vector<SubviewId> subviews) {
  ++evs_stats_.merges_requested;
  MergeRequest request{EvOp::Kind::SubviewMerge, {}, std::move(subviews)};
  if (blocked()) {
    merge_queue_.push_back(std::move(request));
    return;
  }
  if (is_sequencer()) {
    sequence_merge(request);
    return;
  }
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Tag::MergeReq));
  enc.put_u8(static_cast<std::uint8_t>(request.kind));
  enc.put_vector(request.svsets,
                 [](Encoder& e, SvSetId s) { e.put_svset_id(s); });
  enc.put_vector(request.subviews,
                 [](Encoder& e, SubviewId s) { e.put_subview_id(s); });
  multicast(std::move(enc).take());
}

void EvsEndpoint::request_merge_all() {
  const EViewStructure& s = eview_.structure;
  if (s.svsets().size() > 1) {
    std::vector<SvSetId> ids;
    ids.reserve(s.svsets().size());
    for (const SvSet& ss : s.svsets()) ids.push_back(ss.id);
    request_sv_set_merge(std::move(ids));
    return;
  }
  if (s.subviews().size() > 1) {
    std::vector<SubviewId> ids;
    ids.reserve(s.subviews().size());
    for (const Subview& sv : s.subviews()) ids.push_back(sv.id);
    request_subview_merge(std::move(ids));
  }
}

// ---------------------------------------------------------- sequencing ---

void EvsEndpoint::sequence_merge(const MergeRequest& request) {
  EVS_CHECK(is_sequencer());
  // Validate against the current structure: applying to a copy tells us
  // whether the op is still meaningful (ids may be stale after later
  // merges or view changes).
  EvOp op;
  op.kind = request.kind;
  op.svsets = request.svsets;
  op.subviews = request.subviews;
  // Minted ids live in a separate namespace (high bit offset) so they can
  // never collide with the per-view (min member, epoch) ids that
  // merge_structures assigns at install time.
  ++mint_counter_;
  constexpr std::uint64_t kMintBase = std::uint64_t{1} << 32;
  op.new_svset = SvSetId{id(), kMintBase + mint_counter_};
  op.new_subview = SubviewId{id(), kMintBase + mint_counter_};
  EViewStructure probe = eview_.structure;
  if (!probe.apply(op)) {
    ++evs_stats_.merges_rejected;
    return;
  }
  const std::uint64_t seq = eview_.ev_seq + 1;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    const bool svset = request.kind == EvOp::Kind::SvSetMerge;
    bus->record({now(), id(),
                 svset ? obs::EventKind::SvSetMerge : obs::EventKind::SubviewMerge,
                 view().id, id(), seq,
                 svset ? request.svsets.size() : request.subviews.size()});
  }
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Tag::EvChange));
  enc.put_varint(seq);
  op.encode(enc);
  // Self-delivery applies the change synchronously, so eview_.ev_seq has
  // advanced by the time this call returns.
  multicast(std::move(enc).take());
}

// ------------------------------------------------------------ delivery ---

void EvsEndpoint::on_deliver(ProcessId sender, const Bytes& payload) {
  try {
    dispatch_deliver(sender, payload);
  } catch (const DecodeError& err) {
    throw DecodeError(std::string("evs-frame: ") + err.what());
  }
}

void EvsEndpoint::dispatch_deliver(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  switch (static_cast<Tag>(dec.get_u8())) {
    case Tag::Fwd:
      handle_fwd(sender, dec);
      break;
    case Tag::Stamped:
      handle_stamped(dec);
      break;
    case Tag::EvChange:
      handle_ev_change(dec);
      break;
    case Tag::MergeReq:
      handle_merge_req(dec);
      break;
    default:
      throw DecodeError("EvsEndpoint: unknown inner tag");
  }
}

void EvsEndpoint::handle_fwd(ProcessId sender, Decoder& dec) {
  const std::uint64_t lseq = dec.get_varint();
  Bytes body = dec.get_bytes();
  const MsgKey key{sender, lseq};
  if (delivered_keys_.contains(key)) return;  // stamped copy already seen
  unordered_.emplace(key, std::move(body));
  if (is_sequencer() && !blocked()) {
    const auto it = unordered_.find(key);
    ++evs_stats_.stamped;
    Encoder enc;
    enc.reserve(it->second.size() + 24);
    enc.put_u8(static_cast<std::uint8_t>(Tag::Stamped));
    enc.put_process(sender);
    enc.put_varint(lseq);
    enc.put_bytes(it->second);
    multicast(std::move(enc).take());
  }
}

void EvsEndpoint::handle_stamped(Decoder& dec) {
  const ProcessId origin = dec.get_process();
  const std::uint64_t lseq = dec.get_varint();
  Bytes body = dec.get_bytes();
  const MsgKey key{origin, lseq};
  if (!delivered_keys_.insert(key).second) return;  // duplicate
  unordered_.erase(key);
  deliver_app(origin, body);
}

void EvsEndpoint::handle_ev_change(Decoder& dec) {
  const std::uint64_t seq = dec.get_varint();
  const EvOp op = EvOp::decode(dec);
  if (seq <= eview_.ev_seq) return;  // already applied (flush duplicate)
  // FIFO from the single sequencer keeps these in order. A *gap* can
  // still appear when the sequencer dies and one of its changes was lost
  // to every survivor: Agreement guarantees all survivors then see the
  // same gapped sequence, and an op whose inputs were created by the
  // missing change simply no-ops everywhere — applying past the gap is
  // deterministic and safe.
  if (seq != eview_.ev_seq + 1) {
    EVS_DEBUG(to_string(id()) << " e-view change gap " << eview_.ev_seq
                              << " -> " << seq);
  }
  eview_.structure.apply(op);  // a no-op result is a no-op everywhere
  eview_.ev_seq = seq;
  ++evs_stats_.ev_changes_applied;
  eview_.structure.validate(eview_.view.members);
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::EviewChange, eview_.view.id, {},
                 seq, eview_.structure.subviews().size(),
                 eview_.structure.svsets().size()});
  }
  emit_eview();
}

void EvsEndpoint::handle_merge_req(Decoder& dec) {
  MergeRequest request;
  const std::uint8_t kind = dec.get_u8();
  if (kind != 1 && kind != 2) throw DecodeError("bad merge-request kind");
  request.kind = static_cast<EvOp::Kind>(kind);
  request.svsets =
      dec.get_vector<SvSetId>([](Decoder& d) { return d.get_svset_id(); });
  request.subviews =
      dec.get_vector<SubviewId>([](Decoder& d) { return d.get_subview_id(); });
  if (!is_sequencer()) return;  // only the sequencer acts on requests
  if (blocked()) {
    // A view change is in flight; the requester's queue or a retry by the
    // application covers this — dropping keeps flush determinism simple.
    ++evs_stats_.merge_reqs_dropped;
    return;
  }
  sequence_merge(request);
}

void EvsEndpoint::deliver_app(ProcessId origin, const Bytes& payload) {
  ++evs_stats_.app_delivered;
  if (evs_delegate_ != nullptr) evs_delegate_->on_app_deliver(origin, payload);
}

void EvsEndpoint::emit_eview() {
  ++evs_stats_.eviews_delivered;
  if (evs_delegate_ != nullptr) evs_delegate_->on_eview(eview_);
}

// --------------------------------------------------------- view change ---

Bytes EvsEndpoint::flush_context() {
  StructureContext ctx{eview_.structure, eview_.ev_seq};
  Bytes bytes = ctx.encode();
  evs_stats_.context_bytes += bytes.size();
  return bytes;
}

void EvsEndpoint::on_block() {
  if (evs_delegate_ != nullptr) evs_delegate_->on_app_block();
}

void EvsEndpoint::on_view(const gms::View& view, const vsync::InstallInfo& info) {
  // 1. Drain app messages that never got stamped — deterministic order,
  //    identical set at every survivor (Agreement). Still the old e-view
  //    from the application's perspective.
  evs_stats_.drained_at_view += unordered_.size();
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    if (!unordered_.empty()) {
      // eview_.view is still the dying view here.
      bus->record({now(), id(), obs::EventKind::OrderDrain, eview_.view.id, {},
                   0, unordered_.size()});
    }
  }
  for (const auto& [key, body] : unordered_) {
    try {
      deliver_app(key.first, body);
    } catch (const DecodeError& err) {
      throw DecodeError(std::string("evs-drain: ") + err.what());
    }
  }
  unordered_.clear();
  delivered_keys_.clear();
  lseq_ = 0;

  // 2. Decode every member's frozen structure context.
  std::vector<MemberStructureInfo> infos;
  for (const gms::MemberContext& mc : info.contexts) {
    auto ctx = StructureContext::decode(mc.context);
    if (!ctx) continue;  // no/garbled context -> member becomes a singleton
    infos.push_back(MemberStructureInfo{mc.member, mc.prior_view, *std::move(ctx)});
  }

  // 3. Recover e-view ops that were still in the flush unions, per prior
  //    view, so every cluster's structure is rolled fully forward.
  std::map<ViewId, std::vector<std::pair<std::uint64_t, EvOp>>> pending_ops;
  for (const auto& [view_id, messages] : info.unions) {
    for (const gms::FlushedMessage& fm : messages) {
      try {
        Decoder dec(fm.payload);
        if (static_cast<Tag>(dec.get_u8()) != Tag::EvChange) continue;
        const std::uint64_t seq = dec.get_varint();
        pending_ops[view_id].emplace_back(seq, EvOp::decode(dec));
      } catch (const DecodeError&) {
        // Not an e-view change (or not even an EVS frame): ignore.
      }
    }
  }

  // 4. Deterministic structure merge: identical at every member.
  eview_.view = view;
  eview_.ev_seq = 0;
  eview_.structure = merge_structures(view.id, view.members, infos, pending_ops);
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    // Baseline for the new view: ev_seq 0 with the merged structure.
    bus->record({now(), id(), obs::EventKind::EviewChange, view.id, {}, 0,
                 eview_.structure.subviews().size(),
                 eview_.structure.svsets().size()});
  }
  emit_eview();

  // 5. Re-issue work that was queued while frozen, in the new view.
  while (!app_queue_.empty() && !blocked()) {
    Bytes payload = std::move(app_queue_.front());
    app_queue_.pop_front();
    send_app(std::move(payload));
  }
  while (!merge_queue_.empty() && !blocked()) {
    const MergeRequest request = std::move(merge_queue_.front());
    merge_queue_.pop_front();
    if (request.kind == EvOp::Kind::SvSetMerge) {
      --evs_stats_.merges_requested;  // re-request counts once
      request_sv_set_merge(request.svsets);
    } else {
      --evs_stats_.merges_requested;
      request_subview_merge(request.subviews);
    }
  }
}

void EvsEndpoint::export_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  vsync::Endpoint::export_metrics(registry, prefix);
  registry.counter(prefix + ".eviews_delivered").set(evs_stats_.eviews_delivered);
  registry.counter(prefix + ".ev_changes_applied")
      .set(evs_stats_.ev_changes_applied);
  registry.counter(prefix + ".merges_requested").set(evs_stats_.merges_requested);
  registry.counter(prefix + ".merges_rejected").set(evs_stats_.merges_rejected);
  registry.counter(prefix + ".app_sent").set(evs_stats_.app_sent);
  registry.counter(prefix + ".app_delivered").set(evs_stats_.app_delivered);
  registry.counter(prefix + ".stamped").set(evs_stats_.stamped);
  registry.counter(prefix + ".drained_at_view").set(evs_stats_.drained_at_view);
  registry.counter(prefix + ".context_bytes").set(evs_stats_.context_bytes);
  registry.counter(prefix + ".merge_reqs_dropped")
      .set(evs_stats_.merge_reqs_dropped);
}

bool EvsEndpoint::admin_command(const std::string& name, const std::string& arg,
                                std::string& error) {
  if (left()) {
    error = "endpoint has left the group";
    return false;
  }
  if (name == "join") {
    reconfigure();
    return true;
  }
  if (name == "leave") {
    leave();
    return true;
  }
  if (name == "merge-all") {
    // A no-op on a degenerate structure is still an accepted command: the
    // fleet is already in the state the operator asked for.
    request_merge_all();
    return true;
  }
  if (name == "merge") {
    auto ids = parse_svset_ids(arg);
    if (!ids) {
      error = "bad sv-set id list '" + arg + "'";
      return false;
    }
    if (ids->size() < 2) {
      error = "need at least two sv-set ids to merge";
      return false;
    }
    for (const SvSetId& id : *ids) {
      if (eview_.structure.find_svset(id) == nullptr) {
        error = "unknown sv-set " + to_string(id);
        return false;
      }
    }
    request_sv_set_merge(*std::move(ids));
    return true;
  }
  error = "unknown command '" + name + "'";
  return false;
}

std::string EvsEndpoint::admin_status_json() const {
  std::ostringstream os;
  os << "{" << admin_status_fields()
     << ",\"mode\":\"" << (eview_.degenerate() ? "normal" : "split") << "\""
     << ",\"ev_seq\":" << eview_.ev_seq << ",\"subviews\":[";
  const auto& structure = eview_.structure;
  for (std::size_t i = 0; i < structure.subviews().size(); ++i) {
    const auto& sv = structure.subviews()[i];
    if (i != 0) os << ',';
    os << "{\"id\":\"" << to_string(sv.id) << "\",\"members\":[";
    for (std::size_t j = 0; j < sv.members.size(); ++j) {
      if (j != 0) os << ',';
      os << '"' << to_string(sv.members[j]) << '"';
    }
    os << "]}";
  }
  os << "],\"svsets\":[";
  for (std::size_t i = 0; i < structure.svsets().size(); ++i) {
    const auto& set = structure.svsets()[i];
    if (i != 0) os << ',';
    os << "{\"id\":\"" << to_string(set.id) << "\",\"subviews\":[";
    for (std::size_t j = 0; j < set.subviews.size(); ++j) {
      if (j != 0) os << ',';
      os << '"' << to_string(set.subviews[j]) << '"';
    }
    os << "]}";
  }
  os << "],\"app_sent\":" << evs_stats_.app_sent
     << ",\"app_delivered\":" << evs_stats_.app_delivered
     << ",\"eviews_delivered\":" << evs_stats_.eviews_delivered << "}";
  return os.str();
}

}  // namespace evs::core
