// Enriched view synchrony endpoint (Section 6) — the paper's contribution.
//
// EvsEndpoint extends the view-synchronous endpoint with subview / sv-set
// structure and the two application calls SV-SetMerge and SubviewMerge.
// The guarantees of Section 6.1 are realised as follows:
//
//   Total Order (P6.1): every e-view change is emitted by the view's
//     primary (acting as sequencer) through the view-synchronous channel;
//     FIFO from a single source totally orders them within the view.
//
//   Causal Order / consistent cuts (P6.2): *application* multicasts are
//     also routed through the sequencer (forward + stamp, exactly like
//     order::TotalLayer), so the interleaving of app messages and e-view
//     changes is the sequencer's single FIFO stream — identical at every
//     member, hence every e-view change falls on a consistent cut.
//
//   Structure (P6.3): each member's flush context carries its frozen
//     structure + applied e-view count; at install every member runs the
//     same deterministic merge_structures() over the same contexts and
//     flush unions, so survivors that shared a subview (sv-set) remain
//     together and newcomers appear as singleton subviews in singleton
//     sv-sets.
//
// Growth of subviews/sv-sets happens only through the merge calls; views
// shrinking (failures) shrink the structure asynchronously — matching the
// paper's asymmetry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "evs/structure.hpp"
#include "vsync/endpoint.hpp"

namespace evs::core {

/// Upper-layer interface for enriched view synchrony.
class EvsDelegate {
 public:
  virtual ~EvsDelegate() = default;

  /// A new e-view: fired on every view change and on every applied e-view
  /// change within a view. `eview.ev_seq` distinguishes the two (0 right
  /// after a view change).
  virtual void on_eview(const EView& eview) = 0;

  /// A totally-ordered application multicast.
  /// (Named distinctly from vsync::Delegate::on_deliver so that a class
  /// inheriting both interfaces — e.g. app::GroupObjectBase, which *is*
  /// an EvsEndpoint and implements EvsDelegate — cannot accidentally
  /// override the lower layer's hook with the same signature.)
  virtual void on_app_deliver(ProcessId sender, const Bytes& payload) = 0;

  /// Sending is blocked: a view change has begun.
  virtual void on_app_block() {}
};

struct EvsStats {
  std::uint64_t eviews_delivered = 0;
  std::uint64_t ev_changes_applied = 0;
  std::uint64_t merges_requested = 0;
  std::uint64_t merges_rejected = 0;  // invalid at sequencing time
  std::uint64_t app_sent = 0;
  std::uint64_t app_delivered = 0;
  std::uint64_t stamped = 0;           // sequencer work
  std::uint64_t drained_at_view = 0;   // unstamped app msgs delivered at install
  std::uint64_t context_bytes = 0;     // structure bytes shipped in flushes
  std::uint64_t merge_reqs_dropped = 0;
};

class EvsEndpoint : public vsync::Endpoint, private vsync::Delegate {
 public:
  explicit EvsEndpoint(vsync::EndpointConfig config);

  void set_evs_delegate(EvsDelegate* delegate) { evs_delegate_ = delegate; }

  /// Totally-ordered application multicast (queued across view changes).
  void app_multicast(Bytes payload);

  /// Requests the merge of the given sv-sets (Section 6.1 SV-SetMerge).
  /// Asynchronous: the result arrives as a new e-view; invalid requests
  /// (stale ids) are dropped by the sequencer.
  void request_sv_set_merge(std::vector<SvSetId> svsets);

  /// Requests the merge of the given subviews (Section 6.1 SubviewMerge);
  /// they must all belong to one sv-set or the change has no effect.
  void request_subview_merge(std::vector<SubviewId> subviews);

  /// Convenience: collapse the whole view into a single sv-set (if split),
  /// otherwise into a single subview. Applications call this after a
  /// successful reconciliation; once the e-view is degenerate the group is
  /// back to the traditional-view special case.
  void request_merge_all();

  const EView& eview() const { return eview_; }
  const EvsStats& evs_stats() const { return evs_stats_; }

  /// Projects vsync + detector + EVS stats into `registry` under `prefix`
  /// (hides, and calls, the base-class export).
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

  /// Extends the vsync status with the enriched-view mode ("normal" once
  /// the structure is degenerate, "split" otherwise), ev_seq, the full
  /// subview / sv-set structure and the EVS counters.
  std::string admin_status_json() const override;

  /// Admin-plane control surface (runtime::Node): "join" nudges an
  /// immediate reconfiguration, "leave" announces departure and halts,
  /// "merge-all" collapses the structure, "merge" requests an SV-SetMerge
  /// of the sv-set ids listed in `arg` (the textual ids /status reports).
  bool admin_command(const std::string& name, const std::string& arg,
                     std::string& error) override;

 private:
  struct MergeRequest {
    EvOp::Kind kind;
    std::vector<SvSetId> svsets;
    std::vector<SubviewId> subviews;
  };

  // vsync::Delegate
  void on_view(const gms::View& view, const vsync::InstallInfo& info) override;
  void on_deliver(ProcessId sender, const Bytes& payload) override;
  Bytes flush_context() override;
  void on_block() override;

  bool is_sequencer() const { return view().primary() == id(); }
  void dispatch_deliver(ProcessId sender, const Bytes& payload);
  void send_app(Bytes payload);
  void handle_fwd(ProcessId sender, Decoder& dec);
  void handle_stamped(Decoder& dec);
  void handle_ev_change(Decoder& dec);
  void handle_merge_req(Decoder& dec);
  void sequence_merge(const MergeRequest& request);
  void deliver_app(ProcessId origin, const Bytes& payload);
  void emit_eview();

  EvsDelegate* evs_delegate_ = nullptr;
  EView eview_;
  std::uint64_t mint_counter_ = 0;  // persistent across views

  // Per-view total-order state (mirrors order::TotalLayer).
  using MsgKey = std::pair<ProcessId, std::uint64_t>;
  std::uint64_t lseq_ = 0;
  std::map<MsgKey, Bytes> unordered_;
  std::set<MsgKey> delivered_keys_;

  // Work queued while the endpoint is frozen for a view change.
  std::deque<Bytes> app_queue_;
  std::deque<MergeRequest> merge_queue_;

  EvsStats evs_stats_;
};

}  // namespace evs::core
