#include "evs/structure.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/check.hpp"

namespace evs::core {

void Subview::encode(Encoder& enc) const {
  enc.put_subview_id(id);
  enc.put_vector(members, [](Encoder& e, ProcessId p) { e.put_process(p); });
}

Subview Subview::decode(Decoder& dec) {
  Subview sv;
  sv.id = dec.get_subview_id();
  sv.members =
      dec.get_vector<ProcessId>([](Decoder& d) { return d.get_process(); });
  return sv;
}

void SvSet::encode(Encoder& enc) const {
  enc.put_svset_id(id);
  enc.put_vector(subviews, [](Encoder& e, SubviewId s) { e.put_subview_id(s); });
}

SvSet SvSet::decode(Decoder& dec) {
  SvSet ss;
  ss.id = dec.get_svset_id();
  ss.subviews =
      dec.get_vector<SubviewId>([](Decoder& d) { return d.get_subview_id(); });
  return ss;
}

void EvOp::encode(Encoder& enc) const {
  enc.put_u8(static_cast<std::uint8_t>(kind));
  enc.put_vector(svsets, [](Encoder& e, SvSetId s) { e.put_svset_id(s); });
  enc.put_vector(subviews, [](Encoder& e, SubviewId s) { e.put_subview_id(s); });
  enc.put_svset_id(new_svset);
  enc.put_subview_id(new_subview);
}

EvOp EvOp::decode(Decoder& dec) {
  EvOp op;
  const std::uint8_t k = dec.get_u8();
  if (k != 1 && k != 2) throw DecodeError("bad EvOp kind");
  op.kind = static_cast<Kind>(k);
  op.svsets = dec.get_vector<SvSetId>([](Decoder& d) { return d.get_svset_id(); });
  op.subviews =
      dec.get_vector<SubviewId>([](Decoder& d) { return d.get_subview_id(); });
  op.new_svset = dec.get_svset_id();
  op.new_subview = dec.get_subview_id();
  return op;
}

EViewStructure EViewStructure::singleton(ProcessId p) {
  EViewStructure s;
  s.add_singleton(p);
  return s;
}

EViewStructure EViewStructure::from_parts(std::vector<Subview> subviews,
                                          std::vector<SvSet> svsets) {
  EViewStructure s;
  s.subviews_ = std::move(subviews);
  s.svsets_ = std::move(svsets);
  s.sort_all();
  return s;
}

const Subview* EViewStructure::find_subview(SubviewId id) const {
  for (const Subview& sv : subviews_) {
    if (sv.id == id) return &sv;
  }
  return nullptr;
}

const SvSet* EViewStructure::find_svset(SvSetId id) const {
  for (const SvSet& ss : svsets_) {
    if (ss.id == id) return &ss;
  }
  return nullptr;
}

std::optional<SubviewId> EViewStructure::subview_of(ProcessId p) const {
  for (const Subview& sv : subviews_) {
    if (std::binary_search(sv.members.begin(), sv.members.end(), p))
      return sv.id;
  }
  return std::nullopt;
}

std::optional<SvSetId> EViewStructure::svset_of(SubviewId sv) const {
  for (const SvSet& ss : svsets_) {
    if (std::binary_search(ss.subviews.begin(), ss.subviews.end(), sv))
      return ss.id;
  }
  return std::nullopt;
}

std::vector<ProcessId> EViewStructure::all_members() const {
  std::vector<ProcessId> out;
  for (const Subview& sv : subviews_)
    out.insert(out.end(), sv.members.begin(), sv.members.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool EViewStructure::apply(const EvOp& op) {
  if (op.kind == EvOp::Kind::SvSetMerge) {
    if (op.svsets.size() < 2) return false;
    // All inputs must exist and be distinct.
    std::set<SvSetId> inputs(op.svsets.begin(), op.svsets.end());
    if (inputs.size() != op.svsets.size()) return false;
    std::vector<SubviewId> merged;
    for (const SvSetId id : op.svsets) {
      const SvSet* ss = find_svset(id);
      if (ss == nullptr) return false;
      merged.insert(merged.end(), ss->subviews.begin(), ss->subviews.end());
    }
    std::erase_if(svsets_, [&](const SvSet& ss) { return inputs.contains(ss.id); });
    std::sort(merged.begin(), merged.end());
    svsets_.push_back(SvSet{op.new_svset, std::move(merged)});
    sort_all();
    return true;
  }

  // SubviewMerge: all inputs must exist, be distinct, and share an sv-set.
  if (op.subviews.size() < 2) return false;
  std::set<SubviewId> inputs(op.subviews.begin(), op.subviews.end());
  if (inputs.size() != op.subviews.size()) return false;
  std::optional<SvSetId> home;
  std::vector<ProcessId> merged_members;
  for (const SubviewId id : op.subviews) {
    const Subview* sv = find_subview(id);
    if (sv == nullptr) return false;
    const auto owner = svset_of(id);
    if (!owner) return false;
    if (!home) {
      home = owner;
    } else if (*home != *owner) {
      return false;  // "the call has no effect" (Section 6.1)
    }
    merged_members.insert(merged_members.end(), sv->members.begin(),
                          sv->members.end());
  }
  std::erase_if(subviews_,
                [&](const Subview& sv) { return inputs.contains(sv.id); });
  std::sort(merged_members.begin(), merged_members.end());
  subviews_.push_back(Subview{op.new_subview, std::move(merged_members)});
  for (SvSet& ss : svsets_) {
    if (ss.id != *home) continue;
    std::erase_if(ss.subviews,
                  [&](const SubviewId id) { return inputs.contains(id); });
    ss.subviews.push_back(op.new_subview);
    std::sort(ss.subviews.begin(), ss.subviews.end());
  }
  sort_all();
  return true;
}

void EViewStructure::restrict_to(const std::vector<ProcessId>& members) {
  EVS_CHECK(std::is_sorted(members.begin(), members.end()));
  for (Subview& sv : subviews_) {
    std::erase_if(sv.members, [&](const ProcessId p) {
      return !std::binary_search(members.begin(), members.end(), p);
    });
  }
  std::set<SubviewId> dead;
  for (const Subview& sv : subviews_) {
    if (sv.members.empty()) dead.insert(sv.id);
  }
  std::erase_if(subviews_,
                [&](const Subview& sv) { return sv.members.empty(); });
  for (SvSet& ss : svsets_) {
    std::erase_if(ss.subviews, [&](const SubviewId id) { return dead.contains(id); });
  }
  std::erase_if(svsets_, [](const SvSet& ss) { return ss.subviews.empty(); });
}

void EViewStructure::add_singleton(ProcessId p) {
  EVS_CHECK_MSG(!subview_of(p).has_value(), "member already in structure");
  const SubviewId sv_id{p, 0};
  const SvSetId ss_id{p, 0};
  subviews_.push_back(Subview{sv_id, {p}});
  svsets_.push_back(SvSet{ss_id, {sv_id}});
  sort_all();
}

void EViewStructure::sort_all() {
  std::sort(subviews_.begin(), subviews_.end(),
            [](const Subview& a, const Subview& b) { return a.id < b.id; });
  std::sort(svsets_.begin(), svsets_.end(),
            [](const SvSet& a, const SvSet& b) { return a.id < b.id; });
}

void EViewStructure::validate(const std::vector<ProcessId>& view_members) const {
  // Subviews partition the member set.
  std::vector<ProcessId> seen;
  std::set<SubviewId> subview_ids;
  for (const Subview& sv : subviews_) {
    EVS_CHECK_MSG(!sv.members.empty(), "empty subview");
    EVS_CHECK_MSG(subview_ids.insert(sv.id).second, "duplicate subview id");
    EVS_CHECK(std::is_sorted(sv.members.begin(), sv.members.end()));
    seen.insert(seen.end(), sv.members.begin(), sv.members.end());
  }
  std::sort(seen.begin(), seen.end());
  EVS_CHECK_MSG(std::adjacent_find(seen.begin(), seen.end()) == seen.end(),
                "member in two subviews");
  EVS_CHECK_MSG(seen == view_members, "subviews do not cover the view");

  // Sv-sets partition the subviews.
  std::set<SvSetId> svset_ids;
  std::set<SubviewId> covered;
  for (const SvSet& ss : svsets_) {
    EVS_CHECK_MSG(!ss.subviews.empty(), "empty sv-set");
    EVS_CHECK_MSG(svset_ids.insert(ss.id).second, "duplicate sv-set id");
    for (const SubviewId id : ss.subviews) {
      EVS_CHECK_MSG(subview_ids.contains(id), "sv-set references unknown subview");
      EVS_CHECK_MSG(covered.insert(id).second, "subview in two sv-sets");
    }
  }
  EVS_CHECK_MSG(covered.size() == subview_ids.size(),
                "subview not in any sv-set");
}

void EViewStructure::encode(Encoder& enc) const {
  enc.put_vector(subviews_, [](Encoder& e, const Subview& sv) { sv.encode(e); });
  enc.put_vector(svsets_, [](Encoder& e, const SvSet& ss) { ss.encode(e); });
}

EViewStructure EViewStructure::decode(Decoder& dec) {
  EViewStructure s;
  s.subviews_ =
      dec.get_vector<Subview>([](Decoder& d) { return Subview::decode(d); });
  s.svsets_ = dec.get_vector<SvSet>([](Decoder& d) { return SvSet::decode(d); });
  return s;
}

std::string EViewStructure::str() const {
  std::ostringstream os;
  for (const SvSet& ss : svsets_) {
    os << "{";
    bool first_sv = true;
    for (const SubviewId id : ss.subviews) {
      if (!first_sv) os << " ";
      first_sv = false;
      os << "[";
      const Subview* sv = find_subview(id);
      if (sv != nullptr) {
        bool first_m = true;
        for (const ProcessId p : sv->members) {
          if (!first_m) os << ",";
          first_m = false;
          os << to_string(p);
        }
      }
      os << "]";
    }
    os << "}";
  }
  return os.str();
}

bool EView::degenerate() const {
  return structure.subviews().size() == 1 && structure.svsets().size() == 1;
}

Bytes StructureContext::encode() const {
  Encoder enc;
  structure.encode(enc);
  enc.put_varint(applied_ev_seq);
  return std::move(enc).take();
}

std::optional<StructureContext> StructureContext::decode(const Bytes& bytes) {
  if (bytes.empty()) return std::nullopt;
  try {
    Decoder dec(bytes);
    StructureContext ctx;
    ctx.structure = EViewStructure::decode(dec);
    ctx.applied_ev_seq = dec.get_varint();
    dec.expect_end();
    return ctx;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

EViewStructure merge_structures(
    const ViewId& new_view, const std::vector<ProcessId>& new_members,
    const std::vector<MemberStructureInfo>& infos,
    const std::map<ViewId, std::vector<std::pair<std::uint64_t, EvOp>>>&
        pending_ops) {
  // 1. Group contexts by prior view (clusters) and compute each cluster's
  //    final structure: the most advanced frozen structure plus any ops
  //    that were still in the flush union past that point.
  std::map<ViewId, const MemberStructureInfo*> rep_of;
  for (const MemberStructureInfo& info : infos) {
    auto& rep = rep_of[info.prior_view];
    if (rep == nullptr ||
        info.context.applied_ev_seq > rep->context.applied_ev_seq) {
      rep = &info;
    }
  }
  std::map<ViewId, EViewStructure> cluster_structure;
  for (const auto& [view_id, rep] : rep_of) {
    EViewStructure s = rep->context.structure;
    const auto ops_it = pending_ops.find(view_id);
    if (ops_it != pending_ops.end()) {
      // Ops sorted by their per-view sequence; apply the suffix the
      // representative had not yet seen.
      auto ops = ops_it->second;
      std::sort(ops.begin(), ops.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (const auto& [seq, op] : ops) {
        if (seq <= rep->context.applied_ev_seq) continue;
        s.apply(op);  // invalid ops were no-ops everywhere; ignore result
      }
    }
    cluster_structure.emplace(view_id, std::move(s));
  }

  // 2. Place every new member according to its *own* cluster's final
  //    structure; members with no usable context become singletons.
  std::map<ProcessId, const MemberStructureInfo*> info_of;
  for (const MemberStructureInfo& info : infos) info_of[info.member] = &info;

  // Group survivors by (prior view, old subview id) — the grouping key
  // must include the prior view, because the same pre-partition id can
  // live on in several concurrent clusters.
  struct NewSubview {
    std::pair<ViewId, SvSetId> svset_key;
    std::vector<ProcessId> members;
  };
  std::map<std::pair<ViewId, SubviewId>, NewSubview> assembled;
  std::vector<ProcessId> singletons;

  for (const ProcessId member : new_members) {
    const auto info_it = info_of.find(member);
    if (info_it == info_of.end()) {
      singletons.push_back(member);
      continue;
    }
    const ViewId prior = info_it->second->prior_view;
    const EViewStructure& s = cluster_structure.at(prior);
    const auto sv = s.subview_of(member);
    if (!sv) {
      singletons.push_back(member);
      continue;
    }
    const auto ss = s.svset_of(*sv);
    EVS_CHECK_MSG(ss.has_value(), "subview without sv-set in context");
    auto& slot = assembled[{prior, *sv}];
    slot.svset_key = {prior, *ss};
    slot.members.push_back(member);
  }
  for (const ProcessId p : singletons) {
    // Fresh processes: singleton groups keyed by a pseudo prior view.
    auto& slot = assembled[{ViewId{0, p}, SubviewId{p, 0}}];
    slot.svset_key = {ViewId{0, p}, SvSetId{p, 0}};
    slot.members.push_back(p);
  }

  // Mint per-view ids: (min member, new epoch). Subviews are disjoint, so
  // min members are unique within the view; an sv-set's id comes from its
  // smallest subview.
  std::map<std::pair<ViewId, SvSetId>, std::vector<SubviewId>> svset_contents;
  std::vector<Subview> subviews;
  for (auto& [key, slot] : assembled) {
    std::sort(slot.members.begin(), slot.members.end());
    const SubviewId id{slot.members.front(), new_view.epoch};
    subviews.push_back(Subview{id, std::move(slot.members)});
    svset_contents[slot.svset_key].push_back(id);
  }
  std::vector<SvSet> svsets;
  for (auto& [key, content] : svset_contents) {
    std::sort(content.begin(), content.end());
    const SvSetId id{content.front().origin, new_view.epoch};
    svsets.push_back(SvSet{id, std::move(content)});
  }
  EViewStructure result =
      EViewStructure::from_parts(std::move(subviews), std::move(svsets));
  result.validate(new_members);
  return result;
}

namespace {

/// Consumes digits at `at`, rejecting empty runs and u64 overflow.
bool take_u64(const std::string& text, std::size_t& at, std::uint64_t& out) {
  const std::size_t start = at;
  out = 0;
  while (at < text.size() && text[at] >= '0' && text[at] <= '9') {
    const auto digit = static_cast<std::uint64_t>(text[at] - '0');
    if (out > (UINT64_MAX - digit) / 10) return false;
    out = out * 10 + digit;
    ++at;
  }
  return at > start;
}

bool take_literal(const std::string& text, std::size_t& at,
                  const std::string& literal) {
  if (text.compare(at, literal.size(), literal) != 0) return false;
  at += literal.size();
  return true;
}

/// Parses one "ss(p<site>.<inc>,<counter>)" starting at `at`.
std::optional<SvSetId> take_svset_id(const std::string& text, std::size_t& at) {
  std::uint64_t site = 0, incarnation = 0, counter = 0;
  if (!take_literal(text, at, "ss(p") || !take_u64(text, at, site) ||
      !take_literal(text, at, ".") || !take_u64(text, at, incarnation) ||
      !take_literal(text, at, ",") || !take_u64(text, at, counter) ||
      !take_literal(text, at, ")"))
    return std::nullopt;
  if (site > UINT32_MAX || incarnation > UINT32_MAX) return std::nullopt;
  return SvSetId{ProcessId{SiteId{static_cast<std::uint32_t>(site)},
                           static_cast<std::uint32_t>(incarnation)},
                 counter};
}

}  // namespace

std::optional<SvSetId> parse_svset_id(const std::string& text) {
  std::size_t at = 0;
  const auto id = take_svset_id(text, at);
  if (!id || at != text.size()) return std::nullopt;
  return id;
}

std::optional<std::vector<SvSetId>> parse_svset_ids(const std::string& text) {
  std::vector<SvSetId> ids;
  std::size_t at = 0;
  for (;;) {
    const auto id = take_svset_id(text, at);
    if (!id) return std::nullopt;
    ids.push_back(*id);
    if (at == text.size()) return ids;
    if (!take_literal(text, at, ",")) return std::nullopt;
  }
}

}  // namespace evs::core
