#include "app/group_object.hpp"

#include <algorithm>
#include <tuple>

#include "common/check.hpp"
#include "common/log.hpp"

namespace evs::app {

namespace {

constexpr const char* kEpochKey = "evs.last_epoch";
/// Durable snapshot of the object state (config.persist_state); recovered
/// in on_start so a restarted member Pulls a bounded delta, not everything.
constexpr const char* kObjectStateKey = "object.state";

int popcount(ProblemSet p) {
  int n = 0;
  while (p != 0) {
    n += p & 1;
    p >>= 1;
  }
  return n;
}

}  // namespace

GroupObjectBase::GroupObjectBase(GroupObjectConfig config)
    : core::EvsEndpoint(config.endpoint), object_config_(std::move(config)) {
  set_evs_delegate(this);
}

void GroupObjectBase::on_start() {
  // Skeen-style recovery hint: the epoch of the last view this *site*
  // participated in, surviving crashes in stable storage. Used to pick
  // the freshest state during a creation (Section 4, reference [11]).
  if (const auto bytes = store().get(kEpochKey)) {
    try {
      Decoder dec(*bytes);
      recovered_epoch_ = dec.get_u64();
    } catch (const DecodeError&) {
      recovered_epoch_ = 0;
    }
  }
  // Recover the persisted object state (durable store only). The state is
  // installed but NOT current: it is the *basis* the settle protocol
  // upgrades — via a bounded delta when the source supports one — before
  // this member may serve again.
  if (object_config_.persist_state) {
    if (const auto bytes = store().get(kObjectStateKey)) {
      if (!checked_install(*bytes)) {
        EVS_DEBUG(to_string(id()) << " persisted object state unreadable;"
                  << " starting empty");
      }
    }
  }
  machine_.emplace(now());
  core::EvsEndpoint::on_start();  // installs the first (singleton) view
}

bool GroupObjectBase::serving_normal() const {
  if (mode() != Mode::Normal) return false;
  // Isis-style comparison: a settle anywhere in the view suspends even
  // up-to-date members.
  if (object_config_.block_all_during_settle && settling_ && !adopted_)
    return false;
  return true;
}

void GroupObjectBase::object_multicast(const Bytes& payload) {
  // Flag-day frame change: every Object frame carries its trace context
  // (0 = untraced) so the propagated context survives the total order and
  // flush unions — the ordered delivery, not the datagram, is the unit a
  // request's causality follows.
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(FrameKind::Object));
  enc.put_varint(++object_send_seq_);
  enc.put_varint(active_trace_);
  enc.put_bytes(payload);
  // Stamp the wire envelope too while the multicast (and any synchronous
  // self-delivery it triggers) runs, then clear: datagrams this operation
  // provokes carry the context, unrelated later traffic does not.
  if (active_trace_ != 0 && env().transport != nullptr)
    env().transport->set_trace_context(active_trace_);
  app_multicast(std::move(enc).take());
  if (active_trace_ != 0 && env().transport != nullptr)
    env().transport->set_trace_context(0);
}

void GroupObjectBase::svc_multicast(
    const Bytes& payload, runtime::SvcRespondFn respond,
    std::function<runtime::SvcResponse()> finish) {
  // Register the pending op *before* multicasting: when this member is the
  // one ordering the message, self-delivery happens synchronously inside
  // app_multicast, and resolve_pending_svc must find the entry there.
  pending_svc_.push_back(PendingSvcOp{object_send_seq_ + 1, active_trace_,
                                      now(), std::move(respond),
                                      std::move(finish)});
  if (active_trace_ != 0) {
    if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
      bus->record({now(), id(), obs::EventKind::RequestOrdered,
                   eview().view.id, {}, active_trace_, object_send_seq_ + 1});
    }
  }
  object_multicast(payload);
}

void GroupObjectBase::resolve_pending_svc(std::uint64_t seq) {
  EVS_DEBUG(to_string(id()) << " resolve_pending_svc seq=" << seq
            << " front=" << (pending_svc_.empty()
                                 ? std::string("none")
                                 : std::to_string(pending_svc_.front().seq))
            << " pending=" << pending_svc_.size());
  // Ordered self-delivery makes skipped entries impossible in a healthy
  // run; answer them Unavailable rather than leave a client hanging if a
  // delivery was ever lost underneath us.
  while (!pending_svc_.empty() && pending_svc_.front().seq < seq) {
    PendingSvcOp entry = std::move(pending_svc_.front());
    pending_svc_.pop_front();
    if (entry.respond) entry.respond(svc_unavailable());
  }
  if (pending_svc_.empty() || pending_svc_.front().seq != seq) return;
  PendingSvcOp entry = std::move(pending_svc_.front());
  pending_svc_.pop_front();
  order_us_.record(static_cast<double>(now() - entry.sent));
  // finish() runs after on_object_deliver applied the operation, so it
  // reads post-apply state (lock granted? value stored?).
  if (entry.respond) entry.respond(entry.finish());
}

void GroupObjectBase::fence_pending_svc(std::uint64_t new_epoch) {
  for (PendingSvcOp& entry : pending_svc_) {
    if (!entry.respond) continue;
    fence_us_.record(static_cast<double>(now() - entry.sent));
    if (entry.trace != 0) {
      if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
        bus->record({now(), id(), obs::EventKind::RequestFenced,
                     eview().view.id, {}, entry.trace, new_epoch});
      }
    }
    entry.respond(runtime::SvcResponse::invalid_epoch(new_epoch));
    entry.respond = nullptr;
  }
}

void GroupObjectBase::svc_request(runtime::SvcRequest req,
                                  runtime::SvcRespondFn respond) {
  // The epoch fence on admission: a client that last saw a different view
  // must re-learn the epoch before its operations are accepted (epoch 0
  // is the bootstrap wildcard).
  if (req.view_epoch != 0 && req.view_epoch != view_epoch()) {
    respond(runtime::SvcResponse::invalid_epoch(view_epoch()));
    return;
  }
  // The dispatch runs under the request's trace context (0 when the
  // request was unsampled): any svc_multicast it performs propagates it.
  active_trace_ = runtime::effective_trace(req);
  svc_dispatch(std::move(req), std::move(respond));
  active_trace_ = 0;
}

void GroupObjectBase::svc_dispatch(runtime::SvcRequest,
                                   runtime::SvcRespondFn respond) {
  respond(runtime::SvcResponse::unsupported());
}

// ----------------------------------------------------------- delegates ---

void GroupObjectBase::on_eview(const core::EView& eview) {
  const bool view_changed = eview.ev_seq == 0;
  if (view_changed) {
    // Epoch fence: in-flight client operations were accepted under the
    // previous view; answer them InvalidEpoch{new epoch} now rather than
    // complete them as if nothing happened (flush already delivered
    // everything that legitimately belongs to the old view).
    fence_pending_svc(eview.view.id.epoch);
    if (object_config_.record_history) history_.record_view(eview.view);
    prior_view_ = current_settle_.view;  // the previous view's id
    current_settle_.view = eview.view.id;
    // Persist the epoch for post-crash recovery ranking.
    Encoder enc;
    enc.put_u64(eview.view.id.epoch);
    store().put(kEpochKey, std::move(enc).take());
    // Reset per-view settle state.
    settling_ = false;
    adopted_ = false;
    classification_ready_ = false;
    classification_ = Classification{};
    offers_.clear();
    chunks_.clear();
    awaiting_full_from_.reset();
    awaiting_delta_from_.reset();
    delta_retry_full_ = false;
    last_merge_request_ev_ = UINT64_MAX;
  }
  EVS_DEBUG(to_string(id()) << " on_eview " << gms::to_string(eview.view)
            << " ev_seq=" << eview.ev_seq << " mode=" << to_string(mode())
            << " struct=" << eview.structure.str());
  evaluate_mode(eview, view_changed);
  if (view_changed) {
    on_new_view(eview);
    // Protocol participation is group-wide: even members staying in
    // N-mode must answer offers (the serving representative *is* an
    // N-mode process).
    const bool group_needs_settle =
        object_config_.classifier == ClassifierMode::FlatDiscovery
            ? eview.view.size() > 0
            : (eview.structure.subviews().size() > 1 || !state_current_);
    if (group_needs_settle) start_settle(eview);
  }
  maybe_complete_settle();
  maybe_finish_chunks();
  maybe_request_merges();
  try_reconcile();
  persist_object_state();
  if (view_observer_) view_observer_(eview);
}

void GroupObjectBase::on_app_deliver(ProcessId sender, const Bytes& payload) {
  try {
    dispatch_frame(sender, payload);
  } catch (const DecodeError& err) {
    std::string head;
    for (std::size_t i = 0; i < payload.size() && i < 24; ++i)
      head += std::to_string(payload[i]) + " ";
    throw DecodeError(std::string("object-frame: ") + err.what() +
                      " size=" + std::to_string(payload.size()) + " head=" + head);
  }
}

void GroupObjectBase::dispatch_frame(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  switch (static_cast<FrameKind>(dec.get_u8())) {
    case FrameKind::Object: {
      const std::uint64_t op_seq = dec.get_varint();
      const std::uint64_t op_trace = dec.get_varint();
      Bytes body = dec.get_bytes();
      if (object_config_.record_history) history_.record_delivery(sender, body);
      auto* bus = trace();
      const bool traced =
          op_trace != 0 && bus != nullptr && bus->enabled();
      if (traced) {
        bus->record({now(), id(), obs::EventKind::RequestDelivered,
                     eview().view.id, sender, op_trace, op_seq});
      }
      const SimTime apply_start = now();
      on_object_deliver(sender, body);
      apply_us_.record(static_cast<double>(now() - apply_start));
      if (traced) {
        bus->record({now(), id(), obs::EventKind::RequestApplied,
                     eview().view.id, sender, op_trace, op_seq});
      }
      // Our own operation came back through the total order: complete the
      // external-client request it carried, if any (and if a view change
      // didn't fence it first).
      if (sender == id()) resolve_pending_svc(op_seq);
      break;
    }
    case FrameKind::Offer:
      handle_offer(sender, dec);
      break;
    case FrameKind::Chunk:
      handle_chunk(sender, dec);
      break;
    case FrameKind::Pull:
      handle_pull(sender, dec);
      break;
    case FrameKind::Delta:
      handle_delta(sender, dec);
      break;
    default:
      throw DecodeError("GroupObject: unknown frame");
  }
  // Write-behind durability for every state-bearing delivery: ordered
  // operations, installed snapshots, chunks and deltas alike. The store
  // batches per loop iteration, so this is a buffered append, not a sync.
  persist_object_state();
}

// ----------------------------------------------------------------- mode ---

bool GroupObjectBase::my_subview_serves() const {
  const auto sv = eview().structure.subview_of(id());
  if (!sv) return false;
  const core::Subview* subview = eview().structure.find_subview(*sv);
  return subview != nullptr && can_serve(subview->members);
}

std::size_t GroupObjectBase::serving_subview_count() const {
  std::size_t count = 0;
  for (const core::Subview& sv : eview().structure.subviews()) {
    if (can_serve(sv.members)) ++count;
  }
  return count;
}

void GroupObjectBase::evaluate_mode(const core::EView& eview, bool view_changed) {
  if (!view_changed) return;  // structure growth is handled by try_reconcile
  const Mode before = machine_->mode();
  prior_mode_ = before;
  ModeInput input;
  input.can_serve_all = can_serve(eview.view.members);
  if (object_config_.classifier == ClassifierMode::Enriched) {
    input.needs_settling = !(state_current_ && serving_subview_count() == 1 &&
                             my_subview_serves());
  } else {
    // Flat views carry no structure: any view change may have invalidated
    // the shared state, so the process must always settle.
    input.needs_settling = true;
  }
  const std::optional<Transition> taken =
      machine_->on_view(input, now());
  if (taken.has_value()) {
    if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
      // Self-loops (S->S Reconfigure) are reported too, matching the
      // machine's own convention.
      bus->record({now(), id(), obs::EventKind::ModeTransition, eview.view.id,
                   {}, static_cast<std::uint64_t>(*taken),
                   static_cast<std::uint64_t>(machine_->mode()),
                   static_cast<std::uint64_t>(before)});
    }
  }
  if (machine_->mode() != before) on_mode_change(before, machine_->mode());
}

// --------------------------------------------------------------- settle ---

void GroupObjectBase::start_settle(const core::EView& eview) {
  settling_ = true;
  adopted_ = false;
  ++object_stats_.settles_started;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ReconcilePhase, eview.view.id, {},
                 static_cast<std::uint64_t>(obs::ReconcilePhase::SettleStarted)});
  }
  current_settle_.problems = kNoProblem;
  current_settle_.started = now();
  current_settle_.serve_ready = 0;
  current_settle_.fully_done = 0;

  if (object_config_.classifier == ClassifierMode::Enriched) {
    classification_ =
        classify_enriched(eview, [this](const std::vector<ProcessId>& m) {
          return can_serve(m);
        });
    classification_ready_ = true;
  } else {
    const ProblemSet possible = classify_flat(
        prior_mode_, eview.view,
        [this](const std::vector<ProcessId>& m) { return can_serve(m); });
    if (popcount(possible) > 1) ++object_stats_.ambiguous_classifications;
    ++object_stats_.discovery_rounds;
    classification_ready_ = false;
  }
  send_offer_if_rep(eview);
}

void GroupObjectBase::send_offer_if_rep(const core::EView& eview) {
  Offer offer;
  offer.view = eview.view.id;
  offer.prior_view = prior_view_;
  offer.prior_mode = prior_mode_;
  offer.version = state_version();
  offer.recovered_epoch = recovered_epoch_;

  if (object_config_.classifier == ClassifierMode::Enriched) {
    const auto sv = eview.structure.subview_of(id());
    if (!sv) return;
    const core::Subview* subview = eview.structure.find_subview(*sv);
    EVS_CHECK(subview != nullptr);
    if (subview->members.front() != id()) return;  // not the representative
    offer.subview = *sv;
    offer.serving = can_serve(subview->members);
  } else {
    // Flat: every member reports; its "pseudo-subview" is derived from its
    // prior view so discovery can group clusters.
    ++object_stats_.discovery_messages;
    offer.subview = SubviewId{prior_view_.coordinator, prior_view_.epoch};
    offer.serving = prior_mode_ == Mode::Normal;
  }

  // Delta transfer: when the settle already classified as a transfer (the
  // enriched classifier is local, so this is known before offers go out),
  // representatives withhold their snapshots. Stale members Pull against
  // their own recovered basis instead of taking the full state off the
  // offer — and the stale side's snapshot was dead weight anyway. The
  // serving subview's representative only defers when its state is
  // current, because only then will it answer the Pulls.
  bool deferred = false;
  if (object_config_.delta_transfer &&
      object_config_.classifier == ClassifierMode::Enriched &&
      classification_ready_ && classification_.serving_subviews.size() == 1) {
    const bool i_serve = classification_.serving_subviews.front() == offer.subview;
    deferred = !i_serve || state_current_;
  }
  offer.deferred = deferred;

  Bytes full;
  bool split = false;
  if (deferred) {
    ++object_stats_.deferred_offers;
  } else {
    full = snapshot_state();
    split = object_config_.transfer == TransferStrategy::SplitSmallLarge &&
            full.size() > object_config_.chunk_bytes;
    if (split) {
      offer.snapshot = snapshot_small();
      offer.chunk_count =
          (full.size() + object_config_.chunk_bytes - 1) / object_config_.chunk_bytes;
    } else {
      offer.snapshot = full;
    }
  }
  object_stats_.snapshot_bytes += offer.snapshot.size();
  ++object_stats_.offer_messages;

  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(FrameKind::Offer));
  enc.put_view_id(offer.view);
  enc.put_subview_id(offer.subview);
  enc.put_view_id(offer.prior_view);
  enc.put_u8(static_cast<std::uint8_t>(offer.prior_mode));
  enc.put_bool(offer.serving);
  enc.put_varint(offer.version);
  enc.put_varint(offer.recovered_epoch);
  enc.put_varint(offer.chunk_count);
  enc.put_bool(offer.deferred);
  enc.put_bytes(offer.snapshot);
  app_multicast(std::move(enc).take());

  if (split) {
    // Stream the full state in paced chunks, concurrently with new-view
    // traffic (foreground messages interleave between chunks).
    const ViewId chunk_view = offer.view;
    const std::uint64_t count = offer.chunk_count;
    const auto shared_full = std::make_shared<const Bytes>(full);
    for (std::uint64_t i = 0; i < count; ++i) {
      set_timer(object_config_.chunk_interval * (i + 1),
                [this, chunk_view, count, i, shared_full]() {
                  const Bytes& full = *shared_full;
                  if (this->eview().view.id != chunk_view) return;  // superseded
                  const std::size_t begin =
                      static_cast<std::size_t>(i) * object_config_.chunk_bytes;
                  const std::size_t end =
                      std::min(full.size(), begin + object_config_.chunk_bytes);
                  Encoder chunk;
                  chunk.put_u8(static_cast<std::uint8_t>(FrameKind::Chunk));
                  chunk.put_view_id(chunk_view);
                  chunk.put_varint(i);
                  chunk.put_varint(count);
                  chunk.put_bytes(
                      Bytes(full.begin() + static_cast<std::ptrdiff_t>(begin),
                            full.begin() + static_cast<std::ptrdiff_t>(end)));
                  ++object_stats_.chunk_messages;
                  object_stats_.snapshot_bytes += end - begin;
                  EVS_DEBUG(to_string(id()) << " sends chunk " << i << "/" << count);
                  app_multicast(std::move(chunk).take());
                });
    }
  }
}

void GroupObjectBase::handle_offer(ProcessId sender, Decoder& dec) {
  Offer offer;
  offer.view = dec.get_view_id();
  offer.subview = dec.get_subview_id();
  offer.prior_view = dec.get_view_id();
  const std::uint8_t mode_byte = dec.get_u8();
  if (mode_byte > 2) throw DecodeError("bad mode in offer");
  offer.prior_mode = static_cast<Mode>(mode_byte);
  offer.serving = dec.get_bool();
  offer.version = dec.get_varint();
  offer.recovered_epoch = dec.get_varint();
  offer.chunk_count = dec.get_varint();
  offer.deferred = dec.get_bool();
  offer.snapshot = dec.get_bytes();
  if (offer.view != eview().view.id) return;  // stale
  offers_[sender] = std::move(offer);
  maybe_complete_settle();
}

void GroupObjectBase::handle_chunk(ProcessId sender, Decoder& dec) {
  const ViewId view = dec.get_view_id();
  const std::uint64_t index = dec.get_varint();
  const std::uint64_t total = dec.get_varint();
  Bytes part = dec.get_bytes();
  if (view != eview().view.id) return;
  ChunkAssembly& assembly = chunks_[sender];
  assembly.expected = total;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::StateTransferChunk, view, sender,
                 index, part.size(), total});
  }
  assembly.parts.emplace(index, std::move(part));
  EVS_DEBUG(to_string(id()) << " chunk " << index << "/" << total << " from "
            << to_string(sender) << " have=" << assembly.parts.size()
            << " awaiting=" << (awaiting_full_from_ ? to_string(*awaiting_full_from_) : "none"));
  maybe_complete_settle();
  maybe_finish_chunks();
}

void GroupObjectBase::maybe_finish_chunks() {
  if (!adopted_ || !awaiting_full_from_) return;
  const auto it = chunks_.find(*awaiting_full_from_);
  if (it == chunks_.end() || it->second.parts.size() != it->second.expected ||
      it->second.expected == 0) {
    return;
  }
  Bytes full;
  for (const auto& [index, part] : it->second.parts)
    full.insert(full.end(), part.begin(), part.end());
  awaiting_full_from_.reset();
  if (!checked_install(full)) {
    // The assembled state was garbage: surrender the small-part serve
    // claim too — a member must not keep serving on state it cannot
    // complete. The next view change restarts the settle.
    state_current_ = false;
    return;
  }
  current_settle_.fully_done = now();
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ReconcilePhase,
                 eview().view.id, {},
                 static_cast<std::uint64_t>(obs::ReconcilePhase::FullyDone)});
  }
  settle_log_.push_back(current_settle_);
  try_reconcile();
}

// ------------------------------------------------------- delta transfer ---

void GroupObjectBase::send_pull(bool want_full) {
  EVS_CHECK(awaiting_delta_from_.has_value());
  ++object_stats_.delta_pulls;
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(FrameKind::Pull));
  enc.put_view_id(eview().view.id);
  enc.put_process(*awaiting_delta_from_);
  enc.put_bool(want_full);
  enc.put_bytes(want_full ? Bytes{} : delta_basis());
  EVS_DEBUG(to_string(id()) << " pulls " << (want_full ? "full" : "delta")
            << " from " << to_string(*awaiting_delta_from_));
  app_multicast(std::move(enc).take());
}

void GroupObjectBase::handle_pull(ProcessId sender, Decoder& dec) {
  const ViewId view = dec.get_view_id();
  const ProcessId target = dec.get_process();
  const bool want_full = dec.get_bool();
  const Bytes basis = dec.get_bytes();
  if (view != eview().view.id) return;  // stale
  if (target != id()) return;           // someone else's source
  // Only a member with current state may answer; a view change rescues a
  // Pull that raced past the source (the settle restarts with new offers).
  if (!state_current_) return;
  std::optional<Bytes> payload;
  if (!want_full) payload = snapshot_delta(basis);
  const bool full = !payload.has_value();
  if (full) {
    payload = snapshot_state();
    ++object_stats_.delta_full_fallbacks;
  }
  ++object_stats_.delta_serves;
  object_stats_.delta_bytes_sent += payload->size();
  object_stats_.snapshot_bytes += payload->size();
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(FrameKind::Delta));
  enc.put_view_id(view);
  enc.put_process(sender);
  enc.put_bool(full);
  enc.put_bytes(*payload);
  EVS_DEBUG(to_string(id()) << " serves " << (full ? "full" : "delta")
            << " (" << payload->size() << "B) to " << to_string(sender));
  app_multicast(std::move(enc).take());
}

void GroupObjectBase::handle_delta(ProcessId sender, Decoder& dec) {
  const ViewId view = dec.get_view_id();
  const ProcessId target = dec.get_process();
  const bool full = dec.get_bool();
  const Bytes payload = dec.get_bytes();
  if (view != eview().view.id) return;  // stale
  if (target != id()) return;           // answer to another member's Pull
  if (!awaiting_delta_from_ || *awaiting_delta_from_ != sender) return;
  object_stats_.delta_bytes_received += payload.size();
  if (full) {
    if (!checked_install(payload)) return;  // counted; stay settling
  } else {
    bool applied = false;
    try {
      applied = install_delta(payload);
    } catch (const DecodeError&) {
      ++object_stats_.snapshot_decode_errors;
    }
    if (!applied) {
      // The delta no longer matches the local state (ordered writes landed
      // between our Pull and this answer, or the payload was malformed):
      // one full-snapshot retry, then give up until the next view change.
      if (!delta_retry_full_) {
        delta_retry_full_ = true;
        send_pull(true);
      }
      return;
    }
    ++object_stats_.delta_installs;
  }
  finish_delta_settle();
}

void GroupObjectBase::finish_delta_settle() {
  awaiting_delta_from_.reset();
  state_current_ = true;
  const SimTime t_now = now();
  current_settle_.serve_ready = t_now;
  current_settle_.fully_done = t_now;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({t_now, id(), obs::EventKind::ReconcilePhase,
                 eview().view.id, {},
                 static_cast<std::uint64_t>(obs::ReconcilePhase::FullyDone)});
  }
  settle_log_.push_back(current_settle_);
  maybe_request_merges();
  try_reconcile();
}

bool GroupObjectBase::checked_install(const Bytes& snapshot) {
  try {
    install_state(snapshot);
    return true;
  } catch (const DecodeError& err) {
    ++object_stats_.snapshot_decode_errors;
    EVS_DEBUG(to_string(id()) << " rejected malformed snapshot ("
              << snapshot.size() << "B): " << err.what());
    return false;
  }
}

void GroupObjectBase::persist_object_state() {
  if (!object_config_.persist_state) return;
  store().put(kObjectStateKey, snapshot_state());
}

void GroupObjectBase::maybe_complete_settle() {
  if (!settling_ || adopted_) return;

  // Completeness.
  if (object_config_.classifier == ClassifierMode::Enriched) {
    for (const core::Subview& sv : eview().structure.subviews()) {
      bool found = false;
      for (const auto& [sender, offer] : offers_) {
        if (offer.subview == sv.id) {
          found = true;
          break;
        }
      }
      if (!found) return;
    }
  } else {
    for (const ProcessId member : eview().view.members) {
      if (!offers_.contains(member)) return;
    }
  }

  if (!classification_ready_) {
    // Flat: derive the exact classification from the discovery replies.
    std::vector<DiscoveryReply> replies;
    for (const auto& [sender, offer] : offers_) {
      replies.push_back(DiscoveryReply{sender, offer.prior_view,
                                       offer.prior_mode, offer.version});
    }
    classification_ = classify_from_discovery(
        replies, eview().view,
        [this](const std::vector<ProcessId>& m) { return can_serve(m); });
    classification_ready_ = true;
  }

  current_settle_.problems = classification_.problems;
  object_stats_.last_problems = classification_.problems;
  EVS_DEBUG(to_string(id()) << " settle complete: problems="
            << problems_to_string(classification_.problems)
            << " offers=" << offers_.size());

  // For merging (and split transfers) we may still be waiting for chunks
  // from the source(s); adopt_states() checks availability itself.
  adopt_states();
  if (adopted_) {
    // The settle may have completed on an offer/chunk arrival rather than
    // an e-view event: drive the merge phase and reconciliation from here.
    maybe_request_merges();
    try_reconcile();
  }
}

void GroupObjectBase::adopt_states() {
  // Per-subview source offer: the minimum sender claiming each subview.
  std::map<SubviewId, const Offer*> source;
  std::map<SubviewId, ProcessId> source_sender;
  for (const auto& [sender, offer] : offers_) {
    const auto it = source_sender.find(offer.subview);
    if (it == source_sender.end() || sender < it->second) {
      source_sender[offer.subview] = sender;
      source[offer.subview] = &offer;
    }
  }

  const auto full_of = [&](SubviewId sv) -> std::optional<Bytes> {
    const Offer* offer = source.at(sv);
    if (offer->chunk_count == 0) return offer->snapshot;
    const auto it = chunks_.find(source_sender.at(sv));
    if (it == chunks_.end() || it->second.parts.size() != offer->chunk_count)
      return std::nullopt;
    Bytes full;
    for (const auto& [index, part] : it->second.parts)
      full.insert(full.end(), part.begin(), part.end());
    return full;
  };

  const SimTime t_now = now();
  const auto& serving = classification_.serving_subviews;

  if (serving.size() >= 2) {
    // State merging: requires every cluster's *full* state.
    std::vector<Bytes> inputs;
    for (const SubviewId sv : serving) {
      auto full = full_of(sv);
      if (!full) return;  // chunks still in flight; retry on next chunk
      inputs.push_back(*std::move(full));
    }
    // merge_cluster_states decodes peer snapshots too: a malformed input
    // is a counted rejection (everyone computes the same merge over the
    // same inputs, so everyone rejects together), never a crash or a
    // half-merged install.
    bool ok = false;
    try {
      const Bytes merged = merge_cluster_states(inputs);
      ok = checked_install(merged);
    } catch (const DecodeError&) {
      ++object_stats_.snapshot_decode_errors;
    }
    ++object_stats_.merges;
    if (!classification_.r_set.empty()) ++object_stats_.transfers;
    if (ok) {
      state_current_ = true;
      current_settle_.serve_ready = t_now;
      current_settle_.fully_done = t_now;
    }
  } else if (serving.size() == 1) {
    // State transfer: stale members adopt the serving subview's state.
    const SubviewId src = serving.front();
    const bool i_am_source =
        object_config_.classifier == ClassifierMode::Enriched
            ? eview().structure.subview_of(id()) == src
            : offers_.contains(id()) && offers_.at(id()).subview == src;
    if (i_am_source && state_current_) {
      current_settle_.serve_ready = t_now;
      current_settle_.fully_done = t_now;
    } else {
      const Offer* offer = source.at(src);
      if (offer->deferred) {
        // Bounded-delta path: the source withheld its snapshot; ask it to
        // upgrade this member's recovered basis instead. finish_delta_
        // settle() supplies the timestamps once the answer installs.
        awaiting_delta_from_ = source_sender.at(src);
        send_pull(false);
      } else if (offer->chunk_count == 0) {
        if (checked_install(offer->snapshot)) {
          state_current_ = true;
          current_settle_.serve_ready = t_now;
          current_settle_.fully_done = t_now;
        }
      } else {
        // Split strategy: critical part now, bulk later.
        bool small_ok = true;
        try {
          install_small(offer->snapshot);
        } catch (const DecodeError&) {
          ++object_stats_.snapshot_decode_errors;
          small_ok = false;
        }
        if (const auto full = full_of(src)) {
          if (checked_install(*full)) {
            state_current_ = true;
            current_settle_.serve_ready = t_now;
            current_settle_.fully_done = t_now;
          }
        } else if (small_ok) {
          awaiting_full_from_ = source_sender.at(src);
          state_current_ = true;
          current_settle_.serve_ready = t_now;
        }
      }
    }
    ++object_stats_.transfers;
  } else {
    // State creation: adopt the freshest state anyone can produce,
    // last-process-to-fail first (recovered epoch), then version.
    const Offer* winner = nullptr;
    ProcessId winner_sender{};
    for (const auto& [sender, offer] : offers_) {
      const auto key = std::make_tuple(offer.version, offer.recovered_epoch,
                                       sender);
      if (winner == nullptr ||
          key > std::make_tuple(winner->version, winner->recovered_epoch,
                                winner_sender)) {
        winner = &offer;
        winner_sender = sender;
      }
    }
    EVS_CHECK(winner != nullptr);
    bool ok = true;
    if (winner_sender != id()) {
      auto full = full_of(winner->subview);
      if (winner->chunk_count != 0 && !full) {
        try {
          install_small(winner->snapshot);
          awaiting_full_from_ = winner_sender;  // bulk still streaming
        } catch (const DecodeError&) {
          ++object_stats_.snapshot_decode_errors;
          ok = false;
        }
      } else if (full) {
        ok = checked_install(*full);
        if (ok) current_settle_.fully_done = t_now;
      }
    } else {
      current_settle_.fully_done = t_now;
    }
    if (ok) {
      state_current_ = true;
      current_settle_.serve_ready = t_now;
    }
    ++object_stats_.creations;
  }

  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({t_now, id(), obs::EventKind::ReconcilePhase, eview().view.id,
                 {}, static_cast<std::uint64_t>(obs::ReconcilePhase::StateAdopted),
                 static_cast<std::uint64_t>(classification_.problems)});
  }
  if (current_settle_.fully_done == 0) {
    // Still waiting for chunks: stay in "adopted but filling" state. The
    // settle counts as serveable; chunk arrivals will finish it.
    adopted_ = true;
    ++object_stats_.settles_completed;
    return;
  }
  adopted_ = true;
  ++object_stats_.settles_completed;
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({t_now, id(), obs::EventKind::ReconcilePhase, eview().view.id,
                 {}, static_cast<std::uint64_t>(obs::ReconcilePhase::FullyDone)});
  }
  settle_log_.push_back(current_settle_);
}

void GroupObjectBase::maybe_request_merges() {
  if (object_config_.classifier != ClassifierMode::Enriched) return;
  if (!settling_ || !adopted_) return;
  if (eview().structure.subviews().size() == 1 &&
      eview().structure.svsets().size() == 1) {
    return;  // degenerate: done
  }
  if (eview().view.primary() != id()) return;
  if (last_merge_request_ev_ == eview().ev_seq) return;  // already asked
  last_merge_request_ev_ = eview().ev_seq;
  request_merge_all();
}

void GroupObjectBase::try_reconcile() {
  if (!machine_ || machine_->mode() != Mode::Settling) return;
  if (!can_serve(eview().view.members)) return;
  bool done = false;
  if (object_config_.classifier == ClassifierMode::Enriched) {
    done = state_current_ && serving_subview_count() == 1 && my_subview_serves();
  } else {
    done = state_current_ && adopted_;
  }
  if (!done) return;
  EVS_DEBUG(to_string(id()) << " reconciles to NORMAL");
  const Mode before = machine_->mode();
  machine_->reconcile(now());
  if (auto* bus = trace(); bus != nullptr && bus->enabled()) {
    bus->record({now(), id(), obs::EventKind::ModeTransition, eview().view.id,
                 {}, static_cast<std::uint64_t>(Transition::Reconcile),
                 static_cast<std::uint64_t>(Mode::Normal),
                 static_cast<std::uint64_t>(before)});
    bus->record({now(), id(), obs::EventKind::ReconcilePhase, eview().view.id,
                 {}, static_cast<std::uint64_t>(obs::ReconcilePhase::Reconciled)});
  }
  on_mode_change(before, machine_->mode());
}

void GroupObjectBase::export_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  core::EvsEndpoint::export_metrics(registry, prefix);
  registry.counter(prefix + ".settles_started").set(object_stats_.settles_started);
  registry.counter(prefix + ".settles_completed")
      .set(object_stats_.settles_completed);
  registry.counter(prefix + ".transfers").set(object_stats_.transfers);
  registry.counter(prefix + ".creations").set(object_stats_.creations);
  registry.counter(prefix + ".merges").set(object_stats_.merges);
  registry.counter(prefix + ".discovery_rounds")
      .set(object_stats_.discovery_rounds);
  registry.counter(prefix + ".discovery_messages")
      .set(object_stats_.discovery_messages);
  registry.counter(prefix + ".offer_messages").set(object_stats_.offer_messages);
  registry.counter(prefix + ".snapshot_bytes").set(object_stats_.snapshot_bytes);
  registry.counter(prefix + ".chunk_messages").set(object_stats_.chunk_messages);
  registry.counter(prefix + ".ambiguous_classifications")
      .set(object_stats_.ambiguous_classifications);
  registry.counter(prefix + ".snapshot_decode_errors")
      .set(object_stats_.snapshot_decode_errors);
  registry.counter(prefix + ".deferred_offers").set(object_stats_.deferred_offers);
  registry.counter(prefix + ".delta_pulls").set(object_stats_.delta_pulls);
  registry.counter(prefix + ".delta_serves").set(object_stats_.delta_serves);
  registry.counter(prefix + ".delta_installs").set(object_stats_.delta_installs);
  registry.counter(prefix + ".delta_bytes_sent")
      .set(object_stats_.delta_bytes_sent);
  registry.counter(prefix + ".delta_bytes_received")
      .set(object_stats_.delta_bytes_received);
  registry.counter(prefix + ".delta_full_fallbacks")
      .set(object_stats_.delta_full_fallbacks);
  // Per-phase attribution of svc-originated operations (see the accessor
  // docs in group_object.hpp for the exact spans each one measures).
  registry.histogram(prefix + ".svc.order_us") = order_us_;
  registry.histogram(prefix + ".svc.fence_us") = fence_us_;
  registry.histogram(prefix + ".svc.apply_us") = apply_us_;
  if (machine_.has_value()) {
    const SimTime at = now();
    registry.gauge(prefix + ".mode.normal_us")
        .set(static_cast<double>(machine_->occupancy(Mode::Normal, at)));
    registry.gauge(prefix + ".mode.reduced_us")
        .set(static_cast<double>(machine_->occupancy(Mode::Reduced, at)));
    registry.gauge(prefix + ".mode.settling_us")
        .set(static_cast<double>(machine_->occupancy(Mode::Settling, at)));
    registry.counter(prefix + ".transitions.failure")
        .set(machine_->count(Transition::Failure));
    registry.counter(prefix + ".transitions.repair")
        .set(machine_->count(Transition::Repair));
    registry.counter(prefix + ".transitions.reconfigure")
        .set(machine_->count(Transition::Reconfigure));
    registry.counter(prefix + ".transitions.reconcile")
        .set(machine_->count(Transition::Reconcile));
  }
}

}  // namespace evs::app
