#include "app/history.hpp"

#include <sstream>

#include "common/check.hpp"

namespace evs::app {

void History::record_view(const gms::View& view) {
  events_.push_back(ViewEvent{view});
}

void History::record_delivery(ProcessId sender, Bytes payload) {
  events_.push_back(DeliverEvent{sender, std::move(payload)});
}

History History::prefix(std::size_t k) const {
  History h;
  const std::size_t n = std::min(k, events_.size());
  h.events_.assign(events_.begin(),
                   events_.begin() + static_cast<std::ptrdiff_t>(n));
  return h;
}

std::optional<gms::View> History::current_view() const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (const auto* v = std::get_if<ViewEvent>(&*it)) return v->view;
  }
  return std::nullopt;
}

std::vector<DeliverEvent> History::deliveries_in_current_view() const {
  std::vector<DeliverEvent> out;
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (std::holds_alternative<ViewEvent>(*it)) break;
    out.push_back(std::get<DeliverEvent>(*it));
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t History::delivery_count() const {
  std::size_t n = 0;
  for (const HistoryEvent& e : events_) {
    if (std::holds_alternative<DeliverEvent>(e)) ++n;
  }
  return n;
}

bool History::well_formed() const {
  if (events_.empty()) return true;  // the empty prefix is fine
  return std::holds_alternative<ViewEvent>(events_.front());
}

std::string History::str() const {
  std::ostringstream os;
  for (const HistoryEvent& e : events_) {
    if (const auto* v = std::get_if<ViewEvent>(&e)) {
      os << "view(" << gms::to_string(v->view) << ") ";
    } else {
      const auto& d = std::get<DeliverEvent>(e);
      os << "dlvr(" << to_string(d.sender) << ") ";
    }
  }
  return os.str();
}

HistoryModeFunction quorum_mode_function(
    std::size_t universe_size,
    std::function<bool(const History&)> caught_up) {
  EVS_CHECK(caught_up != nullptr);
  return [universe_size, caught_up = std::move(caught_up)](const History& h) {
    const auto view = h.current_view();
    if (!view) return Mode::Settling;  // pre-join: nothing to serve
    if (view->size() * 2 <= universe_size) return Mode::Reduced;
    // "To return back to N-mode, a process must first pass through
    // S-mode": the prefix ending in the view event itself is always S.
    if (!h.events().empty() &&
        std::holds_alternative<ViewEvent>(h.events().back())) {
      return Mode::Settling;
    }
    return caught_up(h) ? Mode::Normal : Mode::Settling;
  };
}

HistoryModeFunction always_available_mode_function(
    std::function<bool(const History&)> settled) {
  EVS_CHECK(settled != nullptr);
  return [settled = std::move(settled)](const History& h) {
    if (!h.current_view()) return Mode::Settling;
    // Every view change passes through S (the paper's parallel-db
    // example: redefine the division of responsibility first).
    if (!h.events().empty() &&
        std::holds_alternative<ViewEvent>(h.events().back())) {
      return Mode::Settling;
    }
    return settled(h) ? Mode::Normal : Mode::Settling;
  };
}

std::function<bool(const History&)> after_deliveries(std::size_t n) {
  return [n](const History& h) {
    return h.deliveries_in_current_view().size() >= n;
  };
}

std::vector<Mode> mode_trace(const History& history,
                             const HistoryModeFunction& f) {
  EVS_CHECK_MSG(history.well_formed(), "history must begin with a join view");
  std::vector<Mode> trace;
  trace.reserve(history.size());
  for (std::size_t k = 1; k <= history.size(); ++k) {
    trace.push_back(f(history.prefix(k)));
  }
  return trace;
}

std::optional<std::size_t> first_illegal_transition(
    const std::vector<Mode>& trace) {
  // Figure-1 edge set, expressed over consecutive modes. Self-loops are
  // always fine; the single forbidden *direct* step is R -> N ("to return
  // back to N-mode, a process must first pass through S-mode").
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i - 1] == Mode::Reduced && trace[i] == Mode::Normal) return i;
  }
  return std::nullopt;
}

}  // namespace evs::app
