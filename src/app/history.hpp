// The paper's formal application model (Section 3): process histories and
// mode functions.
//
// "We define the history of a process p, denoted by h_p, as a (possibly
//  infinite) sequence of deliver and view events. [...] In general, the
//  mode of a process can depend on an arbitrary number of past delivery
//  events since it joined the group. In other words, after k delivery
//  events, the mode of process p is defined by f(h_p^k), where f is
//  called the mode function."
//
// This module makes that model executable: a History records the
// delivery/view event sequence of one process; a HistoryModeFunction maps
// history prefixes to modes. Per the paper's simplifying assumption, the
// provided combinators depend on the full history with respect to
// deliveries but only on the *current view* with respect to view changes.
//
// GroupObjectBase drives its Figure-1 machine from the serve predicate
// directly (the common case); this module exists for applications whose
// mode genuinely depends on what has been delivered — e.g. "NORMAL only
// after the recovery log has been replayed" — and for analysis: the
// tests use it to re-derive mode sequences from recorded histories and
// cross-check the machine.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "app/mode.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "gms/view.hpp"

namespace evs::app {

/// One event in a process history (the paper's deliver(m) and view(v)).
struct DeliverEvent {
  ProcessId sender;
  Bytes payload;
};

struct ViewEvent {
  gms::View view;
};

using HistoryEvent = std::variant<ViewEvent, DeliverEvent>;

class History {
 public:
  /// The paper: "the first event of process p's history is the view event
  /// corresponding to joining the group object."
  void record_view(const gms::View& view);
  void record_delivery(ProcessId sender, Bytes payload);

  const std::vector<HistoryEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// h_p^k: the prefix containing the first k events.
  History prefix(std::size_t k) const;

  /// The most recent view event, if any (what "current view" means for a
  /// view-dependent mode function).
  std::optional<gms::View> current_view() const;

  /// Deliveries since the last view event (the view-local suffix).
  std::vector<DeliverEvent> deliveries_in_current_view() const;

  /// Total delivery events over the whole history.
  std::size_t delivery_count() const;

  /// The paper's well-formedness rule: a history must start with a view
  /// event (the join) and every delivery must fall inside some view.
  bool well_formed() const;

  std::string str() const;

 private:
  std::vector<HistoryEvent> events_;
};

/// f : history prefix -> Mode. Must be deterministic; all members of a
/// group object share the same mode function (Section 3).
using HistoryModeFunction = std::function<Mode(const History&)>;

/// Mode function combinators matching the paper's examples.

/// The replicated-file shape: NORMAL in a quorum view, REDUCED otherwise;
/// SETTLING in a quorum view until `caught_up(history)` says the replica
/// is up to date.
HistoryModeFunction quorum_mode_function(
    std::size_t universe_size,
    std::function<bool(const History&)> caught_up);

/// The parallel-db shape: R-mode does not exist; every view change puts
/// the process into SETTLING until `settled(history)` holds in the
/// current view.
HistoryModeFunction always_available_mode_function(
    std::function<bool(const History&)> settled);

/// A delivery-counting readiness predicate: caught up after at least `n`
/// deliveries in the current view (models "replay n log entries").
std::function<bool(const History&)> after_deliveries(std::size_t n);

/// Replays a history through a mode function, returning the mode after
/// every event — the sequence m_k = f(h^k) from the paper. Throws if the
/// history is not well-formed.
std::vector<Mode> mode_trace(const History& history,
                             const HistoryModeFunction& f);

/// Checks that a mode trace only uses Figure-1 edges (with view events
/// allowed to trigger Failure/Repair/Reconfigure and delivery events only
/// the application-driven Reconcile or no change). Returns the offending
/// index, or nullopt if the trace is legal.
std::optional<std::size_t> first_illegal_transition(
    const std::vector<Mode>& trace);

}  // namespace evs::app
