// The paper's application model (Section 3, Figure 1).
//
// A group-object process is always in one of three modes:
//   NORMAL   — serves all external operations,
//   REDUCED  — serves only a subset of external operations,
//   SETTLING — serves internal (reconciliation) operations only,
// and moves between them along exactly four transitions:
//   Failure     (N->R, S->R) — a view not conducive to full service,
//   Repair      (R->S)       — conditions restored, reconstruction begins,
//   Reconfigure (N->S, S->S) — view expanded, state must be rebuilt,
//   Reconcile   (S->N)       — reconstruction done (application-driven,
//                              the only transition synchronous with the
//                              computation).
// ModeMachine enforces that no other edge is ever taken and accounts for
// time spent in each mode (the FIG1 bench reads these counters).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/time.hpp"

namespace evs::app {

enum class Mode : std::uint8_t { Normal = 0, Reduced = 1, Settling = 2 };

enum class Transition : std::uint8_t {
  Failure = 0,
  Repair = 1,
  Reconfigure = 2,
  Reconcile = 3,
};

const char* to_string(Mode mode);
const char* to_string(Transition transition);

/// What the next view supports, from the process's standpoint.
struct ModeInput {
  /// The view permits all external operations (e.g. holds a quorum).
  bool can_serve_all = false;
  /// The process must reconstruct shared state before serving (stale
  /// replica, new members, divergent clusters...). Ignored when
  /// can_serve_all is false.
  bool needs_settling = false;
};

class ModeMachine {
 public:
  /// Processes start in SETTLING: the paper's first event for any process
  /// is the view change delivered by its join, and it cannot serve before
  /// reconciling with whatever state exists.
  explicit ModeMachine(SimTime now) : mode_since_(now) {}

  Mode mode() const { return mode_; }

  /// Evaluates the mode function's verdict for a new view. Returns the
  /// transition taken, if the mode changed class (self-loops such as
  /// S->S Reconfigure are reported too, as the paper treats overlapping
  /// reconstructions as Reconfigure transitions).
  std::optional<Transition> on_view(const ModeInput& input, SimTime now);

  /// Application signals successful completion of the shared-state
  /// reconciliation. Only legal in SETTLING.
  Transition reconcile(SimTime now);

  std::uint64_t count(Transition t) const {
    return transition_counts_[static_cast<std::size_t>(t)];
  }

  /// Accumulated simulated time spent in each mode (flushed up to `now`).
  std::uint64_t occupancy(Mode mode, SimTime now) const;

 private:
  void switch_to(Mode next, Transition via, SimTime now);
  void accumulate(SimTime now);

  Mode mode_ = Mode::Settling;
  SimTime mode_since_ = 0;
  std::array<std::uint64_t, 4> transition_counts_{};
  mutable std::array<std::uint64_t, 3> occupancy_{};
};

}  // namespace evs::app
