#include "app/classify.hpp"

#include <algorithm>
#include <map>

namespace evs::app {

std::string problems_to_string(ProblemSet problems) {
  if (problems == kNoProblem) return "none";
  std::string s;
  const auto add = [&s](const char* name) {
    if (!s.empty()) s += "+";
    s += name;
  };
  if (problems & kStateTransfer) add("transfer");
  if (problems & kStateCreation) add("creation");
  if (problems & kStateMerging) add("merging");
  return s;
}

Classification classify_enriched(const core::EView& eview,
                                 const ServePredicate& can_serve) {
  Classification result;
  // N_set clusters are exactly the subviews that can serve: by the
  // Section 6.2 methodology external operations run within a subview, so
  // a subview capable of serving was serving.
  for (const core::Subview& sv : eview.structure.subviews()) {
    if (can_serve(sv.members)) {
      result.serving_subviews.push_back(sv.id);
    } else {
      result.r_set.insert(result.r_set.end(), sv.members.begin(),
                          sv.members.end());
    }
  }
  std::sort(result.r_set.begin(), result.r_set.end());
  // Most-capable serving subview first (largest membership, then id) so a
  // transferee has a deterministic source.
  std::sort(result.serving_subviews.begin(), result.serving_subviews.end(),
            [&](SubviewId a, SubviewId b) {
              const auto* sa = eview.structure.find_subview(a);
              const auto* sb = eview.structure.find_subview(b);
              if (sa->members.size() != sb->members.size())
                return sa->members.size() > sb->members.size();
              return a < b;
            });

  if (result.serving_subviews.size() >= 2) result.problems |= kStateMerging;
  if (result.serving_subviews.size() >= 1 && !result.r_set.empty())
    result.problems |= kStateTransfer;
  if (result.serving_subviews.empty() && !result.r_set.empty()) {
    result.problems |= kStateCreation;
    // Section 6.2 case (ii): an sv-set whose combined membership can serve
    // marks a creation already in progress.
    for (const core::SvSet& ss : eview.structure.svsets()) {
      std::vector<ProcessId> combined;
      for (const SubviewId id : ss.subviews) {
        const core::Subview* sv = eview.structure.find_subview(id);
        combined.insert(combined.end(), sv->members.begin(), sv->members.end());
      }
      std::sort(combined.begin(), combined.end());
      if (can_serve(combined)) {
        result.creation_in_progress = true;
        break;
      }
    }
  }
  return result;
}

ProblemSet classify_flat(Mode own_prior_mode, const gms::View& new_view,
                         const ServePredicate& can_serve) {
  if (!can_serve(new_view.members)) return kNoProblem;  // still R: nothing to settle
  // The paper's Section 4 example: a process coming out of R-mode knows
  // only that R_set is non-empty (it contains the process itself); it
  // cannot tell transfer from creation, and with partitions it cannot
  // rule out merging either.
  if (own_prior_mode == Mode::Reduced || own_prior_mode == Mode::Settling)
    return kStateTransfer | kStateCreation | kStateMerging;
  // A process that stayed N knows N_set is non-empty, so creation is out —
  // but it cannot count clusters locally.
  return kStateTransfer | kStateMerging;
}

Classification classify_from_discovery(
    const std::vector<DiscoveryReply>& replies, const gms::View& new_view,
    const ServePredicate& can_serve) {
  (void)can_serve;
  Classification result;
  // Cluster prior-N members by prior view.
  std::map<ViewId, std::vector<ProcessId>> clusters;
  for (const DiscoveryReply& reply : replies) {
    if (!new_view.contains(reply.member)) continue;  // stale reply
    if (reply.prior_mode == Mode::Normal) {
      clusters[reply.prior_view].push_back(reply.member);
    } else {
      result.r_set.push_back(reply.member);
    }
  }
  std::sort(result.r_set.begin(), result.r_set.end());
  // Represent discovered clusters as pseudo-subviews keyed by their prior
  // view's coordinator (flat mode has no real subview ids).
  std::vector<std::pair<std::size_t, SubviewId>> ranked;
  for (auto& [view_id, members] : clusters) {
    ranked.emplace_back(members.size(),
                        SubviewId{view_id.coordinator, view_id.epoch});
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (const auto& [size, id] : ranked) result.serving_subviews.push_back(id);

  if (clusters.size() >= 2) result.problems |= kStateMerging;
  if (!clusters.empty() && !result.r_set.empty())
    result.problems |= kStateTransfer;
  if (clusters.empty() && !result.r_set.empty())
    result.problems |= kStateCreation;
  return result;
}

ServePredicate majority_of(std::size_t universe_size) {
  return [universe_size](const std::vector<ProcessId>& members) {
    return members.size() * 2 > universe_size;
  };
}

ServePredicate always_serves() {
  return [](const std::vector<ProcessId>&) { return true; };
}

}  // namespace evs::app
