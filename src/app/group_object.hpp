// Group-object runtime (Sections 3-6 made executable).
//
// GroupObjectBase turns the paper's methodology into a reusable engine.
// A concrete group object (replicated file, parallel database, lock
// manager, ...) supplies:
//   - a serve predicate  ("can this member set serve all external ops?"),
//   - state plumbing     (snapshot / install / deterministic merge),
//   - its external operations, built on mode() and object_multicast().
//
// The base drives the Figure-1 mode machine, classifies every entry into
// S-mode as transfer / creation / merging, and runs the generic
// reconciliation protocol:
//
//   Enriched classifier (the paper's proposal): classification is local —
//   the serving subviews are read straight off the e-view structure. One
//   representative per subview multicasts an OFFER (version + snapshot);
//   once offers cover the structure, everyone deterministically adopts
//   the right state (transfer source, creation winner by Skeen-style
//   last-to-fail epoch, or an application merge of diverged clusters),
//   then the primary collapses the structure with SV-SetMerge +
//   SubviewMerge and members Reconcile back to N-mode. Members of the
//   single serving subview are never disturbed.
//
//   Flat classifier (the Section-4 baseline): structure is ignored. The
//   process can only narrow the problem to a set of possibilities; it
//   must run a discovery round in which *every* member multicasts its
//   prior view, prior mode, version and snapshot. Costs (messages, bytes,
//   latency) are accounted so CLAIM-CLASSIFY can compare.
//
// Transfer strategies (Section 5's discussion): WholeSnapshot ships the
// state inside the OFFER; SplitSmallLarge ships a small critical part
// synchronously and streams the rest in chunks while the new view is
// already serving — time-to-serve vs time-to-full-state are recorded for
// the CLAIM-XFER bench.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "app/classify.hpp"
#include "app/history.hpp"
#include "app/mode.hpp"
#include "evs/endpoint.hpp"
#include "obs/metrics.hpp"
#include "runtime/svc.hpp"

namespace evs::app {

enum class ClassifierMode : std::uint8_t { Enriched = 0, FlatDiscovery = 1 };
enum class TransferStrategy : std::uint8_t {
  WholeSnapshot = 0,
  SplitSmallLarge = 1,
};

struct GroupObjectConfig {
  vsync::EndpointConfig endpoint;
  ClassifierMode classifier = ClassifierMode::Enriched;
  TransferStrategy transfer = TransferStrategy::WholeSnapshot;
  /// Isis-style comparison point: while any settle is in progress, even
  /// up-to-date members suspend external operations.
  bool block_all_during_settle = false;
  /// Chunk size for SplitSmallLarge.
  std::size_t chunk_bytes = 4096;
  /// Pacing between background chunks (SplitSmallLarge): keeps the bulk
  /// stream from starving foreground traffic on a finite-bandwidth link —
  /// this is what makes "transferred concurrently with application
  /// activity in the new view" (Section 5) actually concurrent.
  SimDuration chunk_interval = 300 * kMicrosecond;
  /// Record the Section-3 formal history (view + object-delivery events);
  /// lets tests and tools re-derive mode sequences via app::mode_trace.
  bool record_history = false;
  /// Retry hint (ms) carried in Unavailable/Conflict responses to
  /// external clients (runtime::Node::svc_request).
  std::uint64_t svc_retry_after_ms = 50;
  /// Persist the object's snapshot into the stable store (key
  /// "object.state") after every state change, and recover it in
  /// on_start: behind a durable store a restarted process re-enters the
  /// group with its pre-crash state and version instead of empty. Off by
  /// default — the simulator's recovery scenarios model permanence
  /// explicitly; evs_node switches it on when the config names a store
  /// directory.
  bool persist_state = false;
  /// Bounded-delta state transfer (enriched classifier only): when the
  /// settle classifies as a transfer, representatives defer their
  /// snapshots (the offer carries a flag instead of the bytes) and each
  /// stale member Pulls against its own recovered basis; the serving
  /// representative answers with snapshot_delta(basis), falling back to
  /// the full snapshot when no bounded delta exists. Off by default
  /// (changes settle traffic); evs_node enables it with persist_state.
  bool delta_transfer = false;
};

struct SettleRecord {
  ViewId view;
  ProblemSet problems = kNoProblem;
  SimTime started = 0;
  SimTime serve_ready = 0;  // state good enough to serve
  SimTime fully_done = 0;   // all state applied (chunks included)
};

struct ObjectStats {
  std::uint64_t settles_started = 0;
  std::uint64_t settles_completed = 0;
  std::uint64_t transfers = 0;
  std::uint64_t creations = 0;
  std::uint64_t merges = 0;
  std::uint64_t discovery_rounds = 0;
  std::uint64_t discovery_messages = 0;
  std::uint64_t offer_messages = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t chunk_messages = 0;
  std::uint64_t ambiguous_classifications = 0;  // flat: |possibility set| > 1
  /// Malformed snapshot/delta payloads rejected by install/merge — the
  /// counted alternative to decoding garbage into protocol state.
  std::uint64_t snapshot_decode_errors = 0;
  // Bounded-delta transfer accounting (config.delta_transfer).
  std::uint64_t deferred_offers = 0;       // offers sent without snapshots
  std::uint64_t delta_pulls = 0;           // Pull requests this member sent
  std::uint64_t delta_serves = 0;          // Pulls answered as the source
  std::uint64_t delta_installs = 0;        // deltas applied over local state
  std::uint64_t delta_bytes_sent = 0;      // payload bytes of served answers
  std::uint64_t delta_bytes_received = 0;  // payload bytes of applied answers
  std::uint64_t delta_full_fallbacks = 0;  // answers that shipped full state
  ProblemSet last_problems = kNoProblem;
};

class GroupObjectBase : public core::EvsEndpoint, private core::EvsDelegate {
 public:
  explicit GroupObjectBase(GroupObjectConfig config);

  Mode mode() const { return machine_ ? machine_->mode() : Mode::Settling; }
  const ModeMachine* mode_machine() const {
    return machine_ ? &*machine_ : nullptr;
  }

  /// External operations permitted right now? NORMAL always is; REDUCED
  /// callers must additionally consult their own reduced-op rules.
  bool serving_normal() const;

  const ObjectStats& object_stats() const { return object_stats_; }
  const std::vector<SettleRecord>& settle_log() const { return settle_log_; }
  const Classification& last_classification() const { return classification_; }
  bool state_current() const { return state_current_; }
  /// The recorded formal history (empty unless config.record_history).
  const History& history() const { return history_; }

  /// Projects vsync + EVS + object stats (and mode occupancy/transition
  /// counts) into `registry` under `prefix` (hides, and calls, the
  /// EvsEndpoint export).
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

  void on_start() override;

  /// External-client entry point (runtime::Node). Applies the epoch fence
  /// — a request whose view_epoch is neither 0 (wildcard) nor the
  /// installed view's epoch gets InvalidEpoch{current} — then routes to
  /// the object's svc_dispatch.
  void svc_request(runtime::SvcRequest req,
                   runtime::SvcRespondFn respond) override;

  /// Installed-view epoch, the value clients fence their requests with.
  std::uint64_t view_epoch() const { return eview().view.id.epoch; }

  /// Observes every enriched-view event after the object has processed it
  /// (the object itself occupies the EvsDelegate slot, so a host that
  /// wants to print view lines registers here instead).
  void set_view_observer(std::function<void(const core::EView&)> fn) {
    view_observer_ = std::move(fn);
  }

  /// Svc-originated multicasts answered but not yet delivered back; the
  /// front door's per-node queue depth.
  std::size_t svc_pending() const { return pending_svc_.size(); }

  /// Per-phase latency attribution of svc-originated operations:
  /// order_us  — svc_multicast send to ordered self-delivery (the total-
  ///             order round trip the external write paid);
  /// fence_us  — svc_multicast send to the e-view change that fenced the
  ///             response instead (time the client waited to learn the
  ///             epoch moved);
  /// apply_us  — on_object_deliver duration, every ordered delivery.
  const obs::Histogram& order_latency() const { return order_us_; }
  const obs::Histogram& fence_latency() const { return fence_us_; }
  const obs::Histogram& apply_latency() const { return apply_us_; }

 protected:
  // ----- subclass interface ------------------------------------------
  virtual bool can_serve(const std::vector<ProcessId>& members) const = 0;
  virtual Bytes snapshot_state() const = 0;
  virtual void install_state(const Bytes& snapshot) = 0;
  /// Deterministic merge of diverged cluster states (most-capable cluster
  /// first); every member applies the same inputs in the same order.
  virtual Bytes merge_cluster_states(const std::vector<Bytes>& snapshots) = 0;
  virtual std::uint64_t state_version() const = 0;
  /// Small critical part for SplitSmallLarge (default: whole snapshot).
  virtual Bytes snapshot_small() const { return snapshot_state(); }
  virtual void install_small(const Bytes& snapshot) { install_state(snapshot); }
  /// Bounded-delta transfer hooks (config.delta_transfer). A stale member
  /// describes its recovered state with an opaque basis; the serving
  /// source produces a delta upgrading exactly that basis to its current
  /// state, or nullopt when no bounded delta exists (unknown basis,
  /// rewritten history) — then the full snapshot ships instead. The
  /// defaults force the full-snapshot fallback, so objects without delta
  /// support stay correct under the protocol.
  virtual Bytes delta_basis() const { return {}; }
  virtual std::optional<Bytes> snapshot_delta(const Bytes& basis) const {
    (void)basis;
    return std::nullopt;
  }
  /// Applies a snapshot_delta product over the current state; returns
  /// false when it no longer matches (the member re-pulls the full state).
  virtual bool install_delta(const Bytes& delta) {
    (void)delta;
    return false;
  }
  /// Object-level application traffic (external-operation messages).
  virtual void on_object_deliver(ProcessId sender, const Bytes& payload) = 0;
  virtual void on_mode_change(Mode previous, Mode current) {
    (void)previous;
    (void)current;
  }
  /// Called once per installed view, after mode evaluation — the hook for
  /// deterministic per-view state rules (e.g. dropping a lock whose
  /// holder left the view).
  virtual void on_new_view(const core::EView& eview) { (void)eview; }

  /// Per-object operation dispatch for external-client requests, called
  /// after the base's epoch fence admitted the request. The default
  /// supports nothing; objects override with reads answered immediately
  /// and writes funnelled through svc_multicast.
  virtual void svc_dispatch(runtime::SvcRequest req,
                            runtime::SvcRespondFn respond);

  /// Multicasts an external-operation message (totally ordered).
  void object_multicast(const Bytes& payload);

  /// Multicasts an external-operation message on behalf of an external
  /// client: when the multicast is delivered back at this replica (i.e.
  /// the operation took its place in the total order and was applied),
  /// `finish` builds the typed response and `respond` carries it out. If
  /// an e-view change installs first, the client is answered
  /// InvalidEpoch{new_epoch} instead — the epoch-fencing rule — while the
  /// operation itself still applies in the next view (view synchrony
  /// delivers queued multicasts there; only the *response* is fenced).
  void svc_multicast(const Bytes& payload, runtime::SvcRespondFn respond,
                     std::function<runtime::SvcResponse()> finish);

  /// Unavailable{config.svc_retry_after_ms}: the object cannot serve the
  /// operation right now (settling, minority partition, overload).
  runtime::SvcResponse svc_unavailable() const {
    return runtime::SvcResponse::unavailable(object_config_.svc_retry_after_ms);
  }

 private:
  enum class FrameKind : std::uint8_t {
    Object = 1,
    Offer = 2,
    Chunk = 3,
    Pull = 4,   // stale member asks the serving source for a delta
    Delta = 5,  // source's targeted answer (bounded delta or full state)
  };

  struct Offer {
    ViewId view;
    SubviewId subview;  // enriched: real id; flat: pseudo-id from sender
    ViewId prior_view;
    Mode prior_mode = Mode::Settling;
    bool serving = false;
    std::uint64_t version = 0;
    std::uint64_t recovered_epoch = 0;
    std::uint64_t chunk_count = 0;  // >0: snapshot streamed separately
    /// Delta transfer: the snapshot was withheld — receivers that need it
    /// Pull against their own basis instead of reading it off the offer.
    bool deferred = false;
    Bytes snapshot;
  };

  // EvsDelegate
  void on_eview(const core::EView& eview) override;
  void on_app_deliver(ProcessId sender, const Bytes& payload) override;
  void dispatch_frame(ProcessId sender, const Bytes& payload);

  /// Responds to pending svc ops whose multicast came back at `seq`, and
  /// defensively fails any skipped ones.
  void resolve_pending_svc(std::uint64_t seq);
  /// The epoch fence: answers every unanswered pending svc op
  /// InvalidEpoch{new epoch} at a view change (entries stay queued for
  /// seq alignment — the multicasts themselves deliver in the new view).
  void fence_pending_svc(std::uint64_t new_epoch);

  void evaluate_mode(const core::EView& eview, bool view_changed);
  void start_settle(const core::EView& eview);
  void send_offer_if_rep(const core::EView& eview);
  void handle_offer(ProcessId sender, Decoder& dec);
  void handle_chunk(ProcessId sender, Decoder& dec);
  void handle_pull(ProcessId sender, Decoder& dec);
  void handle_delta(ProcessId sender, Decoder& dec);
  /// Multicasts a Pull against this member's current basis (want_full
  /// forces the source to answer with the whole snapshot).
  void send_pull(bool want_full);
  /// install_state with the malformed-input contract: a DecodeError is
  /// counted (snapshot_decode_errors) and reported as failure instead of
  /// propagating — the member stays settling with its prior state.
  bool checked_install(const Bytes& snapshot);
  /// Marks the settle state-complete (delta path): timestamps, trace,
  /// settle log, reconciliation.
  void finish_delta_settle();
  /// Durable snapshot of the object state (config.persist_state).
  void persist_object_state();
  void maybe_complete_settle();
  void adopt_states();
  void maybe_finish_chunks();
  void maybe_request_merges();
  void try_reconcile();
  bool my_subview_serves() const;
  std::size_t serving_subview_count() const;

  GroupObjectConfig object_config_;
  History history_;
  std::optional<ModeMachine> machine_;
  Classification classification_;
  bool classification_ready_ = false;

  bool state_current_ = false;
  ViewId prior_view_;        // view before the current one
  Mode prior_mode_ = Mode::Settling;
  std::uint64_t recovered_epoch_ = 0;  // from stable store at startup

  // Per-view settle state.
  bool settling_ = false;
  bool adopted_ = false;
  std::map<ProcessId, Offer> offers_;
  struct ChunkAssembly {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Bytes> parts;
  };
  std::map<ProcessId, ChunkAssembly> chunks_;
  /// Set while a split transfer's bulk is still streaming in.
  std::optional<ProcessId> awaiting_full_from_;
  /// Set while a deferred (delta) transfer's answer is outstanding.
  std::optional<ProcessId> awaiting_delta_from_;
  /// One full-snapshot retry per settle when the served delta no longer
  /// applies over the local state (writes raced between Pull and Delta).
  bool delta_retry_full_ = false;
  std::uint64_t last_merge_request_ev_ = UINT64_MAX;
  SettleRecord current_settle_;

  ObjectStats object_stats_;
  std::vector<SettleRecord> settle_log_;

  // ----- external-client (svc) plumbing ------------------------------
  /// Monotonic sequence stamped into every Object frame this member
  /// sends; self-deliveries echo it back so svc completions align even
  /// across view changes.
  std::uint64_t object_send_seq_ = 0;
  /// Trace context of the svc request currently dispatching (0 outside a
  /// traced dispatch): stamped into the Object frame and pushed into the
  /// transport envelope by object_multicast, so the propagated context
  /// survives both the total order and the wire.
  std::uint64_t active_trace_ = 0;
  struct PendingSvcOp {
    std::uint64_t seq = 0;
    /// Trace context the request carried (0 = untraced).
    std::uint64_t trace = 0;
    /// When the multicast went out — the origin of order_us / fence_us.
    SimTime sent = 0;
    /// Nulled once answered (e.g. fenced at a view change); the entry
    /// stays queued until its multicast delivers, keeping seq alignment.
    runtime::SvcRespondFn respond;
    std::function<runtime::SvcResponse()> finish;
  };
  std::deque<PendingSvcOp> pending_svc_;
  obs::Histogram order_us_;
  obs::Histogram fence_us_;
  obs::Histogram apply_us_;
  std::function<void(const core::EView&)> view_observer_;
};

}  // namespace evs::app
