#include "app/mode.hpp"

namespace evs::app {

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::Normal: return "NORMAL";
    case Mode::Reduced: return "REDUCED";
    case Mode::Settling: return "SETTLING";
  }
  return "?";
}

const char* to_string(Transition transition) {
  switch (transition) {
    case Transition::Failure: return "Failure";
    case Transition::Repair: return "Repair";
    case Transition::Reconfigure: return "Reconfigure";
    case Transition::Reconcile: return "Reconcile";
  }
  return "?";
}

void ModeMachine::accumulate(SimTime now) {
  EVS_CHECK(now >= mode_since_);
  occupancy_[static_cast<std::size_t>(mode_)] += now - mode_since_;
  mode_since_ = now;
}

void ModeMachine::switch_to(Mode next, Transition via, SimTime now) {
  // Figure 1's edge set, and nothing else.
  const bool legal =
      (mode_ == Mode::Normal && next == Mode::Reduced && via == Transition::Failure) ||
      (mode_ == Mode::Settling && next == Mode::Reduced && via == Transition::Failure) ||
      (mode_ == Mode::Reduced && next == Mode::Settling && via == Transition::Repair) ||
      (mode_ == Mode::Normal && next == Mode::Settling && via == Transition::Reconfigure) ||
      (mode_ == Mode::Settling && next == Mode::Settling && via == Transition::Reconfigure) ||
      (mode_ == Mode::Settling && next == Mode::Normal && via == Transition::Reconcile);
  EVS_CHECK_MSG(legal, std::string("illegal mode transition ") +
                           to_string(mode_) + " -> " + to_string(next) +
                           " via " + to_string(via));
  accumulate(now);
  mode_ = next;
  ++transition_counts_[static_cast<std::size_t>(via)];
}

std::optional<Transition> ModeMachine::on_view(const ModeInput& input,
                                               SimTime now) {
  if (!input.can_serve_all) {
    // The new view cannot support full service.
    if (mode_ == Mode::Reduced) {
      accumulate(now);
      return std::nullopt;  // R -> R, no transition
    }
    switch_to(Mode::Reduced, Transition::Failure, now);
    return Transition::Failure;
  }
  if (input.needs_settling || mode_ == Mode::Reduced) {
    // The paper forbids R -> N directly; the settle step may be empty,
    // in which case the application reconciles immediately afterwards.
    const Transition via = mode_ == Mode::Reduced ? Transition::Repair
                                                  : Transition::Reconfigure;
    switch_to(Mode::Settling, via, now);
    return via;
  }
  // Full service, no reconstruction needed.
  if (mode_ == Mode::Normal) {
    accumulate(now);
    return std::nullopt;
  }
  // From SETTLING with nothing to settle: the application still owns the
  // Reconcile edge; report a Reconfigure self-loop so it re-evaluates.
  switch_to(Mode::Settling, Transition::Reconfigure, now);
  return Transition::Reconfigure;
}

Transition ModeMachine::reconcile(SimTime now) {
  switch_to(Mode::Normal, Transition::Reconcile, now);
  return Transition::Reconcile;
}

std::uint64_t ModeMachine::occupancy(Mode mode, SimTime now) const {
  // Flush the open interval without mutating mode_since_ semantics.
  std::array<std::uint64_t, 3> snapshot = occupancy_;
  snapshot[static_cast<std::size_t>(mode_)] += now - mode_since_;
  return snapshot[static_cast<std::size_t>(mode)];
}

}  // namespace evs::app
