// Shared-state problem classification (Sections 4 and 6.2).
//
// When a view change pushes processes into S-mode they must determine
// *which* shared-state problem they face:
//   State Transfer — R-mode processes meet an up-to-date N-mode set,
//   State Creation — nobody is up to date (e.g. after total failure),
//   State Merging  — two or more N-mode clusters evolved independently.
//
// classify_enriched() does this with *local information only*, by reading
// the subview/sv-set structure of the new e-view — the paper's Section 6.2
// argument. classify_flat() shows the baseline: with a flat view the
// process can only narrow the answer to a set of possibilities; resolving
// the ambiguity costs a discovery round (modelled by DiscoveryReply and
// classify_from_discovery, whose message cost the CLAIM-CLASSIFY bench
// charges to the flat configuration).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "app/mode.hpp"
#include "evs/structure.hpp"
#include "gms/view.hpp"

namespace evs::app {

enum ProblemBits : std::uint8_t {
  kNoProblem = 0,
  kStateTransfer = 1,
  kStateCreation = 2,
  kStateMerging = 4,
};
using ProblemSet = std::uint8_t;

std::string problems_to_string(ProblemSet problems);

/// Application predicate: can a group of processes holding up-to-date
/// state serve all external operations (e.g. "is a quorum")?
using ServePredicate = std::function<bool(const std::vector<ProcessId>&)>;

struct Classification {
  ProblemSet problems = kNoProblem;
  /// Subviews that were serving (N-mode clusters), most-capable first.
  std::vector<SubviewId> serving_subviews;
  /// Members of non-serving subviews (the R_set).
  std::vector<ProcessId> r_set;
  /// Section 6.2 case (ii): no subview serves, but an sv-set would — a
  /// state creation was already in progress; do not disturb it.
  bool creation_in_progress = false;
};

/// Local-only classification from the enriched view structure.
Classification classify_enriched(const core::EView& eview,
                                 const ServePredicate& can_serve);

/// What a process can conclude from a flat view plus its own history only:
/// a *set* of possible problems (the ambiguity of Section 4's example).
ProblemSet classify_flat(Mode own_prior_mode, const gms::View& new_view,
                         const ServePredicate& can_serve);

/// One member's answer in the discovery round the flat configuration must
/// run to disambiguate (prior view, prior mode, state version).
struct DiscoveryReply {
  ProcessId member;
  ViewId prior_view;
  Mode prior_mode = Mode::Settling;
  std::uint64_t state_version = 0;
};

/// Exact classification from a complete discovery round: clusters are the
/// groups of prior-N members that shared a prior view.
Classification classify_from_discovery(
    const std::vector<DiscoveryReply>& replies, const gms::View& new_view,
    const ServePredicate& can_serve);

/// Convenience predicates.
ServePredicate majority_of(std::size_t universe_size);
ServePredicate always_serves();

}  // namespace evs::app
