// Runtime abstraction: the seam between the protocol stack and the world.
//
// Every layer above the substrate (heartbeat detector, view-synchronous
// endpoint, enriched-view endpoint, application objects) is written against
// the four small interfaces in this header — Transport, Clock,
// TimerService, StableStore — plus the Node base class that bundles them.
// Two runtimes implement the interfaces:
//
//   * sim::World/sim::Network/sim::Scheduler — the deterministic
//     discrete-event simulator (sim/world.hpp hosts a Node via
//     sim::NodeHost, so `world.spawn<core::EvsEndpoint>(...)` keeps
//     working verbatim);
//   * net::EventLoop/net::UdpTransport — a real single-threaded epoll
//     runtime speaking UDP (src/net/), hosted by tools/evs_node.
//
// The contract both runtimes honour:
//   - single-threaded: every callback (deliver, timer, on_start) runs on
//     the runtime's one event thread, never concurrently;
//   - asynchronous, lossy transport: send* may silently drop (partition,
//     loss, unknown peer) — the protocol already assumes this;
//   - time is a monotonic count of microseconds from an arbitrary origin
//     (simulation start / process start), read only through Clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/time.hpp"
#include "obs/trace.hpp"
#include "runtime/svc.hpp"

namespace evs::runtime {

/// The only source of time for protocol code. Monotonic microseconds; the
/// origin is runtime-defined (simulation start or process start), so only
/// differences are meaningful — exactly how SimTime was already used.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

using TimerId = std::uint64_t;

/// One-shot timers. Callbacks run on the runtime's event thread.
class TimerService {
 public:
  virtual ~TimerService() = default;
  virtual TimerId set_timer(SimDuration delay, std::function<void()> fn) = 0;
  /// No-op if the timer already fired or was cancelled.
  virtual void cancel_timer(TimerId id) = 0;
};

/// Unreliable point-to-point message passing with encode-once fan-out.
/// Delivery is runtime-wired: the host registers the node's on_message as
/// the deliver-callback when it binds the node (see Node::bind).
class Transport {
 public:
  /// Deliver-callback signature; `payload` is borrowed for the call.
  using DeliverFn = std::function<void(ProcessId from, const Bytes& payload)>;

  virtual ~Transport() = default;

  /// Sends to one addressed incarnation; stale incarnations never receive.
  virtual void send(ProcessId to, Bytes payload) = 0;

  /// Sends to whatever incarnation lives at `site` on arrival (host:port
  /// addressing — used for discovery traffic such as heartbeats).
  virtual void send_to_site(SiteId site, Bytes payload) = 0;

  /// Fan-out sharing one encoded buffer across all recipients: one encode,
  /// n sends, zero payload copies. Semantically identical to calling
  /// send() once per recipient.
  virtual void send_multi(const std::vector<ProcessId>& recipients,
                          SharedBytes payload) = 0;

  /// Sets the propagated trace context stamped onto subsequently enqueued
  /// frames (net runtimes carry it in the datagram envelope); 0 clears
  /// it. Observability metadata only — delivery never depends on it, and
  /// the default (and the simulator) ignores it entirely.
  virtual void set_trace_context(std::uint64_t trace) { (void)trace; }
};

/// Per-site permanent storage (the paper's "permanent part of the local
/// state", Section 3): survives the crash of an incarnation.
class StableStore {
 public:
  virtual ~StableStore() = default;
  /// Atomically replaces the value under `key`.
  virtual void put(const std::string& key, Bytes value) = 0;
  virtual std::optional<Bytes> get(const std::string& key) const = 0;
  virtual void erase(const std::string& key) = 0;
  virtual bool contains(const std::string& key) const = 0;
};

/// In-memory StableStore with cost counters; the simulator's per-site
/// store and the default store of the net runtime (durable file-backed
/// storage can slot in behind the same interface later).
class MemoryStore : public StableStore {
 public:
  void put(const std::string& key, Bytes value) override;
  std::optional<Bytes> get(const std::string& key) const override;
  void erase(const std::string& key) override;
  bool contains(const std::string& key) const override;

  std::size_t size() const { return entries_.size(); }
  /// Total payload bytes held — used by benches to report storage cost.
  std::size_t bytes() const;
  /// Number of put() calls — a proxy for synchronous-write cost.
  std::uint64_t writes() const { return writes_; }

 private:
  std::map<std::string, Bytes> entries_;
  std::uint64_t writes_ = 0;
};

/// View of another store under a key prefix — the per-group namespace a
/// multi-group host gives each instance, so two groups persisting the
/// same logical key (epoch, snapshot) in the site's one store never
/// collide. The inner store must outlive the view.
class PrefixStore final : public StableStore {
 public:
  PrefixStore(StableStore& inner, std::string prefix)
      : inner_(inner), prefix_(std::move(prefix)) {}

  void put(const std::string& key, Bytes value) override {
    inner_.put(prefix_ + key, std::move(value));
  }
  std::optional<Bytes> get(const std::string& key) const override {
    return inner_.get(prefix_ + key);
  }
  void erase(const std::string& key) override { inner_.erase(prefix_ + key); }
  bool contains(const std::string& key) const override {
    return inner_.contains(prefix_ + key);
  }

 private:
  StableStore& inner_;
  std::string prefix_;
};

/// Everything a Node needs from its runtime, as non-owning pointers; the
/// host guarantees they outlive the node's callbacks.
struct Env {
  Transport* transport = nullptr;
  Clock* clock = nullptr;
  TimerService* timers = nullptr;
  StableStore* store = nullptr;
  /// Optional structured-event sink (may be null; hooks must check).
  obs::TraceBus* trace = nullptr;
  /// Tears down this incarnation: the simulator crashes the actor, the
  /// net runtime stops its event loop. Used by voluntary leave().
  std::function<void()> halt;
};

/// Base class for every protocol endpoint. Mirrors the surface sim::Actor
/// used to provide so the stack ports without behavioural change; all
/// facilities resolve through the injected Env.
class Node {
 public:
  virtual ~Node();

  ProcessId id() const { return id_; }
  bool alive() const { return alive_; }

  /// The runtime's trace bus, or nullptr. Hooks should test
  /// `trace() != nullptr && trace()->enabled()` before building an event.
  obs::TraceBus* trace() const { return env_.trace; }

  /// Current time from the injected Clock (usable from const members).
  SimTime now() const;

  /// Called once after bind(), at the host's start event.
  virtual void on_start() {}

  /// One JSON object describing this node's protocol state, served by the
  /// net runtime's admin plane as part of GET /status (net/admin.hpp).
  /// Endpoint classes override this to report view id, mode, structure
  /// and counters; the base reports nothing.
  virtual std::string admin_status_json() const { return "{}"; }

  /// Handles an admin-plane control command ("join", "leave", "merge-all",
  /// "merge"; `arg` carries the command's argument text, e.g. the sv-set
  /// id list of a "merge"). Runs on the runtime's event thread like any
  /// other callback. Returns true when the command was accepted; on
  /// rejection returns false and sets `error`. The base class supports no
  /// commands — endpoint classes override this to expose their
  /// application-control surface (the paper's SVSetMerge / SubviewMerge /
  /// leave calls) to the host.
  virtual bool admin_command(const std::string& name, const std::string& arg,
                             std::string& error);

  /// Handles one external-client request from the front-door service
  /// (src/svc/, runtime/svc.hpp). Runs on the runtime's event thread.
  /// The node must call `respond` exactly once — immediately for reads
  /// and rejections, deferred for ordered writes (when the operation is
  /// applied at this replica or an e-view change fences it). The base
  /// class hosts no servable object and answers Unsupported; group
  /// objects override this with epoch-checked dispatch
  /// (app::GroupObjectBase::svc_request).
  virtual void svc_request(SvcRequest req, SvcRespondFn respond);

  /// Called for every message delivered to this incarnation while alive.
  virtual void on_message(ProcessId from, const Bytes& payload) = 0;

  /// Called when the incarnation is torn down, before detach().
  virtual void on_crash() {}

  // ----- host-side wiring (sim::NodeHost / net::NetRuntime) -----------

  /// Injects the runtime services and this incarnation's identity. Must
  /// happen before on_start(); the host also routes the transport's
  /// deliver-callback to on_message().
  void bind(Env env, ProcessId id);

  /// Marks the incarnation dead: outstanding timers are cancelled out of
  /// the runtime's wheel (they capture `this`; a multi-group host destroys
  /// nodes while the shared wheel lives on), sends become no-ops.
  void detach();

 protected:
  void send(ProcessId to, Bytes payload);
  void send_to_site(SiteId site, Bytes payload);
  /// Encode-once fan-out: every recipient's delivery shares one buffer.
  void send_multi(const std::vector<ProcessId>& recipients, SharedBytes payload);

  /// Schedules a callback that is silently dropped if this incarnation is
  /// no longer alive when it fires.
  TimerId set_timer(SimDuration delay, std::function<void()> fn);
  void cancel_timer(TimerId id);

  /// This site's permanent storage (survives crashes).
  StableStore& store();

  /// Announces that this incarnation is done (crash/stop via the host).
  void halt();

  const Env& env() const { return env_; }

 private:
  /// Cancels every timer this node still has registered with the shared
  /// TimerService. Called by detach() and the destructor so a torn-down
  /// group instance leaves nothing behind in the host's wheel.
  void cancel_all_timers();

  Env env_;
  ProcessId id_{};
  bool alive_ = false;
  /// Ids of timers set but not yet fired/cancelled; the set_timer wrapper
  /// erases on fire, cancel_timer on cancel.
  std::unordered_set<TimerId> live_timers_;
};

}  // namespace evs::runtime
