#include "runtime/runtime.hpp"

#include <memory>
#include <utility>

#include "common/check.hpp"

namespace evs::runtime {

void MemoryStore::put(const std::string& key, Bytes value) {
  ++writes_;
  entries_[key] = std::move(value);
}

std::optional<Bytes> MemoryStore::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void MemoryStore::erase(const std::string& key) { entries_.erase(key); }

bool MemoryStore::contains(const std::string& key) const {
  return entries_.contains(key);
}

std::size_t MemoryStore::bytes() const {
  std::size_t total = 0;
  for (const auto& [key, value] : entries_) total += value.size();
  return total;
}

void Node::bind(Env env, ProcessId id) {
  EVS_CHECK(env.transport != nullptr);
  EVS_CHECK(env.clock != nullptr);
  EVS_CHECK(env.timers != nullptr);
  env_ = std::move(env);
  id_ = id;
  alive_ = true;
}

bool Node::admin_command(const std::string& name, const std::string&,
                         std::string& error) {
  error = "node does not support command '" + name + "'";
  return false;
}

void Node::svc_request(SvcRequest, SvcRespondFn respond) {
  EVS_CHECK(respond != nullptr);
  respond(SvcResponse::unsupported());
}

const char* to_string(SvcStatus status) {
  switch (status) {
    case SvcStatus::Ok: return "ok";
    case SvcStatus::Conflict: return "conflict";
    case SvcStatus::InvalidEpoch: return "invalid_epoch";
    case SvcStatus::Unavailable: return "unavailable";
    case SvcStatus::Unsupported: return "unsupported";
    case SvcStatus::NotLeader: return "not_leader";
  }
  return "unknown";
}

const char* to_string(SvcOp op) {
  switch (op) {
    case SvcOp::Get: return "get";
    case SvcOp::Put: return "put";
    case SvcOp::Lock: return "lock";
    case SvcOp::Unlock: return "unlock";
    case SvcOp::Append: return "append";
    case SvcOp::LogAppend: return "log_append";
    case SvcOp::LogRead: return "log_read";
    case SvcOp::LogTail: return "log_tail";
    case SvcOp::LogSeal: return "log_seal";
    case SvcOp::LogTrim: return "log_trim";
    case SvcOp::LogFill: return "log_fill";
  }
  return "unknown";
}

SimTime Node::now() const {
  EVS_CHECK(env_.clock != nullptr);
  return env_.clock->now();
}

void Node::send(ProcessId to, Bytes payload) {
  if (!alive_) return;
  env_.transport->send(to, std::move(payload));
}

void Node::send_to_site(SiteId site, Bytes payload) {
  if (!alive_) return;
  env_.transport->send_to_site(site, std::move(payload));
}

void Node::send_multi(const std::vector<ProcessId>& recipients,
                      SharedBytes payload) {
  if (!alive_) return;
  env_.transport->send_multi(recipients, std::move(payload));
}

TimerId Node::set_timer(SimDuration delay, std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  // The wrapper captures `this`, so every registered timer must be gone
  // from the shared wheel before the node is destroyed: detach() and the
  // destructor cancel everything in live_timers_. The id slot is filled
  // after registration — safe because the runtime is single-threaded, so
  // nothing can fire between set_timer() returning and the slot being set.
  auto slot = std::make_shared<TimerId>(0);
  const TimerId id =
      env_.timers->set_timer(delay, [this, slot, fn = std::move(fn)]() {
        live_timers_.erase(*slot);
        if (alive_) fn();
      });
  *slot = id;
  live_timers_.insert(id);
  return id;
}

void Node::cancel_timer(TimerId id) {
  live_timers_.erase(id);
  env_.timers->cancel_timer(id);
}

Node::~Node() { cancel_all_timers(); }

void Node::detach() {
  alive_ = false;
  cancel_all_timers();
}

void Node::cancel_all_timers() {
  if (env_.timers == nullptr) return;
  for (const TimerId id : live_timers_) env_.timers->cancel_timer(id);
  live_timers_.clear();
}

StableStore& Node::store() {
  EVS_CHECK(env_.store != nullptr);
  return *env_.store;
}

void Node::halt() {
  if (env_.halt) env_.halt();
}

}  // namespace evs::runtime
