#include "runtime/runtime.hpp"

#include <utility>

#include "common/check.hpp"

namespace evs::runtime {

void MemoryStore::put(const std::string& key, Bytes value) {
  ++writes_;
  entries_[key] = std::move(value);
}

std::optional<Bytes> MemoryStore::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void MemoryStore::erase(const std::string& key) { entries_.erase(key); }

bool MemoryStore::contains(const std::string& key) const {
  return entries_.contains(key);
}

std::size_t MemoryStore::bytes() const {
  std::size_t total = 0;
  for (const auto& [key, value] : entries_) total += value.size();
  return total;
}

void Node::bind(Env env, ProcessId id) {
  EVS_CHECK(env.transport != nullptr);
  EVS_CHECK(env.clock != nullptr);
  EVS_CHECK(env.timers != nullptr);
  env_ = std::move(env);
  id_ = id;
  alive_ = true;
}

bool Node::admin_command(const std::string& name, const std::string&,
                         std::string& error) {
  error = "node does not support command '" + name + "'";
  return false;
}

void Node::svc_request(SvcRequest, SvcRespondFn respond) {
  EVS_CHECK(respond != nullptr);
  respond(SvcResponse::unsupported());
}

const char* to_string(SvcStatus status) {
  switch (status) {
    case SvcStatus::Ok: return "ok";
    case SvcStatus::Conflict: return "conflict";
    case SvcStatus::InvalidEpoch: return "invalid_epoch";
    case SvcStatus::Unavailable: return "unavailable";
    case SvcStatus::Unsupported: return "unsupported";
  }
  return "unknown";
}

const char* to_string(SvcOp op) {
  switch (op) {
    case SvcOp::Get: return "get";
    case SvcOp::Put: return "put";
    case SvcOp::Lock: return "lock";
    case SvcOp::Unlock: return "unlock";
    case SvcOp::Append: return "append";
  }
  return "unknown";
}

SimTime Node::now() const {
  EVS_CHECK(env_.clock != nullptr);
  return env_.clock->now();
}

void Node::send(ProcessId to, Bytes payload) {
  if (!alive_) return;
  env_.transport->send(to, std::move(payload));
}

void Node::send_to_site(SiteId site, Bytes payload) {
  if (!alive_) return;
  env_.transport->send_to_site(site, std::move(payload));
}

void Node::send_multi(const std::vector<ProcessId>& recipients,
                      SharedBytes payload) {
  if (!alive_) return;
  env_.transport->send_multi(recipients, std::move(payload));
}

TimerId Node::set_timer(SimDuration delay, std::function<void()> fn) {
  EVS_CHECK(fn != nullptr);
  // Nodes outlive their timers (both runtimes keep the node in memory
  // until teardown), so capturing `this` is safe; alive_ gates execution.
  return env_.timers->set_timer(delay, [this, fn = std::move(fn)]() {
    if (alive_) fn();
  });
}

void Node::cancel_timer(TimerId id) { env_.timers->cancel_timer(id); }

StableStore& Node::store() {
  EVS_CHECK(env_.store != nullptr);
  return *env_.store;
}

void Node::halt() {
  if (env_.halt) env_.halt();
}

}  // namespace evs::runtime
