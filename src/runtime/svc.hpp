// Client front door, part 1: the typed request/response surface a hosted
// node exposes to external (non-member) clients.
//
// The paper's group objects serve *members*; scaling to millions of users
// means lightweight clients that are not members at all. They speak a
// small request/response protocol (src/svc/) whose requests are routed
// into the hosted node through runtime::Node::svc_request and answered
// with one of the typed outcomes below — modelled on an MLS-style epoch
// server: every outcome either carries the data, a retry hint, or the
// current view epoch so the client can re-fence itself.
//
// The epoch-fencing rule: every request carries the client's last-known
// view epoch (0 = "unknown, accept any"). A request whose epoch does not
// match the serving node's installed view is rejected with
// InvalidEpoch{current_epoch} instead of being applied against state the
// client has never observed; a request accepted but still in flight when
// an e-view change installs is rejected the same way rather than left to
// hang or silently retried. Clients always get exactly one typed answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace evs::runtime {

/// The external-operation set the front door multiplexes: Get/Put drive
/// the mergeable KV (and whole-file read/write), Lock/Unlock the lock
/// manager, Append the replicated file.
enum class SvcOp : std::uint8_t {
  Get = 1,
  Put = 2,
  Lock = 3,
  Unlock = 4,
  Append = 5,
};

/// Typed outcome variants (the MLS epoch-server shape).
enum class SvcStatus : std::uint8_t {
  /// Applied (or read); `value` and the current `view_epoch` are valid.
  Ok = 1,
  /// Refused by application logic (e.g. lock held); retry after the hint.
  Conflict = 2,
  /// The client's epoch is stale across an e-view change; `view_epoch`
  /// carries the node's current epoch for the client to re-fence with.
  InvalidEpoch = 3,
  /// Not serving right now (minority partition, settling, admission
  /// control shed); retry after the hint.
  Unavailable = 4,
  /// The hosted object has no such operation; retrying cannot help.
  Unsupported = 5,
};

const char* to_string(SvcStatus status);
const char* to_string(SvcOp op);

struct SvcRequest {
  SvcOp op = SvcOp::Get;
  /// Client's last-known view epoch; 0 accepts whatever is installed.
  std::uint64_t view_epoch = 0;
  std::string key;    // Get/Put
  std::string value;  // Put/Append
};

struct SvcResponse {
  SvcStatus status = SvcStatus::Unsupported;
  std::string value;                 // Ok: Get/read result (else empty)
  std::uint64_t view_epoch = 0;      // Ok / InvalidEpoch
  std::uint64_t retry_after_ms = 0;  // Conflict / Unavailable

  static SvcResponse ok(std::uint64_t epoch, std::string value = {}) {
    SvcResponse r;
    r.status = SvcStatus::Ok;
    r.view_epoch = epoch;
    r.value = std::move(value);
    return r;
  }
  static SvcResponse conflict(std::uint64_t retry_after_ms) {
    SvcResponse r;
    r.status = SvcStatus::Conflict;
    r.retry_after_ms = retry_after_ms;
    return r;
  }
  static SvcResponse invalid_epoch(std::uint64_t current_epoch) {
    SvcResponse r;
    r.status = SvcStatus::InvalidEpoch;
    r.view_epoch = current_epoch;
    return r;
  }
  static SvcResponse unavailable(std::uint64_t retry_after_ms) {
    SvcResponse r;
    r.status = SvcStatus::Unavailable;
    r.retry_after_ms = retry_after_ms;
    return r;
  }
  static SvcResponse unsupported() { return SvcResponse{}; }
};

/// Completion callback for one request. The node must invoke it exactly
/// once, on the runtime's event thread — immediately for reads and
/// rejections, deferred for ordered writes (fired when the operation is
/// applied at this replica, or when a view change fences it).
using SvcRespondFn = std::function<void(SvcResponse)>;

}  // namespace evs::runtime
