// Client front door, part 1: the typed request/response surface a hosted
// node exposes to external (non-member) clients.
//
// The paper's group objects serve *members*; scaling to millions of users
// means lightweight clients that are not members at all. They speak a
// small request/response protocol (src/svc/) whose requests are routed
// into the hosted node through runtime::Node::svc_request and answered
// with one of the typed outcomes below — modelled on an MLS-style epoch
// server: every outcome either carries the data, a retry hint, or the
// current view epoch so the client can re-fence itself.
//
// The epoch-fencing rule: every request carries the client's last-known
// view epoch (0 = "unknown, accept any"). A request whose epoch does not
// match the serving node's installed view is rejected with
// InvalidEpoch{current_epoch} instead of being applied against state the
// client has never observed; a request accepted but still in flight when
// an e-view change installs is rejected the same way rather than left to
// hang or silently retried. Clients always get exactly one typed answer.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/ids.hpp"

namespace evs::runtime {

/// The external-operation set the front door multiplexes: Get/Put drive
/// the mergeable KV (and whole-file read/write), Lock/Unlock the lock
/// manager, Append the replicated file. The Log* family drives the
/// sharded shared log (src/log/): positions in requests and responses are
/// *global* log positions, decimal-encoded in key/value.
enum class SvcOp : std::uint8_t {
  Get = 1,
  Put = 2,
  Lock = 3,
  Unlock = 4,
  Append = 5,
  /// Append `value` to the log; key (optional) is the routing key that
  /// picks the shard. Ok carries the assigned global position in `value`.
  LogAppend = 6,
  /// Read the record at global position `key`. Ok's value is tagged:
  /// 'D'+bytes = data, 'F' = filled (junk), 'T' = trimmed away.
  LogRead = 7,
  /// Global tail: Ok's value is the smallest global position not yet
  /// assigned by any shard (decimal).
  LogTail = 8,
  /// Seal epoch `key`: the shard refuses appends while its view epoch is
  /// <= the sealed epoch; a view change re-opens it at the new epoch.
  LogSeal = 9,
  /// Trim the shard owning global position `key`: discards its records at
  /// local positions below that point (a global trim issues one per shard).
  LogTrim = 10,
  /// Fill global position `key` with junk if unwritten, advancing the
  /// owning shard's tail past it — unblocks in-order global readers.
  LogFill = 11,
};

/// Typed outcome variants (the MLS epoch-server shape).
enum class SvcStatus : std::uint8_t {
  /// Applied (or read); `value` and the current `view_epoch` are valid.
  Ok = 1,
  /// Refused by application logic (e.g. lock held); retry after the hint.
  Conflict = 2,
  /// The client's epoch is stale across an e-view change; `view_epoch`
  /// carries the node's current epoch for the client to re-fence with.
  InvalidEpoch = 3,
  /// Not serving right now (minority partition, settling, admission
  /// control shed); retry after the hint.
  Unavailable = 4,
  /// The hosted object has no such operation; retrying cannot help.
  Unsupported = 5,
  /// Writes go to the shard coordinator; `coordinator_site` names it.
  /// Reads are served by any member, so only ordered writes see this.
  NotLeader = 6,
};

const char* to_string(SvcStatus status);
const char* to_string(SvcOp op);

struct SvcRequest {
  SvcOp op = SvcOp::Get;
  /// Group instance the request addresses (multi-group hosts); 0 targets
  /// the default group. Log ops ignore it — the host routes them to the
  /// owning shard itself.
  GroupId group = kDefaultGroup;
  /// Client's last-known view epoch; 0 accepts whatever is installed.
  std::uint64_t view_epoch = 0;
  /// Propagated trace context (Dapper-style): a client-chosen or
  /// SDK-generated 64-bit id that rides the wire frame, is stamped into
  /// the ordered multicast the request provokes, and labels the
  /// Request* trace events at every hop. 0 = no context.
  std::uint64_t trace_id = 0;
  /// Sampling decision, made by the client; hops only emit trace events
  /// (and stamp envelopes) for sampled requests with a non-zero trace_id.
  bool sampled = false;
  std::string key;    // Get/Put, Log* position / routing key
  std::string value;  // Put/Append/LogAppend
};

/// The trace id hops act on: non-zero only when the client both set an id
/// and asked for sampling.
inline std::uint64_t effective_trace(const SvcRequest& req) {
  return req.sampled ? req.trace_id : 0;
}

struct SvcResponse {
  SvcStatus status = SvcStatus::Unsupported;
  std::string value;                 // Ok: Get/read result (else empty)
  std::uint64_t view_epoch = 0;      // Ok / InvalidEpoch
  std::uint64_t retry_after_ms = 0;  // Conflict / Unavailable
  std::uint32_t coordinator_site = 0;  // NotLeader: where writes go

  static SvcResponse ok(std::uint64_t epoch, std::string value = {}) {
    SvcResponse r;
    r.status = SvcStatus::Ok;
    r.view_epoch = epoch;
    r.value = std::move(value);
    return r;
  }
  static SvcResponse conflict(std::uint64_t retry_after_ms) {
    SvcResponse r;
    r.status = SvcStatus::Conflict;
    r.retry_after_ms = retry_after_ms;
    return r;
  }
  static SvcResponse invalid_epoch(std::uint64_t current_epoch) {
    SvcResponse r;
    r.status = SvcStatus::InvalidEpoch;
    r.view_epoch = current_epoch;
    return r;
  }
  static SvcResponse unavailable(std::uint64_t retry_after_ms) {
    SvcResponse r;
    r.status = SvcStatus::Unavailable;
    r.retry_after_ms = retry_after_ms;
    return r;
  }
  static SvcResponse unsupported() { return SvcResponse{}; }
  static SvcResponse not_leader(std::uint32_t coordinator_site,
                                std::uint64_t epoch) {
    SvcResponse r;
    r.status = SvcStatus::NotLeader;
    r.coordinator_site = coordinator_site;
    r.view_epoch = epoch;
    return r;
  }
};

/// Completion callback for one request. The node must invoke it exactly
/// once, on the runtime's event thread — immediately for reads and
/// rejections, deferred for ordered writes (fired when the operation is
/// applied at this replica, or when a view change fences it).
using SvcRespondFn = std::function<void(SvcResponse)>;

}  // namespace evs::runtime
