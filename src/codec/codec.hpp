// Bounds-checked binary encoder/decoder for wire messages.
//
// Every protocol message in the stack (membership rounds, flush summaries,
// e-view structures, application payloads) is serialised through these two
// classes. Decoding is defensive: any out-of-bounds or malformed read
// throws DecodeError instead of reading garbage, so a corrupted or
// truncated payload can never silently corrupt protocol state.
//
// Encoding is little-endian fixed width for scalars plus LEB128 varints
// for lengths and counters.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace evs {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Encoder {
 public:
  Encoder() = default;

  /// Size hint: pre-allocates the buffer so a known-size message encodes
  /// with a single allocation. Over-estimating slightly is fine; framing
  /// adds one tag byte, so hint `expected + 1` when the encoder will be
  /// passed to gms::frame.
  void reserve(std::size_t expected_bytes) { buffer_.reserve(expected_bytes); }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// Unsigned LEB128; compact for small lengths/counters.
  void put_varint(std::uint64_t v);
  void put_bool(bool v);
  void put_string(std::string_view s);
  void put_bytes(const Bytes& b);

  void put_site(SiteId id);
  void put_process(ProcessId id);
  void put_view_id(ViewId id);
  void put_subview_id(SubviewId id);
  void put_svset_id(SvSetId id);

  template <typename T, typename Fn>
  void put_vector(const std::vector<T>& items, Fn&& put_item) {
    put_varint(items.size());
    for (const T& item : items) put_item(*this, item);
  }

  const Bytes& buffer() const& { return buffer_; }
  Bytes take() && { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class Decoder {
 public:
  /// The decoder borrows the buffer; it must outlive the decoder.
  explicit Decoder(const Bytes& buffer) : data_(buffer.data()), size_(buffer.size()) {}
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  bool get_bool();
  std::string get_string();
  Bytes get_bytes();

  SiteId get_site();
  ProcessId get_process();
  ViewId get_view_id();
  SubviewId get_subview_id();
  SvSetId get_svset_id();

  template <typename T, typename Fn>
  std::vector<T> get_vector(Fn&& get_item) {
    const std::uint64_t n = get_varint();
    // A length prefix can never legitimately exceed the remaining bytes
    // (every element encodes to at least one byte); reject early so a
    // hostile length cannot trigger a huge allocation.
    if (n > remaining()) throw DecodeError("vector length exceeds buffer");
    std::vector<T> items;
    items.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) items.push_back(get_item(*this));
    return items;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }
  /// Throws unless the whole buffer was consumed — catches trailing junk.
  void expect_end() const;

 private:
  void require(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace evs
