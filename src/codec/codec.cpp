#include "codec/codec.hpp"

namespace evs {

void Encoder::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void Encoder::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}

void Encoder::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}

void Encoder::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void Encoder::put_bool(bool v) { put_u8(v ? 1 : 0); }

void Encoder::put_string(std::string_view s) {
  put_varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Encoder::put_bytes(const Bytes& b) {
  put_varint(b.size());
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

void Encoder::put_site(SiteId id) { put_u32(id.value); }

void Encoder::put_process(ProcessId id) {
  put_site(id.site);
  put_u32(id.incarnation);
}

void Encoder::put_view_id(ViewId id) {
  put_u64(id.epoch);
  put_process(id.coordinator);
}

void Encoder::put_subview_id(SubviewId id) {
  put_process(id.origin);
  put_u64(id.counter);
}

void Encoder::put_svset_id(SvSetId id) {
  put_process(id.origin);
  put_u64(id.counter);
}

void Decoder::require(std::size_t n) const {
  if (remaining() < n) throw DecodeError("buffer underflow");
}

std::uint8_t Decoder::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t Decoder::get_u16() {
  const auto lo = get_u8();
  const auto hi = get_u8();
  return static_cast<std::uint16_t>(lo | (std::uint16_t{hi} << 8));
}

std::uint32_t Decoder::get_u32() {
  const auto lo = get_u16();
  const auto hi = get_u16();
  return lo | (std::uint32_t{hi} << 16);
}

std::uint64_t Decoder::get_u64() {
  const auto lo = get_u32();
  const auto hi = get_u32();
  return lo | (std::uint64_t{hi} << 32);
}

std::uint64_t Decoder::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw DecodeError("varint too long");
    const std::uint8_t byte = get_u8();
    value |= std::uint64_t{byte & 0x7fu} << shift;
    if ((byte & 0x80u) == 0) break;
    shift += 7;
  }
  return value;
}

bool Decoder::get_bool() {
  const std::uint8_t v = get_u8();
  if (v > 1) throw DecodeError("malformed bool");
  return v == 1;
}

std::string Decoder::get_string() {
  const std::uint64_t n = get_varint();
  require(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

Bytes Decoder::get_bytes() {
  const std::uint64_t n = get_varint();
  require(static_cast<std::size_t>(n));
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += static_cast<std::size_t>(n);
  return b;
}

SiteId Decoder::get_site() { return SiteId{get_u32()}; }

ProcessId Decoder::get_process() {
  ProcessId id;
  id.site = get_site();
  id.incarnation = get_u32();
  return id;
}

ViewId Decoder::get_view_id() {
  ViewId id;
  id.epoch = get_u64();
  id.coordinator = get_process();
  return id;
}

SubviewId Decoder::get_subview_id() {
  SubviewId id;
  id.origin = get_process();
  id.counter = get_u64();
  return id;
}

SvSetId Decoder::get_svset_id() {
  SvSetId id;
  id.origin = get_process();
  id.counter = get_u64();
  return id;
}

void Decoder::expect_end() const {
  if (!at_end()) throw DecodeError("trailing bytes after message");
}

}  // namespace evs
