#include "store/wal_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "codec/codec.hpp"

namespace evs::store {
namespace {

constexpr std::uint8_t kRecordPut = 1;
constexpr std::uint8_t kRecordErase = 2;
// "EVS1" little-endian; guards against pointing the store at a foreign file.
constexpr std::uint32_t kSnapshotMagic = 0x31535645u;
// A record body can never legitimately approach this; recovery treats a
// larger length prefix as corruption instead of attempting the read.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void put_u32_le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("WalStore: " + what + ": " + std::strerror(errno));
}

void write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      fail("write");
    }
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

WalStore::WalStore(WalStoreConfig config) : config_(std::move(config)) {
  if (config_.dir.empty()) throw std::runtime_error("WalStore: empty dir");
  if (::mkdir(config_.dir.c_str(), 0755) != 0 && errno != EEXIST)
    fail("mkdir " + config_.dir);
  wal_path_ = config_.dir + "/wal.log";
  snapshot_path_ = config_.dir + "/snapshot.db";
  dir_fd_ = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd_ < 0) fail("open " + config_.dir);
  load_snapshot();
  wal_fd_ = ::open(wal_path_.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (wal_fd_ < 0) fail("open " + wal_path_);
  replay_wal();
}

WalStore::~WalStore() {
  // Best-effort durability for whatever the host buffered after its last
  // flush hook; a destructor must not throw past a failing disk.
  try {
    flush();
  } catch (const std::exception&) {
  }
  if (wal_fd_ >= 0) ::close(wal_fd_);
  if (dir_fd_ >= 0) ::close(dir_fd_);
}

void WalStore::put(const std::string& key, Bytes value) {
  Encoder body;
  body.reserve(1 + key.size() + value.size() + 10);
  body.put_u8(kRecordPut);
  body.put_string(key);
  body.put_bytes(value);
  append_record(std::move(body).take());
  ++stats_.puts;
  entries_[key] = std::move(value);
}

std::optional<Bytes> WalStore::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void WalStore::erase(const std::string& key) {
  // Erasing an absent key is a no-op both in the image and on disk — the
  // replay would be identical either way, so don't grow the log for it.
  if (entries_.erase(key) == 0) return;
  Encoder body;
  body.put_u8(kRecordErase);
  body.put_string(key);
  append_record(std::move(body).take());
  ++stats_.erases;
}

bool WalStore::contains(const std::string& key) const {
  return entries_.contains(key);
}

void WalStore::append_record(Bytes body) {
  put_u32_le(pending_, static_cast<std::uint32_t>(body.size()));
  put_u32_le(pending_, crc32(body.data(), body.size()));
  pending_.insert(pending_.end(), body.begin(), body.end());
  ++pending_records_;
}

void WalStore::flush() {
  if (pending_.empty()) return;
  const auto start = std::chrono::steady_clock::now();
  write_all(wal_fd_, pending_.data(), pending_.size());
  if (config_.sync) {
    if (::fdatasync(wal_fd_) != 0) fail("fdatasync");
    ++stats_.fsync_calls;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  sync_us_.record(static_cast<double>(elapsed.count()) / 1000.0);
  batch_records_.record(static_cast<double>(pending_records_));
  ++stats_.flushes;
  stats_.wal_records += pending_records_;
  stats_.wal_bytes += pending_.size();
  wal_size_ += pending_.size();
  pending_.clear();
  pending_records_ = 0;
  if (config_.snapshot_after_bytes != 0 &&
      wal_size_ > config_.snapshot_after_bytes)
    compact();
}

void WalStore::compact() {
  // Pending records need no separate sync: their effects are already in
  // the image the snapshot serialises, and the snapshot supersedes the
  // whole log.
  write_snapshot();
  if (::ftruncate(wal_fd_, 0) != 0) fail("ftruncate " + wal_path_);
  if (config_.sync) {
    if (::fdatasync(wal_fd_) != 0) fail("fdatasync");
    ++stats_.fsync_calls;
  }
  wal_size_ = 0;
  pending_.clear();
  pending_records_ = 0;
}

std::size_t WalStore::bytes() const {
  std::size_t total = 0;
  for (const auto& [key, value] : entries_) total += value.size();
  return total;
}

void WalStore::write_snapshot() {
  Encoder payload;
  payload.put_varint(entries_.size());
  for (const auto& [key, value] : entries_) {
    payload.put_string(key);
    payload.put_bytes(value);
  }
  Bytes file;
  file.reserve(8 + payload.size());
  put_u32_le(file, kSnapshotMagic);
  put_u32_le(file, crc32(payload.buffer().data(), payload.size()));
  file.insert(file.end(), payload.buffer().begin(), payload.buffer().end());

  // tmp-write -> fsync -> rename -> fsync(dir): the visible snapshot.db is
  // always a complete image, old or new, never a torn one.
  const std::string tmp = snapshot_path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + tmp);
  try {
    write_all(fd, file.data(), file.size());
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (config_.sync && ::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync " + tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), snapshot_path_.c_str()) != 0)
    fail("rename " + tmp);
  if (config_.sync) {
    if (::fsync(dir_fd_) != 0) fail("fsync " + config_.dir);
    stats_.fsync_calls += 2;  // snapshot file + directory entry
  }
  ++stats_.snapshots;
  stats_.snapshot_bytes = file.size();
}

void WalStore::load_snapshot() {
  const int fd = ::open(snapshot_path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return;
    fail("open " + snapshot_path_);
  }
  Bytes file;
  struct stat st {};
  if (::fstat(fd, &st) == 0 && st.st_size > 0)
    file.resize(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < file.size()) {
    const ssize_t got = ::read(fd, file.data() + off, file.size() - off);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("read " + snapshot_path_);
    }
    if (got == 0) break;
    off += static_cast<std::size_t>(got);
  }
  ::close(fd);
  file.resize(off);

  // The rename discipline makes a torn snapshot impossible under the
  // crash model; a bad magic/CRC here means external corruption. Count it
  // and recover from whatever the WAL still holds rather than crash.
  if (file.size() < 8 || get_u32_le(file.data()) != kSnapshotMagic ||
      get_u32_le(file.data() + 4) != crc32(file.data() + 8, file.size() - 8)) {
    ++stats_.snapshot_decode_errors;
    return;
  }
  try {
    Decoder dec(file.data() + 8, file.size() - 8);
    const std::uint64_t count = dec.get_varint();
    std::map<std::string, Bytes> image;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::string key = dec.get_string();
      image[std::move(key)] = dec.get_bytes();
    }
    dec.expect_end();
    entries_ = std::move(image);
  } catch (const DecodeError&) {
    entries_.clear();
    ++stats_.snapshot_decode_errors;
    return;
  }
  stats_.recovered_snapshot_keys = entries_.size();
  stats_.snapshot_bytes = file.size();
}

void WalStore::replay_wal() {
  struct stat st {};
  if (::fstat(wal_fd_, &st) != 0) fail("fstat " + wal_path_);
  Bytes log(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < log.size()) {
    const ssize_t got =
        ::pread(wal_fd_, log.data() + off, log.size() - off,
                static_cast<off_t>(off));
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("read " + wal_path_);
    }
    if (got == 0) break;
    off += static_cast<std::size_t>(got);
  }
  log.resize(off);

  // Replay until the first short, CRC-failing or undecodable record: a
  // crash mid-append leaves exactly such a torn tail, and everything
  // before it is intact by the append-only discipline.
  std::size_t pos = 0;
  while (pos + 8 <= log.size()) {
    const std::uint32_t len = get_u32_le(log.data() + pos);
    const std::uint32_t crc = get_u32_le(log.data() + pos + 4);
    if (len > kMaxRecordBytes || pos + 8 + len > log.size()) break;
    const std::uint8_t* body = log.data() + pos + 8;
    if (crc32(body, len) != crc) break;
    try {
      Decoder dec(body, len);
      const std::uint8_t kind = dec.get_u8();
      std::string key = dec.get_string();
      if (kind == kRecordPut) {
        Bytes value = dec.get_bytes();
        dec.expect_end();
        entries_[std::move(key)] = std::move(value);
      } else if (kind == kRecordErase) {
        dec.expect_end();
        entries_.erase(key);
      } else {
        break;
      }
    } catch (const DecodeError&) {
      break;
    }
    pos += 8 + len;
    ++stats_.recovered_records;
  }
  if (pos < log.size()) {
    // Truncate back to the last good boundary so future appends extend a
    // clean log instead of burying garbage mid-file.
    stats_.torn_tail_bytes = log.size() - pos;
    if (::ftruncate(wal_fd_, static_cast<off_t>(pos)) != 0)
      fail("ftruncate " + wal_path_);
    if (config_.sync && ::fdatasync(wal_fd_) != 0) fail("fdatasync");
  }
  wal_size_ = pos;
}

void WalStore::export_metrics(obs::MetricsRegistry& registry,
                              const std::string& prefix) const {
  registry.counter(prefix + ".puts").set(stats_.puts);
  registry.counter(prefix + ".erases").set(stats_.erases);
  registry.counter(prefix + ".flushes").set(stats_.flushes);
  registry.counter(prefix + ".fsync_calls").set(stats_.fsync_calls);
  registry.counter(prefix + ".wal_records").set(stats_.wal_records);
  registry.counter(prefix + ".wal_bytes").set(stats_.wal_bytes);
  registry.counter(prefix + ".snapshots").set(stats_.snapshots);
  registry.counter(prefix + ".snapshot_bytes").set(stats_.snapshot_bytes);
  registry.counter(prefix + ".recovered_records").set(stats_.recovered_records);
  registry.counter(prefix + ".recovered_snapshot_keys")
      .set(stats_.recovered_snapshot_keys);
  registry.counter(prefix + ".torn_tail_bytes").set(stats_.torn_tail_bytes);
  registry.counter(prefix + ".snapshot_decode_errors")
      .set(stats_.snapshot_decode_errors);
  registry.counter(prefix + ".keys").set(entries_.size());
  registry.counter(prefix + ".bytes").set(bytes());
  registry.counter(prefix + ".pending_records").set(pending_records_);
  registry.counter(prefix + ".wal_size_bytes").set(wal_size_);
  registry.histogram(prefix + ".sync_us") = sync_us_;
  registry.histogram(prefix + ".batch_records") = batch_records_;
}

}  // namespace evs::store
