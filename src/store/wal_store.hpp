// Durable StableStore: append-only write-ahead log + snapshots.
//
// WalStore implements the runtime::StableStore seam (the paper's
// "permanent part of the local state", Section 3) on a real filesystem,
// so a SIGKILL'd evs_node recovers its epoch, incarnation and object
// state from disk instead of rejoining empty.
//
// Layout of the store directory:
//
//   wal.log       append-only log of put/erase records
//   snapshot.db   latest compaction point (atomically renamed into place)
//
// Record framing (WAL): [u32 len][u32 crc32][body], both little-endian,
// where len is the body size and crc32 covers the body only. The body is
// codec-encoded: u8 kind (1 = put, 2 = erase), key as a varint-prefixed
// string, and for puts the value as varint-prefixed bytes — an empty
// value therefore encodes distinctly from an erase, so `put(k, {})`
// round-trips as present-with-empty, never as absent.
//
// Group commit: put()/erase() apply to the in-memory image immediately
// (read-your-writes) and append the encoded record to a pending buffer;
// nothing touches the kernel until flush(), which issues one write() and
// one fdatasync() for the whole batch. The net runtime calls flush() from
// an event-loop flush hook, so every put coalesced within one loop
// iteration shares a single fsync — the amortisation bench/store_wal
// measures. Durability is therefore at flush boundaries: a crash between
// put() and flush() loses the tail batch, which the protocol tolerates
// exactly as it tolerates crashing just before the put.
//
// Snapshots: compact() writes the full image to snapshot.tmp, fsyncs,
// renames over snapshot.db, fsyncs the directory, then truncates the WAL.
// Replaying the complete WAL over the snapshot it produced is idempotent
// (records apply last-writer-wins in order), so a crash between the
// rename and the truncate recovers correctly.
//
// Recovery (constructor): load snapshot.db if present (magic + whole-file
// CRC; a corrupt snapshot is counted and skipped), then replay wal.log
// record by record. The first short or CRC-failing record ends the replay
// — a torn tail from a crash mid-write — and the file is truncated back
// to the last good boundary so subsequent appends extend a clean log.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/runtime.hpp"

namespace evs::store {

struct WalStoreConfig {
  /// Directory holding wal.log + snapshot.db; created if missing (one
  /// level — the parent must exist).
  std::string dir;
  /// WAL size (bytes of synced records) above which flush() triggers an
  /// automatic compaction; 0 disables auto-compaction.
  std::size_t snapshot_after_bytes = 4u << 20;
  /// fdatasync on every flush (the durability half of group commit).
  /// Tests may disable to separate batching behaviour from sync cost.
  bool sync = true;
};

/// Cheap always-on accumulators, exported under "store." by
/// export_metrics(); the CI bench smoke asserts fsync_calls < puts under
/// batching.
struct WalStoreStats {
  std::uint64_t puts = 0;
  std::uint64_t erases = 0;
  std::uint64_t flushes = 0;
  std::uint64_t fsync_calls = 0;
  std::uint64_t wal_records = 0;  // records synced to the log
  std::uint64_t wal_bytes = 0;    // framed bytes synced to the log
  std::uint64_t snapshots = 0;
  std::uint64_t snapshot_bytes = 0;  // size of the latest snapshot
  // Recovery: what the constructor found on disk.
  std::uint64_t recovered_snapshot_keys = 0;
  std::uint64_t recovered_records = 0;
  std::uint64_t torn_tail_bytes = 0;       // bytes dropped at the WAL tail
  std::uint64_t snapshot_decode_errors = 0;  // corrupt snapshot skipped
};

class WalStore final : public runtime::StableStore {
 public:
  /// Opens (creating if needed) the store directory and recovers the
  /// image: snapshot first, then a torn-tail-tolerant WAL replay. Throws
  /// std::runtime_error when the directory or files cannot be opened.
  explicit WalStore(WalStoreConfig config);
  ~WalStore() override;

  WalStore(const WalStore&) = delete;
  WalStore& operator=(const WalStore&) = delete;

  // StableStore — reads serve from the in-memory image (read-your-writes
  // within an unflushed batch), writes buffer until flush().
  void put(const std::string& key, Bytes value) override;
  std::optional<Bytes> get(const std::string& key) const override;
  void erase(const std::string& key) override;
  bool contains(const std::string& key) const override;

  /// Group commit: one write() + one fdatasync() covering every record
  /// buffered since the last flush. No-op when nothing is pending.
  void flush();

  /// Snapshot + WAL truncation (see header comment for the crash-safe
  /// ordering). Pending records need no separate sync — their effects are
  /// in the image the snapshot serialises.
  void compact();

  std::size_t size() const { return entries_.size(); }
  /// Total payload bytes held in the image (MemoryStore-compatible).
  std::size_t bytes() const;
  /// Records buffered but not yet synced.
  std::size_t pending_records() const { return pending_records_; }
  std::size_t wal_size() const { return wal_size_; }

  const WalStoreStats& stats() const { return stats_; }

  /// Projects stats + sync latency/batch-size histograms under
  /// `prefix.` ("store." in the net runtime's /metrics).
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix) const;

 private:
  void append_record(Bytes body);
  void load_snapshot();
  void replay_wal();
  void write_snapshot();

  WalStoreConfig config_;
  std::string wal_path_;
  std::string snapshot_path_;
  int wal_fd_ = -1;
  int dir_fd_ = -1;

  std::map<std::string, Bytes> entries_;
  Bytes pending_;                    // framed records awaiting flush()
  std::size_t pending_records_ = 0;
  std::size_t wal_size_ = 0;         // synced bytes currently in wal.log

  WalStoreStats stats_;
  obs::Histogram sync_us_;        // write+fdatasync latency per flush
  obs::Histogram batch_records_;  // records amortised per fsync
};

}  // namespace evs::store
