#include "objects/lock_manager.hpp"

#include "common/log.hpp"

namespace evs::objects {

LockManager::LockManager(LockConfig config)
    : app::GroupObjectBase(config.object), config_(std::move(config)) {}

bool LockManager::can_serve(const std::vector<ProcessId>& members) const {
  return members.size() * 2 > config().universe.size();
}

bool LockManager::acquire() {
  if (!serving_normal()) return false;
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Op::Acquire));
  enc.put_u64(now());  // lease decisions use message stamps
  object_multicast(std::move(enc).take());
  return true;
}

bool LockManager::release() {
  if (!serving_normal()) return false;
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Op::Release));
  enc.put_u64(now());
  object_multicast(std::move(enc).take());
  return true;
}

void LockManager::svc_dispatch(runtime::SvcRequest req,
                               runtime::SvcRespondFn respond) {
  using runtime::SvcOp;
  using runtime::SvcResponse;
  // Remaining lease in ms (>= 1 so a client never gets "retry after 0"
  // while the lease still fences it).
  const auto remaining_ms = [this](SimTime at) -> std::uint64_t {
    if (!holder_.has_value() || lease_expiry() <= at) return 1;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(lease_expiry() - at) / 1000);
  };
  switch (req.op) {
    case SvcOp::Get: {
      const auto h = holder();
      respond(SvcResponse::ok(view_epoch(), h ? to_string(*h) : ""));
      return;
    }
    case SvcOp::Lock: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      const SimTime stamp = now();
      if (lease_active_at(stamp) && holder_ != id()) {
        // Known-lost before ordering: someone else's lease fences us.
        respond(SvcResponse::conflict(remaining_ms(stamp)));
        return;
      }
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(Op::Acquire));
      enc.put_u64(stamp);
      svc_multicast(std::move(enc).take(), std::move(respond),
                    [this, remaining_ms]() {
                      // Post-apply: did *this* replica's acquire win?
                      if (i_hold_the_lock())
                        return SvcResponse::ok(view_epoch(), to_string(id()));
                      return SvcResponse::conflict(remaining_ms(now()));
                    });
      return;
    }
    case SvcOp::Unlock: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(Op::Release));
      enc.put_u64(now());
      // Release only clears a lease this member holds; unlocking a lock
      // we do not hold is an ordered no-op, reported Ok (idempotent).
      svc_multicast(std::move(enc).take(), std::move(respond),
                    [this]() { return SvcResponse::ok(view_epoch()); });
      return;
    }
    default:
      respond(SvcResponse::unsupported());
  }
}

std::optional<ProcessId> LockManager::holder() const {
  // An expired lease no longer names a holder, even before anyone
  // re-acquires.
  if (!lease_active_at(now())) return std::nullopt;
  return holder_;
}

bool LockManager::i_hold_the_lock() const {
  // Fencing: the belief dies with the lease, with the quorum (R-mode),
  // and during view changes (blocked). Mutual exclusion then holds even
  // while this process has not yet learned it was partitioned away.
  if (mode() != app::Mode::Normal || blocked()) return false;
  return lease_active_at(now()) && holder_ == id();
}

void LockManager::on_object_deliver(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  const Op op = static_cast<Op>(dec.get_u8());
  const SimTime stamp = dec.get_u64();
  switch (op) {
    case Op::Acquire:
      // Deterministic at every replica: grant iff no lease was active at
      // the *acquirer's* timestamp. Total order arbitrates ties.
      if (!lease_active_at(stamp)) {
        holder_ = sender;
        grant_stamp_ = stamp;
        ++grants_;
        ++version_;
      }
      break;
    case Op::Release:
      if (holder_ == sender) {
        holder_.reset();
        grant_stamp_ = 0;
        ++version_;
      }
      break;
    default:
      throw DecodeError("LockManager: bad op");
  }
}

void LockManager::on_new_view(const core::EView& eview) {
  // A holder that did not survive into the view loses its *identity* as
  // holder immediately — but the lease window still fences re-grants, in
  // case the departed holder is alive on the other side of a partition
  // and still (correctly) believes the lock is its own until expiry.
  if (holder_ && !eview.view.contains(*holder_)) {
    holder_.reset();  // grant_stamp_ deliberately kept
    ++version_;
  }
}

Bytes LockManager::snapshot_state() const {
  Encoder enc;
  enc.put_varint(version_);
  enc.put_u64(grant_stamp_);
  enc.put_bool(holder_.has_value());
  if (holder_) enc.put_process(*holder_);
  return std::move(enc).take();
}

void LockManager::install_state(const Bytes& snapshot) {
  // The settle engine only hands us the agreed authoritative state; any
  // local divergence (e.g. state touched while our view was already
  // superseded) must be discarded, so no monotonicity guard here.
  // Decode to temporaries with exhaustion checked, then commit: a
  // malformed snapshot must not leave a half-installed lock (version
  // bumped, holder untouched).
  Decoder dec(snapshot);
  const std::uint64_t version = dec.get_varint();
  const std::uint64_t grant_stamp = dec.get_u64();
  std::optional<ProcessId> holder;
  if (dec.get_bool()) holder = dec.get_process();
  dec.expect_end();
  version_ = version;
  // Never shorten a lease fence we already know about: the authoritative
  // side may not have seen the latest grant we did (or vice versa).
  grant_stamp_ = std::max(grant_stamp_, grant_stamp);
  holder_ = holder;
}

Bytes LockManager::merge_cluster_states(const std::vector<Bytes>& snapshots) {
  // Majority quorums intersect: at most one cluster was serving, and the
  // classification orders it first. Its state is authoritative; versions
  // break ties defensively.
  Bytes best;
  bool found = false;
  std::uint64_t best_version = 0;
  for (const Bytes& snapshot : snapshots) {
    // Validate the whole candidate so a malformed cluster snapshot fails
    // the merge (counted upstream) instead of winning it.
    Decoder dec(snapshot);
    const std::uint64_t version = dec.get_varint();
    dec.get_u64();
    if (dec.get_bool()) dec.get_process();
    dec.expect_end();
    if (!found || version > best_version) {
      found = true;
      best_version = version;
      best = snapshot;
    }
  }
  if (!found) throw DecodeError("LockManager: no cluster state to merge");
  return best;
}

}  // namespace evs::objects
