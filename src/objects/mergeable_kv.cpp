#include "objects/mergeable_kv.hpp"

#include <algorithm>

namespace evs::objects {

MergeableKv::MergeableKv(app::GroupObjectConfig config)
    : app::GroupObjectBase(std::move(config)) {}

bool MergeableKv::can_serve(const std::vector<ProcessId>& members) const {
  (void)members;
  return true;  // progress in every partition
}

bool MergeableKv::put(const std::string& key, const std::string& value) {
  if (!serving_normal()) return false;
  Encoder enc;
  enc.put_string(key);
  enc.put_string(value);
  enc.put_varint(lamport_ + 1);
  object_multicast(std::move(enc).take());
  return true;
}

std::optional<std::string> MergeableKv::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.value;
}

void MergeableKv::svc_dispatch(runtime::SvcRequest req,
                               runtime::SvcRespondFn respond) {
  using runtime::SvcOp;
  using runtime::SvcResponse;
  switch (req.op) {
    case SvcOp::Get:
      respond(SvcResponse::ok(view_epoch(), get(req.key).value_or("")));
      return;
    case SvcOp::Put: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      Encoder enc;
      enc.put_string(req.key);
      enc.put_string(req.value);
      enc.put_varint(lamport_ + 1);
      svc_multicast(std::move(enc).take(), std::move(respond),
                    [this]() { return SvcResponse::ok(view_epoch()); });
      return;
    }
    default:
      respond(SvcResponse::unsupported());
  }
}

void MergeableKv::on_object_deliver(ProcessId sender, const Bytes& payload) {
  Decoder dec(payload);
  std::string key = dec.get_string();
  std::string value = dec.get_string();
  const std::uint64_t stamp = dec.get_varint();
  lamport_ = std::max(lamport_, stamp);
  Entry& entry = entries_[std::move(key)];
  // Last-writer-wins with writer-id tiebreak.
  if (std::make_pair(stamp, sender) >=
      std::make_pair(entry.stamp, entry.writer)) {
    entry.value = std::move(value);
    entry.stamp = stamp;
    entry.writer = sender;
  }
  ++version_;
}

Bytes MergeableKv::encode_entries(const std::map<std::string, Entry>& entries,
                                  std::uint64_t version, std::uint64_t lamport) {
  Encoder enc;
  enc.put_varint(version);
  enc.put_varint(lamport);
  enc.put_varint(entries.size());
  for (const auto& [key, entry] : entries) {
    enc.put_string(key);
    enc.put_string(entry.value);
    enc.put_varint(entry.stamp);
    enc.put_process(entry.writer);
  }
  return std::move(enc).take();
}

void MergeableKv::decode_entries(Decoder& dec,
                                 std::map<std::string, Entry>& out,
                                 std::uint64_t& version, std::uint64_t& lamport) {
  version = dec.get_varint();
  lamport = dec.get_varint();
  const std::uint64_t n = dec.get_varint();
  // Each entry takes several encoded bytes: a count beyond the remaining
  // payload is a corrupt length field, rejected before it can loop.
  if (n > dec.remaining()) throw DecodeError("MergeableKv: entry count too large");
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = dec.get_string();
    Entry entry;
    entry.value = dec.get_string();
    entry.stamp = dec.get_varint();
    entry.writer = dec.get_process();
    out[std::move(key)] = std::move(entry);
  }
  dec.expect_end();
}

Bytes MergeableKv::snapshot_state() const {
  return encode_entries(entries_, version_, lamport_);
}

void MergeableKv::install_state(const Bytes& snapshot) {
  Decoder dec(snapshot);
  std::map<std::string, Entry> entries;
  std::uint64_t version = 0;
  std::uint64_t lamport = 0;
  decode_entries(dec, entries, version, lamport);
  entries_ = std::move(entries);
  version_ = std::max(version_, version);
  lamport_ = std::max(lamport_, lamport);
}

Bytes MergeableKv::merge_cluster_states(const std::vector<Bytes>& snapshots) {
  std::map<std::string, Entry> merged;
  std::uint64_t version = 0;
  std::uint64_t lamport = 0;
  for (const Bytes& snapshot : snapshots) {
    Decoder dec(snapshot);
    std::map<std::string, Entry> entries;
    std::uint64_t v = 0;
    std::uint64_t l = 0;
    decode_entries(dec, entries, v, l);
    version = std::max(version, v);
    lamport = std::max(lamport, l);
    for (auto& [key, entry] : entries) {
      const auto it = merged.find(key);
      if (it == merged.end() ||
          std::make_pair(entry.stamp, entry.writer) >
              std::make_pair(it->second.stamp, it->second.writer)) {
        merged[key] = std::move(entry);
      }
    }
  }
  return encode_entries(merged, version + 1, lamport);
}

}  // namespace evs::objects
