#include "objects/replicated_file.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace evs::objects {

namespace {

constexpr const char* kStateKey = "file.state";

/// FNV-1a 64 over a content prefix — the delta basis's cheap proof that
/// the source's file still begins with the receiver's recovered bytes.
std::uint64_t fnv1a(const std::string& data, std::size_t len) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

ReplicatedFile::ReplicatedFile(ReplicatedFileConfig config)
    : app::GroupObjectBase(config.object), config_(std::move(config)) {
  for (const SiteId site : config_.object.endpoint.universe)
    total_votes_ += votes_of(site);
  if (config_.quorum == 0) config_.quorum = total_votes_ / 2 + 1;
}

std::uint32_t ReplicatedFile::votes_of(SiteId site) const {
  const auto it = config_.votes.find(site);
  return it == config_.votes.end() ? 1 : it->second;
}

void ReplicatedFile::on_start() {
  // Permanent local state: a recovered incarnation resumes from its
  // site's replica (possibly stale — the settle protocol fixes that).
  if (const auto bytes = store().get(kStateKey)) {
    try {
      Decoder dec(*bytes);
      version_ = dec.get_varint();
      content_ = dec.get_string();
    } catch (const DecodeError&) {
      version_ = 0;
      content_.clear();
    }
  }
  app::GroupObjectBase::on_start();
}

bool ReplicatedFile::can_serve(const std::vector<ProcessId>& members) const {
  std::uint32_t votes = 0;
  for (const ProcessId member : members) votes += votes_of(member.site);
  return votes >= config_.quorum;
}

bool ReplicatedFile::write(const std::string& content) {
  if (!serving_normal()) return false;
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Op::Write));
  enc.put_varint(version_ + 1);
  enc.put_string(content);
  object_multicast(std::move(enc).take());
  return true;
}

bool ReplicatedFile::append(const std::string& data) {
  if (!serving_normal()) return false;
  Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(Op::Append));
  enc.put_string(data);
  object_multicast(std::move(enc).take());
  return true;
}

std::optional<std::string> ReplicatedFile::read() const {
  // Reads are permitted in N- and R-mode (stale data is allowed); a
  // process that has never installed any state has nothing to return.
  if (mode() == app::Mode::Settling && !state_current()) return std::nullopt;
  return content_;
}

void ReplicatedFile::on_object_deliver(ProcessId sender, const Bytes& payload) {
  (void)sender;
  Decoder dec(payload);
  switch (static_cast<Op>(dec.get_u8())) {
    case Op::Write: {
      const std::uint64_t new_version = dec.get_varint();
      std::string new_content = dec.get_string();
      // Total order makes versions monotone; a concurrent write raced an
      // earlier one and was ordered second — it wins with a bumped version.
      version_ = std::max(version_ + 1, new_version);
      content_ = std::move(new_content);
      break;
    }
    case Op::Append:
      // Appends carry no version: each replica applies them in the one
      // global delivery order, so version/content stay identical.
      ++version_;
      content_ += dec.get_string();
      break;
    default:
      throw DecodeError("ReplicatedFile: bad op");
  }
  ++writes_applied_;
  persist();
}

void ReplicatedFile::svc_dispatch(runtime::SvcRequest req,
                                  runtime::SvcRespondFn respond) {
  using runtime::SvcOp;
  using runtime::SvcResponse;
  switch (req.op) {
    case SvcOp::Get: {
      const auto content = read();
      if (!content) {
        respond(svc_unavailable());  // settling with no state yet
        return;
      }
      respond(SvcResponse::ok(view_epoch(), *content));
      return;
    }
    case SvcOp::Put: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(Op::Write));
      enc.put_varint(version_ + 1);
      enc.put_string(req.value);
      svc_multicast(std::move(enc).take(), std::move(respond),
                    [this]() { return SvcResponse::ok(view_epoch()); });
      return;
    }
    case SvcOp::Append: {
      if (!serving_normal()) {
        respond(svc_unavailable());
        return;
      }
      Encoder enc;
      enc.put_u8(static_cast<std::uint8_t>(Op::Append));
      enc.put_string(req.value);
      svc_multicast(std::move(enc).take(), std::move(respond),
                    [this]() { return SvcResponse::ok(view_epoch()); });
      return;
    }
    default:
      respond(SvcResponse::unsupported());
  }
}

Bytes ReplicatedFile::snapshot_state() const {
  Encoder enc;
  enc.put_varint(version_);
  enc.put_string(content_);
  return std::move(enc).take();
}

void ReplicatedFile::install_state(const Bytes& snapshot) {
  // The settle engine only installs the agreed authoritative state. A
  // local version that is *higher* can only come from writes applied in a
  // superseded view that never reached a quorum — they are correctly
  // discarded here (one-copy semantics).
  // Decode to temporaries and demand exhaustion before committing: a
  // malformed snapshot must be rejected whole (the settle engine counts
  // the DecodeError), never half-installed.
  Decoder dec(snapshot);
  const std::uint64_t version = dec.get_varint();
  std::string content = dec.get_string();
  dec.expect_end();
  version_ = version;
  content_ = std::move(content);
  persist();
}

Bytes ReplicatedFile::snapshot_small() const {
  Encoder enc;
  enc.put_varint(version_);
  enc.put_string("");  // content follows via chunks
  return std::move(enc).take();
}

void ReplicatedFile::install_small(const Bytes& snapshot) {
  Decoder dec(snapshot);
  const std::uint64_t version = dec.get_varint();
  dec.get_string();  // empty content placeholder
  dec.expect_end();
  // Adopt the version marker only; local content stays (stale reads are
  // allowed) until the streamed full state arrives.
  if (version > version_) version_ = version;
}

Bytes ReplicatedFile::delta_basis() const {
  Encoder enc;
  enc.put_varint(version_);
  enc.put_varint(content_.size());
  enc.put_u64(fnv1a(content_, content_.size()));
  return std::move(enc).take();
}

std::optional<Bytes> ReplicatedFile::snapshot_delta(const Bytes& basis) const {
  std::uint64_t base_version = 0;
  std::uint64_t base_len = 0;
  std::uint64_t base_hash = 0;
  try {
    Decoder dec(basis);
    base_version = dec.get_varint();
    base_len = dec.get_varint();
    base_hash = dec.get_u64();
    dec.expect_end();
  } catch (const DecodeError&) {
    return std::nullopt;  // unreadable basis: ship the full state
  }
  // Bounded delta exists iff the receiver's recovered file is a prefix of
  // ours — i.e. only appends happened since it went away.
  if (base_version > version_ || base_len > content_.size()) return std::nullopt;
  if (fnv1a(content_, static_cast<std::size_t>(base_len)) != base_hash)
    return std::nullopt;
  Encoder enc;
  enc.put_varint(version_);
  enc.put_varint(base_len);
  enc.put_string(content_.substr(static_cast<std::size_t>(base_len)));
  return std::move(enc).take();
}

bool ReplicatedFile::install_delta(const Bytes& delta) {
  Decoder dec(delta);
  const std::uint64_t version = dec.get_varint();
  const std::uint64_t base_len = dec.get_varint();
  std::string suffix = dec.get_string();
  dec.expect_end();
  // Ordered deliveries may have advanced this replica between its Pull and
  // the answer; a length mismatch means the delta's basis is gone.
  if (base_len != content_.size()) return false;
  content_ += suffix;
  version_ = version;
  persist();
  return true;
}

Bytes ReplicatedFile::merge_cluster_states(const std::vector<Bytes>& snapshots) {
  // Write quorums intersect, so at most one cluster can have accepted
  // writes; the highest version is the authoritative copy.
  Bytes best;
  bool found = false;
  std::uint64_t best_version = 0;
  for (const Bytes& snapshot : snapshots) {
    // Validate the whole candidate, not just the version header — a
    // malformed cluster snapshot must fail the merge (counted upstream),
    // not win it and detonate on install.
    Decoder dec(snapshot);
    const std::uint64_t version = dec.get_varint();
    dec.get_string();
    dec.expect_end();
    if (!found || version > best_version) {
      found = true;
      best_version = version;
      best = snapshot;
    }
  }
  if (!found) throw DecodeError("ReplicatedFile: no cluster state to merge");
  return best;
}

void ReplicatedFile::persist() {
  store().put(kStateKey, snapshot_state());
}

}  // namespace evs::objects
