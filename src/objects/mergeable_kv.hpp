// A weak-consistency key-value store that keeps serving in *every*
// partition — the class of applications the paper says the primary-
// partition model cannot support ("the inability to support applications
// with weak consistency requirements that could make progress in multiple
// concurrent partitions", Section 5) and the reason state merging exists.
//
// Every put is stamped with a Lamport timestamp and the writer id; when
// partitions heal, the clusters' states merge per-key by last-writer-wins
// — a genuine exercise of the State Merging problem where *both* inputs
// contribute.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "app/group_object.hpp"

namespace evs::objects {

class MergeableKv : public app::GroupObjectBase {
 public:
  explicit MergeableKv(app::GroupObjectConfig config);

  /// External operation, available in any view (N-mode everywhere).
  bool put(const std::string& key, const std::string& value);

  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  std::uint64_t version() const { return version_; }
  std::uint64_t lamport() const { return lamport_; }

 protected:
  bool can_serve(const std::vector<ProcessId>& members) const override;
  Bytes snapshot_state() const override;
  void install_state(const Bytes& snapshot) override;
  Bytes merge_cluster_states(const std::vector<Bytes>& snapshots) override;
  std::uint64_t state_version() const override { return version_; }
  void on_object_deliver(ProcessId sender, const Bytes& payload) override;
  /// External clients: Get answers immediately (empty value = absent, and
  /// a KV serves every partition, so reads never wait); Put completes when
  /// the write is ordered and applied, or is fenced by a view change.
  void svc_dispatch(runtime::SvcRequest req,
                    runtime::SvcRespondFn respond) override;

 private:
  struct Entry {
    std::string value;
    std::uint64_t stamp = 0;
    ProcessId writer;
  };

  static Bytes encode_entries(const std::map<std::string, Entry>& entries,
                              std::uint64_t version, std::uint64_t lamport);
  static void decode_entries(Decoder& dec, std::map<std::string, Entry>& out,
                             std::uint64_t& version, std::uint64_t& lamport);

  std::map<std::string, Entry> entries_;
  std::uint64_t version_ = 0;
  std::uint64_t lamport_ = 0;
};

}  // namespace evs::objects
