// The paper's first worked example (Section 3): a group object
// implementing a file with read and write external operations.
//
// "With respect to write operations, the group object should behave
//  exactly as if there were only one copy of the file; with respect to
//  read operations, it is allowable to return stale data."
//
// Each replica holds a vote; writes need a quorum of votes obtainable in
// at most one concurrent view. Mode interpretation (straight from the
// paper): a quorum view is N-mode (reads + writes), a non-quorum view is
// R-mode (reads only — the reduced external-operation subset), and a view
// where some members hold stale replicas is S-mode until they are brought
// up to date.
//
// Writes are multicast through the totally-ordered channel, so replicas
// apply them in one global order; version numbers are monotonic. The
// file content and version persist in the site's stable store, modelling
// the permanent part of the local state (recovery reloads them).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "app/group_object.hpp"

namespace evs::objects {

struct ReplicatedFileConfig {
  app::GroupObjectConfig object;
  /// Votes per site; sites absent from the map hold 1 vote.
  std::map<SiteId, std::uint32_t> votes;
  /// Votes needed for a write quorum; 0 = strict majority of total votes.
  std::uint32_t quorum = 0;
};

class ReplicatedFile : public app::GroupObjectBase {
 public:
  explicit ReplicatedFile(ReplicatedFileConfig config);

  /// External operation: write the whole file. Returns false when the
  /// object is not in N-mode (no quorum or still settling) — the caller
  /// must retry later, exactly as a client of the paper's object would.
  bool write(const std::string& content);

  /// External operation: read. Allowed in N- and R-mode; may be stale.
  std::optional<std::string> read() const;

  /// External operation: append to the file. Ordered like write(); each
  /// replica applies appends in the one global order, so the content
  /// stays identical everywhere. Returns false when not in N-mode.
  bool append(const std::string& data);

  std::uint64_t version() const { return version_; }
  const std::string& content() const { return content_; }
  std::uint64_t writes_applied() const { return writes_applied_; }

  void on_start() override;

 protected:
  bool can_serve(const std::vector<ProcessId>& members) const override;
  Bytes snapshot_state() const override;
  void install_state(const Bytes& snapshot) override;
  /// Split-transfer support (Section 5): the small critical piece is the
  /// version metadata — enough for the group to proceed while the bulk
  /// content streams in concurrently.
  Bytes snapshot_small() const override;
  void install_small(const Bytes& snapshot) override;
  /// Bounded-delta transfer: the basis names this replica's recovered
  /// {version, length, content hash}; when the source's file still starts
  /// with exactly that prefix (append-only history since the basis), the
  /// delta ships just the version and the appended suffix. A rewritten
  /// file (Write replaces content) fails the prefix check and falls back
  /// to the full snapshot.
  Bytes delta_basis() const override;
  std::optional<Bytes> snapshot_delta(const Bytes& basis) const override;
  bool install_delta(const Bytes& delta) override;
  Bytes merge_cluster_states(const std::vector<Bytes>& snapshots) override;
  std::uint64_t state_version() const override { return version_; }
  void on_object_deliver(ProcessId sender, const Bytes& payload) override;
  /// External clients: Get serves read() (Unavailable while settling
  /// without state); Put is a whole-file write and Append an ordered
  /// append, both completing when applied or fenced by a view change.
  void svc_dispatch(runtime::SvcRequest req,
                    runtime::SvcRespondFn respond) override;

 private:
  enum class Op : std::uint8_t { Write = 1, Append = 2 };

  std::uint32_t votes_of(SiteId site) const;
  void persist();

  ReplicatedFileConfig config_;
  std::uint32_t total_votes_ = 0;
  std::uint64_t version_ = 0;
  std::string content_;
  std::uint64_t writes_applied_ = 0;
};

}  // namespace evs::objects
