// The Section-6.2 example: a mutually-exclusive write lock managed within
// majority views.
//
// "Suppose that external operations can be run only in a view containing
//  a majority of processes and that their implementation involves the
//  management of a mutually-exclusive write lock within such a view. The
//  shared global state will thus include the identities of the lock
//  manager and the current lock holder (if any)."
//
// Acquire/release requests travel the totally-ordered channel, so every
// member's replica of {holder, grant time} evolves identically. Majority
// quorums alone are NOT enough for mutual exclusion in an asynchronous
// partitionable system: a holder whose view has silently been superseded
// may still believe it owns the lock while the new majority grants it
// again (our randomized churn tests exposed exactly this). The classic
// remedy — and what this implementation adds on top of the paper's
// sketch — is a **fixed-term lease**: every grant carries the acquirer's
// timestamp and expires after `lease` regardless of what the holder
// believes; competing grants are refused until the previous lease has
// provably expired. Grant decisions compare only message-carried
// timestamps, so the replicated state machine stays deterministic.
// (The simulator gives perfectly synchronised clocks; a real deployment
// needs bounded clock skew, as every lease scheme does.)
#pragma once

#include <cstdint>
#include <optional>

#include "app/group_object.hpp"

namespace evs::objects {

struct LockConfig {
  app::GroupObjectConfig object;
  /// Fixed lease term: a grant self-expires this long after the
  /// acquirer's timestamp, even if the holder is partitioned away.
  SimDuration lease = 2 * kSecond;
};

class LockManager : public app::GroupObjectBase {
 public:
  explicit LockManager(LockConfig config);
  /// Convenience: default lease.
  explicit LockManager(app::GroupObjectConfig config)
      : LockManager(LockConfig{std::move(config), 2 * kSecond}) {}

  /// External operation: request the lock. Returns false if not in
  /// N-mode; the grant (if any) is observed via holder() once the
  /// request is ordered. A request while an unexpired lease is held by
  /// someone else is refused deterministically at every replica.
  bool acquire();

  /// External operation: release the lock early (holder only).
  bool release();

  /// The unexpired current holder, if any.
  std::optional<ProcessId> holder() const;
  /// Am I the holder of an unexpired lease, in a view that can serve?
  bool i_hold_the_lock() const;
  /// When the current lease self-expires (meaningful while holder()).
  SimTime lease_expiry() const { return grant_stamp_ + config_.lease; }
  /// The current lock manager (who clients would address).
  ProcessId manager() const { return eview().view.primary(); }
  std::uint64_t grants() const { return grants_; }
  std::uint64_t version() const { return version_; }

 protected:
  bool can_serve(const std::vector<ProcessId>& members) const override;
  Bytes snapshot_state() const override;
  void install_state(const Bytes& snapshot) override;
  Bytes merge_cluster_states(const std::vector<Bytes>& snapshots) override;
  std::uint64_t state_version() const override { return version_; }
  void on_object_deliver(ProcessId sender, const Bytes& payload) override;
  void on_new_view(const core::EView& eview) override;
  /// External clients: Get reports the current holder (empty = free);
  /// Lock answers Conflict{remaining-lease-ms} while someone else's lease
  /// is active, otherwise Ok/Conflict once the ordered acquire shows
  /// whether this replica won; Unlock is an idempotent ordered release.
  void svc_dispatch(runtime::SvcRequest req,
                    runtime::SvcRespondFn respond) override;

 private:
  enum class Op : std::uint8_t { Acquire = 1, Release = 2 };

  bool lease_active_at(SimTime t) const {
    return holder_.has_value() && t < grant_stamp_ + config_.lease;
  }

  LockConfig config_;
  std::optional<ProcessId> holder_;
  SimTime grant_stamp_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t grants_ = 0;
};

}  // namespace evs::objects
