#include "objects/parallel_db.hpp"

namespace evs::objects {

ParallelDb::ParallelDb(app::GroupObjectConfig config)
    : app::GroupObjectBase(std::move(config)) {}

bool ParallelDb::can_serve(const std::vector<ProcessId>& members) const {
  // Look-ups run in any view: R-mode does not exist for this object.
  (void)members;
  return true;
}

std::uint64_t ParallelDb::hash_key(const std::string& key) {
  // FNV-1a; assignment must be identical at every member.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool ParallelDb::responsible_for(const std::string& key) const {
  const gms::View& v = eview().view;
  return hash_key(key) % v.size() == v.rank_of(id());
}

bool ParallelDb::insert(const std::string& key, const std::string& value) {
  // Inserts are accepted in N-mode; the object reaches N in every view
  // once responsibility is settled (can_serve is always true).
  if (!serving_normal()) return false;
  Encoder enc;
  enc.put_string(key);
  enc.put_string(value);
  object_multicast(std::move(enc).take());
  return true;
}

std::vector<std::pair<std::string, std::string>> ParallelDb::local_scan() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [key, value] : entries_) {
    if (responsible_for(key)) out.emplace_back(key, value);
  }
  return out;
}

std::optional<std::string> ParallelDb::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void ParallelDb::on_object_deliver(ProcessId sender, const Bytes& payload) {
  (void)sender;
  Decoder dec(payload);
  std::string key = dec.get_string();
  std::string value = dec.get_string();
  entries_[std::move(key)] = std::move(value);
  ++version_;
}

Bytes ParallelDb::snapshot_state() const {
  Encoder enc;
  enc.put_varint(version_);
  enc.put_varint(entries_.size());
  for (const auto& [key, value] : entries_) {
    enc.put_string(key);
    enc.put_string(value);
  }
  return std::move(enc).take();
}

void ParallelDb::install_state(const Bytes& snapshot) {
  Decoder dec(snapshot);
  const std::uint64_t version = dec.get_varint();
  const std::uint64_t n = dec.get_varint();
  // Each entry takes at least 2 encoded bytes: a larger count is a
  // corrupt length field, not a big snapshot.
  if (n > dec.remaining()) throw DecodeError("ParallelDb: entry count too large");
  std::map<std::string, std::string> entries;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = dec.get_string();
    entries[std::move(key)] = dec.get_string();
  }
  dec.expect_end();
  entries_ = std::move(entries);
  version_ = std::max(version_, version);
}

Bytes ParallelDb::merge_cluster_states(const std::vector<Bytes>& snapshots) {
  // Partitions may have inserted independently: union the entries.
  // (Same key updated on both sides resolves to the lexicographically
  // larger value — deterministic everywhere; a production database would
  // carry per-entry timestamps, as MergeableKv does.)
  std::map<std::string, std::string> merged;
  std::uint64_t version = 0;
  for (const Bytes& snapshot : snapshots) {
    Decoder dec(snapshot);
    version = std::max(version, dec.get_varint());
    const std::uint64_t n = dec.get_varint();
    // Same rejection rule as install_state: a count the payload cannot
    // hold, or trailing bytes, fail the merge (counted upstream) rather
    // than feeding a corrupt candidate into the union.
    if (n > dec.remaining())
      throw DecodeError("ParallelDb: entry count too large");
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string key = dec.get_string();
      std::string value = dec.get_string();
      auto [it, inserted] = merged.emplace(std::move(key), value);
      if (!inserted && value > it->second) it->second = std::move(value);
    }
    dec.expect_end();
  }
  Encoder enc;
  enc.put_varint(version + 1);
  enc.put_varint(merged.size());
  for (const auto& [key, value] : merged) {
    enc.put_string(key);
    enc.put_string(value);
  }
  return std::move(enc).take();
}

}  // namespace evs::objects
