// The paper's second worked example (Section 3): a fully replicated
// database whose only external operation is a look-up query performed in
// parallel, each member scanning its assigned fraction of the database.
//
// "Clearly for this example, the only external operation (look-up) can be
//  performed in any view. Thus, R-mode does not exist. Any event causing
//  a view change, however, results in a transition to S-mode in order to
//  redefine the division of responsibility."
//
// The responsibility of a member is the set of keys whose hash maps to
// its rank within the current view; the correctness invariant is that a
// distributed look-up scans every key exactly once. S-mode here is the
// (cheap) re-derivation of the assignment plus the state exchange that
// re-replicates entries after partitions heal (set-union merge).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/group_object.hpp"

namespace evs::objects {

class ParallelDb : public app::GroupObjectBase {
 public:
  explicit ParallelDb(app::GroupObjectConfig config);

  /// External operation: insert/update an entry (replicated everywhere).
  bool insert(const std::string& key, const std::string& value);

  /// The local share of a distributed look-up: scans only the keys this
  /// member is responsible for in the current view. A coordinator (or a
  /// test oracle) concatenates the shares of all members.
  std::vector<std::pair<std::string, std::string>> local_scan() const;

  /// Whether this member is responsible for `key` in the current view.
  bool responsible_for(const std::string& key) const;

  std::optional<std::string> get(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }
  std::uint64_t version() const { return version_; }

 protected:
  bool can_serve(const std::vector<ProcessId>& members) const override;
  Bytes snapshot_state() const override;
  void install_state(const Bytes& snapshot) override;
  Bytes merge_cluster_states(const std::vector<Bytes>& snapshots) override;
  std::uint64_t state_version() const override { return version_; }
  void on_object_deliver(ProcessId sender, const Bytes& payload) override;

 private:
  static std::uint64_t hash_key(const std::string& key);

  std::map<std::string, std::string> entries_;
  std::uint64_t version_ = 0;
};

}  // namespace evs::objects
