# Empty dependencies file for gms_test.
# This may be replaced when dependencies are built.
