file(REMOVE_RECURSE
  "CMakeFiles/evs_test.dir/evs_test.cpp.o"
  "CMakeFiles/evs_test.dir/evs_test.cpp.o.d"
  "evs_test"
  "evs_test.pdb"
  "evs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
