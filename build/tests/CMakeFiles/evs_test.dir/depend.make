# Empty dependencies file for evs_test.
# This may be replaced when dependencies are built.
