
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/order_test.cpp" "tests/CMakeFiles/order_test.dir/order_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/objects/CMakeFiles/evs_objects.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/evs_app.dir/DependInfo.cmake"
  "/root/repo/build/src/evs/CMakeFiles/evs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/evs_order.dir/DependInfo.cmake"
  "/root/repo/build/src/vsync/CMakeFiles/evs_vsync.dir/DependInfo.cmake"
  "/root/repo/build/src/gms/CMakeFiles/evs_gms.dir/DependInfo.cmake"
  "/root/repo/build/src/detector/CMakeFiles/evs_detector.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/evs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/evs_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
