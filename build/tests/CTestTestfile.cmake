# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/detector_test[1]_include.cmake")
include("/root/repo/build/tests/gms_test[1]_include.cmake")
include("/root/repo/build/tests/vsync_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/structure_test[1]_include.cmake")
include("/root/repo/build/tests/evs_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/objects_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/history_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
