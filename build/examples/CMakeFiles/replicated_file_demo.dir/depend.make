# Empty dependencies file for replicated_file_demo.
# This may be replaced when dependencies are built.
