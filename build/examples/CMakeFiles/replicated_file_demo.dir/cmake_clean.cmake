file(REMOVE_RECURSE
  "CMakeFiles/replicated_file_demo.dir/replicated_file_demo.cpp.o"
  "CMakeFiles/replicated_file_demo.dir/replicated_file_demo.cpp.o.d"
  "replicated_file_demo"
  "replicated_file_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_file_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
