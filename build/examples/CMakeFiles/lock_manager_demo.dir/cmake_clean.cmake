file(REMOVE_RECURSE
  "CMakeFiles/lock_manager_demo.dir/lock_manager_demo.cpp.o"
  "CMakeFiles/lock_manager_demo.dir/lock_manager_demo.cpp.o.d"
  "lock_manager_demo"
  "lock_manager_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_manager_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
