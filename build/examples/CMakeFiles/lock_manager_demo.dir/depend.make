# Empty dependencies file for lock_manager_demo.
# This may be replaced when dependencies are built.
