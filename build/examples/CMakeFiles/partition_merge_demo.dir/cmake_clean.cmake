file(REMOVE_RECURSE
  "CMakeFiles/partition_merge_demo.dir/partition_merge_demo.cpp.o"
  "CMakeFiles/partition_merge_demo.dir/partition_merge_demo.cpp.o.d"
  "partition_merge_demo"
  "partition_merge_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_merge_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
