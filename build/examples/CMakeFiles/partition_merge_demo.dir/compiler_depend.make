# Empty compiler generated dependencies file for partition_merge_demo.
# This may be replaced when dependencies are built.
