# Empty compiler generated dependencies file for parallel_db_demo.
# This may be replaced when dependencies are built.
