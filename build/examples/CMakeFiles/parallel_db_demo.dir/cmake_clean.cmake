file(REMOVE_RECURSE
  "CMakeFiles/parallel_db_demo.dir/parallel_db_demo.cpp.o"
  "CMakeFiles/parallel_db_demo.dir/parallel_db_demo.cpp.o.d"
  "parallel_db_demo"
  "parallel_db_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_db_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
