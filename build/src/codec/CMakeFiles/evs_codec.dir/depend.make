# Empty dependencies file for evs_codec.
# This may be replaced when dependencies are built.
