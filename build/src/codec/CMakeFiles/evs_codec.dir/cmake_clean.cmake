file(REMOVE_RECURSE
  "CMakeFiles/evs_codec.dir/codec.cpp.o"
  "CMakeFiles/evs_codec.dir/codec.cpp.o.d"
  "libevs_codec.a"
  "libevs_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
