file(REMOVE_RECURSE
  "libevs_codec.a"
)
