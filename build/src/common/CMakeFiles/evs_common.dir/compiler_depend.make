# Empty compiler generated dependencies file for evs_common.
# This may be replaced when dependencies are built.
