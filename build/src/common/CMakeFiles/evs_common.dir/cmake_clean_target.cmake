file(REMOVE_RECURSE
  "libevs_common.a"
)
