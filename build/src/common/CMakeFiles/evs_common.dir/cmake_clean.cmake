file(REMOVE_RECURSE
  "CMakeFiles/evs_common.dir/check.cpp.o"
  "CMakeFiles/evs_common.dir/check.cpp.o.d"
  "CMakeFiles/evs_common.dir/ids.cpp.o"
  "CMakeFiles/evs_common.dir/ids.cpp.o.d"
  "CMakeFiles/evs_common.dir/log.cpp.o"
  "CMakeFiles/evs_common.dir/log.cpp.o.d"
  "libevs_common.a"
  "libevs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
