file(REMOVE_RECURSE
  "libevs_vsync.a"
)
