file(REMOVE_RECURSE
  "CMakeFiles/evs_vsync.dir/endpoint.cpp.o"
  "CMakeFiles/evs_vsync.dir/endpoint.cpp.o.d"
  "libevs_vsync.a"
  "libevs_vsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_vsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
