# Empty dependencies file for evs_vsync.
# This may be replaced when dependencies are built.
