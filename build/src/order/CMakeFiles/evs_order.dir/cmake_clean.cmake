file(REMOVE_RECURSE
  "CMakeFiles/evs_order.dir/layers.cpp.o"
  "CMakeFiles/evs_order.dir/layers.cpp.o.d"
  "CMakeFiles/evs_order.dir/vector_clock.cpp.o"
  "CMakeFiles/evs_order.dir/vector_clock.cpp.o.d"
  "libevs_order.a"
  "libevs_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
