# Empty dependencies file for evs_order.
# This may be replaced when dependencies are built.
