file(REMOVE_RECURSE
  "libevs_order.a"
)
