# Empty dependencies file for evs_sim.
# This may be replaced when dependencies are built.
