
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/evs_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/evs_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/evs_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/evs_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/evs_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/evs_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/stable_store.cpp" "src/sim/CMakeFiles/evs_sim.dir/stable_store.cpp.o" "gcc" "src/sim/CMakeFiles/evs_sim.dir/stable_store.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/evs_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/evs_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/evs_codec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
