file(REMOVE_RECURSE
  "CMakeFiles/evs_sim.dir/fault.cpp.o"
  "CMakeFiles/evs_sim.dir/fault.cpp.o.d"
  "CMakeFiles/evs_sim.dir/network.cpp.o"
  "CMakeFiles/evs_sim.dir/network.cpp.o.d"
  "CMakeFiles/evs_sim.dir/scheduler.cpp.o"
  "CMakeFiles/evs_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/evs_sim.dir/stable_store.cpp.o"
  "CMakeFiles/evs_sim.dir/stable_store.cpp.o.d"
  "CMakeFiles/evs_sim.dir/world.cpp.o"
  "CMakeFiles/evs_sim.dir/world.cpp.o.d"
  "libevs_sim.a"
  "libevs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
