file(REMOVE_RECURSE
  "libevs_sim.a"
)
