# Empty dependencies file for evs_app.
# This may be replaced when dependencies are built.
