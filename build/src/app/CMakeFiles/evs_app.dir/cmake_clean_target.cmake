file(REMOVE_RECURSE
  "libevs_app.a"
)
