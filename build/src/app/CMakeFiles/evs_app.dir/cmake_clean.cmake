file(REMOVE_RECURSE
  "CMakeFiles/evs_app.dir/classify.cpp.o"
  "CMakeFiles/evs_app.dir/classify.cpp.o.d"
  "CMakeFiles/evs_app.dir/group_object.cpp.o"
  "CMakeFiles/evs_app.dir/group_object.cpp.o.d"
  "CMakeFiles/evs_app.dir/history.cpp.o"
  "CMakeFiles/evs_app.dir/history.cpp.o.d"
  "CMakeFiles/evs_app.dir/mode.cpp.o"
  "CMakeFiles/evs_app.dir/mode.cpp.o.d"
  "libevs_app.a"
  "libevs_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
