file(REMOVE_RECURSE
  "CMakeFiles/evs_detector.dir/heartbeat.cpp.o"
  "CMakeFiles/evs_detector.dir/heartbeat.cpp.o.d"
  "libevs_detector.a"
  "libevs_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
