# Empty compiler generated dependencies file for evs_detector.
# This may be replaced when dependencies are built.
