file(REMOVE_RECURSE
  "libevs_detector.a"
)
