file(REMOVE_RECURSE
  "libevs_gms.a"
)
