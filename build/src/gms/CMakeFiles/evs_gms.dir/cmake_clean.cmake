file(REMOVE_RECURSE
  "CMakeFiles/evs_gms.dir/policy.cpp.o"
  "CMakeFiles/evs_gms.dir/policy.cpp.o.d"
  "CMakeFiles/evs_gms.dir/view.cpp.o"
  "CMakeFiles/evs_gms.dir/view.cpp.o.d"
  "CMakeFiles/evs_gms.dir/wire.cpp.o"
  "CMakeFiles/evs_gms.dir/wire.cpp.o.d"
  "libevs_gms.a"
  "libevs_gms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_gms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
