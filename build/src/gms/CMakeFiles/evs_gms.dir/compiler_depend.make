# Empty compiler generated dependencies file for evs_gms.
# This may be replaced when dependencies are built.
