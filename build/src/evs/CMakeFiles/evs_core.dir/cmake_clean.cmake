file(REMOVE_RECURSE
  "CMakeFiles/evs_core.dir/endpoint.cpp.o"
  "CMakeFiles/evs_core.dir/endpoint.cpp.o.d"
  "CMakeFiles/evs_core.dir/structure.cpp.o"
  "CMakeFiles/evs_core.dir/structure.cpp.o.d"
  "libevs_core.a"
  "libevs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
