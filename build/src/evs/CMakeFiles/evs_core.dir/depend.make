# Empty dependencies file for evs_core.
# This may be replaced when dependencies are built.
