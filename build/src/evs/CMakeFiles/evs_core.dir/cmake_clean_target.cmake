file(REMOVE_RECURSE
  "libevs_core.a"
)
