file(REMOVE_RECURSE
  "libevs_objects.a"
)
