# Empty compiler generated dependencies file for evs_objects.
# This may be replaced when dependencies are built.
