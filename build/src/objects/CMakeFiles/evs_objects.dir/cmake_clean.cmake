file(REMOVE_RECURSE
  "CMakeFiles/evs_objects.dir/lock_manager.cpp.o"
  "CMakeFiles/evs_objects.dir/lock_manager.cpp.o.d"
  "CMakeFiles/evs_objects.dir/mergeable_kv.cpp.o"
  "CMakeFiles/evs_objects.dir/mergeable_kv.cpp.o.d"
  "CMakeFiles/evs_objects.dir/parallel_db.cpp.o"
  "CMakeFiles/evs_objects.dir/parallel_db.cpp.o.d"
  "CMakeFiles/evs_objects.dir/replicated_file.cpp.o"
  "CMakeFiles/evs_objects.dir/replicated_file.cpp.o.d"
  "libevs_objects.a"
  "libevs_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evs_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
