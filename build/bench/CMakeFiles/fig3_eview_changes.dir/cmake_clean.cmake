file(REMOVE_RECURSE
  "CMakeFiles/fig3_eview_changes.dir/fig3_eview_changes.cpp.o"
  "CMakeFiles/fig3_eview_changes.dir/fig3_eview_changes.cpp.o.d"
  "fig3_eview_changes"
  "fig3_eview_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_eview_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
