# Empty dependencies file for fig3_eview_changes.
# This may be replaced when dependencies are built.
