file(REMOVE_RECURSE
  "CMakeFiles/fig1_mode_transitions.dir/fig1_mode_transitions.cpp.o"
  "CMakeFiles/fig1_mode_transitions.dir/fig1_mode_transitions.cpp.o.d"
  "fig1_mode_transitions"
  "fig1_mode_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_mode_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
