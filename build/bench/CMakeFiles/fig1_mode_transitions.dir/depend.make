# Empty dependencies file for fig1_mode_transitions.
# This may be replaced when dependencies are built.
