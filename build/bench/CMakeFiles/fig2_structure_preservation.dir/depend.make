# Empty dependencies file for fig2_structure_preservation.
# This may be replaced when dependencies are built.
