file(REMOVE_RECURSE
  "CMakeFiles/fig2_structure_preservation.dir/fig2_structure_preservation.cpp.o"
  "CMakeFiles/fig2_structure_preservation.dir/fig2_structure_preservation.cpp.o.d"
  "fig2_structure_preservation"
  "fig2_structure_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_structure_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
