# Empty dependencies file for claim_state_transfer.
# This may be replaced when dependencies are built.
