file(REMOVE_RECURSE
  "CMakeFiles/claim_state_transfer.dir/claim_state_transfer.cpp.o"
  "CMakeFiles/claim_state_transfer.dir/claim_state_transfer.cpp.o.d"
  "claim_state_transfer"
  "claim_state_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_state_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
