file(REMOVE_RECURSE
  "CMakeFiles/abl_structure_cost.dir/abl_structure_cost.cpp.o"
  "CMakeFiles/abl_structure_cost.dir/abl_structure_cost.cpp.o.d"
  "abl_structure_cost"
  "abl_structure_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_structure_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
