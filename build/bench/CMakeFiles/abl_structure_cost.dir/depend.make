# Empty dependencies file for abl_structure_cost.
# This may be replaced when dependencies are built.
