file(REMOVE_RECURSE
  "CMakeFiles/claim_merge_cascade.dir/claim_merge_cascade.cpp.o"
  "CMakeFiles/claim_merge_cascade.dir/claim_merge_cascade.cpp.o.d"
  "claim_merge_cascade"
  "claim_merge_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_merge_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
