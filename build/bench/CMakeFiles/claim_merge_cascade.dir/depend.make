# Empty dependencies file for claim_merge_cascade.
# This may be replaced when dependencies are built.
