# Empty dependencies file for claim_classification.
# This may be replaced when dependencies are built.
