file(REMOVE_RECURSE
  "CMakeFiles/claim_classification.dir/claim_classification.cpp.o"
  "CMakeFiles/claim_classification.dir/claim_classification.cpp.o.d"
  "claim_classification"
  "claim_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claim_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
