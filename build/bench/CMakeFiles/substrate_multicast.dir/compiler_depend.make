# Empty compiler generated dependencies file for substrate_multicast.
# This may be replaced when dependencies are built.
