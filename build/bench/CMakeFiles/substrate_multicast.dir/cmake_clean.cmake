file(REMOVE_RECURSE
  "CMakeFiles/substrate_multicast.dir/substrate_multicast.cpp.o"
  "CMakeFiles/substrate_multicast.dir/substrate_multicast.cpp.o.d"
  "substrate_multicast"
  "substrate_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substrate_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
