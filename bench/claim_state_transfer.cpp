// CLAIM-XFER — Section 5: state transfer strategies.
//
// "If the application involved very large amounts of data ... the strategy
//  of blocking view installations while state transfer is in progress
//  might be infeasible. In such a situation, it will be desirable to split
//  the state into two parts: a (small) piece that needs to be transferred
//  in synchrony with the join event; another (large) piece that can be
//  transferred concurrently with application activity in the new view."
//
// This bench grows a replicated file to the given size, has a stale member
// join, and compares three strategies on the joiner:
//   WholeSnapshot       — the full state rides in the OFFER,
//   SplitSmallLarge     — small critical part at once, bulk streamed in
//                         chunks while the group already serves,
//   Isis-style blocking — WholeSnapshot + every member suspends external
//                         operations while any settle is in progress.
// Reported: simulated time-to-serve and time-to-full-state at the joiner,
// and for the blocking variant the writes the up-to-date members refused
// during the transfer. Expected shape: time-to-serve for Split stays flat
// as the state grows; WholeSnapshot's grows with size; blocking turns the
// transfer time into whole-group downtime.
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

namespace evs::bench {
namespace {

void StateTransfer(benchmark::State& state, app::TransferStrategy strategy,
                   bool block_all) {
  const std::size_t size_kb = static_cast<std::size_t>(state.range(0));

  double serve_ms = 0;
  double full_ms = 0;
  double refused_writes = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    constexpr std::size_t kSites = 4;
    // Finite bandwidth (~50 MB/s): the whole point of the experiment is
    // that big snapshots occupy the wire.
    sim::NetworkConfig net;
    net.bytes_per_us = 50.0;
    FileCluster c(kSites, 15000 + runs,
                  [&](const auto& u) {
                    auto cfg = file_config(u);
                    cfg.object.transfer = strategy;
                    cfg.object.block_all_during_settle = block_all;
                    cfg.object.chunk_bytes = 8192;
                    return cfg;
                  },
                  net, /*spawn_all=*/false);
    for (std::size_t i = 0; i + 1 < kSites; ++i) c.spawn_at(c.site(i));
    std::vector<std::size_t> old{0, 1, 2};
    c.await_all_normal(old, 300 * kSecond);
    c.obj(0).write(std::string(size_kb * 1024, 'd'));
    c.world().run_for(2 * kSecond);

    c.spawn_at(c.site(kSites - 1));
    // While the transfer runs, sample whether the up-to-date members are
    // still allowed to serve writes (without mutating the state being
    // transferred): each refusal is one 1ms slice of whole-group downtime.
    std::uint64_t refused = 0;
    const SimTime deadline = c.world().scheduler().now() + 300 * kSecond;
    const auto transfer_fully_done = [&]() {
      for (const app::SettleRecord& rec : c.obj(kSites - 1).settle_log()) {
        if ((rec.problems & app::kStateTransfer) && rec.fully_done != 0)
          return true;
      }
      return false;
    };
    while (c.world().scheduler().now() < deadline) {
      if (c.all_normal(c.all_indices()) && transfer_fully_done()) break;
      if (!c.obj(0).serving_normal()) ++refused;
      c.world().run_for(1 * kMillisecond);
    }

    const auto& log = c.obj(kSites - 1).settle_log();
    for (const app::SettleRecord& rec : log) {
      if (!(rec.problems & app::kStateTransfer)) continue;
      serve_ms +=
          static_cast<double>(rec.serve_ready - rec.started) / kMillisecond;
      full_ms +=
          static_cast<double>(rec.fully_done - rec.started) / kMillisecond;
    }
    refused_writes += static_cast<double>(refused);
    ++runs;
  }

  state.counters["sim_serve_ms"] = serve_ms / runs;
  state.counters["sim_full_ms"] = full_ms / runs;
  state.counters["writes_refused"] = refused_writes / runs;
}

void WholeSnapshot(benchmark::State& state) {
  StateTransfer(state, app::TransferStrategy::WholeSnapshot, false);
}
void SplitSmallLarge(benchmark::State& state) {
  StateTransfer(state, app::TransferStrategy::SplitSmallLarge, false);
}
void IsisBlocking(benchmark::State& state) {
  StateTransfer(state, app::TransferStrategy::WholeSnapshot, true);
}

BENCHMARK(WholeSnapshot)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(SplitSmallLarge)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(IsisBlocking)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace evs::bench
