// CLAIM-CLASSIFY — Sections 4 + 6.2: classifying the shared-state problem.
//
// The paper's central argument: with flat views a process entering S-mode
// cannot tell state transfer from creation from merging using local
// information; it needs "complex and costly protocols". With enriched
// views the classification is a local computation over the structure.
//
// This bench runs the same join-after-writes scenario (one stale member
// meets an up-to-date majority) at several group sizes with the two
// configurations of the same group object:
//   Enriched      — zero discovery messages, classification immediate;
//                   only one snapshot (the serving subview's rep) travels.
//   FlatDiscovery — every member multicasts its (prior view, prior mode,
//                   version, snapshot); classification must wait for a
//                   full round.
// Reported per configuration: discovery multicasts, snapshot bytes,
// ambiguous classifications encountered, and the simulated settle latency
// at the joiner. Expected shape: flat costs grow with n (n snapshots, one
// round), enriched stays flat (1-2 snapshots, no round).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"

namespace evs::bench {
namespace {

void Classification(benchmark::State& state, app::ClassifierMode mode) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));

  double discovery_msgs = 0;
  double snapshot_bytes = 0;
  double ambiguous = 0;
  double settle_ms = 0;
  std::uint64_t settles = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    FileCluster c(n, 13000 + runs,
                  [mode](const auto& u) { return file_config(u, mode); }, {},
                  /*spawn_all=*/false);
    // n-1 members form the group and write some state.
    std::vector<std::size_t> old(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      old[i] = i;
      c.spawn_at(c.site(i));
    }
    c.await_all_normal(old, 300 * kSecond);
    c.obj(0).write(std::string(512, 'x'));
    c.world().run_for(2 * kSecond);

    // Snapshot the counters, then the straggler joins: a state transfer.
    std::vector<std::uint64_t> d0(n - 1);
    std::vector<std::uint64_t> b0(n - 1);
    std::vector<std::uint64_t> a0(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      d0[i] = c.obj(i).object_stats().discovery_messages;
      b0[i] = c.obj(i).object_stats().snapshot_bytes;
      a0[i] = c.obj(i).object_stats().ambiguous_classifications;
    }
    c.spawn_at(c.site(n - 1));
    c.await_all_normal(c.all_indices(), 300 * kSecond);

    for (std::size_t i = 0; i + 1 < n; ++i) {
      discovery_msgs +=
          static_cast<double>(c.obj(i).object_stats().discovery_messages - d0[i]);
      snapshot_bytes +=
          static_cast<double>(c.obj(i).object_stats().snapshot_bytes - b0[i]);
      ambiguous += static_cast<double>(
          c.obj(i).object_stats().ambiguous_classifications - a0[i]);
    }
    // Joiner contributes too.
    discovery_msgs +=
        static_cast<double>(c.obj(n - 1).object_stats().discovery_messages);
    snapshot_bytes +=
        static_cast<double>(c.obj(n - 1).object_stats().snapshot_bytes);

    for (const app::SettleRecord& rec : c.obj(n - 1).settle_log()) {
      if (rec.problems == app::kNoProblem) continue;
      settle_ms += static_cast<double>(rec.serve_ready - rec.started) /
                   kMillisecond;
      ++settles;
    }
    ++runs;
  }

  state.counters["discovery_multicasts"] = discovery_msgs / runs;
  state.counters["snapshot_bytes"] = snapshot_bytes / runs;
  state.counters["ambiguous"] = ambiguous / runs;
  state.counters["sim_settle_ms"] =
      settles == 0 ? 0.0 : settle_ms / static_cast<double>(settles);
}

void EnrichedClassifier(benchmark::State& state) {
  Classification(state, app::ClassifierMode::Enriched);
}
void FlatClassifier(benchmark::State& state) {
  Classification(state, app::ClassifierMode::FlatDiscovery);
}

BENCHMARK(EnrichedClassifier)
    ->Arg(3)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(FlatClassifier)
    ->Arg(3)->Arg(6)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace evs::bench
