// STORE — WAL group-commit amortisation on a real filesystem.
//
// The durable store's group commit buffers put()/erase() records and
// issues one write() + one fdatasync() per flush() (the net runtime
// flushes once per event-loop iteration). This bench measures exactly
// that amortisation: appends of a fixed-size value, flushed every B
// records, for B = 1, 4, 16, 64, 256. We report:
//   - appends per second (wall clock, sync cost included),
//   - fsyncs per append — the headline: 1.0 at B=1, falling as 1/B,
//     which the committed BENCH_store_wal.json pins for the bench-smoke
//     CI check (store.fsync_calls < store.puts for any B > 1),
//   - synced WAL bytes per append (framing overhead included),
//   - recovery time and recovered records for the image the run left
//     behind, measured by reopening the store (the restart path the
//     crash-restart loopback test exercises end to end).
//
// Numbers include real disk/fs cost (fdatasync on the CI filesystem is
// the dominant term at B=1); EXPERIMENTS.md discusses the regime.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "store/wal_store.hpp"

namespace evs::bench {
namespace {

/// Fresh scratch directory per run; removed on destruction.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/evs_bench_store_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) std::abort();
    path = tmpl;
  }
  ~TempDir() {
    const std::string cmd = "rm -rf " + path;
    if (std::system(cmd.c_str()) != 0) std::perror("rm -rf");
  }
  std::string path;
};

void BM_WalAppendGroupCommit(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kValueBytes = 256;
  const Bytes value(kValueBytes, 0xab);

  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t wal_bytes = 0;
  double recover_us = 0;
  std::uint64_t recovered = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TempDir dir;
    store::WalStoreConfig config;
    config.dir = dir.path;
    config.snapshot_after_bytes = 0;  // isolate the append path
    state.ResumeTiming();
    {
      store::WalStore wal(config);
      // Distinct keys: every append is a new record and a new image
      // entry, like the per-key object/epoch writes the runtime issues.
      constexpr int kAppends = 2048;
      for (int i = 0; i < kAppends; ++i) {
        wal.put("key/" + std::to_string(i), value);
        if ((i + 1) % batch == 0) wal.flush();
      }
      wal.flush();
      appends += kAppends;
      fsyncs += wal.stats().fsync_calls;
      wal_bytes += wal.stats().wal_bytes;
    }
    // The restart path: reopen and replay what the run just synced.
    state.PauseTiming();
    const auto t0 = std::chrono::steady_clock::now();
    {
      store::WalStore reopened(config);
      recovered += reopened.stats().recovered_records +
                   reopened.stats().recovered_snapshot_keys;
    }
    recover_us += std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    state.ResumeTiming();
  }

  state.SetItemsProcessed(static_cast<std::int64_t>(appends));
  state.counters["fsyncs_per_append"] =
      appends > 0 ? static_cast<double>(fsyncs) / appends : 0;
  state.counters["wal_bytes_per_append"] =
      appends > 0 ? static_cast<double>(wal_bytes) / appends : 0;
  state.counters["appends_per_sec"] = benchmark::Counter(
      static_cast<double>(appends), benchmark::Counter::kIsRate);
  state.counters["recover_us_per_run"] =
      state.iterations() > 0 ? recover_us / state.iterations() : 0;
  state.counters["recovered_per_run"] =
      state.iterations() > 0
          ? static_cast<double>(recovered) / state.iterations()
          : 0;
}

BENCHMARK(BM_WalAppendGroupCommit)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

}  // namespace
}  // namespace evs::bench
