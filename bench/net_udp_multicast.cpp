// NET — view-synchronous multicast over real UDP sockets on loopback.
//
// The real-socket counterpart of SUBSTRATE: n vsync endpoints, each on its
// own thread with its own epoll loop and UDP transport (exactly the
// tools/evs_node hosting arrangement), form a group on 127.0.0.1 and
// exchange paced multicasts. We report:
//   - delivery latency p50 / p95 in microseconds (send timestamp rides in
//     the payload; every member's delivery is a sample),
//   - aggregate deliveries per second across the group,
//   - datagrams per application multicast (the n-1 fan-out plus protocol
//     chatter), and the encode-once sharing counters,
//   - syscalls per multicast (sendmsg/sendmmsg + recvmsg/recvmmsg calls,
//     counted at the call sites, so the batching win is measured rather
//     than guessed) and frames per datagram (the coalescing ratio),
//   - the semantic invariants: delivered_frames and delivered_bytes must
//     be identical however the wire path batches or packs datagrams.
// Unlike the sim benches the numbers here include real kernel send/recv
// cost and scheduler noise — EXPERIMENTS.md compares the two regimes.
#include <benchmark/benchmark.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/config.hpp"
#include "net/event_loop.hpp"
#include "net/udp_transport.hpp"
#include "vsync/endpoint.hpp"

namespace evs::bench {
namespace {

/// Wall-independent cross-thread clock for latency stamps (each loop's
/// Clock has its own origin, so loop time cannot compare across nodes).
std::uint64_t global_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ull;
}

constexpr std::size_t kPayloadBytes = 64;

/// One group member: loop + transport + endpoint on a dedicated thread.
class BenchNode : public vsync::Delegate {
 public:
  BenchNode(net::NodeConfig config, const vsync::EndpointConfig& ep_config)
      : transport_(loop_, std::move(config)), endpoint_(ep_config) {
    endpoint_.set_delegate(this);
    env_.transport = &transport_;
    env_.clock = &loop_;
    env_.timers = &loop_;
    env_.store = &store_;
    transport_.set_deliver([this](ProcessId from, const Bytes& payload) {
      endpoint_.on_message(from, payload);
    });
  }

  void start(std::size_t group_size) {
    group_size_ = group_size;
    thread_ = std::thread([this]() {
      endpoint_.bind(env_, transport_.self());
      endpoint_.on_start();
      loop_.run();
    });
  }

  void stop() {
    loop_.request_stop();
    thread_.join();
  }

  /// Posts `count` multicasts onto this node's loop, `per_tick` per 1ms.
  void send_async(int count, int per_tick) {
    loop_.post([this, count, per_tick]() { send_some(count, per_tick); });
  }

  bool in_full_view() const {
    return full_view_.load(std::memory_order_acquire);
  }
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

  /// Latency samples in µs; only read after stop().
  const std::vector<std::uint64_t>& latencies() const { return latencies_; }
  const net::UdpStats& udp_stats() const { return transport_.stats(); }
  const vsync::EndpointStats& endpoint_stats() const {
    return endpoint_.stats();
  }

 private:
  void send_some(int remaining, int per_tick) {
    for (int i = 0; i < per_tick && remaining > 0; ++i, --remaining) {
      Bytes payload(kPayloadBytes, 0);
      const std::uint64_t stamp = global_us();
      std::memcpy(payload.data(), &stamp, sizeof(stamp));
      endpoint_.multicast(std::move(payload));
    }
    if (remaining > 0) {
      loop_.set_timer(1 * kMillisecond, [this, remaining, per_tick]() {
        send_some(remaining, per_tick);
      });
    }
  }

  // vsync::Delegate (runs on this node's loop thread).
  void on_view(const gms::View& view, const vsync::InstallInfo&) override {
    if (view.size() == group_size_)
      full_view_.store(true, std::memory_order_release);
  }
  void on_deliver(ProcessId, const Bytes& payload) override {
    std::uint64_t stamp = 0;
    if (payload.size() >= sizeof(stamp)) {
      std::memcpy(&stamp, payload.data(), sizeof(stamp));
      const std::uint64_t now = global_us();
      latencies_.push_back(now >= stamp ? now - stamp : 0);
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    delivered_bytes_.fetch_add(payload.size(), std::memory_order_relaxed);
  }

 public:
  std::uint64_t delivered_bytes() const {
    return delivered_bytes_.load(std::memory_order_relaxed);
  }

 private:

  net::EventLoop loop_;
  net::UdpTransport transport_;
  runtime::MemoryStore store_;
  vsync::Endpoint endpoint_;
  runtime::Env env_;
  std::thread thread_;
  std::size_t group_size_ = 0;
  std::atomic<bool> full_view_{false};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> delivered_bytes_{0};
  std::vector<std::uint64_t> latencies_;
};

std::uint16_t free_port() {
  // Delegate to the kernel: UdpTransport itself reports its bound port,
  // but the peer book must be complete before any transport exists, so we
  // probe with throwaway sockets first.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

bool await(const std::function<bool()>& pred, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

double percentile(std::vector<std::uint64_t>& samples, double p) {
  if (samples.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) / 100.0);
  std::nth_element(samples.begin(), samples.begin() + idx, samples.end());
  return static_cast<double>(samples[idx]);
}

void NetUdpMulticast(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr int kMessages = 500;  // per run, all from one sender

  std::vector<std::uint64_t> all_latencies;
  double deliveries_per_sec = 0;
  double datagrams_per_mc = 0;
  double shared_per_mc = 0;
  double copies_per_mc = 0;
  double sendmsg_calls_per_mc = 0;
  double recvmsg_calls_per_mc = 0;
  double frames_per_datagram = 0;
  double delivered_frames = 0;
  double delivered_bytes = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    std::vector<net::PeerAddr> addrs;
    for (std::size_t i = 0; i < n; ++i)
      addrs.push_back({INADDR_LOOPBACK, free_port()});

    vsync::EndpointConfig ep_config;
    for (std::size_t i = 0; i < n; ++i)
      ep_config.universe.push_back(SiteId{static_cast<std::uint32_t>(i)});

    std::vector<std::unique_ptr<BenchNode>> nodes;
    for (std::size_t i = 0; i < n; ++i) {
      net::NodeConfig config;
      config.self = SiteId{static_cast<std::uint32_t>(i)};
      for (std::size_t j = 0; j < n; ++j)
        config.peers.emplace(SiteId{static_cast<std::uint32_t>(j)}, addrs[j]);
      nodes.push_back(std::make_unique<BenchNode>(config, ep_config));
    }
    for (auto& node : nodes) node->start(n);

    if (!await(
            [&]() {
              for (auto& node : nodes)
                if (!node->in_full_view()) return false;
              return true;
            },
            30000)) {
      state.SkipWithError("group never formed on loopback");
      for (auto& node : nodes) node->stop();
      return;
    }

    std::uint64_t datagrams_before = 0, sendmsg_before = 0, recvmsg_before = 0,
                  frames_before = 0;
    for (auto& node : nodes) {
      datagrams_before += node->udp_stats().datagrams_sent;
      sendmsg_before += node->udp_stats().sendmsg_calls;
      recvmsg_before += node->udp_stats().recvmsg_calls;
      frames_before += node->udp_stats().frames_sent;
    }

    const std::uint64_t t0 = global_us();
    nodes[0]->send_async(kMessages, /*per_tick=*/5);
    const std::uint64_t want = static_cast<std::uint64_t>(kMessages) * n;
    if (!await(
            [&]() {
              std::uint64_t got = 0;
              for (auto& node : nodes) got += node->delivered();
              return got >= want;
            },
            60000)) {
      state.SkipWithError("multicasts never fully delivered");
      for (auto& node : nodes) node->stop();
      return;
    }
    const std::uint64_t t1 = global_us();

    for (auto& node : nodes) node->stop();

    std::uint64_t datagrams = 0, shared = 0, copies = 0, delivered = 0,
                  sendmsg = 0, recvmsg = 0, frames = 0, bytes = 0;
    for (auto& node : nodes) {
      datagrams += node->udp_stats().datagrams_sent;
      shared += node->udp_stats().payloads_shared;
      copies += node->udp_stats().payload_copies;
      sendmsg += node->udp_stats().sendmsg_calls;
      recvmsg += node->udp_stats().recvmsg_calls;
      frames += node->udp_stats().frames_sent;
      delivered += node->delivered();
      bytes += node->delivered_bytes();
      all_latencies.insert(all_latencies.end(), node->latencies().begin(),
                           node->latencies().end());
    }
    deliveries_per_sec +=
        static_cast<double>(delivered) * 1e6 / static_cast<double>(t1 - t0);
    const std::uint64_t datagram_delta = datagrams - datagrams_before;
    datagrams_per_mc += static_cast<double>(datagram_delta) / kMessages;
    shared_per_mc += static_cast<double>(shared) / kMessages;
    copies_per_mc += static_cast<double>(copies) / kMessages;
    sendmsg_calls_per_mc +=
        static_cast<double>(sendmsg - sendmsg_before) / kMessages;
    recvmsg_calls_per_mc +=
        static_cast<double>(recvmsg - recvmsg_before) / kMessages;
    if (datagram_delta > 0)
      frames_per_datagram +=
          static_cast<double>(frames - frames_before) /
          static_cast<double>(datagram_delta);
    delivered_frames += static_cast<double>(delivered);
    delivered_bytes += static_cast<double>(bytes);
    ++runs;
  }

  state.counters["lat_p50_us"] = percentile(all_latencies, 50);
  state.counters["lat_p95_us"] = percentile(all_latencies, 95);
  state.counters["deliveries_per_sec"] = deliveries_per_sec / runs;
  state.counters["datagrams_per_mc"] = datagrams_per_mc / runs;
  state.counters["payloads_shared_per_mc"] = shared_per_mc / runs;
  state.counters["payload_copies_per_mc"] = copies_per_mc / runs;
  // Syscall economy of the send phase: every sendmsg/sendmmsg and
  // recvmsg/recvmmsg call across the whole fleet, amortised per multicast.
  state.counters["sendmsg_calls_per_mc"] = sendmsg_calls_per_mc / runs;
  state.counters["recvmsg_calls_per_mc"] = recvmsg_calls_per_mc / runs;
  state.counters["syscalls_per_mc"] =
      (sendmsg_calls_per_mc + recvmsg_calls_per_mc) / runs;
  state.counters["frames_per_datagram"] = frames_per_datagram / runs;
  // Semantic invariants: exactly kMessages deliveries at each of n members,
  // kPayloadBytes each, whatever the wire path batches or coalesces.
  state.counters["delivered_frames"] = delivered_frames / runs;
  state.counters["delivered_bytes"] = delivered_bytes / runs;
}

BENCHMARK(NetUdpMulticast)
    ->Arg(4)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->UseRealTime();

}  // namespace
}  // namespace evs::bench
