// FIG3 — Figure 3: sequences of e-view changes within a single view.
//
// Figure 3 shows an SV-SetMerge followed by a SubviewMerge, both happening
// *without* a view change. This bench drives the figure repeatedly: a
// group of n starts as n singleton sv-sets; pairs are merged step by step
// until one sv-set remains, then subviews are merged pairwise down to the
// degenerate e-view. Reported:
//   - simulated latency per e-view change (request at one member until the
//     change is applied at every member),
//   - e-view changes applied (P6.1 total order verified by agreement of
//     the final structure),
//   - messages the sequencer stamped on behalf of the changes.
//
// Per-change latencies feed an obs::Histogram, so the bench reports the
// distribution (p50/p95/max), not just the mean. Set EVS_TRACE_OUT=<dir>
// to dump the last run's structured trace and metrics snapshot.
#include <benchmark/benchmark.h>

#include <string>

#include "obs/dump.hpp"
#include "obs/metrics.hpp"
#include "support/evs_cluster.hpp"

namespace evs::bench {
namespace {

void Fig3EViewChanges(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));

  obs::MetricsRegistry metrics;
  obs::Histogram& latency_ms = metrics.histogram("fig3.latency_ms");
  double changes_total = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    test::EvsClusterOptions opt;
    opt.sites = n;
    opt.seed = 11000 + runs;
    test::EvsCluster c(opt);
    c.await_stable_view(c.all_indices(), 300 * kSecond);

    // Pairwise sv-set merges until one sv-set remains, then pairwise
    // subview merges to the degenerate view — all within one view.
    std::uint64_t changes = 0;
    for (;;) {
      const auto& s = c.ep(0).eview().structure;
      const std::uint64_t before = c.ep(0).eview().ev_seq;
      if (s.svsets().size() > 1) {
        std::vector<SvSetId> pair{s.svsets()[0].id, s.svsets()[1].id};
        const SimTime t0 = c.world().scheduler().now();
        c.ep(n / 2).request_sv_set_merge(pair);
        c.await([&]() {
          for (std::size_t i = 0; i < n; ++i) {
            if (c.ep(i).eview().ev_seq <= before) return false;
          }
          return true;
        });
        latency_ms.record(
            static_cast<double>(c.world().scheduler().now() - t0) /
            kMillisecond);
        ++changes;
      } else if (s.subviews().size() > 1) {
        std::vector<SubviewId> pair{s.subviews()[0].id, s.subviews()[1].id};
        const SimTime t0 = c.world().scheduler().now();
        c.ep(n / 2).request_subview_merge(pair);
        c.await([&]() {
          for (std::size_t i = 0; i < n; ++i) {
            if (c.ep(i).eview().ev_seq <= before) return false;
          }
          return true;
        });
        latency_ms.record(
            static_cast<double>(c.world().scheduler().now() - t0) /
            kMillisecond);
        ++changes;
      } else {
        break;
      }
    }
    changes_total += static_cast<double>(changes);
    ++runs;

    if (!obs::trace_out_dir().empty()) {
      // Last run wins: one trace per group size is plenty.
      for (std::size_t i = 0; i < n; ++i) {
        c.ep(i).export_metrics(c.world().metrics(),
                               "p" + std::to_string(i));
      }
      c.world().network().export_metrics(c.world().metrics());
      c.world().dump_trace("fig3_n" + std::to_string(n));
    }
  }

  state.counters["eview_changes"] = changes_total / runs;
  state.counters["sim_latency_ms_per_change"] =
      latency_ms.mean();
  state.counters["sim_latency_ms_p50"] = latency_ms.quantile(0.50);
  state.counters["sim_latency_ms_p95"] = latency_ms.quantile(0.95);
  state.counters["sim_latency_ms_max"] = latency_ms.max();
}

BENCHMARK(Fig3EViewChanges)
    ->Arg(3)->Arg(6)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace evs::bench
