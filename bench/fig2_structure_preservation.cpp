// FIG2 — Figure 2: views, subviews and sv-sets across view changes.
//
// Figure 2 illustrates the enriched-view model: subviews/sv-sets shrink
// asynchronously with failures, survive view changes (P6.3), and fresh
// or re-merged processes appear as singletons. This bench runs the
// figure's lifecycle at scale — form a group of n, collapse it to one
// subview, partition it, let both sides settle, heal — and reports:
//   - subview/sv-set counts after the healing view (expected: exactly 2
//     cluster subviews in 2 sv-sets, for any n),
//   - the structure bytes carried through the flush per view change,
//   - simulated time from heal to the stable merged e-view.
#include <benchmark/benchmark.h>

#include "support/evs_cluster.hpp"

namespace evs::bench {
namespace {

void Fig2StructurePreservation(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));

  double context_bytes = 0;
  double subviews_after_merge = 0;
  double svsets_after_merge = 0;
  double heal_ms = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    test::EvsClusterOptions opt;
    opt.sites = n;
    opt.seed = 9000 + runs;
    test::EvsCluster c(opt);
    c.await_stable_view(c.all_indices(), 300 * kSecond);

    // Collapse to one subview (two e-view changes).
    c.ep(0).request_merge_all();
    c.await([&]() { return c.ep(0).eview().structure.svsets().size() == 1; });
    c.ep(0).request_merge_all();
    c.await([&]() { return c.ep(0).eview().degenerate(); });

    // Partition into two halves; each settles to one subview again.
    std::vector<SiteId> left(c.sites().begin(),
                             c.sites().begin() + static_cast<long>(n / 2));
    std::vector<SiteId> right(c.sites().begin() + static_cast<long>(n / 2),
                              c.sites().end());
    c.world().network().set_partition({left, right});
    std::vector<std::size_t> li(n / 2);
    std::vector<std::size_t> ri(n - n / 2);
    for (std::size_t i = 0; i < li.size(); ++i) li[i] = i;
    for (std::size_t i = 0; i < ri.size(); ++i) ri[i] = n / 2 + i;
    c.await_stable_view(li, 300 * kSecond);
    c.await_stable_view(ri, 300 * kSecond);
    c.ep(li.front()).request_merge_all();
    c.ep(ri.front()).request_merge_all();
    c.world().run_for(2 * kSecond);
    c.ep(li.front()).request_merge_all();
    c.ep(ri.front()).request_merge_all();
    c.world().run_for(2 * kSecond);

    const SimTime heal_at = c.world().scheduler().now();
    c.world().network().heal();
    c.await_stable_view(c.all_indices(), 600 * kSecond);
    heal_ms += static_cast<double>(c.world().scheduler().now() - heal_at) /
               kMillisecond;

    subviews_after_merge +=
        static_cast<double>(c.ep(0).eview().structure.subviews().size());
    svsets_after_merge +=
        static_cast<double>(c.ep(0).eview().structure.svsets().size());
    double bytes = 0;
    for (std::size_t i = 0; i < n; ++i)
      bytes += static_cast<double>(c.ep(i).evs_stats().context_bytes);
    context_bytes += bytes / static_cast<double>(n);
    ++runs;
  }

  state.counters["subviews_after_heal"] = subviews_after_merge / runs;
  state.counters["svsets_after_heal"] = svsets_after_merge / runs;
  state.counters["ctx_bytes_per_member"] = context_bytes / runs;
  state.counters["sim_heal_ms"] = heal_ms / runs;
}

BENCHMARK(Fig2StructurePreservation)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace evs::bench
