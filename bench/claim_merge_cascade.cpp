// CLAIM-MERGE — Section 5's quantitative argument against one-at-a-time
// view expansion:
//
//   "consider two partitions of N members each that merge after repairs.
//    This event will result in N view changes in each of the two
//    partitions, admitting one new process at a time into the view. When
//    in fact, a single view change is all that is really required."
//
// This bench creates two partitions of N members, lets each stabilise,
// heals the network, and counts the view changes every process installs
// until the merged 2N-view is stable — under the Batch admission policy
// (Relacs/Transis model, ours) and the OneAtATime policy (Isis model).
// Expected shape: Batch needs ~1 view change per process regardless of N;
// OneAtATime needs ~N, i.e. the count grows linearly. Time-to-stable-view
// shows the same divergence.
#include <benchmark/benchmark.h>

#include "support/cluster.hpp"

namespace evs::bench {
namespace {

void MergeCascade(benchmark::State& state, gms::JoinPolicy policy) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));

  double total_views_per_process = 0;
  double max_views = 0;
  double merge_time_ms = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    test::ClusterOptions opt;
    opt.sites = 2 * n;
    opt.seed = 5000 + runs;
    opt.endpoint.policy = policy;
    test::Cluster c(opt);

    // Two partitions of N members each, stabilised independently.
    std::vector<SiteId> left(c.sites().begin(), c.sites().begin() + n);
    std::vector<SiteId> right(c.sites().begin() + n, c.sites().end());
    c.world().network().set_partition({left, right});

    std::vector<std::size_t> left_idx(n);
    std::vector<std::size_t> right_idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      left_idx[i] = i;
      right_idx[i] = n + i;
    }
    c.await_stable_view(left_idx, 300 * kSecond);
    c.await_stable_view(right_idx, 300 * kSecond);

    // Snapshot per-process view counts, then heal.
    std::vector<std::uint64_t> before(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i)
      before[i] = c.ep(i).stats().views_installed;
    const SimTime heal_at = c.world().scheduler().now();
    c.world().network().heal();
    c.await_stable_view(c.all_indices(), 600 * kSecond);
    const SimTime stable_at = c.world().scheduler().now();

    for (std::size_t i = 0; i < 2 * n; ++i) {
      const double delta =
          static_cast<double>(c.ep(i).stats().views_installed - before[i]);
      total_views_per_process += delta / (2.0 * n);
      max_views = std::max(max_views, delta);
    }
    merge_time_ms +=
        static_cast<double>(stable_at - heal_at) / kMillisecond;
    ++runs;
  }

  state.counters["views_per_process"] = total_views_per_process / runs;
  state.counters["max_views_one_process"] = max_views;
  state.counters["sim_merge_ms"] = merge_time_ms / runs;
}

void BatchPolicy(benchmark::State& state) {
  MergeCascade(state, gms::JoinPolicy::Batch);
}
void OneAtATimePolicy(benchmark::State& state) {
  MergeCascade(state, gms::JoinPolicy::OneAtATime);
}

BENCHMARK(BatchPolicy)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(OneAtATimePolicy)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace evs::bench
