// FIG1 — Figure 1: the mode-transition machine under fault load.
//
// The paper's Figure 1 defines the NORMAL / REDUCED / SETTLING modes and
// the four legal transitions. This bench drives a 5-replica quorum file
// object through random crash/recover/partition/heal schedules of varying
// intensity and reports, per process-second:
//   - counts of each transition (Failure / Repair / Reconfigure /
//     Reconcile),
//   - the fraction of time spent in each mode.
// The ModeMachine throws on any edge not in Figure 1, so merely running
// to completion re-verifies the figure's edge set under load. Expected
// shape: transition counts grow with fault rate, N-mode occupancy falls;
// Repair+Reconcile track each other (every settle that completes came
// from R or a reconfiguration).
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "sim/fault.hpp"

namespace evs::bench {
namespace {

void Fig1ModeTransitions(benchmark::State& state) {
  const auto mean_fault_interval =
      static_cast<SimDuration>(state.range(0)) * kMillisecond;
  constexpr std::size_t kSites = 5;
  constexpr SimDuration kHorizon = 60 * kSecond;

  std::array<std::uint64_t, 4> transitions{};
  std::array<std::uint64_t, 3> occupancy{};
  std::uint64_t runs = 0;

  for (auto _ : state) {
    FileCluster c(kSites, 1000 + runs, [](const auto& u) {
      return file_config(u);
    });
    c.await_all_normal(c.all_indices());

    sim::Rng rng(77 + runs);
    sim::FaultProfile profile;
    profile.mean_interval = mean_fault_interval;
    const SimTime start = c.world().scheduler().now();
    auto plan =
        sim::random_fault_plan(rng, c.sites(), start + kHorizon, profile);
    plan.arm(c.world());
    c.world().run_for(kHorizon);
    c.world().network().heal();
    c.world().run_for(5 * kSecond);

    const SimTime now = c.world().scheduler().now();
    for (std::size_t i = 0; i < kSites; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      const app::ModeMachine* m = c.obj(i).mode_machine();
      for (int t = 0; t < 4; ++t)
        transitions[t] += m->count(static_cast<app::Transition>(t));
      occupancy[0] += m->occupancy(app::Mode::Normal, now);
      occupancy[1] += m->occupancy(app::Mode::Reduced, now);
      occupancy[2] += m->occupancy(app::Mode::Settling, now);
    }
    ++runs;
  }

  const double total_time = static_cast<double>(occupancy[0] + occupancy[1] +
                                                occupancy[2]);
  state.counters["failure"] = static_cast<double>(transitions[0]) / runs;
  state.counters["repair"] = static_cast<double>(transitions[1]) / runs;
  state.counters["reconfigure"] = static_cast<double>(transitions[2]) / runs;
  state.counters["reconcile"] = static_cast<double>(transitions[3]) / runs;
  state.counters["pct_normal"] = 100.0 * occupancy[0] / total_time;
  state.counters["pct_reduced"] = 100.0 * occupancy[1] / total_time;
  state.counters["pct_settling"] = 100.0 * occupancy[2] / total_time;
}

// Fault inter-arrival time sweep: 4s (calm) to 500ms (storm).
BENCHMARK(Fig1ModeTransitions)
    ->Arg(4000)
    ->Arg(2000)
    ->Arg(1000)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace evs::bench
