// ABL-STRUCT — ablation: what does carrying the enriched-view structure
// actually cost the run-time?
//
// The paper claims enriched view synchrony "requires minor modifications
// to the view synchrony run-time support and can be implemented
// efficiently" (Section 6). In this implementation the only additional
// run-time cost is the structure context that rides in every flush ACK
// and the e-view bookkeeping at install. This bench runs an identical
// merge-heavy churn schedule over
//   (a) plain vsync endpoints (no structure), and
//   (b) EVS endpoints (structure maintained and shipped in every flush),
// and reports flush/install byte volume and total network bytes. Expected
// shape: the structure adds a few dozen bytes per member per view change —
// noise compared to the membership traffic itself.
#include <benchmark/benchmark.h>

#include "support/cluster.hpp"
#include "support/evs_cluster.hpp"

namespace evs::bench {
namespace {

// One churn cycle: partition in half, stabilise, heal, stabilise.
template <typename Cluster>
void churn(Cluster& c, std::size_t n, int cycles) {
  for (int k = 0; k < cycles; ++k) {
    std::vector<SiteId> left(c.sites().begin(),
                             c.sites().begin() + static_cast<long>(n / 2));
    std::vector<SiteId> right(c.sites().begin() + static_cast<long>(n / 2),
                              c.sites().end());
    c.world().network().set_partition({left, right});
    c.world().run_for(2 * kSecond);
    c.world().network().heal();
    c.await_stable_view(c.all_indices(), 300 * kSecond);
  }
}

void PlainVsync(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double ack_bytes = 0;
  double net_bytes = 0;
  double frames = 0;
  double frame_bytes = 0;
  double shared = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    test::ClusterOptions opt;
    opt.sites = n;
    opt.seed = 23000 + runs;
    test::Cluster c(opt);
    c.await_stable_view(c.all_indices(), 300 * kSecond);
    churn(c, n, 3);
    for (std::size_t i = 0; i < n; ++i) {
      ack_bytes += static_cast<double>(c.ep(i).stats().ack_bytes);
      frames += static_cast<double>(c.ep(i).stats().frames_encoded);
      frame_bytes += static_cast<double>(c.ep(i).stats().frame_bytes_encoded);
    }
    net_bytes += static_cast<double>(c.world().network().stats().bytes_sent);
    shared += static_cast<double>(c.world().network().stats().payloads_shared);
    ++runs;
  }
  state.counters["ack_bytes_per_member"] = ack_bytes / runs / n;
  state.counters["net_bytes_total"] = net_bytes / runs;
  state.counters["ctx_bytes_per_member"] = 0;
  // Encode-once evidence: the flush/install fan-outs are framed once each;
  // frame_bytes_encoded is what the CPU serialised, net_bytes_total what
  // the wire carried — the gap is the copy work the sharing avoided.
  state.counters["frames_encoded_per_member"] = frames / runs / n;
  state.counters["frame_bytes_per_member"] = frame_bytes / runs / n;
  state.counters["payloads_shared_total"] = shared / runs;
}

void EnrichedVsync(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double ack_bytes = 0;
  double ctx_bytes = 0;
  double net_bytes = 0;
  double frames = 0;
  double frame_bytes = 0;
  double shared = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    test::EvsClusterOptions opt;
    opt.sites = n;
    opt.seed = 23000 + runs;  // same schedule as the plain run
    test::EvsCluster c(opt);
    c.await_stable_view(c.all_indices(), 300 * kSecond);
    // Keep some structure alive so the contexts are non-trivial.
    c.ep(0).request_merge_all();
    c.world().run_for(1 * kSecond);
    churn(c, n, 3);
    for (std::size_t i = 0; i < n; ++i) {
      ack_bytes += static_cast<double>(c.ep(i).stats().ack_bytes);
      ctx_bytes += static_cast<double>(c.ep(i).evs_stats().context_bytes);
      frames += static_cast<double>(c.ep(i).stats().frames_encoded);
      frame_bytes += static_cast<double>(c.ep(i).stats().frame_bytes_encoded);
    }
    net_bytes += static_cast<double>(c.world().network().stats().bytes_sent);
    shared += static_cast<double>(c.world().network().stats().payloads_shared);
    ++runs;
  }
  state.counters["ack_bytes_per_member"] = ack_bytes / runs / n;
  state.counters["ctx_bytes_per_member"] = ctx_bytes / runs / n;
  state.counters["net_bytes_total"] = net_bytes / runs;
  state.counters["frames_encoded_per_member"] = frames / runs / n;
  state.counters["frame_bytes_per_member"] = frame_bytes / runs / n;
  state.counters["payloads_shared_total"] = shared / runs;
}

BENCHMARK(PlainVsync)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(EnrichedVsync)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace evs::bench
