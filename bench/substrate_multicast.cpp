// SUBSTRATE — view-synchronous multicast cost under the three ordering
// layers (Section 2 notes view synchrony imposes no order; the layers are
// what applications add on top, and what EVS's total order costs).
//
// A stable group of n members exchanges a fixed number of multicasts; we
// report, per configuration:
//   - simulated mean delivery latency (multicast -> delivered at all),
//   - physical messages the network carried per application multicast,
//   - ordering-metadata overhead bytes per multicast,
//   - frame encodes per multicast (encode-once fan-out: ~1, not n-1),
//   - payload buffers shared vs copied on the wire path.
// Expected shape: FIFO ~ cheapest (n-1 messages, no metadata); causal adds
// a vector-clock per message (O(n) bytes); total doubles the message count
// (forward + sequencer stamp) and centralises load at the sequencer.
// wire_bytes_per_mc must match the pre-optimization baseline exactly:
// sharing one encoded buffer across recipients must not change what the
// wire carries.
#include <benchmark/benchmark.h>

#include <string>

#include "obs/dump.hpp"
#include "order/layers.hpp"
#include "sim/world.hpp"

namespace evs::bench {
namespace {

class CountingDelegate : public order::OrderDelegate {
 public:
  void on_view(const gms::View&, const vsync::InstallInfo&) override {}
  void on_deliver(ProcessId, const Bytes&) override { ++delivered; }
  std::uint64_t delivered = 0;
};

template <typename Layer>
void MulticastBench(benchmark::State& state, const char* tag) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr int kMessages = 200;

  double latency_ms = 0;
  double net_msgs_per_mc = 0;
  double overhead_per_mc = 0;
  double wire_bytes_per_mc = 0;
  double frames_per_mc = 0;
  double copies_per_mc = 0;
  double shared_per_mc = 0;
  std::uint64_t runs = 0;

  for (auto _ : state) {
    sim::World world(21000 + runs);
    const auto sites = world.add_sites(n);
    vsync::EndpointConfig cfg;
    cfg.universe = sites;

    std::vector<vsync::Endpoint*> eps;
    std::vector<std::unique_ptr<CountingDelegate>> delegates;
    std::vector<std::unique_ptr<Layer>> layers;
    for (const SiteId site : sites) {
      eps.push_back(&world.spawn<vsync::Endpoint>(site, cfg));
      delegates.push_back(std::make_unique<CountingDelegate>());
      layers.push_back(std::make_unique<Layer>(*eps.back(), *delegates.back()));
    }
    // Group formation.
    for (int i = 0; i < 3000; ++i) {
      world.run_for(10 * kMillisecond);
      bool stable = true;
      for (auto* ep : eps)
        stable = stable && ep->view().size() == n && !ep->blocked();
      if (stable) break;
    }

    const sim::NetworkStats net_before = world.network().stats();
    std::uint64_t frames_before = 0;
    for (auto* ep : eps) frames_before += ep->stats().frames_encoded;
    const SimTime t0 = world.scheduler().now();
    for (int m = 0; m < kMessages; ++m) {
      layers[static_cast<std::size_t>(m) % n]->multicast(
          to_bytes("payload-" + std::to_string(m)));
      world.run_for(2 * kMillisecond);
    }
    // Drain.
    const std::uint64_t want = static_cast<std::uint64_t>(kMessages) * n;
    for (int i = 0; i < 3000; ++i) {
      std::uint64_t got = 0;
      for (auto& d : delegates) got += d->delivered;
      if (got >= want) break;
      world.run_for(10 * kMillisecond);
    }
    const SimTime t1 = world.scheduler().now();

    latency_ms += static_cast<double>(t1 - t0) / kMillisecond / kMessages;
    const sim::NetworkStats& net = world.network().stats();
    net_msgs_per_mc +=
        static_cast<double>(net.messages_sent - net_before.messages_sent) /
        kMessages;
    wire_bytes_per_mc +=
        static_cast<double>(net.bytes_sent - net_before.bytes_sent) / kMessages;
    copies_per_mc +=
        static_cast<double>(net.payload_copies - net_before.payload_copies) /
        kMessages;
    shared_per_mc +=
        static_cast<double>(net.payloads_shared - net_before.payloads_shared) /
        kMessages;
    std::uint64_t frames = 0;
    for (auto* ep : eps) frames += ep->stats().frames_encoded;
    frames_per_mc += static_cast<double>(frames - frames_before) / kMessages;
    double overhead = 0;
    for (auto& layer : layers)
      overhead += static_cast<double>(layer->stats().overhead_bytes);
    overhead_per_mc += overhead / kMessages;
    ++runs;

    if (!obs::trace_out_dir().empty()) {
      // Dump the last run's structured trace/metrics (recording is enabled
      // automatically by the World when EVS_TRACE_OUT is set; it never
      // perturbs the wire path, so the counters above are unaffected).
      world.network().export_metrics(world.metrics());
      for (std::size_t i = 0; i < eps.size(); ++i) {
        eps[i]->export_metrics(world.metrics(), "p" + std::to_string(i));
        order::export_metrics(layers[i]->stats(), world.metrics(),
                              "p" + std::to_string(i) + ".order");
      }
      world.dump_trace(std::string("substrate_") + tag + "_n" +
                       std::to_string(n));
    }
  }

  state.counters["sim_ms_per_mc"] = latency_ms / runs;
  state.counters["net_msgs_per_mc"] = net_msgs_per_mc / runs;
  state.counters["overhead_bytes_per_mc"] = overhead_per_mc / runs;
  state.counters["wire_bytes_per_mc"] = wire_bytes_per_mc / runs;
  state.counters["frames_encoded_per_mc"] = frames_per_mc / runs;
  state.counters["payload_copies_per_mc"] = copies_per_mc / runs;
  state.counters["payloads_shared_per_mc"] = shared_per_mc / runs;
}

void FifoOrder(benchmark::State& state) {
  MulticastBench<order::FifoLayer>(state, "fifo");
}
void CausalOrder(benchmark::State& state) {
  MulticastBench<order::CausalLayer>(state, "causal");
}
void TotalOrder(benchmark::State& state) {
  MulticastBench<order::TotalLayer>(state, "total");
}

BENCHMARK(FifoOrder)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(CausalOrder)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(TotalOrder)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace evs::bench
