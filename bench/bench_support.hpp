// Shared helpers for the benchmark harness.
//
// Each bench binary regenerates one figure or quantitative claim from the
// paper (see DESIGN.md §4 and EXPERIMENTS.md). Measurements of *protocol*
// quantities (view changes, messages, bytes, simulated latencies) are
// reported as benchmark counters; wall-clock time measures only the cost
// of simulating, which is not a paper quantity.
#pragma once

#include <benchmark/benchmark.h>

#include "objects/replicated_file.hpp"
#include "support/object_cluster.hpp"

namespace evs::bench {

inline objects::ReplicatedFileConfig file_config(
    const std::vector<SiteId>& universe,
    app::ClassifierMode classifier = app::ClassifierMode::Enriched) {
  objects::ReplicatedFileConfig cfg;
  cfg.object.endpoint.universe = universe;
  cfg.object.classifier = classifier;
  return cfg;
}

using FileCluster =
    test::ObjectCluster<objects::ReplicatedFile, objects::ReplicatedFileConfig>;

}  // namespace evs::bench
