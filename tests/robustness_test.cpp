// Robustness: protocol endpoints must survive garbage, truncation,
// duplication and replay on the wire without corrupting state — every
// defect is absorbed as a dropped message (Section 2's asynchronous
// system gives no cleaner option).
#include <gtest/gtest.h>

#include <string>

#include "obs/check.hpp"
#include "sim/fault.hpp"
#include "support/cluster.hpp"
#include "support/evs_cluster.hpp"
#include "support/oracle.hpp"

namespace evs::test {
namespace {

Bytes random_bytes(sim::Rng& rng, std::size_t max_len) {
  Bytes b(rng.uniform(max_len + 1));
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.uniform(256));
  return b;
}

TEST(Robustness, EndpointsSurviveRandomGarbage) {
  Cluster c({.sites = 3, .seed = 61});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  sim::Rng rng(991);
  // Blast every endpoint with garbage frames. Sender identities are fake
  // incarnations: the protocol has no authentication, so a *forged valid
  // control message* from a live member id (e.g. a LEAVE) is
  // indistinguishable from a real one by design — robustness here means
  // surviving *malformed* input, not Byzantine members.
  for (int i = 0; i < 500; ++i) {
    const ProcessId fake{SiteId{static_cast<std::uint32_t>(rng.uniform(3))},
                         1000 + static_cast<std::uint32_t>(rng.uniform(3))};
    const std::size_t to = rng.uniform(3);
    c.world().network().send(fake, c.ep(to).id(), random_bytes(rng, 64));
    c.world().run_for(1 * kMillisecond);
  }
  c.world().run_for(2 * kSecond);
  // The group stays intact and functional.
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.rec(0).multicast("still alive");
  ASSERT_TRUE(c.await([&]() { return c.rec(2).deliveries().size() >= 1; }));
  EXPECT_GT(c.ep(0).stats().messages_discarded, 0u);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

TEST(Robustness, TruncatedProtocolFramesAreDropped) {
  Cluster c({.sites = 2, .seed = 62});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  // Craft prefixes of every *payload-bearing* channel tag with nothing
  // behind them. (Channel 5, LEAVE, is bodyless: a frame carrying just its
  // tag is a VALID leave announcement, not a truncation.)
  for (std::uint8_t channel = 1; channel <= 4; ++channel) {
    Bytes frame{channel};
    c.world().network().send(c.ep(0).id(), c.ep(1).id(), frame);
    // And with one junk byte of "body".
    Bytes frame2{channel, 0xff};
    c.world().network().send(c.ep(0).id(), c.ep(1).id(), frame2);
  }
  c.world().run_for(2 * kSecond);
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.rec(1).multicast("ok");
  ASSERT_TRUE(c.await([&]() { return c.rec(0).deliveries().size() >= 1; }));
}

TEST(Robustness, ReplayedDataMessagesAreDeduplicated) {
  Cluster c({.sites = 2, .seed = 63});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.rec(0).multicast("once");
  ASSERT_TRUE(c.await([&]() { return c.rec(1).deliveries().size() == 1; }));

  // Re-send the exact DataMsg the sender would have produced (seq 1).
  gms::DataMsg replay;
  replay.view = c.ep(0).view().id;
  replay.seq = 1;
  replay.payload = to_bytes("once");
  Encoder body;
  replay.encode(body);
  for (int i = 0; i < 5; ++i) {
    c.world().network().send(c.ep(0).id(), c.ep(1).id(),
                             gms::frame(gms::Channel::Data, body));
  }
  c.world().run_for(2 * kSecond);
  EXPECT_EQ(c.rec(1).deliveries().size(), 1u);  // still exactly once
}

TEST(Robustness, StaleViewDataIsDiscarded) {
  Cluster c({.sites = 3, .seed = 64});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  const ViewId old_view = c.ep(0).view().id;
  c.world().crash_site(c.site(2));
  ASSERT_TRUE(c.await_stable_view({0, 1}));

  // A message tagged with the dead view must not be delivered.
  gms::DataMsg stale;
  stale.view = old_view;
  stale.seq = 99;
  stale.payload = to_bytes("ghost");
  Encoder body;
  stale.encode(body);
  c.world().network().send(c.ep(0).id(), c.ep(1).id(),
                           gms::frame(gms::Channel::Data, body));
  c.world().run_for(2 * kSecond);
  for (const auto& d : c.rec(1).deliveries()) EXPECT_NE(d.payload, "ghost");
}

TEST(Robustness, GarbageFlushContextYieldsSingleton) {
  // An EVS member whose flush context fails to decode must come out of
  // the view change as a singleton subview, not crash the group.
  // (Covered at unit level by StructureContext::decode; here we check the
  // endpoint path stays live when contexts are empty — the vsync layer
  // has no EVS delegate, so its context is empty bytes.)
  EvsClusterOptions opt{.sites = 2, .seed = 65};
  EvsCluster c(opt);
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  EXPECT_EQ(c.ep(0).eview().structure.subviews().size(), 2u);
  c.ep(0).eview().structure.validate(c.ep(0).eview().view.members);
}

TEST(Robustness, RandomGarbageUnderChurnKeepsEvsConsistent) {
  EvsClusterOptions opt{.sites = 4, .seed = 66};
  EvsCluster c(opt);
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  sim::Rng rng(4099);
  for (int round = 0; round < 20; ++round) {
    // Garbage from random identities (including dead incarnations).
    const ProcessId fake{SiteId{static_cast<std::uint32_t>(rng.uniform(4))},
                         static_cast<std::uint32_t>(rng.uniform(3))};
    c.world().network().send(fake, c.ep(rng.uniform(4)).id(),
                             random_bytes(rng, 128));
    if (round == 8) {
      c.world().network().set_partition(
          {{c.site(0), c.site(1)}, {c.site(2), c.site(3)}});
    }
    if (round == 14) c.world().network().heal();
    if (rng.bernoulli(0.4)) c.ep(rng.uniform(4)).request_merge_all();
    c.world().run_for(300 * kMillisecond);
    for (std::size_t i = 0; i < 4; ++i) {
      c.ep(i).eview().structure.validate(c.ep(i).eview().view.members);
    }
  }
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  ASSERT_TRUE(c.await([&]() { return c.structures_agree(c.all_indices()); }));
}

TEST(Robustness, RandomizedFaultScheduleTraceValidatesClean) {
  // Drive a cluster through a randomized crash/recover/partition/heal
  // schedule with the trace bus recording everything, then replay the
  // full trace through the in-library RunChecker: the view-synchrony
  // properties must hold with zero violations, from the trace alone.
  Cluster c({.sites = 4, .seed = 67});
  c.world().trace_bus().set_enabled(true);
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));

  sim::Rng rng(7041996);
  sim::FaultProfile profile;
  profile.mean_interval = 900 * kMillisecond;
  const SimTime horizon = c.world().scheduler().now() + 12 * kSecond;
  const sim::FaultPlan plan =
      sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());

  // Unique payloads from whichever sites are alive, throughout the run.
  int sent = 0;
  while (c.world().scheduler().now() < horizon) {
    for (std::size_t i = 0; i < 4; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      if (rng.bernoulli(0.5)) c.rec(i).multicast("rf-" + std::to_string(sent++));
    }
    c.world().run_for(100 * kMillisecond);
  }
  EXPECT_GT(sent, 0);
  c.world().network().heal();
  c.world().run_for(5 * kSecond);

  const obs::TraceBus& bus = c.world().trace_bus();
  EXPECT_EQ(bus.dropped(), 0u);  // the whole run fits in the ring
  EXPECT_GT(bus.size(), 0u);
  const std::vector<obs::TraceEvent> events = bus.events();
  const std::vector<obs::Violation> violations = obs::RunChecker::check(events);
  for (const obs::Violation& v : violations) ADD_FAILURE() << v.str();
  EXPECT_TRUE(violations.empty());

  // The trace-based verdict must agree with the recorder-based oracles.
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

}  // namespace
}  // namespace evs::test
