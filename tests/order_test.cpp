#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "order/layers.hpp"
#include "order/vector_clock.hpp"
#include "sim/world.hpp"

namespace evs::order {
namespace {

TEST(VectorClock, MergeTakesComponentMax) {
  VectorClock a(3);
  VectorClock b(3);
  a.set(0, 5);
  b.set(1, 7);
  a.merge(b);
  EXPECT_EQ(a.at(0), 5u);
  EXPECT_EQ(a.at(1), 7u);
  EXPECT_EQ(a.at(2), 0u);
}

TEST(VectorClock, LeqIsComponentwise) {
  VectorClock a(2);
  VectorClock b(2);
  b.set(0, 1);
  EXPECT_TRUE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
  a.set(1, 2);
  EXPECT_FALSE(a.leq(b));
}

TEST(VectorClock, DeliverableRequiresExactlyNextFromSender) {
  VectorClock delivered(2);  // nothing delivered yet
  VectorClock msg(2);
  msg.set(0, 1);  // first message from rank 0
  EXPECT_TRUE(msg.deliverable_at(0, delivered));
  msg.set(0, 2);  // second message — not yet
  EXPECT_FALSE(msg.deliverable_at(0, delivered));
}

TEST(VectorClock, DeliverableRequiresDependenciesCovered) {
  VectorClock delivered(2);
  VectorClock msg(2);
  msg.set(1, 1);
  msg.set(0, 3);  // depends on 3 messages from rank 0
  EXPECT_FALSE(msg.deliverable_at(1, delivered));
  delivered.set(0, 3);
  EXPECT_TRUE(msg.deliverable_at(1, delivered));
}

TEST(VectorClock, CodecRoundTrip) {
  VectorClock vc(4);
  vc.set(2, 100);
  Encoder enc;
  vc.encode(enc);
  Decoder dec(enc.buffer());
  EXPECT_EQ(VectorClock::decode(dec), vc);
}

// ------------------------------------------------------- layer fixtures ---

class OrderRecorder : public OrderDelegate {
 public:
  struct Delivery {
    ProcessId sender;
    std::string payload;
  };
  void on_view(const gms::View& view, const vsync::InstallInfo&) override {
    views.push_back(view);
  }
  void on_deliver(ProcessId sender, const Bytes& payload) override {
    deliveries.push_back({sender, to_string(payload)});
  }
  std::vector<gms::View> views;
  std::vector<Delivery> deliveries;
};

// A node that, upon delivering "ping", immediately multicasts "pong-<i>".
// Used to build genuine causal chains across processes.
template <typename Layer>
struct Node {
  vsync::Endpoint* endpoint = nullptr;
  std::unique_ptr<OrderRecorder> recorder;
  std::unique_ptr<Layer> layer;
};

template <typename Layer>
struct LayerCluster {
  explicit LayerCluster(std::size_t n, std::uint64_t seed = 1,
                        sim::NetworkConfig net = {})
      : world(seed, net) {
    sites = world.add_sites(n);
    vsync::EndpointConfig cfg;
    cfg.universe = sites;
    for (const SiteId site : sites) {
      Node<Layer> node;
      node.endpoint = &world.spawn<vsync::Endpoint>(site, cfg);
      node.recorder = std::make_unique<OrderRecorder>();
      node.layer = std::make_unique<Layer>(*node.endpoint, *node.recorder);
      nodes.push_back(std::move(node));
    }
  }

  bool await_group() {
    const SimTime deadline = world.scheduler().now() + 60 * kSecond;
    while (world.scheduler().now() < deadline) {
      bool ok = true;
      for (auto& node : nodes) {
        if (node.endpoint->view().size() != nodes.size() ||
            node.endpoint->blocked()) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
      world.run_for(10 * kMillisecond);
    }
    return false;
  }

  sim::World world;
  std::vector<SiteId> sites;
  std::vector<Node<Layer>> nodes;
};

TEST(FifoLayer, PassThroughDeliversEverything) {
  LayerCluster<FifoLayer> c(3);
  ASSERT_TRUE(c.await_group());
  for (int i = 0; i < 10; ++i)
    c.nodes[0].layer->multicast(to_bytes("m" + std::to_string(i)));
  c.world.run_for(2 * kSecond);
  for (auto& node : c.nodes) {
    ASSERT_EQ(node.recorder->deliveries.size(), 10u);
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(node.recorder->deliveries[i].payload, "m" + std::to_string(i));
  }
}

// Drives a causal chain: node 0 sends "ping", node 1 replies "pong" as
// soon as it delivers the ping. Every member must deliver ping before pong.
template <typename Layer>
void run_causal_chain(LayerCluster<Layer>& c, int rounds,
                      bool expect_causal) {
  ASSERT_TRUE(c.await_group());
  int violations = 0;
  for (int r = 0; r < rounds; ++r) {
    const std::string ping = "ping-" + std::to_string(r);
    const std::string pong = "pong-" + std::to_string(r);
    c.nodes[0].layer->multicast(to_bytes(ping));
    // Node 1 replies the moment it sees the ping.
    const SimTime deadline = c.world.scheduler().now() + 10 * kSecond;
    bool replied = false;
    while (c.world.scheduler().now() < deadline) {
      c.world.run_for(1 * kMillisecond);
      if (!replied) {
        for (const auto& d : c.nodes[1].recorder->deliveries) {
          if (d.payload == ping) {
            c.nodes[1].layer->multicast(to_bytes(pong));
            replied = true;
            break;
          }
        }
      }
      // Wait until everyone saw the pong.
      bool all = replied;
      for (auto& node : c.nodes) {
        bool saw = false;
        for (const auto& d : node.recorder->deliveries)
          if (d.payload == pong) saw = true;
        all = all && saw;
      }
      if (all) break;
    }
    for (auto& node : c.nodes) {
      int ping_at = -1;
      int pong_at = -1;
      const auto& ds = node.recorder->deliveries;
      for (std::size_t i = 0; i < ds.size(); ++i) {
        if (ds[i].payload == ping) ping_at = static_cast<int>(i);
        if (ds[i].payload == pong) pong_at = static_cast<int>(i);
      }
      ASSERT_GE(ping_at, 0);
      ASSERT_GE(pong_at, 0);
      if (pong_at < ping_at) ++violations;
    }
  }
  if (expect_causal) {
    EXPECT_EQ(violations, 0);
  }
}

TEST(CausalLayer, ReplyNeverOvertakesItsCause) {
  sim::NetworkConfig net;
  net.mean_jitter_us = 20'000.0;  // heavy jitter to tempt reordering
  LayerCluster<CausalLayer> c(4, 3, net);
  run_causal_chain(c, 10, /*expect_causal=*/true);
}

TEST(TotalLayer, ReplyNeverOvertakesItsCause) {
  sim::NetworkConfig net;
  net.mean_jitter_us = 20'000.0;
  LayerCluster<TotalLayer> c(4, 4, net);
  run_causal_chain(c, 10, /*expect_causal=*/true);
}

TEST(TotalLayer, AllMembersDeliverSameGlobalSequence) {
  sim::NetworkConfig net;
  net.mean_jitter_us = 10'000.0;
  LayerCluster<TotalLayer> c(4, 5, net);
  ASSERT_TRUE(c.await_group());
  // Everyone sends concurrently.
  for (int r = 0; r < 20; ++r) {
    for (std::size_t i = 0; i < c.nodes.size(); ++i) {
      c.nodes[i].layer->multicast(
          to_bytes("n" + std::to_string(i) + "-" + std::to_string(r)));
    }
    c.world.run_for(5 * kMillisecond);
  }
  c.world.run_for(5 * kSecond);
  const std::size_t expected = c.nodes.size() * 20;
  std::vector<std::string> reference;
  for (const auto& d : c.nodes[0].recorder->deliveries)
    reference.push_back(d.payload);
  ASSERT_EQ(reference.size(), expected);
  for (auto& node : c.nodes) {
    std::vector<std::string> got;
    for (const auto& d : node.recorder->deliveries) got.push_back(d.payload);
    EXPECT_EQ(got, reference);
  }
}

TEST(TotalLayer, SequencerCrashDoesNotLoseSurvivorMessages) {
  LayerCluster<TotalLayer> c(3, 6);
  ASSERT_TRUE(c.await_group());
  // The sequencer is the primary = lowest id = node 0 (first spawned at
  // site 0). Survivors keep sending while it dies.
  for (int r = 0; r < 10; ++r)
    c.nodes[1].layer->multicast(to_bytes("s" + std::to_string(r)));
  c.world.crash_site(c.sites[0]);
  c.world.run_for(10 * kSecond);
  // Both survivors deliver all 10, in the same order.
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (const auto& d : c.nodes[1].recorder->deliveries) a.push_back(d.payload);
  for (const auto& d : c.nodes[2].recorder->deliveries) b.push_back(d.payload);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a, b);
}

TEST(CausalLayer, ConcurrentSendersAllDelivered) {
  LayerCluster<CausalLayer> c(3, 7);
  ASSERT_TRUE(c.await_group());
  for (int r = 0; r < 15; ++r) {
    c.nodes[0].layer->multicast(to_bytes("a" + std::to_string(r)));
    c.nodes[1].layer->multicast(to_bytes("b" + std::to_string(r)));
    c.nodes[2].layer->multicast(to_bytes("c" + std::to_string(r)));
    c.world.run_for(3 * kMillisecond);
  }
  c.world.run_for(3 * kSecond);
  for (auto& node : c.nodes)
    EXPECT_EQ(node.recorder->deliveries.size(), 45u);
}

TEST(Layers, OverheadBytesAreTracked) {
  LayerCluster<TotalLayer> c(2, 8);
  ASSERT_TRUE(c.await_group());
  c.nodes[1].layer->multicast(to_bytes("x"));
  c.world.run_for(2 * kSecond);
  EXPECT_GT(c.nodes[1].layer->stats().overhead_bytes, 0u);
}

}  // namespace
}  // namespace evs::order
