// End-to-end integration scenarios: full stack (simulator → detector →
// membership → vsync → EVS → application model → group objects) driven
// through long, adversarial schedules, with global invariants checked
// throughout.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "objects/lock_manager.hpp"
#include "objects/mergeable_kv.hpp"
#include "objects/parallel_db.hpp"
#include "objects/replicated_file.hpp"
#include "sim/fault.hpp"
#include "support/object_cluster.hpp"

namespace evs::test {
namespace {

using app::GroupObjectConfig;
using app::Mode;
using objects::LockManager;
using objects::MergeableKv;
using objects::ParallelDb;
using objects::ReplicatedFile;
using objects::ReplicatedFileConfig;

ReplicatedFileConfig file_config(const std::vector<SiteId>& universe) {
  ReplicatedFileConfig cfg;
  cfg.object.endpoint.universe = universe;
  return cfg;
}

GroupObjectConfig plain_config(const std::vector<SiteId>& universe) {
  GroupObjectConfig cfg;
  cfg.endpoint.universe = universe;
  return cfg;
}

// ---------------------------------------------------------------------
// ReplicatedFile: quorum safety under random churn. At no point may two
// concurrent views both accept writes (write quorums intersect), so the
// version sequence observed by any reader is monotone and the final
// states converge.
class FileChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FileChurn, QuorumWritesStaySafeUnderRandomFaults) {
  const std::uint64_t seed = GetParam();
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      5, seed, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  sim::Rng rng(seed * 31337);
  sim::FaultProfile profile;
  profile.mean_interval = 900 * kMillisecond;
  const SimTime horizon = c.world().scheduler().now() + 10 * kSecond;
  auto plan = sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());

  int serial = 0;
  std::map<SiteId, std::uint64_t> last_version;
  while (c.world().scheduler().now() < horizon) {
    for (std::size_t i = 0; i < 5; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      ReplicatedFile& f = c.obj(i);
      // Writers may only succeed in N-mode.
      const bool accepted = f.write("w" + std::to_string(serial++));
      if (accepted) {
        EXPECT_EQ(f.mode(), Mode::Normal);
      }
      // Versions never go backwards at any single replica.
      auto& prev = last_version[c.site(i)];
      EXPECT_GE(f.version(), prev);
      prev = f.version();
    }
    c.world().run_for(150 * kMillisecond);
  }

  c.world().network().heal();
  // Recover any site the plan left dead (a dead majority means nobody can
  // reach N-mode), then require full convergence.
  for (const SiteId site : c.sites())
    if (!c.world().site_alive(site)) c.world().respawn(site);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  // All live replicas converge to one (version, content).
  std::set<std::pair<std::uint64_t, std::string>> states;
  for (std::size_t i = 0; i < 5; ++i) {
    if (!c.world().site_alive(c.site(i))) continue;
    states.emplace(c.obj(i).version(), c.obj(i).content());
  }
  EXPECT_EQ(states.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileChurn,
                         ::testing::Range<std::uint64_t>(100, 108));

// ---------------------------------------------------------------------
// ParallelDb: the exactly-once coverage invariant must hold in every
// stable view along a churny execution, and no inserted record may ever
// disappear once the group re-merges.
class DbChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbChurn, CoverageInvariantHoldsInEveryStableView) {
  const std::uint64_t seed = GetParam();
  ObjectCluster<ParallelDb, GroupObjectConfig> c(
      4, seed, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  int inserted = 0;
  for (int round = 0; round < 6; ++round) {
    // Insert a few records from whoever serves.
    for (std::size_t i = 0; i < 4; ++i) {
      if (c.world().site_alive(c.site(i)) && c.obj(i).serving_normal()) {
        c.obj(i).insert("r" + std::to_string(inserted), "v");
        ++inserted;
      }
    }
    c.world().run_for(500 * kMillisecond);

    // Check coverage among the members of each stable component.
    std::map<ViewId, std::vector<std::size_t>> components;
    for (std::size_t i = 0; i < 4; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      if (c.obj(i).blocked() || c.obj(i).mode() != Mode::Normal) continue;
      components[c.obj(i).view().id].push_back(i);
    }
    for (const auto& [view, members] : components) {
      if (members.size() != c.obj(members[0]).view().size()) continue;
      std::set<std::string> covered;
      bool duplicate = false;
      std::size_t expected = c.obj(members[0]).size();
      for (const std::size_t i : members) {
        for (const auto& [key, value] : c.obj(i).local_scan()) {
          if (!covered.insert(key).second) duplicate = true;
        }
      }
      EXPECT_FALSE(duplicate) << "double coverage in " << to_string(view);
      EXPECT_EQ(covered.size(), expected) << "holes in " << to_string(view);
    }

    // Alternate: partition, heal.
    if (round % 2 == 0) {
      c.world().network().set_partition(
          {{c.site(0), c.site(1)}, {c.site(2), c.site(3)}});
    } else {
      c.world().network().heal();
    }
    c.world().run_for(1 * kSecond);
  }

  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  // Nothing inserted anywhere was lost after the final merge.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(c.obj(i).size(), static_cast<std::size_t>(inserted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbChurn,
                         ::testing::Range<std::uint64_t>(200, 205));

// ---------------------------------------------------------------------
// LockManager: mutual exclusion is a *global* invariant — across all
// live processes in all concurrent views, at most one may believe it
// holds the lock, at every step of a churny execution.
class LockChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LockChurn, NeverTwoHoldersAnywhere) {
  const std::uint64_t seed = GetParam();
  ObjectCluster<LockManager, GroupObjectConfig> c(
      5, seed, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  sim::Rng rng(seed * 2654435761u);
  sim::FaultProfile profile;
  profile.mean_interval = 1200 * kMillisecond;
  const SimTime horizon = c.world().scheduler().now() + 10 * kSecond;
  auto plan = sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());

  while (c.world().scheduler().now() < horizon) {
    for (std::size_t i = 0; i < 5; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      LockManager& lock = c.obj(i);
      if (lock.i_hold_the_lock()) {
        if (rng.bernoulli(0.3)) lock.release();
      } else if (rng.bernoulli(0.5)) {
        lock.acquire();
      }
    }
    c.world().run_for(100 * kMillisecond);

    std::size_t holders = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      if (c.world().site_alive(c.site(i)) && c.obj(i).i_hold_the_lock())
        ++holders;
    }
    ASSERT_LE(holders, 1u) << "mutual exclusion violated at t="
                           << c.world().scheduler().now();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockChurn,
                         ::testing::Range<std::uint64_t>(300, 306));

// ---------------------------------------------------------------------
// MergeableKv: eventual convergence. Whatever interleaving of faults and
// writes happens, once the network heals and the group settles, every
// replica holds exactly the same map.
class KvChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvChurn, ReplicasConvergeAfterArbitraryChurn) {
  const std::uint64_t seed = GetParam();
  ObjectCluster<MergeableKv, GroupObjectConfig> c(
      4, seed, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  sim::Rng rng(seed * 40503);
  sim::FaultProfile profile;
  profile.mean_interval = 700 * kMillisecond;
  profile.crash_weight = 0.5;  // favour partitions: they cause divergence
  profile.partition_weight = 2.0;
  const SimTime horizon = c.world().scheduler().now() + 8 * kSecond;
  auto plan = sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());

  int n = 0;
  while (c.world().scheduler().now() < horizon) {
    for (std::size_t i = 0; i < 4; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      c.obj(i).put("k" + std::to_string(n % 5), "v" + std::to_string(n));
      ++n;
    }
    c.world().run_for(200 * kMillisecond);
  }

  c.world().network().heal();
  ASSERT_TRUE(c.await([&]() {
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < 4; ++i)
      if (c.world().site_alive(c.site(i))) alive.push_back(i);
    return !alive.empty() && c.all_normal(alive);
  }));
  c.world().run_for(2 * kSecond);

  std::optional<std::map<std::string, std::string>> reference;
  for (std::size_t i = 0; i < 4; ++i) {
    if (!c.world().site_alive(c.site(i))) continue;
    std::map<std::string, std::string> snapshot;
    for (int k = 0; k < 5; ++k) {
      const auto key = "k" + std::to_string(k);
      if (const auto v = c.obj(i).get(key)) snapshot[key] = *v;
    }
    if (!reference) {
      reference = snapshot;
    } else {
      EXPECT_EQ(snapshot, *reference) << "replica " << i << " diverged";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvChurn,
                         ::testing::Range<std::uint64_t>(400, 408));

// ---------------------------------------------------------------------
// Cross-object scenario: the full Section-3 narrative in one run — a
// file group survives a double partition, a total failure of one side,
// a stale rejoin, and ends consistent.
TEST(Integration, FullLifecycleNarrative) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      5, 4242, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).write("chapter 1"));
  c.world().run_for(1 * kSecond);

  // Double partition: {0,1,2} | {3} | {4}.
  c.world().network().set_partition(
      {{c.site(0), c.site(1), c.site(2)}, {c.site(3)}, {c.site(4)}});
  ASSERT_TRUE(c.await_all_normal({0, 1, 2}));
  ASSERT_TRUE(c.obj(1).write("chapter 2, quorum side"));
  EXPECT_FALSE(c.obj(3).write("rogue"));
  EXPECT_FALSE(c.obj(4).write("rogue"));
  c.world().run_for(1 * kSecond);

  // The quorum side totally fails; the isolated singletons are all that
  // remain — but they can't serve (no quorum).
  c.world().crash_site(c.site(0));
  c.world().crash_site(c.site(1));
  c.world().crash_site(c.site(2));
  c.world().run_for(1 * kSecond);
  c.world().network().heal();
  c.world().run_for(2 * kSecond);
  EXPECT_NE(c.obj(3).mode(), Mode::Normal);

  // Recovery of the quorum side: fresh incarnations with stable state.
  for (std::size_t i = 0; i < 3; ++i) c.world().respawn(c.site(i));
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  // The creation must resurrect the latest write, and everyone, including
  // the stale singletons, converges to it.
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(c.obj(i).content(), "chapter 2, quorum side") << "site " << i;
}

// Repeated join/leave cycles keep the structure and the state sane.
TEST(Integration, RepeatedJoinLeaveCycles) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      4, 777, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(c.obj(0).write("cycle " + std::to_string(cycle)));
    c.world().run_for(500 * kMillisecond);
    c.world().crash_site(c.site(3));
    ASSERT_TRUE(c.await_all_normal({0, 1, 2}));
    c.world().respawn(c.site(3));
    ASSERT_TRUE(c.await_all_normal(c.all_indices()));
    EXPECT_EQ(c.obj(3).content(), "cycle " + std::to_string(cycle));
    EXPECT_TRUE(c.obj(3).eview().degenerate());
  }
}

}  // namespace
}  // namespace evs::test
