// Additional coverage: graceful leave under load, the Isis-style
// admission policy under the property oracles, codec round-trip
// properties over random data, and endpoint statistics plumbing.
#include <gtest/gtest.h>

#include "sim/fault.hpp"
#include "support/cluster.hpp"
#include "support/evs_cluster.hpp"
#include "support/oracle.hpp"

namespace evs::test {
namespace {

TEST(Extras, LeaveDuringTrafficPreservesProperties) {
  Cluster c({.sites = 4, .seed = 71});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  for (int n = 0; n < 20; ++n) {
    c.rec(0).multicast("a" + std::to_string(n));
    c.rec(3).multicast("b" + std::to_string(n));
  }
  c.ep(3).leave();  // graceful departure mid-stream
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.world().run_for(3 * kSecond);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
  // Survivors saw all of the survivor's messages.
  std::set<std::string> got;
  for (const auto& d : c.rec(1).deliveries()) got.insert(d.payload);
  for (int n = 0; n < 20; ++n)
    EXPECT_TRUE(got.contains("a" + std::to_string(n)));
}

// The Isis-style one-at-a-time policy must still satisfy the view
// synchrony properties — it only changes *how fast* views grow.
class OneAtATimeFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneAtATimeFaults, PropertiesHoldUnderThePolicy) {
  ClusterOptions opt{.sites = 4, .seed = GetParam()};
  opt.endpoint.policy = gms::JoinPolicy::OneAtATime;
  Cluster c(opt);
  ASSERT_TRUE(c.await_stable_view(c.all_indices(), 120 * kSecond));

  sim::Rng rng(GetParam() * 887);
  sim::FaultProfile profile;
  profile.mean_interval = 1 * kSecond;
  const SimTime horizon = c.world().scheduler().now() + 6 * kSecond;
  auto plan = sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());
  int n = 0;
  while (c.world().scheduler().now() < horizon) {
    for (std::size_t i = 0; i < 4; ++i) {
      if (c.world().site_alive(c.site(i)))
        c.rec(i).multicast("m" + std::to_string(i) + "-" + std::to_string(n));
    }
    ++n;
    c.world().run_for(200 * kMillisecond);
  }
  c.world().network().heal();
  c.world().run_for(10 * kSecond);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneAtATimeFaults,
                         ::testing::Range<std::uint64_t>(500, 506));

// Codec property: arbitrary byte strings and value tuples survive a
// round trip exactly, across random lengths and magnitudes.
class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTrip, RandomValuesSurvive) {
  sim::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t v64 = rng.next();
    const std::uint32_t v32 = static_cast<std::uint32_t>(rng.next());
    Bytes blob(rng.uniform(300));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform(256));
    std::string text(rng.uniform(100), 'x');
    for (auto& ch : text) ch = static_cast<char>(rng.uniform_range(32, 126));

    Encoder enc;
    enc.put_varint(v64);
    enc.put_u32(v32);
    enc.put_bytes(blob);
    enc.put_string(text);
    enc.put_u64(v64);

    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.get_varint(), v64);
    EXPECT_EQ(dec.get_u32(), v32);
    EXPECT_EQ(dec.get_bytes(), blob);
    EXPECT_EQ(dec.get_string(), text);
    EXPECT_EQ(dec.get_u64(), v64);
    EXPECT_NO_THROW(dec.expect_end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(1u, 2u, 3u));

// Decoding random garbage must either produce a value or throw
// DecodeError — never crash or read out of bounds.
TEST(Extras, DecoderNeverCrashesOnGarbage) {
  sim::Rng rng(424242);
  for (int round = 0; round < 500; ++round) {
    Bytes garbage(rng.uniform(64));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform(256));
    Decoder dec(garbage);
    try {
      switch (rng.uniform(6)) {
        case 0: (void)dec.get_varint(); break;
        case 1: (void)dec.get_string(); break;
        case 2: (void)dec.get_bytes(); break;
        case 3: (void)gms::Propose::decode(dec); break;
        case 4: (void)gms::Install::decode(dec); break;
        case 5: (void)core::EViewStructure::decode(dec); break;
      }
    } catch (const DecodeError&) {
      // expected for most garbage
    }
  }
  SUCCEED();
}

TEST(Extras, EndpointStatsArePlumbing) {
  Cluster c({.sites = 3, .seed = 72});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  for (int n = 0; n < 10; ++n) c.rec(0).multicast("s" + std::to_string(n));
  c.world().run_for(2 * kSecond);
  const auto& stats = c.ep(0).stats();
  EXPECT_GE(stats.views_installed, 2u);       // singleton + merged
  EXPECT_GE(stats.rounds_completed, 1u);
  EXPECT_EQ(stats.data_multicast, 10u);
  EXPECT_GE(stats.data_delivered, 10u);
  // The coordinator self-acks without serialising; a non-coordinator
  // member's ACK does hit the wire.
  EXPECT_GT(c.ep(1).stats().ack_bytes, 0u);
  EXPECT_GT(c.world().network().stats().bytes_delivered, 0u);
}

TEST(Extras, EvsStatsCountMergesAndRejections) {
  EvsCluster c({.sites = 3, .seed = 73});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // One valid sv-set merge...
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await(
      [&]() { return c.ep(0).eview().structure.svsets().size() == 1; }));
  // ...then a stale request referencing ids that no longer exist.
  c.ep(0).request_sv_set_merge(
      {SvSetId{c.ep(1).id(), 0}, SvSetId{c.ep(2).id(), 0}});
  c.world().run_for(2 * kSecond);
  EXPECT_GE(c.ep(0).evs_stats().merges_requested, 2u);
  EXPECT_GE(c.ep(0).evs_stats().ev_changes_applied, 1u);
  EXPECT_GE(c.ep(0).evs_stats().merges_rejected, 1u);
}

TEST(Extras, SchedulerEventBudgetGuardsLivelock) {
  sim::Scheduler sched;
  // A self-perpetuating zero-delay event chain must trip the budget
  // rather than hang.
  std::function<void()> spin = [&]() { sched.schedule_after(0, spin); };
  sched.schedule_after(0, spin);
  EXPECT_THROW(sched.run(10'000), InvariantViolation);
}

}  // namespace
}  // namespace evs::test
