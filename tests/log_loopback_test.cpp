// End-to-end sharded-log test: three real evs_node processes, each
// hosting FOUR log-shard group instances (G=4) over one socket/loop/
// timer wheel, driven through the svc front door on 127.0.0.1.
//
//   usage: log_loopback_test <evs_node> <trace_check> <log_bench>
//
// The contract under test (ISSUE 8): one process hosts many groups; the
// four shards form one shared log whose global positions interleave
// (global = local*G + shard, shard = key % G):
//   1. spawn three nodes from a config with `group 1..4 log` lines; every
//      node hosts all four instances and installs all four 3-views,
//   2. writes route: a non-coordinator answers NotLeader naming the
//      coordinator site,
//   3. a pipelined burst of appends over several connections spreads
//      across all four shards; every append is acked at a global position
//      of its key's residue class, each shard's positions are dense, no
//      position is acked twice (single-copy ordering),
//   4. LogTail fans out and reports the max over shards; every acked
//      position reads back its record through a *different* node,
//   5. fill junk-fills a run of unassigned positions ('F' reads); trim
//      discards a prefix ('T' reads) while later records stay readable,
//   6. seal fences appends at the sealed epoch (InvalidEpoch) until a
//      SIGSTOP-induced view change outruns it; the 2-view majority keeps
//      appending; SIGCONT re-merges all four groups and the revived node
//      serves reads of records it never saw appended (state transfer),
//   7. a short log_bench run (open-loop load + SDK verify pass) exits 0:
//      no duplicate positions, nothing lost,
//   8. SIGTERM everything; the merged traces pass trace_check, which
//      splits by group label and checks each group's slice on its own.
//
// Plain main() runner (no gtest): exit 0 on success, 1 on failure with a
// narrated transcript on stderr. RUN_SERIAL in ctest (fixed loopback
// ports, real forked processes).
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "runtime/svc.hpp"
#include "svc/protocol.hpp"

namespace {

using evs::Bytes;
using evs::runtime::SvcOp;
using evs::runtime::SvcRequest;
using evs::runtime::SvcResponse;
using evs::runtime::SvcStatus;

constexpr int kNodes = 3;
constexpr int kShards = 4;  // groups 1..4, shard index = id - 1

std::function<void()> g_on_fail;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  if (g_on_fail) g_on_fail();
  std::exit(1);
}

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) die("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname() failed");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  std::string out;
  bool exited = false;
  int exit_status = -1;
};

Child spawn_node(const std::string& binary, const std::string& config_path,
                 const std::string& trace_dir) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) die("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::setenv("EVS_TRACE_OUT", trace_dir.c_str(), 1);
    std::vector<std::string> args = {binary, "--config", config_path,
                                     "--trace-flush-ms", "100"};
    std::vector<char*> argv;
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  ::close(pipe_fds[1]);
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  Child child;
  child.pid = pid;
  child.out_fd = pipe_fds[0];
  return child;
}

bool drain(std::vector<Child>& children, int timeout_ms) {
  std::vector<pollfd> fds;
  for (Child& c : children)
    if (c.out_fd >= 0) fds.push_back({c.out_fd, POLLIN, 0});
  if (fds.empty()) return false;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return false;
  bool got = false;
  for (Child& c : children) {
    if (c.out_fd < 0) continue;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(c.out_fd, buf, sizeof(buf));
      if (n > 0) {
        c.out.append(buf, static_cast<std::size_t>(n));
        got = true;
      } else if (n == 0) {
        ::close(c.out_fd);
        c.out_fd = -1;
        break;
      } else {
        break;  // EAGAIN
      }
    }
  }
  return got;
}

bool await(std::vector<Child>& children, int timeout_ms,
           const std::function<bool()>& pred) {
  for (int waited = 0; waited < timeout_ms;) {
    if (pred()) return true;
    drain(children, 50);
    waited += 50;
  }
  return pred();
}

/// True when `out` (past `offset`) holds a view line for `group` whose
/// same line also matches `needle` (e.g. "size=3 members=0,1,2").
bool has_group_view(const std::string& out, std::size_t offset,
                    int group, const std::string& needle) {
  const std::string head = "view group=" + std::to_string(group) + " ";
  std::size_t at = offset;
  while ((at = out.find(head, at)) != std::string::npos) {
    const std::size_t eol = out.find('\n', at);
    const std::string line =
        out.substr(at, eol == std::string::npos ? out.size() - at : eol - at);
    if (line.find(needle) != std::string::npos) return true;
    at += head.size();
  }
  return false;
}

/// Coordinator site from the last view line of `group` in `out`; -1 if
/// none.
int group_coordinator(const std::string& out, int group) {
  const std::string head = "view group=" + std::to_string(group) + " ";
  std::size_t last = std::string::npos;
  std::size_t at = 0;
  while ((at = out.find(head, at)) != std::string::npos) {
    last = at;
    at += head.size();
  }
  if (last == std::string::npos) return -1;
  const std::size_t coord = out.find("coordinator=", last);
  if (coord == std::string::npos) return -1;
  return std::atoi(out.c_str() + coord + sizeof("coordinator=") - 1);
}

void reap(Child& child) {
  int status = 0;
  if (::waitpid(child.pid, &status, 0) == child.pid) {
    child.exited = true;
    child.exit_status = status;
  }
  while (child.out_fd >= 0) {
    char buf[4096];
    const ssize_t n = ::read(child.out_fd, buf, sizeof(buf));
    if (n > 0) {
      child.out.append(buf, static_cast<std::size_t>(n));
    } else {
      ::close(child.out_fd);
      child.out_fd = -1;
    }
  }
}

void dump_outputs(const std::vector<Child>& children) {
  for (int i = 0; i < static_cast<int>(children.size()); ++i)
    std::fprintf(stderr, "--- node%d output ---\n%s\n", i,
                 children[i].out.c_str());
}

int run_and_wait(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    std::vector<char*> argv;
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// ------------------------------------------------------------- client ---

/// Blocking external client on one persistent connection; dies loudly on
/// any hang (the typed-response promise is part of what is under test).
class SvcClient {
 public:
  explicit SvcClient(std::uint16_t port) : port_(port) {}
  ~SvcClient() { close_fd(); }

  void connect_or_die() {
    close_fd();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) die("client socket() failed");
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      die("client connect() to svc port failed");
    rx_.clear();
    rx_off_ = 0;
  }

  std::uint64_t send_request(const SvcRequest& req) {
    if (fd_ < 0) connect_or_die();
    const std::uint64_t id = next_id_++;
    const Bytes body = evs::svc::encode_request(id, req);
    std::string frame;
    evs::svc::append_frame(frame, body);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) die("client send() failed");
      sent += static_cast<std::size_t>(n);
    }
    return id;
  }

  SvcResponse recv_response(std::uint64_t id, int timeout_ms = 10000) {
    for (int waited = 0;;) {
      const auto parked = parked_.find(id);
      if (parked != parked_.end()) {
        SvcResponse resp = parked->second;
        parked_.erase(parked);
        return resp;
      }
      Bytes frame_body;
      switch (evs::svc::next_frame(rx_, rx_off_, frame_body)) {
        case evs::svc::FrameStatus::Frame: {
          const auto wire = evs::svc::decode_response(frame_body);
          parked_.emplace(wire.request_id, wire.resp);
          continue;
        }
        case evs::svc::FrameStatus::Malformed:
          die("server sent a malformed frame");
        case evs::svc::FrameStatus::NeedMore:
          break;
      }
      if (waited >= timeout_ms)
        die("request " + std::to_string(id) +
            " hung: no typed response within the deadline");
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 200) > 0) {
        char buf[4096];
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0)
          rx_.append(buf, static_cast<std::size_t>(n));
        else if (n == 0)
          die("server closed the connection mid-request");
      } else {
        waited += 200;
      }
    }
  }

  SvcResponse call(const SvcRequest& req, int timeout_ms = 10000) {
    return recv_response(send_request(req), timeout_ms);
  }

 private:
  void close_fd() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  std::uint16_t port_;
  int fd_ = -1;
  std::string rx_;
  std::size_t rx_off_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, SvcResponse> parked_;
};

SvcRequest log_req(SvcOp op, std::string key = {}, std::string value = {}) {
  SvcRequest r;
  r.op = op;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

/// Appends with the wildcard epoch, retrying the protocol's transient
/// outcomes: Unavailable (settling / shed) and InvalidEpoch (sealed shard
/// waiting for a view change). Returns the Ok response.
SvcResponse append_until_ok(SvcClient& client, const std::string& key,
                            const std::string& value, const char* what) {
  for (int waited = 0; waited < 60000;) {
    const SvcResponse resp =
        client.call(log_req(SvcOp::LogAppend, key, value));
    if (resp.status == SvcStatus::Ok) return resp;
    if (resp.status != SvcStatus::Unavailable &&
        resp.status != SvcStatus::InvalidEpoch)
      die(std::string(what) + ": LogAppend answered " +
          evs::runtime::to_string(resp.status));
    const int backoff_ms =
        resp.retry_after_ms > 0 ? static_cast<int>(resp.retry_after_ms) : 100;
    ::usleep(backoff_ms * 1000);
    waited += backoff_ms;
  }
  die(std::string(what) + ": LogAppend never succeeded");
}

/// Reads `pos` until its tagged value equals `want` (replication and
/// state transfer are eventual; a non-typed answer or timeout is fatal).
void await_read(SvcClient& client, std::uint64_t pos, const std::string& want,
                const char* what) {
  for (int waited = 0; waited < 60000; waited += 100) {
    const SvcResponse resp =
        client.call(log_req(SvcOp::LogRead, std::to_string(pos)));
    if (resp.status == SvcStatus::Ok && resp.value == want) return;
    if (resp.status != SvcStatus::Ok && resp.status != SvcStatus::Conflict &&
        resp.status != SvcStatus::Unavailable)
      die(std::string(what) + ": LogRead answered " +
          evs::runtime::to_string(resp.status));
    ::usleep(100 * 1000);
  }
  die(std::string(what) + ": position " + std::to_string(pos) +
      " never read \"" + want + "\"");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr, "usage: %s <evs_node> <trace_check> <log_bench>\n",
                 argv[0]);
    return 2;
  }
  const std::string evs_node = argv[1];
  const std::string trace_check = argv[2];
  const std::string log_bench = argv[3];

  char dir_template[] = "/tmp/evs_log_loopback_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) die("mkdtemp() failed");
  const std::string dir = dir_template;

  std::uint16_t ports[kNodes];
  std::uint16_t svc_ports[kNodes];
  for (auto& p : ports) p = free_port();
  for (auto& p : svc_ports) p = free_port();

  std::vector<std::string> config_paths;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path = dir + "/node" + std::to_string(i) + ".conf";
    std::ofstream os(path);
    os << "self " << i << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "peer " << j << " 127.0.0.1:" << ports[j] << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "svc " << j << " 127.0.0.1:" << svc_ports[j] << "\n";
    for (int g = 1; g <= kShards; ++g) os << "group " << g << " log\n";
    config_paths.push_back(path);
  }

  std::vector<Child> children;
  for (int i = 0; i < kNodes; ++i)
    children.push_back(spawn_node(evs_node, config_paths[i], dir));
  g_on_fail = [&children]() { dump_outputs(children); };

  // 1. Every node hosts all four shards and installs all four 3-views.
  const std::string full = "size=3 members=0,1,2";
  if (!await(children, 60000, [&]() {
        for (const Child& c : children) {
          if (c.out.find("groups n=4 shards=4") == std::string::npos)
            return false;
          if (c.out.find("svc site=") == std::string::npos) return false;
          for (int g = 1; g <= kShards; ++g)
            if (!has_group_view(c.out, 0, g, full)) return false;
        }
        return true;
      }))
    die("nodes never hosted 4 groups and converged to four 3-views");
  std::fprintf(stderr, "ok: 3 nodes x 4 log-shard groups, all views full\n");

  // All groups share one universe, so deterministic election gives them
  // one coordinator site; writes for every shard go there.
  const int coord = group_coordinator(children[0].out, 1);
  if (coord < 0 || coord >= kNodes) die("no coordinator parsed from views");
  for (int g = 2; g <= kShards; ++g)
    if (group_coordinator(children[0].out, g) != coord)
      die("groups disagree on the coordinator site");
  const int other = (coord + 1) % kNodes;
  std::fprintf(stderr, "ok: coordinator site %d for all four groups\n", coord);

  // 2. Writes route: a non-coordinator names the coordinator, typed.
  // Right after the view settles a replica may briefly shed load, so
  // tolerate transient Unavailable before asserting the redirect.
  SvcClient follower(svc_ports[other]);
  SvcResponse redirect = follower.call(log_req(SvcOp::LogAppend, "0", "x"));
  for (int i = 0; i < 100 && redirect.status == SvcStatus::Unavailable; ++i) {
    ::usleep((redirect.retry_after_ms > 0 ? redirect.retry_after_ms : 50) *
             1000);
    redirect = follower.call(log_req(SvcOp::LogAppend, "0", "x"));
  }
  if (redirect.status != SvcStatus::NotLeader)
    die(std::string("append at a non-coordinator was not NotLeader but ") +
        evs::runtime::to_string(redirect.status));
  if (redirect.coordinator_site != static_cast<std::uint32_t>(coord))
    die("NotLeader names the wrong coordinator site");
  std::fprintf(stderr, "ok: NotLeader redirect names site %d\n", coord);

  // 3. Pipelined burst over several connections, spread across shards:
  //    key i routes to shard i%4, so 80 keys put 20 records on each.
  constexpr int kBurst = 80;
  constexpr int kConns = 4;
  std::vector<std::unique_ptr<SvcClient>> writers;
  for (int c = 0; c < kConns; ++c)
    writers.push_back(std::make_unique<SvcClient>(svc_ports[coord]));
  std::map<int, std::uint64_t> pos_of_key;
  std::uint64_t epoch = 0;
  {
    std::vector<std::vector<std::pair<int, std::uint64_t>>> inflight(kConns);
    for (int i = 0; i < kBurst; ++i) {
      const int c = i % kConns;
      inflight[c].emplace_back(
          i, writers[c]->send_request(log_req(
                 SvcOp::LogAppend, std::to_string(i), "r" + std::to_string(i))));
    }
    for (int c = 0; c < kConns; ++c) {
      for (const auto& [key, id] : inflight[c]) {
        SvcResponse resp = writers[c]->recv_response(id);
        if (resp.status == SvcStatus::Unavailable)  // settling / shed
          resp = append_until_ok(*writers[c], std::to_string(key),
                                 "r" + std::to_string(key), "burst retry");
        if (resp.status != SvcStatus::Ok)
          die("burst append answered " +
              std::string(evs::runtime::to_string(resp.status)));
        pos_of_key[key] = std::strtoull(resp.value.c_str(), nullptr, 10);
        epoch = resp.view_epoch;
      }
    }
  }
  // Every ack in its key's residue class; dense per shard; no dup.
  std::set<std::uint64_t> all_positions;
  std::vector<std::set<std::uint64_t>> locals(kShards);
  for (const auto& [key, pos] : pos_of_key) {
    if (pos % kShards != static_cast<std::uint64_t>(key % kShards))
      die("key " + std::to_string(key) + " acked at position " +
          std::to_string(pos) + " outside its shard's residue class");
    if (!all_positions.insert(pos).second)
      die("position " + std::to_string(pos) + " acked twice (forked log)");
    locals[pos % kShards].insert(pos / kShards);
  }
  for (int s = 0; s < kShards; ++s) {
    if (locals[s].size() != kBurst / kShards ||
        *locals[s].rbegin() != kBurst / kShards - 1)
      die("shard " + std::to_string(s) + " positions are not dense");
  }
  std::fprintf(stderr,
               "ok: %d appends acked, dense per shard, 0 dups, epoch %llu\n",
               kBurst, static_cast<unsigned long long>(epoch));

  // 4. The fanned-out tail is the max over shards; cross-node reads see
  //    every record (total order crossed each group).
  //    Appends ack at the coordinator's delivery; the follower's replicas
  //    deliver the same multicasts a beat later, so poll the tail up.
  const std::uint64_t want_tail = (kBurst / kShards) * kShards + (kShards - 1);
  SvcResponse tail = follower.call(log_req(SvcOp::LogTail));
  for (int i = 0; i < 200; ++i) {
    if (tail.status == SvcStatus::Ok &&
        std::strtoull(tail.value.c_str(), nullptr, 10) == want_tail)
      break;
    ::usleep(50 * 1000);
    tail = follower.call(log_req(SvcOp::LogTail));
  }
  if (tail.status != SvcStatus::Ok) die("LogTail was not Ok");
  if (std::strtoull(tail.value.c_str(), nullptr, 10) != want_tail)
    die("LogTail reported " + tail.value + ", want " +
        std::to_string(want_tail));
  for (const auto& [key, pos] : pos_of_key)
    await_read(follower, pos, "Dr" + std::to_string(key), "cross-node read");
  std::fprintf(stderr, "ok: tail=%llu, all records readable cross-node\n",
               static_cast<unsigned long long>(want_tail));

  // 5. Fill a run beyond shard 1's tail ('F' reads), then trim shard 0's
  //    prefix ('T' reads) with later records intact.
  SvcClient writer(svc_ports[coord]);
  const std::uint64_t fill_at = (kBurst / kShards + 2) * kShards + 1;
  const SvcResponse filled =
      writer.call(log_req(SvcOp::LogFill, std::to_string(fill_at)));
  if (filled.status != SvcStatus::Ok) die("LogFill was not Ok");
  await_read(follower, fill_at, "F", "filled read");
  await_read(follower, fill_at - kShards, "F", "junk-run read");
  const SvcResponse trimmed =
      writer.call(log_req(SvcOp::LogTrim, std::to_string(2 * kShards)));
  if (trimmed.status != SvcStatus::Ok) die("LogTrim was not Ok");
  await_read(follower, 0, "T", "trimmed read");
  await_read(follower, kShards, "T", "trimmed read");
  // Shard 0's local 2 (global 8) survives the trim.
  int key_at_local2 = -1;
  for (const auto& [key, pos] : pos_of_key)
    if (pos == 2 * static_cast<std::uint64_t>(kShards)) key_at_local2 = key;
  if (key_at_local2 < 0) die("no record at shard 0 local 2");
  await_read(follower, 2 * kShards, "Dr" + std::to_string(key_at_local2),
             "post-trim read");
  std::fprintf(stderr, "ok: fill and trim behave, records intact\n");

  // 6. Seal fences shard 0 at the current epoch; the SIGSTOP view change
  //    outruns the seal and the 2-view majority appends again; SIGCONT
  //    re-merges and the revived node serves transferred state.
  const SvcResponse probe = append_until_ok(writer, "100", "probe", "probe");
  const std::uint64_t seal_epoch = probe.view_epoch;
  const SvcResponse sealed =
      writer.call(log_req(SvcOp::LogSeal, std::to_string(seal_epoch)));
  if (sealed.status != SvcStatus::Ok) die("LogSeal was not Ok");
  const SvcResponse fenced =
      writer.call(log_req(SvcOp::LogAppend, "104", "fenced"));
  if (fenced.status != SvcStatus::InvalidEpoch)
    die("append into the sealed shard was not InvalidEpoch");
  std::fprintf(stderr, "ok: sealed at epoch %llu, appends fenced\n",
               static_cast<unsigned long long>(seal_epoch));

  const int victim = 3 - coord - other;  // the third site
  std::size_t stop_offset[kNodes];
  for (int i = 0; i < kNodes; ++i) stop_offset[i] = children[i].out.size();
  ::kill(children[victim].pid, SIGSTOP);
  const std::string pair =
      "size=2 members=" + std::to_string(std::min(coord, other)) + "," +
      std::to_string(std::max(coord, other));
  if (!await(children, 90000, [&]() {
        for (const int i : {coord, other})
          for (int g = 1; g <= kShards; ++g)
            if (!has_group_view(children[i].out, stop_offset[i], g, pair))
              return false;
        return true;
      }))
    die("survivors never installed the four 2-views under SIGSTOP");
  const SvcResponse unsealed =
      append_until_ok(writer, "108", "after-seal", "2-view append");
  if (unsealed.view_epoch <= seal_epoch)
    die("the view change did not outrun the sealed epoch");
  std::fprintf(stderr, "ok: 2-views installed, seal outrun, append landed\n");

  for (int i = 0; i < kNodes; ++i) stop_offset[i] = children[i].out.size();
  ::kill(children[victim].pid, SIGCONT);
  if (!await(children, 90000, [&]() {
        for (int i = 0; i < kNodes; ++i)
          for (int g = 1; g <= kShards; ++g)
            if (!has_group_view(children[i].out, stop_offset[i], g, full))
              return false;
        return true;
      }))
    die("fleet never re-merged all four groups after SIGCONT");
  // The revived node serves a record appended while it was stopped: shard
  // 0 assigned "after-seal" some position it only learns via transfer.
  SvcClient revived(svc_ports[victim]);
  await_read(revived,
             std::strtoull(unsealed.value.c_str(), nullptr, 10),
             "Dafter-seal", "revived-node read");
  std::fprintf(stderr, "ok: re-merged; revived node serves transferred log\n");

  // 7. Open-loop bench + SDK verify pass: exit 0 = no dups, nothing lost.
  if (run_and_wait({log_bench, "--addr",
                    "127.0.0.1:" + std::to_string(svc_ports[coord]),
                    "--shards", std::to_string(kShards), "--conns", "4",
                    "--rate", "1500", "--duration-ms", "1500", "--drain-ms",
                    "2000", "--key-space", "64", "--value-bytes", "32"}) != 0)
    die("log_bench reported duplicate or lost appends");
  std::fprintf(stderr, "ok: log_bench load + verify pass clean\n");

  // 7b. One sampled append: the trace context rides the svc frame into
  //     the ordered multicast, so after shutdown the merged dumps must
  //     assemble one span tree that crosses all three processes. Reading
  //     the record back through the other two nodes first guarantees the
  //     delivery hops exist before the traces flush.
  constexpr std::uint64_t kSampledTraceId = 0x7e5717aceull;
  SvcRequest traced_append = log_req(SvcOp::LogAppend, "112", "traced");
  traced_append.trace_id = kSampledTraceId;
  traced_append.sampled = true;
  SvcResponse traced_resp = writer.call(traced_append);
  for (int waited = 0; traced_resp.status != SvcStatus::Ok; waited += 100) {
    if (waited >= 60000) die("sampled LogAppend never succeeded");
    if (traced_resp.status != SvcStatus::Unavailable &&
        traced_resp.status != SvcStatus::InvalidEpoch)
      die(std::string("sampled LogAppend answered ") +
          evs::runtime::to_string(traced_resp.status));
    ::usleep(100 * 1000);
    traced_resp = writer.call(traced_append);
  }
  const std::uint64_t traced_pos =
      std::strtoull(traced_resp.value.c_str(), nullptr, 10);
  await_read(follower, traced_pos, "Dtraced", "sampled-record read");
  await_read(revived, traced_pos, "Dtraced", "sampled-record read");
  std::fprintf(stderr, "ok: sampled append at %llu replicated everywhere\n",
               static_cast<unsigned long long>(traced_pos));

  // 8. Clean shutdown; the merged traces pass the per-group checker.
  for (int i = 0; i < kNodes; ++i) ::kill(children[i].pid, SIGTERM);
  for (int i = 0; i < kNodes; ++i) reap(children[i]);
  for (int i = 0; i < kNodes; ++i) {
    if (!WIFEXITED(children[i].exit_status) ||
        WEXITSTATUS(children[i].exit_status) != 0) {
      dump_outputs(children);
      die("node" + std::to_string(i) + " exited uncleanly");
    }
  }
  std::vector<std::string> traces;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path =
        dir + "/evs_node-site" + std::to_string(i) + ".trace.jsonl";
    if (::access(path.c_str(), R_OK) != 0) die("missing trace: " + path);
    traces.push_back(path);
  }
  if (run_and_wait({trace_check, "--merge", traces[0], traces[1],
                    traces[2]}) != 0)
    die("trace_check found violations in a group's merged trace");
  std::fprintf(stderr, "ok: merged traces pass per-group trace_check\n");

  // 9. The sampled request assembles into one monotonic span tree. The
  //    JSON lands in $EVS_LOOPBACK_ARTIFACTS when set (CI uploads it),
  //    else in the scratch dir.
  const char* artifacts = std::getenv("EVS_LOOPBACK_ARTIFACTS");
  const bool keep_tree = artifacts != nullptr && *artifacts != '\0';
  const std::string tree_path =
      (keep_tree ? std::string(artifacts) : dir) + "/request_tree.json";
  if (run_and_wait({trace_check, "--merge", traces[0], traces[1], traces[2],
                    "--request", "0x7e5717ace", "--request-json",
                    tree_path}) != 0)
    die("trace_check rejected the sampled request's span tree");
  std::string tree;
  {
    std::ifstream is(tree_path);
    std::string line;
    while (std::getline(is, line)) tree += line;
  }
  if (tree.find("\"found\":true") == std::string::npos ||
      tree.find("\"monotonic\":true") == std::string::npos)
    die("request tree JSON is not a found+monotonic tree: " + tree);
  for (int i = 0; i < kNodes; ++i)
    if (tree.find("\"" + std::to_string(i) + ":") == std::string::npos)
      die("sampled request's span tree is missing site " + std::to_string(i));
  std::fprintf(stderr,
               "ok: sampled request's span tree crosses all %d processes\n",
               kNodes);

  for (const std::string& path : config_paths) ::unlink(path.c_str());
  if (!keep_tree) ::unlink(tree_path.c_str());
  for (const std::string& path : traces) {
    const std::string stem =
        path.substr(0, path.size() - sizeof(".trace.jsonl") + 1);
    ::unlink((stem + ".trace.jsonl").c_str());
    ::unlink((stem + ".metrics.json").c_str());
    ::unlink((stem + ".trace.chrome.json").c_str());
  }
  ::rmdir(dir.c_str());
  std::printf("PASS\n");
  return 0;
}
