// Multi-group hosting tests: one NetRuntime (one event loop, one socket,
// one timer wheel, one store) hosting several group instances — per-group
// demux in and out, per-group store namespacing, per-group teardown that
// leaves nothing behind in the shared wheel (the failing-before timer
// lifecycle bug), and halt semantics (the loop stops only when the last
// alive group halts).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <memory>
#include <vector>

#include "net/event_loop.hpp"
#include "net/runtime.hpp"
#include "net/udp_transport.hpp"

namespace evs::test {
namespace {

using net::EventLoop;
using net::NetRuntime;
using net::NodeConfig;
using net::PeerAddr;
using net::UdpTransport;

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

NodeConfig config_for(SiteId self, const std::vector<PeerAddr>& addrs) {
  NodeConfig config;
  config.self = self;
  config.incarnation = 1;
  for (std::size_t i = 0; i < addrs.size(); ++i)
    config.peers.emplace(SiteId{static_cast<std::uint32_t>(i)}, addrs[i]);
  return config;
}

/// Minimal hosted node: counts lifecycle events and widens the protected
/// runtime surface so tests can drive sends / timers / halt directly.
class CountingNode : public runtime::Node {
 public:
  int started = 0;
  int crashed = 0;
  int fired = 0;
  std::vector<Bytes> inbox;

  void on_start() override { ++started; }
  void on_crash() override { ++crashed; }
  void on_message(ProcessId, const Bytes& payload) override {
    inbox.push_back(payload);
  }

  using runtime::Node::halt;
  using runtime::Node::send;
  using runtime::Node::set_timer;
  using runtime::Node::store;
};

/// One NetRuntime (site 0) plus a raw peer transport (site 1) sharing the
/// runtime's loop, so both ends progress under a single run_for.
class MultiGroupHost : public ::testing::Test {
 protected:
  MultiGroupHost() {
    const std::vector<PeerAddr> addrs = {
        {INADDR_LOOPBACK, free_port()},
        {INADDR_LOOPBACK, free_port()},
    };
    rt_ = std::make_unique<NetRuntime>(config_for(SiteId{0}, addrs));
    peer_ = std::make_unique<UdpTransport>(rt_->loop(),
                                           config_for(SiteId{1}, addrs));
  }

  bool await(const std::function<bool()>& pred) {
    for (int i = 0; i < 100 && !pred(); ++i)
      rt_->loop().run_for(10 * kMillisecond);
    return pred();
  }

  std::unique_ptr<NetRuntime> rt_;
  std::unique_ptr<UdpTransport> peer_;
};

TEST_F(MultiGroupHost, GroupsShareOneLoopAndSocketButStayIsolated) {
  CountingNode g1, g2;
  rt_->host_group(GroupId{1}, g1);
  rt_->host_group(GroupId{2}, g2);
  EXPECT_EQ(g1.started, 1);
  EXPECT_EQ(rt_->hosted_groups(), (std::vector<GroupId>{1, 2}));
  EXPECT_EQ(rt_->group_node(GroupId{1}), &g1);
  EXPECT_EQ(rt_->group_node(kDefaultGroup), nullptr);

  // Inbound demux: a frame lands only at the instance its envelope names.
  peer_->send(GroupId{1}, rt_->self(), Bytes{11});
  ASSERT_TRUE(await([&]() { return g1.inbox.size() == 1; }));
  EXPECT_EQ(g1.inbox[0], Bytes{11});
  EXPECT_TRUE(g2.inbox.empty());
  peer_->send(GroupId{2}, rt_->self(), Bytes{22});
  ASSERT_TRUE(await([&]() { return g2.inbox.size() == 1; }));
  EXPECT_EQ(g1.inbox.size(), 1u);

  // Outbound stamping: each node's sends leave on the shared socket
  // carrying its own group id.
  std::vector<GroupId> seen;
  peer_->set_deliver(GroupId{1},
                     [&](ProcessId, const Bytes&) { seen.push_back(1); });
  peer_->set_deliver(GroupId{2},
                     [&](ProcessId, const Bytes&) { seen.push_back(2); });
  g1.send(peer_->self(), Bytes{1});
  ASSERT_TRUE(await([&]() { return seen.size() == 1; }));
  g2.send(peer_->self(), Bytes{2});
  ASSERT_TRUE(await([&]() { return seen.size() == 2; }));
  EXPECT_EQ(seen, (std::vector<GroupId>{1, 2}));
  EXPECT_EQ(rt_->transport().group_stats(GroupId{1}).frames_sent, 1u);
  EXPECT_EQ(rt_->transport().group_stats(GroupId{2}).frames_sent, 1u);
}

TEST_F(MultiGroupHost, PerGroupStoresNamespaceOneSiteStore) {
  CountingNode g1, g2;
  rt_->host_group(GroupId{1}, g1);
  rt_->host_group(GroupId{2}, g2);
  g1.store().put("epoch", Bytes{1});
  g2.store().put("epoch", Bytes{2});
  // Same logical key, no collision: each instance reads its own value...
  EXPECT_EQ(g1.store().get("epoch"), Bytes{1});
  EXPECT_EQ(g2.store().get("epoch"), Bytes{2});
  // ...because the site store holds them under per-group prefixes.
  EXPECT_EQ(rt_->store().get("g1/epoch"), Bytes{1});
  EXPECT_EQ(rt_->store().get("g2/epoch"), Bytes{2});
  EXPECT_FALSE(rt_->store().contains("epoch"));
}

TEST_F(MultiGroupHost, UnhostTearsDownOneGroupWithoutDisturbingOthers) {
  CountingNode g1, g2;
  rt_->host_group(GroupId{1}, g1);
  rt_->host_group(GroupId{2}, g2);
  g1.set_timer(5 * kMillisecond, [&]() { ++g1.fired; });
  EXPECT_EQ(rt_->loop().pending_timers(), 1u);

  rt_->unhost_group(GroupId{1});
  EXPECT_FALSE(g1.alive());
  EXPECT_TRUE(g2.alive());
  EXPECT_EQ(rt_->hosted_groups(), (std::vector<GroupId>{2}));
  // The torn-down group's timer left the shared wheel with it.
  EXPECT_EQ(rt_->loop().pending_timers(), 0u);
  rt_->loop().run_for(20 * kMillisecond);
  EXPECT_EQ(g1.fired, 0);

  // Its frames are now unknown-group drops; the other group still serves.
  peer_->send(GroupId{1}, rt_->self(), Bytes{1});
  ASSERT_TRUE(await(
      [&]() { return rt_->transport().stats().dropped_unknown_group == 1; }));
  EXPECT_TRUE(g1.inbox.empty());
  peer_->send(GroupId{2}, rt_->self(), Bytes{2});
  ASSERT_TRUE(await([&]() { return g2.inbox.size() == 1; }));
}

TEST_F(MultiGroupHost, DestroyedNodeLeavesNoTimerBehindInTheSharedWheel) {
  // Failing-before bug: a group instance destroyed mid-run left its timer
  // callbacks (capturing `this`) armed in the host's shared wheel — a
  // use-after-free when they fired. detach()/~Node must cancel them.
  int fired = 0;
  auto node = std::make_unique<CountingNode>();
  rt_->host_group(GroupId{3}, *node);
  node->set_timer(5 * kMillisecond, [&fired]() { ++fired; });
  node->set_timer(8 * kMillisecond, [&fired]() { ++fired; });
  EXPECT_EQ(rt_->loop().pending_timers(), 2u);
  rt_->unhost_group(GroupId{3});
  node.reset();  // the wheel outlives the node
  EXPECT_EQ(rt_->loop().pending_timers(), 0u);
  rt_->loop().run_for(20 * kMillisecond);
  EXPECT_EQ(fired, 0);
}

TEST_F(MultiGroupHost, BareDestructionCancelsTimersToo) {
  // Same property without the runtime's unhost path: a bound node that
  // goes out of scope with timers armed must cancel them itself.
  int fired = 0;
  net::GroupChannel channel(rt_->transport(), GroupId{9});
  {
    CountingNode n;
    runtime::Env env;
    env.transport = &channel;
    env.clock = &rt_->loop();
    env.timers = &rt_->loop();
    n.bind(std::move(env), ProcessId{SiteId{9}, 1});
    n.set_timer(5 * kMillisecond, [&fired]() { ++fired; });
    EXPECT_EQ(rt_->loop().pending_timers(), 1u);
  }
  EXPECT_EQ(rt_->loop().pending_timers(), 0u);
  rt_->loop().run_for(20 * kMillisecond);
  EXPECT_EQ(fired, 0);
}

TEST_F(MultiGroupHost, LoopStopsOnlyWhenTheLastAliveGroupHalts) {
  CountingNode g1, g2;
  rt_->host_group(GroupId{1}, g1);
  rt_->host_group(GroupId{2}, g2);

  g1.halt();
  EXPECT_EQ(g1.crashed, 1);
  EXPECT_EQ(rt_->hosted_groups(), (std::vector<GroupId>{2}));
  EXPECT_FALSE(rt_->loop().stopped());
  // The survivor still serves over the still-running loop.
  peer_->send(GroupId{2}, rt_->self(), Bytes{7});
  ASSERT_TRUE(await([&]() { return g2.inbox.size() == 1; }));

  g2.halt();
  EXPECT_EQ(g2.crashed, 1);
  EXPECT_TRUE(rt_->hosted_groups().empty());
  EXPECT_TRUE(rt_->loop().stopped());
}

}  // namespace
}  // namespace evs::test
