// Tests for the fleet tools' HTTP client (tools/http_client.hpp):
// bounded in-flight concurrency and the connect-failure retry. The
// "server" side is a plain blocking loopback listener driven by a test
// thread, so every observable (which connection exists when, how many
// connect attempts a refused port sees) is under test control.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "http_client.hpp"

namespace evs::tools {
namespace {

constexpr std::uint32_t kLoopback = (127u << 24) | 1u;

/// Listening loopback socket on an ephemeral port.
int make_listener(std::uint16_t& port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, 8), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  port = ntohs(addr.sin_port);
  return fd;
}

/// Serves one accepted connection: reads to the header terminator, sends
/// a 200 with `body`, closes.
void serve_one(int client, const std::string& body) {
  std::string in;
  char buf[1024];
  while (in.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::read(client, buf, sizeof(buf));
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
  }
  const std::string out = "HTTP/1.0 200 OK\r\n\r\n" + body;
  (void)!::write(client, out.data(), out.size());
  ::close(client);
}

/// A port with nothing listening: bind, learn the number, close.
std::uint16_t refused_port() {
  std::uint16_t port = 0;
  const int fd = make_listener(port);
  ::close(fd);
  return port;
}

TEST(HttpClient, InFlightCapDefersLaterConnections) {
  std::uint16_t port = 0;
  const int listener = make_listener(port);
  std::atomic<bool> early_second{false};
  std::thread server([&]() {
    for (int i = 0; i < 3; ++i) {
      const int client = ::accept(listener, nullptr, nullptr);
      ASSERT_GE(client, 0);
      if (i == 0) {
        // With max_in_flight=1 the second connection must not exist
        // until this first exchange completes; a readable listener here
        // means the cap leaked. (Loopback connects land in microseconds,
        // so 150 ms of silence is decisive.)
        pollfd probe{listener, POLLIN, 0};
        if (::poll(&probe, 1, 150) > 0) early_second = true;
      }
      serve_one(client, "r" + std::to_string(i));
    }
  });

  std::vector<HttpRequest> requests(3);
  for (auto& request : requests)
    request.addr = net::PeerAddr{kLoopback, port};
  HttpOptions options;
  options.max_in_flight = 1;
  const auto responses = http_fetch_all(requests, 5000, options);
  server.join();
  ::close(listener);

  ASSERT_EQ(responses.size(), 3u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_TRUE(responses[i].success()) << "request " << i;
    EXPECT_EQ(responses[i].attempts, 1) << "request " << i;
  }
  // FIFO admission: results stay index-aligned with requests.
  EXPECT_EQ(responses[0].body, "r0");
  EXPECT_EQ(responses[2].body, "r2");
  EXPECT_FALSE(early_second.load()) << "cap of 1 opened a second connection";
}

TEST(HttpClient, RetriesRefusedConnectOnceByDefault) {
  std::vector<HttpRequest> requests(1);
  requests[0].addr = net::PeerAddr{kLoopback, refused_port()};
  HttpOptions options;
  options.retry_backoff_ms = 1;  // keep the test fast
  const auto responses = http_fetch_all(requests, 2000, options);
  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].attempts, 2);  // original + one retry
}

TEST(HttpClient, RetryBudgetIsConfigurable) {
  std::vector<HttpRequest> requests(1);
  requests[0].addr = net::PeerAddr{kLoopback, refused_port()};
  HttpOptions options;
  options.retry_backoff_ms = 1;
  options.connect_retries = 0;
  EXPECT_EQ(http_fetch_all(requests, 2000, options)[0].attempts, 1);
  options.connect_retries = 3;
  EXPECT_EQ(http_fetch_all(requests, 2000, options)[0].attempts, 4);
}

TEST(HttpClient, MixedBatchKeepsIndexAlignmentAcrossRetries) {
  std::uint16_t port = 0;
  const int listener = make_listener(port);
  std::thread server([&]() {
    const int client = ::accept(listener, nullptr, nullptr);
    ASSERT_GE(client, 0);
    serve_one(client, "alive");
  });

  std::vector<HttpRequest> requests(2);
  requests[0].addr = net::PeerAddr{kLoopback, refused_port()};
  requests[1].addr = net::PeerAddr{kLoopback, port};
  HttpOptions options;
  options.retry_backoff_ms = 1;
  const auto responses = http_fetch_all(requests, 5000, options);
  server.join();
  ::close(listener);

  EXPECT_FALSE(responses[0].ok);
  EXPECT_EQ(responses[0].attempts, 2);
  ASSERT_TRUE(responses[1].success());
  EXPECT_EQ(responses[1].body, "alive");
  EXPECT_EQ(responses[1].attempts, 1);
}

}  // namespace
}  // namespace evs::tools
