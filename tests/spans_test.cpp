// Unit tests for cross-process span correlation (obs/spans.hpp) on
// synthetic traces with known ground truth: planted clock skews recovered
// by the symmetric-path estimator, one-sided fallbacks flagged, per-channel
// latencies on the corrected clock, view-change phase breakdowns, and the
// JSON / Chrome-flow exporters.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/spans.hpp"
#include "obs/trace.hpp"

namespace evs::obs {
namespace {

ProcessId proc(std::uint32_t site, std::uint32_t inc = 1) {
  return ProcessId{SiteId{site}, inc};
}

ViewId view(std::uint64_t epoch, std::uint32_t coord_site) {
  return ViewId{epoch, proc(coord_site)};
}

TraceEvent sent(SimTime t, ProcessId sender, ViewId v, std::uint64_t seq) {
  return {t, sender, EventKind::MessageSent, v, sender, seq, seq * 31};
}

TraceEvent delivered(SimTime t, ProcessId recipient, ProcessId sender,
                     ViewId v, std::uint64_t seq) {
  return {t, recipient, EventKind::MessageDelivered, v, sender, seq, seq * 31};
}

// Ground truth for the two-process scenario: b's clock runs 200us ahead of
// a's, every message takes exactly 50us one-way. Symmetric paths, so the
// estimator recovers the skew exactly.
//
//   a sends at a-time 1000, b receives at true 1050 = b-time 1250.
//   b sends at b-time 2200 (true 2000), a receives at a-time 2050.
std::vector<TraceEvent> skewed_pair_trace() {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v = view(1, 0);
  return {
      sent(1000, a, v, 1),
      delivered(1050, a, a, v, 1),  // self-delivery: pure local queueing
      delivered(1250, b, a, v, 1),
      sent(2200, b, v, 1),
      delivered(2050, a, b, v, 1),
  };
}

TEST(Spans, RecoversPlantedClockSkewFromSymmetricPaths) {
  const SpanAnalysis analysis = correlate_spans(skewed_pair_trace());
  ASSERT_TRUE(analysis.clocks.knows(proc(0)));
  ASSERT_TRUE(analysis.clocks.knows(proc(1)));
  EXPECT_EQ(analysis.clocks.reference, proc(0));
  EXPECT_DOUBLE_EQ(analysis.clocks.offset_us.at(proc(0)), 0.0);
  // b-time = true + 200, so mapping b onto a's clock subtracts 200.
  EXPECT_DOUBLE_EQ(analysis.clocks.offset_us.at(proc(1)), -200.0);
  EXPECT_TRUE(analysis.clocks.one_sided.empty());
}

TEST(Spans, CorrectedChannelLatenciesMatchTrueDelay) {
  const SpanAnalysis analysis = correlate_spans(skewed_pair_trace());
  EXPECT_EQ(analysis.matched_deliveries, 3u);
  EXPECT_EQ(analysis.unmatched_sends, 0u);
  EXPECT_EQ(analysis.unmatched_deliveries, 0u);
  ASSERT_EQ(analysis.channels.size(), 3u);  // a->a, a->b, b->a
  for (const ChannelLatency& c : analysis.channels) {
    ASSERT_EQ(c.latency_us.count(), 1u);
    EXPECT_DOUBLE_EQ(c.latency_us.mean(), 50.0)
        << to_string(c.from) << "->" << to_string(c.to);
  }
}

TEST(Spans, OneSidedTrafficIsFlaggedAsUpperBound) {
  const ProcessId a = proc(0), c = proc(2);
  const ViewId v = view(1, 0);
  // c only ever receives: its offset is the zero-delay upper bound.
  const std::vector<TraceEvent> events = {
      sent(1000, a, v, 1),
      delivered(1300, c, a, v, 1),  // c-time; delta 300 = delay + skew
  };
  const SpanAnalysis analysis = correlate_spans(events);
  ASSERT_TRUE(analysis.clocks.knows(c));
  EXPECT_DOUBLE_EQ(analysis.clocks.offset_us.at(c), -300.0);
  ASSERT_EQ(analysis.clocks.one_sided.size(), 1u);
  EXPECT_EQ(analysis.clocks.one_sided[0], c);
}

TEST(Spans, NegativeChannelMinimumIsLiftedByPerDirectionFloor) {
  // All clocks truly aligned. a<->b exchange symmetric 50us paths, so both
  // get offset 0. c only ever receives: its offset comes from the a->c
  // edge under the zero-delay assumption (-100), which over-corrects the
  // genuinely faster b->c channel (10us true delay) to -90us. The floor
  // must lift that whole direction so its minimum is exactly 0, flag the
  // channel one-sided, and leave the honest channels untouched.
  const ProcessId a = proc(0), b = proc(1), c = proc(2);
  const ViewId v = view(1, 0);
  const std::vector<TraceEvent> events = {
      sent(1000, a, v, 1), delivered(1050, b, a, v, 1),
      sent(2000, b, v, 1), delivered(2050, a, b, v, 1),
      sent(3000, a, v, 2), delivered(3100, c, a, v, 2),  // a->c: 100us
      sent(4000, b, v, 2), delivered(4010, c, b, v, 2),  // b->c: 10us
  };
  const SpanAnalysis analysis = correlate_spans(events);
  EXPECT_DOUBLE_EQ(analysis.clocks.offset_us.at(c), -100.0);
  ASSERT_EQ(analysis.clocks.one_sided.size(), 1u);
  EXPECT_EQ(analysis.clocks.one_sided[0], c);

  const auto channel = [&](ProcessId from, ProcessId to) {
    for (const ChannelLatency& ch : analysis.channels)
      if (ch.from == from && ch.to == to) return &ch;
    return static_cast<const ChannelLatency*>(nullptr);
  };
  const ChannelLatency* bc = channel(b, c);
  ASSERT_NE(bc, nullptr);
  EXPECT_DOUBLE_EQ(bc->floor_us, 90.0);
  EXPECT_DOUBLE_EQ(bc->latency_us.min(), 0.0);
  EXPECT_TRUE(bc->one_sided);
  const ChannelLatency* ac = channel(a, c);
  ASSERT_NE(ac, nullptr);
  EXPECT_DOUBLE_EQ(ac->floor_us, 0.0);  // zero-delay bound: min is already 0
  EXPECT_TRUE(ac->one_sided);
  const ChannelLatency* ab = channel(a, b);
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->floor_us, 0.0);
  EXPECT_DOUBLE_EQ(ab->latency_us.min(), 50.0);
  EXPECT_FALSE(ab->one_sided);

  std::ostringstream os;
  write_spans_json(os, analysis);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"floor_us\":90"), std::string::npos) << json;
  EXPECT_NE(json.find("\"one_sided\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"one_sided\":false"), std::string::npos) << json;
}

TEST(Spans, RequestTreeAssemblesHopsAcrossProcesses) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v = view(1, 0);
  const std::uint64_t tid = 0x5157ull;
  // b's clock runs 350us ahead; per-process phases are raw-monotonic.
  const std::vector<TraceEvent> events = {
      {100, a, EventKind::RequestAdmitted, v, a, tid, 1},
      {110, a, EventKind::RequestOrdered, v, {}, tid, 4},
      {500, b, EventKind::RequestDelivered, v, a, tid, 4},
      {505, b, EventKind::RequestApplied, v, a, tid, 4},
      {130, a, EventKind::RequestReplied, v, a, tid, 1},
      {120, a, EventKind::RequestReplied, v, a, tid + 1, 1},  // other trace
      {115, a, EventKind::MessageSent, v, a, tid, 9},  // not a request hop
  };
  ClockModel clocks;
  clocks.reference = a;
  clocks.offset_us[a] = 0.0;
  clocks.offset_us[b] = -350.0;
  const RequestTree tree = assemble_request_tree(events, tid, clocks);
  EXPECT_TRUE(tree.found);
  EXPECT_TRUE(tree.monotonic);
  EXPECT_TRUE(tree.errors.empty());
  ASSERT_EQ(tree.processes.size(), 2u);
  ASSERT_EQ(tree.hops.size(), 5u);
  // Hops come out in corrected-time order: b's 500/505 raw map to 150/155.
  EXPECT_EQ(tree.hops[0].kind, EventKind::RequestAdmitted);
  EXPECT_EQ(tree.hops[1].kind, EventKind::RequestOrdered);
  EXPECT_EQ(tree.hops[2].kind, EventKind::RequestReplied);
  EXPECT_EQ(tree.hops[3].kind, EventKind::RequestDelivered);
  EXPECT_DOUBLE_EQ(tree.hops[3].time_corrected, 150.0);

  std::ostringstream os;
  write_request_tree_json(os, tree);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"trace_id\":20823"), std::string::npos) << json;
  EXPECT_NE(json.find("\"found\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"monotonic\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"RequestAdmitted\""), std::string::npos)
      << json;

  const RequestTree missing = assemble_request_tree(events, 0x9999, clocks);
  EXPECT_FALSE(missing.found);
}

TEST(Spans, RequestTreePhaseRegressionOnOneNodeIsFlagged) {
  const ProcessId a = proc(0);
  const ViewId v = view(1, 0);
  const std::uint64_t tid = 42;
  // Replied carries an *earlier* raw time than Ordered on the same node:
  // per-node raw clocks are authoritative, so this is a violation (clock
  // offsets may never be used to excuse same-process reordering). Fenced
  // is out-of-band and exempt wherever it lands.
  const std::vector<TraceEvent> events = {
      {100, a, EventKind::RequestAdmitted, v, a, tid, 1},
      {110, a, EventKind::RequestOrdered, v, {}, tid, 4},
      {105, a, EventKind::RequestReplied, v, a, tid, 1},
      {90, a, EventKind::RequestFenced, v, {}, tid, 8},
  };
  const RequestTree tree = assemble_request_tree(events, tid, ClockModel{});
  EXPECT_TRUE(tree.found);
  EXPECT_FALSE(tree.monotonic);
  ASSERT_FALSE(tree.errors.empty());
  EXPECT_NE(tree.errors[0].find("process 0:1"), std::string::npos)
      << tree.errors[0];
  std::ostringstream os;
  write_request_tree_json(os, tree);
  EXPECT_NE(os.str().find("\"monotonic\":false"), std::string::npos);
}

TEST(Spans, CountsUnmatchedSendsAndOrphanDeliveries) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v = view(1, 0);
  const std::vector<TraceEvent> events = {
      sent(1000, a, v, 1),             // never delivered anywhere
      delivered(2000, b, b, v, 9),     // never sent (lost to a ring buffer)
  };
  const SpanAnalysis analysis = correlate_spans(events);
  EXPECT_EQ(analysis.unmatched_sends, 1u);
  EXPECT_EQ(analysis.unmatched_deliveries, 1u);
  EXPECT_EQ(analysis.matched_deliveries, 0u);
}

TEST(Spans, MergedDuplicateDumpsDoNotDoubleCount) {
  std::vector<TraceEvent> events = skewed_pair_trace();
  const std::vector<TraceEvent> copy = events;
  events.insert(events.end(), copy.begin(), copy.end());
  const SpanAnalysis analysis = correlate_spans(events);
  EXPECT_EQ(analysis.spans.size(), 2u);
  EXPECT_EQ(analysis.matched_deliveries, 3u);
  EXPECT_EQ(analysis.unmatched_deliveries, 0u);
}

TEST(Spans, FlushDeliveriesMatchAndAreMarked) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v = view(1, 0);
  std::vector<TraceEvent> events = {sent(1000, a, v, 1)};
  events.push_back(
      {1400, b, EventKind::FlushDelivery, v, a, 1, 31});
  const SpanAnalysis analysis = correlate_spans(events);
  ASSERT_EQ(analysis.spans.size(), 1u);
  ASSERT_EQ(analysis.spans[0].deliveries.size(), 1u);
  EXPECT_TRUE(analysis.spans[0].deliveries[0].flush);
}

// A two-member view change on one clock: PROPOSE at 100, ACKs at 150/180,
// installs at 200/230, e-view baselines 10us after each install.
std::vector<TraceEvent> view_change_trace() {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v2 = view(2, 0);
  const std::uint64_t round = 7;
  return {
      {100, a, EventKind::ViewProposed, view(1, 0), a, round, 2},
      {150, a, EventKind::ViewAcked, view(1, 0), a, round},
      {180, b, EventKind::ViewAcked, view(1, 0), a, round},
      {200, a, EventKind::ViewInstalled, v2, a, round, 2},
      {230, b, EventKind::ViewInstalled, v2, a, round, 2},
      {210, a, EventKind::EviewChange, v2, a, 0, 1, 1},
      {245, b, EventKind::EviewChange, v2, a, 0, 1, 1},
  };
}

TEST(Spans, ViewChangePhaseBreakdown) {
  const SpanAnalysis analysis = correlate_spans(view_change_trace());
  ASSERT_EQ(analysis.view_changes.size(), 1u);
  const PhaseBreakdown& b = analysis.view_changes[0];
  EXPECT_EQ(b.round, 7u);
  EXPECT_EQ(b.coordinator, proc(0));
  EXPECT_EQ(b.new_view, view(2, 0));
  EXPECT_EQ(b.acks, 2u);
  EXPECT_EQ(b.installs, 2u);
  EXPECT_DOUBLE_EQ(b.propose_to_last_ack_us, 80.0);        // 180 - 100
  EXPECT_DOUBLE_EQ(b.last_ack_to_first_install_us, 20.0);  // 200 - 180
  EXPECT_DOUBLE_EQ(b.install_spread_us, 30.0);             // 230 - 200
  EXPECT_DOUBLE_EQ(b.install_to_eview_us, 15.0);           // max(10, 245-230)
  const std::string text = b.str();
  EXPECT_NE(text.find("round 7"), std::string::npos) << text;
  EXPECT_NE(text.find("propose->last-ack 80us"), std::string::npos) << text;
}

TEST(Spans, SingletonBootstrapInstallsAreNotRounds) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      {10, a, EventKind::ViewInstalled, view(1, 0), a, 0, 1},  // seq 0
  };
  const SpanAnalysis analysis = correlate_spans(events);
  EXPECT_TRUE(analysis.view_changes.empty());
}

TEST(Spans, JsonExportCarriesClockAndPhases) {
  std::vector<TraceEvent> events = skewed_pair_trace();
  const std::vector<TraceEvent> rounds = view_change_trace();
  events.insert(events.end(), rounds.begin(), rounds.end());
  const SpanAnalysis analysis = correlate_spans(events);
  std::ostringstream os;
  write_spans_json(os, analysis);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"reference\":\"0:1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"1:1\":-200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"view_changes\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"round\":7"), std::string::npos) << json;
  // Cross-process phase durations shift under the recovered −200us offset
  // for b, but install->e-view is per-member and offset-invariant.
  EXPECT_NE(json.find("\"install_to_eview_us\":15"), std::string::npos) << json;
}

TEST(Spans, ChromeFlowsPairFlowOutWithFlowIn) {
  const SpanAnalysis analysis = correlate_spans(skewed_pair_trace());
  std::ostringstream os;
  write_chrome_flows(os, analysis);
  const std::string json = os.str();
  // One flow-out per matched send, one flow-in per delivery.
  std::size_t outs = 0, ins = 0, at = 0;
  while ((at = json.find("\"ph\":\"s\"", at)) != std::string::npos) {
    ++outs;
    at += 8;
  }
  at = 0;
  while ((at = json.find("\"ph\":\"f\"", at)) != std::string::npos) {
    ++ins;
    at += 8;
  }
  EXPECT_EQ(outs, 2u);
  EXPECT_EQ(ins, 3u);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(Spans, EmptyTraceYieldsEmptyAnalysis) {
  const SpanAnalysis analysis = correlate_spans({});
  EXPECT_TRUE(analysis.spans.empty());
  EXPECT_TRUE(analysis.channels.empty());
  EXPECT_TRUE(analysis.view_changes.empty());
  EXPECT_TRUE(analysis.clocks.offset_us.empty());
}

}  // namespace
}  // namespace evs::obs
