// Test support: a cluster of enriched-view-synchrony endpoints, plus a
// recording delegate that captures the interleaving of e-view changes and
// application deliveries (needed by the consistent-cut oracle, P6.2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "evs/endpoint.hpp"
#include "sim/world.hpp"

namespace evs::test {

class EvsRecorder : public core::EvsDelegate {
 public:
  struct EViewEvent {
    ViewId view;
    std::uint64_t ev_seq;
    std::string structure;
    std::size_t subviews;
    std::size_t svsets;
  };
  struct DeliverEvent {
    ViewId view;
    ProcessId sender;
    std::string payload;
  };
  using Event = std::variant<EViewEvent, DeliverEvent>;

  explicit EvsRecorder(core::EvsEndpoint& endpoint) : endpoint_(&endpoint) {
    endpoint.set_evs_delegate(this);
  }

  void on_eview(const core::EView& eview) override {
    events_.push_back(EViewEvent{eview.view.id, eview.ev_seq,
                                 eview.structure.str(),
                                 eview.structure.subviews().size(),
                                 eview.structure.svsets().size()});
  }

  void on_app_deliver(ProcessId sender, const Bytes& payload) override {
    events_.push_back(
        DeliverEvent{endpoint_->eview().view.id, sender, to_string(payload)});
  }

  void multicast(const std::string& payload) {
    endpoint_->app_multicast(to_bytes(payload));
  }

  core::EvsEndpoint& endpoint() { return *endpoint_; }
  ProcessId endpoint_id() const { return endpoint_->id(); }
  const std::vector<Event>& events() const { return events_; }

  std::vector<DeliverEvent> deliveries() const {
    std::vector<DeliverEvent> out;
    for (const Event& e : events_) {
      if (const auto* d = std::get_if<DeliverEvent>(&e)) out.push_back(*d);
    }
    return out;
  }

  std::vector<EViewEvent> eviews() const {
    std::vector<EViewEvent> out;
    for (const Event& e : events_) {
      if (const auto* v = std::get_if<EViewEvent>(&e)) out.push_back(*v);
    }
    return out;
  }

 private:
  core::EvsEndpoint* endpoint_;
  std::vector<Event> events_;
};

struct EvsClusterOptions {
  std::size_t sites = 3;
  std::uint64_t seed = 42;
  sim::NetworkConfig net;
  vsync::EndpointConfig endpoint;
  bool spawn_all = true;
};

class EvsCluster {
 public:
  explicit EvsCluster(EvsClusterOptions options)
      : options_(options), world_(options.seed, options.net) {
    sites_ = world_.add_sites(options.sites);
    options_.endpoint.universe = sites_;
    world_.set_default_spawner(
        [this](sim::World&, SiteId site) { spawn_at(site); });
    if (options.spawn_all) {
      for (const SiteId site : sites_) spawn_at(site);
    }
  }

  core::EvsEndpoint& spawn_at(SiteId site) {
    auto& ep = world_.spawn<core::EvsEndpoint>(site, options_.endpoint);
    auto rec = std::make_unique<EvsRecorder>(ep);
    live_recorder_[site] = rec.get();
    live_endpoint_[site] = &ep;
    recorders_.push_back(std::move(rec));
    return ep;
  }

  sim::World& world() { return world_; }
  const std::vector<SiteId>& sites() const { return sites_; }
  SiteId site(std::size_t i) const { return sites_.at(i); }

  core::EvsEndpoint& ep(std::size_t i) {
    const SiteId s = site(i);
    EVS_CHECK(world_.site_alive(s));
    return *live_endpoint_.at(s);
  }

  EvsRecorder& rec(std::size_t i) {
    const SiteId s = site(i);
    EVS_CHECK(world_.site_alive(s));
    return *live_recorder_.at(s);
  }

  const std::vector<std::unique_ptr<EvsRecorder>>& all_recorders() const {
    return recorders_;
  }

  bool await(const std::function<bool()>& pred,
             SimDuration timeout = 60 * kSecond,
             SimDuration poll = 10 * kMillisecond) {
    const SimTime deadline = world_.scheduler().now() + timeout;
    while (world_.scheduler().now() < deadline) {
      if (pred()) return true;
      world_.run_for(poll);
    }
    return pred();
  }

  bool stable_view_among(const std::vector<std::size_t>& indices) {
    std::vector<ProcessId> expected;
    for (const std::size_t i : indices) {
      if (!world_.site_alive(site(i))) return false;
      expected.push_back(world_.live_process(site(i)));
    }
    std::sort(expected.begin(), expected.end());
    const gms::View& first = ep(indices.front()).view();
    if (first.members != expected) return false;
    for (const std::size_t i : indices) {
      if (ep(i).view().id != first.id) return false;
      if (ep(i).blocked()) return false;
    }
    return true;
  }

  bool await_stable_view(const std::vector<std::size_t>& indices,
                         SimDuration timeout = 60 * kSecond) {
    return await([&]() { return stable_view_among(indices); }, timeout);
  }

  /// Every live endpoint in `indices` reports the same structure string.
  bool structures_agree(const std::vector<std::size_t>& indices) {
    const std::string expected = ep(indices.front()).eview().structure.str();
    for (const std::size_t i : indices) {
      if (ep(i).eview().structure.str() != expected) return false;
      if (ep(i).eview().ev_seq != ep(indices.front()).eview().ev_seq)
        return false;
    }
    return true;
  }

  std::vector<std::size_t> all_indices() const {
    std::vector<std::size_t> v(sites_.size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    return v;
  }

 private:
  EvsClusterOptions options_;
  sim::World world_;
  std::vector<SiteId> sites_;
  std::vector<std::unique_ptr<EvsRecorder>> recorders_;
  std::unordered_map<SiteId, EvsRecorder*> live_recorder_;
  std::unordered_map<SiteId, core::EvsEndpoint*> live_endpoint_;
};

}  // namespace evs::test
