// Test support: a recording vsync::Delegate.
//
// Tags every delivery with the view in which it happened (flush-path
// deliveries occur before the endpoint reassigns its view, so the tag is
// the dying view — exactly what the oracles need).
#pragma once

#include <string>
#include <vector>

#include "gms/view.hpp"
#include "gms/wire.hpp"
#include "vsync/endpoint.hpp"

namespace evs::test {

class Recorder : public vsync::Delegate {
 public:
  struct ViewRecord {
    gms::View view;
    std::vector<gms::MemberContext> contexts;
  };
  struct Delivery {
    ViewId view;
    ProcessId sender;
    std::string payload;
  };

  explicit Recorder(vsync::Endpoint& endpoint) : endpoint_(&endpoint) {
    endpoint.set_delegate(this);
  }

  void on_view(const gms::View& view, const vsync::InstallInfo& info) override {
    views_.push_back(ViewRecord{view, info.contexts});
  }

  void on_deliver(ProcessId sender, const Bytes& payload) override {
    deliveries_.push_back(
        Delivery{endpoint_->view().id, sender, to_string(payload)});
  }

  void multicast(const std::string& payload) {
    sent_.push_back(payload);
    endpoint_->multicast(to_bytes(payload));
  }

  vsync::Endpoint& endpoint() { return *endpoint_; }
  ProcessId endpoint_id() const { return endpoint_->id(); }
  const std::vector<ViewRecord>& views() const { return views_; }
  const std::vector<Delivery>& deliveries() const { return deliveries_; }
  const std::vector<std::string>& sent() const { return sent_; }

 private:
  vsync::Endpoint* endpoint_;
  std::vector<ViewRecord> views_;
  std::vector<Delivery> deliveries_;
  std::vector<std::string> sent_;
};

}  // namespace evs::test
