// Test support: a cluster of vsync endpoints over a simulated world.
//
// Tracks every incarnation's recorder (crashed incarnations keep their
// history — the oracles reason over all of them) and knows how to respawn
// endpoints through the world's default spawner.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "sim/world.hpp"
#include "support/recorder.hpp"
#include "vsync/endpoint.hpp"

namespace evs::test {

struct ClusterOptions {
  std::size_t sites = 3;
  std::uint64_t seed = 42;
  sim::NetworkConfig net;
  vsync::EndpointConfig endpoint;  // universe is filled in automatically
  bool spawn_all = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options)
      : options_(options), world_(options.seed, options.net) {
    sites_ = world_.add_sites(options.sites);
    options_.endpoint.universe = sites_;
    world_.set_default_spawner(
        [this](sim::World&, SiteId site) { spawn_at(site); });
    if (options.spawn_all) {
      for (const SiteId site : sites_) spawn_at(site);
    }
  }

  vsync::Endpoint& spawn_at(SiteId site) {
    auto& ep = world_.spawn<vsync::Endpoint>(site, options_.endpoint);
    auto rec = std::make_unique<Recorder>(ep);
    live_recorder_[site] = rec.get();
    live_endpoint_[site] = &ep;
    recorders_.push_back(std::move(rec));
    return ep;
  }

  sim::World& world() { return world_; }
  const std::vector<SiteId>& sites() const { return sites_; }
  SiteId site(std::size_t i) const { return sites_.at(i); }

  /// Live endpoint at site index i (checks the site is alive).
  vsync::Endpoint& ep(std::size_t i) {
    const SiteId s = site(i);
    EVS_CHECK(world_.site_alive(s));
    return *live_endpoint_.at(s);
  }

  /// Live recorder at site index i.
  Recorder& rec(std::size_t i) {
    const SiteId s = site(i);
    EVS_CHECK(world_.site_alive(s));
    return *live_recorder_.at(s);
  }

  /// Every recorder ever created (including crashed incarnations).
  const std::vector<std::unique_ptr<Recorder>>& all_recorders() const {
    return recorders_;
  }

  /// Runs simulated time until `pred()` holds, polling every `poll`.
  /// Returns true on success, false on sim-time timeout.
  bool await(const std::function<bool()>& pred,
             SimDuration timeout = 60 * kSecond,
             SimDuration poll = 10 * kMillisecond) {
    const SimTime deadline = world_.scheduler().now() + timeout;
    while (world_.scheduler().now() < deadline) {
      if (pred()) return true;
      world_.run_for(poll);
    }
    return pred();
  }

  /// True when every live endpoint among `indices` has installed the same
  /// view whose membership is exactly the live processes at those indices.
  bool stable_view_among(const std::vector<std::size_t>& indices) {
    std::vector<ProcessId> expected;
    for (const std::size_t i : indices) {
      if (!world_.site_alive(site(i))) return false;
      expected.push_back(world_.live_process(site(i)));
    }
    std::sort(expected.begin(), expected.end());
    const gms::View& first = ep(indices.front()).view();
    if (first.members != expected) return false;
    for (const std::size_t i : indices) {
      if (ep(i).view().id != first.id) return false;
      if (ep(i).blocked()) return false;
    }
    return true;
  }

  /// Awaits a stable view containing exactly the given site indices.
  bool await_stable_view(const std::vector<std::size_t>& indices,
                         SimDuration timeout = 60 * kSecond) {
    return await([&]() { return stable_view_among(indices); }, timeout);
  }

  std::vector<std::size_t> all_indices() const {
    std::vector<std::size_t> v(sites_.size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    return v;
  }

 private:
  ClusterOptions options_;
  sim::World world_;
  std::vector<SiteId> sites_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
  std::unordered_map<SiteId, Recorder*> live_recorder_;
  std::unordered_map<SiteId, vsync::Endpoint*> live_endpoint_;
};

}  // namespace evs::test
