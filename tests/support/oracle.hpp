// Test support: global-property oracles for view synchrony.
//
// These check the paper's Section-2 specification over the recorded
// histories of every incarnation in a run:
//   Agreement  (P2.1): processes that survive from view v to the same next
//                      view delivered the same set of messages in v.
//   Uniqueness (P2.2): a message is delivered in at most one view
//                      (across all processes).
//   Integrity  (P2.3): at most once per process, and only if some process
//                      multicast it.
// Payloads must be globally unique within a test for these oracles.
//
// The actual property logic lives in the library (obs::RunChecker) so it
// can also validate traces from benches, examples and recorded files; this
// header converts Recorder histories into the checker's event form and
// wraps the structured violations back into gtest AssertionResults.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/check.hpp"
#include "obs/trace.hpp"
#include "support/recorder.hpp"

namespace evs::test {

/// Recorder histories as synthetic trace events: per process, its views in
/// installation order plus every send and view-tagged delivery. Times are
/// irrelevant to the properties and left at zero.
inline std::vector<obs::TraceEvent> recorder_events(
    const std::vector<const Recorder*>& recorders) {
  std::vector<obs::TraceEvent> events;
  for (const Recorder* rec : recorders) {
    const ProcessId proc = rec->endpoint_id();
    for (const auto& vr : rec->views()) {
      events.push_back({0, proc, obs::EventKind::ViewInstalled, vr.view.id,
                        vr.view.id.coordinator, 0, vr.view.size()});
    }
    for (const std::string& payload : rec->sent()) {
      events.push_back({0, proc, obs::EventKind::MessageSent, {}, proc, 0,
                        obs::payload_hash(to_bytes(payload))});
    }
    for (const auto& d : rec->deliveries()) {
      events.push_back({0, proc, obs::EventKind::MessageDelivered, d.view,
                        d.sender, 0, obs::payload_hash(to_bytes(d.payload))});
    }
  }
  return events;
}

inline ::testing::AssertionResult as_assertion(
    const std::vector<obs::Violation>& violations) {
  if (violations.empty()) return ::testing::AssertionSuccess();
  auto failure = ::testing::AssertionFailure();
  for (const obs::Violation& v : violations) failure << v.str() << "\n";
  return failure;
}

inline ::testing::AssertionResult check_uniqueness(
    const std::vector<const Recorder*>& recorders) {
  return as_assertion(
      obs::RunChecker::check_uniqueness(recorder_events(recorders)));
}

inline ::testing::AssertionResult check_integrity(
    const std::vector<const Recorder*>& recorders) {
  return as_assertion(
      obs::RunChecker::check_integrity(recorder_events(recorders)));
}

inline ::testing::AssertionResult check_agreement(
    const std::vector<const Recorder*>& recorders) {
  return as_assertion(
      obs::RunChecker::check_agreement(recorder_events(recorders)));
}

inline ::testing::AssertionResult check_vs_properties(
    const std::vector<const Recorder*>& recorders) {
  return as_assertion(obs::RunChecker::check_vs(recorder_events(recorders)));
}

inline std::vector<const Recorder*> recorder_ptrs(
    const std::vector<std::unique_ptr<Recorder>>& owned) {
  std::vector<const Recorder*> out;
  out.reserve(owned.size());
  for (const auto& r : owned) out.push_back(r.get());
  return out;
}

}  // namespace evs::test
