// Test support: global-property oracles for view synchrony.
//
// These check the paper's Section-2 specification over the recorded
// histories of every incarnation in a run:
//   Agreement  (P2.1): processes that survive from view v to the same next
//                      view delivered the same set of messages in v.
//   Uniqueness (P2.2): a message is delivered in at most one view
//                      (across all processes).
//   Integrity  (P2.3): at most once per process, and only if some process
//                      multicast it.
// Payloads must be globally unique within a test for these oracles.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/recorder.hpp"

namespace evs::test {

using DeliverySet = std::set<std::pair<ProcessId, std::string>>;

inline ::testing::AssertionResult check_uniqueness(
    const std::vector<const Recorder*>& recorders) {
  std::map<std::string, std::set<ViewId>> views_of_payload;
  for (const Recorder* rec : recorders) {
    for (const auto& d : rec->deliveries()) {
      views_of_payload[d.payload].insert(d.view);
    }
  }
  for (const auto& [payload, views] : views_of_payload) {
    if (views.size() > 1) {
      return ::testing::AssertionFailure()
             << "Uniqueness violated: '" << payload << "' delivered in "
             << views.size() << " distinct views";
    }
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult check_integrity(
    const std::vector<const Recorder*>& recorders) {
  // Gather everything ever multicast, per sender.
  std::map<ProcessId, std::set<std::string>> sent_by;
  for (const Recorder* rec : recorders) {
    auto& sent = sent_by[rec->endpoint_id()];
    sent.insert(rec->sent().begin(), rec->sent().end());
  }
  for (const Recorder* rec : recorders) {
    std::set<std::pair<ProcessId, std::string>> seen;
    for (const auto& d : rec->deliveries()) {
      if (!seen.emplace(d.sender, d.payload).second) {
        return ::testing::AssertionFailure()
               << "Integrity violated: " << to_string(rec->endpoint_id())
               << " delivered '" << d.payload << "' twice";
      }
      const auto it = sent_by.find(d.sender);
      if (it == sent_by.end() || !it->second.contains(d.payload)) {
        return ::testing::AssertionFailure()
               << "Integrity violated: '" << d.payload
               << "' delivered but never multicast by " << to_string(d.sender);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult check_agreement(
    const std::vector<const Recorder*>& recorders) {
  // Per recorder: the set of messages it delivered in each view, and its
  // view transitions v -> v'.
  struct PerProcess {
    std::map<ViewId, DeliverySet> delivered_in;
    std::map<ViewId, ViewId> next_view;
  };
  std::vector<std::pair<const Recorder*, PerProcess>> data;
  for (const Recorder* rec : recorders) {
    PerProcess pp;
    for (const auto& d : rec->deliveries()) {
      pp.delivered_in[d.view].emplace(d.sender, d.payload);
    }
    const auto& views = rec->views();
    for (std::size_t i = 0; i + 1 < views.size(); ++i) {
      pp.next_view.emplace(views[i].view.id, views[i + 1].view.id);
    }
    data.emplace_back(rec, std::move(pp));
  }
  for (std::size_t a = 0; a < data.size(); ++a) {
    for (std::size_t b = a + 1; b < data.size(); ++b) {
      const auto& [ra, pa] = data[a];
      const auto& [rb, pb] = data[b];
      for (const auto& [view, next_a] : pa.next_view) {
        const auto it = pb.next_view.find(view);
        if (it == pb.next_view.end() || it->second != next_a) continue;
        // Both survived view -> next_a: delivered sets in `view` must match.
        static const DeliverySet kEmpty;
        const auto da = pa.delivered_in.find(view);
        const auto db = pb.delivered_in.find(view);
        const DeliverySet& sa = da == pa.delivered_in.end() ? kEmpty : da->second;
        const DeliverySet& sb = db == pb.delivered_in.end() ? kEmpty : db->second;
        if (sa != sb) {
          std::ostringstream os;
          os << "Agreement violated between " << to_string(ra->endpoint_id())
             << " and " << to_string(rb->endpoint_id()) << " in view "
             << to_string(view) << ": " << sa.size() << " vs " << sb.size()
             << " deliveries";
          return ::testing::AssertionFailure() << os.str();
        }
      }
    }
  }
  return ::testing::AssertionSuccess();
}

inline ::testing::AssertionResult check_vs_properties(
    const std::vector<const Recorder*>& recorders) {
  if (auto r = check_uniqueness(recorders); !r) return r;
  if (auto r = check_integrity(recorders); !r) return r;
  return check_agreement(recorders);
}

inline std::vector<const Recorder*> recorder_ptrs(
    const std::vector<std::unique_ptr<Recorder>>& owned) {
  std::vector<const Recorder*> out;
  out.reserve(owned.size());
  for (const auto& r : owned) out.push_back(r.get());
  return out;
}

}  // namespace evs::test
