// Test support: a cluster of concrete group objects (ReplicatedFile,
// ParallelDb, LockManager, MergeableKv) over a simulated world.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "app/group_object.hpp"
#include "common/check.hpp"
#include "sim/world.hpp"

namespace evs::test {

template <typename Object, typename Config>
class ObjectCluster {
 public:
  using ConfigFactory = std::function<Config(const std::vector<SiteId>&)>;

  ObjectCluster(std::size_t n, std::uint64_t seed, ConfigFactory make_config,
                sim::NetworkConfig net = {}, bool spawn_all = true)
      : world_(seed, net), make_config_(std::move(make_config)) {
    sites_ = world_.add_sites(n);
    world_.set_default_spawner(
        [this](sim::World&, SiteId site) { spawn_at(site); });
    if (spawn_all) {
      for (const SiteId site : sites_) spawn_at(site);
    }
  }

  Object& spawn_at(SiteId site) {
    auto& obj = world_.spawn<Object>(site, make_config_(sites_));
    live_[site] = &obj;
    return obj;
  }

  sim::World& world() { return world_; }
  const std::vector<SiteId>& sites() const { return sites_; }
  SiteId site(std::size_t i) const { return sites_.at(i); }

  Object& obj(std::size_t i) {
    const SiteId s = site(i);
    EVS_CHECK(world_.site_alive(s));
    return *live_.at(s);
  }

  bool await(const std::function<bool()>& pred,
             SimDuration timeout = 120 * kSecond,
             SimDuration poll = 10 * kMillisecond) {
    const SimTime deadline = world_.scheduler().now() + timeout;
    while (world_.scheduler().now() < deadline) {
      if (pred()) return true;
      world_.run_for(poll);
    }
    return pred();
  }

  /// All of `indices` share one stable view whose membership is exactly
  /// the live processes at those indices, and all are in NORMAL mode.
  bool all_normal(const std::vector<std::size_t>& indices) {
    std::vector<ProcessId> expected;
    for (const std::size_t i : indices) {
      if (!world_.site_alive(site(i))) return false;
      expected.push_back(world_.live_process(site(i)));
    }
    std::sort(expected.begin(), expected.end());
    ViewId first{};
    bool have_first = false;
    for (const std::size_t i : indices) {
      Object& o = obj(i);
      if (o.blocked() || o.mode() != app::Mode::Normal) return false;
      if (o.view().members != expected) return false;
      if (!have_first) {
        first = o.view().id;
        have_first = true;
      } else if (o.view().id != first) {
        return false;
      }
    }
    return true;
  }

  bool await_all_normal(const std::vector<std::size_t>& indices,
                        SimDuration timeout = 120 * kSecond) {
    return await([&]() { return all_normal(indices); }, timeout);
  }

  std::vector<std::size_t> all_indices() const {
    std::vector<std::size_t> v(sites_.size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
    return v;
  }

 private:
  sim::World world_;
  ConfigFactory make_config_;
  std::vector<SiteId> sites_;
  std::unordered_map<SiteId, Object*> live_;
};

}  // namespace evs::test
